(* The paper's Sec. 5.1 scenario: an *invariant additive* change — the
   accounting department accepts an alternative order format
   (order_2). The buyer view changes, but no propagation is needed.

     dune exec examples/invariant_change.exe *)

module C = Chorev
open C.Scenario.Procurement

let () =
  (* The change is expressed as a change operation on the private
     process: the initial receive becomes a pick over both formats. *)
  let op =
    C.Change.Ops.Receive_to_pick
      {
        path = [ 0 ];
        name = "order formats";
        arms =
          [
            C.Bpel.Activity.on_message ~partner:buyer ~op:"order_2Op"
              C.Bpel.Activity.Empty;
          ];
      }
  in
  Fmt.pr "change operation: %a@.@." C.Change.Ops.pp op;
  let changed = C.Change.Ops.apply_exn op accounting_process in

  (* Buyer view before/after (Figs. 8a and 10a). *)
  let v_old =
    C.View.tau ~observer:buyer (C.Public_gen.public accounting_process)
  in
  let v_new = C.View.tau ~observer:buyer (C.Public_gen.public changed) in
  Fmt.pr "=== Buyer view after the change (Fig. 10a) ===@.%s@."
    (C.Afsa.Pp.to_string ~abbrev:true v_new);

  (* Def. 5: the change is additive. *)
  let fw = C.Change.Classify.framework ~old_public:v_old ~new_public:v_new () in
  Fmt.pr "additive=%b subtractive=%b@." fw.C.Change.Classify.additive
    fw.C.Change.Classify.subtractive;

  (* Def. 6: intersection with the buyer public process is non-empty
     (Fig. 10b) — invariant, nothing to do. *)
  let buyer_public = C.Public_gen.public buyer_process in
  let verdict =
    C.Change.Classify.propagation ~new_public:v_new
      ~partner_public:buyer_public ()
  in
  Fmt.pr "verdict: %s@."
    (match verdict with
    | C.Change.Classify.Invariant -> "invariant — no propagation necessary"
    | C.Change.Classify.Variant -> "variant — propagation required");

  (* Through the full pipeline: one round, nothing propagated,
     choreography stays consistent. *)
  let t = C.Choreography.Model.of_processes (List.map snd parties) in
  let rep =
    match C.Choreography.Evolution.run t ~owner:accounting ~changed with
    | Ok r -> r
    | Error (`Unknown_party p) -> failwith ("unknown party " ^ p)
  in
  Fmt.pr "@.%a@." C.Choreography.Evolution.pp_report rep
