(* The paper's Sec. 5.3 scenario end-to-end: the accounting department
   limits parcel tracking to at most one request (a *variant
   subtractive* change); the buyer's tracking loop must be unrolled.

     dune exec examples/parcel_tracking_limit.exe *)

module C = Chorev
open C.Scenario.Procurement

let () =
  let new_public = C.Public_gen.public accounting_once in

  (* The buyer view (Fig. 16a) and why the intersection is empty. *)
  let view = C.View.tau ~observer:buyer new_public in
  Fmt.pr "=== Buyer view after the change (Fig. 16a) ===@.%s@."
    (C.Afsa.Pp.to_string ~abbrev:true view);
  let buyer_public = C.Public_gen.public buyer_process in
  let inter = C.Ops.intersect view buyer_public in
  Fmt.pr
    "plain languages still overlap (%b) but the annotated intersection is \
     empty (%b): the buyer's mandatory get_statusOp is unavailable after one \
     round — a variant change.@.@."
    (not (C.Emptiness.is_empty_plain (C.Afsa.trim inter)))
    (C.Emptiness.is_empty inter);

  (* Full subtractive propagation. *)
  let outcome =
    C.Propagate.Engine.run ~direction:C.Propagate.Engine.Subtractive
      ~a':new_public ~partner_private:buyer_process ()
  in
  Fmt.pr "=== Removed sequences (Fig. 17a) ===@.%s@."
    (C.Afsa.Pp.to_string ~abbrev:true
       (C.Minimize.minimize outcome.C.Propagate.Engine.analysis.C.Propagate.Engine.delta));
  Fmt.pr "=== New buyer public (Fig. 17b) ===@.%s@."
    (C.Afsa.Pp.to_string ~abbrev:true
       (C.Minimize.minimize outcome.C.Propagate.Engine.analysis.C.Propagate.Engine.target_public));

  List.iter
    (fun d -> Fmt.pr "localized: %a@." C.Propagate.Localize.pp_divergence d)
    outcome.C.Propagate.Engine.analysis.C.Propagate.Engine.divergences;
  List.iter
    (fun s -> Fmt.pr "suggestion: %a@." C.Propagate.Suggest.pp s)
    outcome.C.Propagate.Engine.analysis.C.Propagate.Engine.suggestions;

  (match outcome.C.Propagate.Engine.adapted with
  | Some adapted ->
      Fmt.pr "@.=== Adapted buyer private process (Fig. 18) ===@.%s@."
        (C.Bpel.Pp.to_string adapted)
  | None -> Fmt.pr "@.no automatic adaptation possible@.");
  Fmt.pr "consistent after propagation: %b@."
    outcome.C.Propagate.Engine.consistent_after;

  (* Logistics is NOT affected: the change is invariant for it. *)
  let v_log =
    C.Change.Classify.classify ~owner:accounting ~partner:logistics
      ~old_public:(C.Public_gen.public accounting_process)
      ~new_public
      ~partner_public:(C.Public_gen.public logistics_process)
      ()
  in
  Fmt.pr "logistics: %a@." C.Change.Classify.pp_verdict v_log
