(* Decentralized evolution of a larger choreography: a hub with five
   spokes (generalizing the paper's buyer–accounting–logistics chain),
   evolved through the decentralized consistency protocol of Sec. 6 —
   only public processes travel between parties.

     dune exec examples/multiparty_protocol.exe *)

module C = Chorev
module M = C.Choreography.Model

let () =
  (* A hub choreography: HUB converses with P0..P4 in sequence. *)
  let hub, spokes = C.Workload.Scale.hub 5 in
  let t = M.of_processes (hub :: spokes) in
  Fmt.pr "choreography: %d parties, %d interacting pairs, consistent=%b@.@."
    (List.length (M.parties t))
    (List.length (M.pairs t))
    (C.Choreography.Consistency.consistent t);

  (* The hub inserts an extra notification to spoke P2 before its
     request — a variant additive change for P2 only. *)
  let changed =
    C.Change.Ops.apply_exn
      (C.Change.Ops.Insert_activity
         {
           path = [];
           pos = 4;
           act = C.Bpel.Activity.invoke ~partner:"P2" ~op:"noticeOp";
         })
      hub
  in
  Fmt.pr "hub change: insert invoke P2/noticeOp before round 2@.@.";

  (* Decentralized protocol: announce, check locally, adapt, re-announce. *)
  let r = C.Choreography.Protocol.run t ~owner:"HUB" ~changed in
  Fmt.pr "protocol run: agreed=%b (%a)@." r.C.Choreography.Protocol.agreed
    C.Choreography.Protocol.pp_stats r.C.Choreography.Protocol.stats;

  (* Which spokes had to adapt? Compare public processes. *)
  List.iter
    (fun p ->
      let before = M.public t p and after = M.public r.C.Choreography.Protocol.final p in
      if not (C.Equiv.equal_language before after) then
        Fmt.pr "  %s adapted its process@." p)
    (M.parties t);

  (* Cross-check with the centralized pipeline. *)
  let rep =
    match C.Choreography.Evolution.run t ~owner:"HUB" ~changed with
    | Ok r -> r
    | Error (`Unknown_party p) -> failwith ("unknown party " ^ p)
  in
  Fmt.pr "centralized pipeline agrees: %b@."
    (rep.C.Choreography.Evolution.consistent = r.C.Choreography.Protocol.agreed);

  (* And execute the evolved choreography. *)
  let final = r.C.Choreography.Protocol.final in
  let sys =
    C.Runtime.Exec.make
      (List.map (fun p -> (p, M.public final p)) (M.parties final))
  in
  let e = C.Runtime.Exec.explore sys in
  Fmt.pr
    "evolved choreography executes: %d configurations, deadlock-free=%b, \
     completes=%b@."
    e.C.Runtime.Exec.configurations
    (e.C.Runtime.Exec.deadlocks = [])
    (e.C.Runtime.Exec.completions > 0)
