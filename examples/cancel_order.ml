(* The paper's Sec. 5.2 scenario end-to-end: the accounting department
   introduces an order-cancellation option (a *variant additive*
   change) and the framework propagates it to the buyer.

     dune exec examples/cancel_order.exe *)

module C = Chorev
open C.Scenario.Procurement

let pp_labels =
  Fmt.list ~sep:(Fmt.any ", ") (fun ppf l ->
      Fmt.string ppf (C.Label.to_string l))

let () =
  let old_public = C.Public_gen.public accounting_process in
  let new_public = C.Public_gen.public accounting_cancel in

  (* Classify the change against the buyer (Defs. 5 and 6). *)
  let verdict =
    C.Change.Classify.classify ~owner:accounting ~partner:buyer ~old_public
      ~new_public
      ~partner_public:(C.Public_gen.public buyer_process)
      ()
  in
  Fmt.pr "classification: %a@.@." C.Change.Classify.pp_verdict verdict;

  (* It is variant — run the propagation pipeline (steps 1–5). *)
  let outcome =
    C.Propagate.Engine.run ~direction:C.Propagate.Engine.Additive
      ~a':new_public ~partner_private:buyer_process ()
  in

  Fmt.pr "=== Step 1: added message sequences (Fig. 13a) ===@.%s@."
    (C.Afsa.Pp.to_string ~abbrev:true
       (C.Minimize.minimize outcome.C.Propagate.Engine.analysis.C.Propagate.Engine.delta));
  Fmt.pr "=== Step 2: new buyer public process (Fig. 13b) ===@.%s@."
    (C.Afsa.Pp.to_string ~abbrev:true
       (C.Minimize.minimize outcome.C.Propagate.Engine.analysis.C.Propagate.Engine.target_public));

  Fmt.pr "=== Step 3: localization via the mapping table ===@.";
  List.iter
    (fun d -> Fmt.pr "%a@." C.Propagate.Localize.pp_divergence d)
    outcome.C.Propagate.Engine.analysis.C.Propagate.Engine.divergences;

  Fmt.pr "@.=== Step 4: suggested private-process adaptations ===@.";
  List.iter
    (fun s -> Fmt.pr "  • %a@." C.Propagate.Suggest.pp s)
    outcome.C.Propagate.Engine.analysis.C.Propagate.Engine.suggestions;

  (match outcome.C.Propagate.Engine.adapted with
  | Some adapted ->
      Fmt.pr "@.=== Step 5: adapted buyer private process (Fig. 14) ===@.%s@."
        (C.Bpel.Pp.to_string adapted)
  | None -> Fmt.pr "@.no automatic adaptation possible@.");

  Fmt.pr "bilaterally consistent after propagation: %b@."
    outcome.C.Propagate.Engine.consistent_after;

  (* The adapted choreography supports the new cancel conversation. *)
  match outcome.C.Propagate.Engine.adapted_public with
  | Some pub ->
      let view = C.View.tau ~observer:buyer new_public in
      let i = C.Ops.intersect pub view in
      (match C.Emptiness.witness i with
      | Some w -> Fmt.pr "example conversation: %a@." pp_labels w
      | None -> ());
      let cancel_convo =
        List.map C.Label.of_string_exn [ "B#A#orderOp"; "A#B#cancelOp" ]
      in
      Fmt.pr "cancellation conversation supported: %b@."
        (C.Trace.accepts i cancel_convo)
  | None -> ()
