(* Dynamic evolution at the instance level — the paper's Sec. 8
   outlook, realized with the ADEPT compliance criterion: when the
   buyer adopts the subtractive change of Fig. 18 (tracking at most
   once), which of its *running* conversations can migrate to the new
   process version, and which must finish on the old one?

     dune exec examples/dynamic_migration.exe *)

module C = Chorev
module I = C.Migration.Instance
module V = C.Migration.Versions
open C.Scenario.Procurement

let l = C.Label.of_string_exn

let () =
  let old_public = C.Public_gen.public buyer_process in
  let new_public = C.Public_gen.public buyer_once in

  (* Version manager with running instances in different stages. *)
  let mgr = V.create old_public in
  V.start mgr (I.make ~id:"just-started" ());
  V.start mgr (I.make ~id:"ordered" ~trace:[ l "B#A#orderOp" ] ());
  V.start mgr
    (I.make ~id:"tracked-once"
       ~trace:
         [
           l "B#A#orderOp"; l "A#B#deliveryOp"; l "B#A#get_statusOp";
           l "A#B#statusOp";
         ]
       ());
  V.start mgr
    (I.make ~id:"tracked-twice"
       ~trace:
         [
           l "B#A#orderOp"; l "A#B#deliveryOp"; l "B#A#get_statusOp";
           l "A#B#statusOp"; l "B#A#get_statusOp"; l "A#B#statusOp";
         ]
       ());

  Fmt.pr "instances before publishing v2:@.";
  List.iter
    (fun (v, i) -> Fmt.pr "  %s (v%d, %d messages)@." i.I.id v (I.length i))
    (V.all_instances mgr);

  (* Publish the Fig. 18 process as version 2. *)
  let report = V.publish mgr new_public in
  Fmt.pr "@.%a@.@." V.pp_report report;

  (* Why can't tracked-twice migrate? The compliance verdict says. *)
  let twice =
    I.make ~id:"tracked-twice"
      ~trace:
        [
          l "B#A#orderOp"; l "A#B#deliveryOp"; l "B#A#get_statusOp";
          l "A#B#statusOp"; l "B#A#get_statusOp"; l "A#B#statusOp";
        ]
      ()
  in
  (match C.Migration.Compliance.check new_public twice with
  | C.Migration.Compliance.Not_compliant { at; label } ->
      Fmt.pr
        "tracked-twice is not compliant: message #%d (%s) has no \
         counterpart in the new process — it finishes on v1.@."
        at (C.Label.to_string label)
  | _ -> assert false);

  (* Old versions retire once drained. *)
  Fmt.pr "@.live versions: %a@."
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.int)
    (V.version_numbers mgr);
  (match V.find_version mgr 1 with
  | Some v1 ->
      Fmt.pr "v1 still hosts %d instance(s); once they complete:@."
        (V.version_count v1);
      List.iter
        (fun (i : I.t) -> ignore (V.remove mgr ~id:i.I.id))
        (V.version_instances v1)
  | None -> ());
  ignore (V.retire_drained mgr);
  Fmt.pr "after draining: versions %a@."
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.int)
    (V.version_numbers mgr)
