(* Benchmark harness: one Bechamel benchmark per figure/table of the
   paper (regenerating exactly the artifact the figure shows), plus the
   scalability sweeps the paper lacks in DESIGN.md section 4, the scale rows.

   Before timing anything the harness prints the reproduction report —
   paper claim vs. measured outcome for every figure — so one run of
   `dune exec bench/main.exe` documents both correctness and cost. *)

open Bechamel
open Toolkit
module C = Chorev
module P = C.Scenario.Procurement

let gen = C.Public_gen.public

(* Inputs shared by the benchmark closures are built lazily so that
   CLI flags ([--jobs] in particular) are parsed before any automaton
   is generated — input building itself goes through the domain pool
   where a family produces several publics at once. *)
let pub_buyer = lazy (gen P.buyer_process)
let pub_acc = lazy (gen P.accounting_process)
let pub_log = lazy (gen P.logistics_process)
let pub_cancel = lazy (gen P.accounting_cancel)
let pub_once = lazy (gen P.accounting_once)
let view_cancel = lazy (C.View.tau ~observer:"B" (Lazy.force pub_cancel))
let view_once = lazy (C.View.tau ~observer:"B" (Lazy.force pub_once))

let procurement =
  lazy (C.Choreography.Model.of_processes (List.map snd P.parties))

(* Tests are kept as [(name, closure)] pairs rather than opaque
   [Test.t] values so the counter-collection pass ([--profile]) can run
   each workload once more outside Bechamel, with metrics enabled. *)
let t name f = (name, f)

(* Some rows carry counters recorded by the closure itself — the
   evolution-rounds family snapshots its per-instance LRU stats (always
   on, unlike the [--profile] Metrics pass) so the JSON report records
   cache reuse rates unconditionally. Last timed run wins. *)
let extra_counters : (string * (string * int) list) list ref = ref []

let record_counters name cs =
  extra_counters := (name, cs) :: List.remove_assoc name !extra_counters

(* ------------------------ per-figure benchmarks -------------------- *)

let figure_tests () =
  let pub_buyer = Lazy.force pub_buyer in
  let pub_acc = Lazy.force pub_acc in
  let pub_cancel = Lazy.force pub_cancel in
  let pub_once = Lazy.force pub_once in
  let view_cancel = Lazy.force view_cancel in
  let view_once = Lazy.force view_once in
  let procurement = Lazy.force procurement in
  [
    t "fig01_overview" (fun () ->
        ignore (C.Choreography.Model.of_processes (List.map snd P.parties)));
    t "fig02_accounting_private" (fun () ->
        ignore (C.Bpel.Validate.check P.accounting_process));
    t "fig03_buyer_private" (fun () ->
        ignore (C.Bpel.Validate.check P.buyer_process));
    t "fig04_pipeline" (fun () ->
        ignore
          (C.Choreography.Evolution.run procurement ~owner:"A"
             ~changed:P.accounting_cancel));
    t "fig05_intersection" (fun () ->
        ignore (C.Emptiness.is_empty (C.Scenario.Fig5.intersection ())));
    t "fig06_buyer_public" (fun () ->
        ignore (C.Public_gen.generate P.buyer_process));
    t "fig07_accounting_public" (fun () ->
        ignore (C.Public_gen.generate P.accounting_process));
    t "fig08_views" (fun () ->
        ignore (C.View.tau ~observer:"B" pub_acc);
        ignore (C.View.tau ~observer:"L" pub_acc));
    t "fig09_invariant_change" (fun () -> ignore (gen P.accounting_order2));
    t "fig10_invariant_check" (fun () ->
        ignore
          (C.Consistency.consistent
             (C.View.tau ~observer:"B" (gen P.accounting_order2))
             pub_buyer));
    t "fig11_variant_additive" (fun () -> ignore (gen P.accounting_cancel));
    t "fig12_variant_check" (fun () ->
        ignore (C.Emptiness.is_empty (C.Ops.intersect view_cancel pub_buyer)));
    t "fig13_propagation_delta" (fun () ->
        let delta = C.Ops.difference view_cancel pub_buyer in
        ignore (C.Ops.union delta pub_buyer));
    t "fig14_private_adaptation" (fun () ->
        ignore
          (C.Propagate.Engine.run ~direction:C.Propagate.Engine.Additive
             ~a':pub_cancel ~partner_private:P.buyer_process ()));
    t "fig15_variant_subtractive" (fun () -> ignore (gen P.accounting_once));
    t "fig16_subtractive_check" (fun () ->
        ignore (C.Emptiness.is_empty (C.Ops.intersect view_once pub_buyer)));
    t "fig17_subtractive_delta" (fun () ->
        let removed = C.Ops.difference pub_buyer view_once in
        ignore (C.Ops.difference pub_buyer removed));
    t "fig18_subtractive_adaptation" (fun () ->
        ignore
          (C.Propagate.Engine.run
             ~direction:C.Propagate.Engine.Subtractive ~a':pub_once
             ~partner_private:P.buyer_process ()));
  ]

(* -------------------------- scale sweeps --------------------------- *)

(* Derive both publics of a family pair over the domain pool. *)
let publics2 pa pb =
  match C.Workload.Scale.publics [ pa; pb ] with
  | [ a; b ] -> (a, b)
  | _ -> assert false

(* Process size: the ladder family, Θ(n) public states. *)
let ladder_tests ns =
  List.concat_map
    (fun n ->
      let pa, pb = C.Workload.Scale.ladder n in
      let a, b = publics2 pa pb in
      [
        t (Printf.sprintf "scale_generate_ladder_%03d" n) (fun () ->
            ignore (C.Public_gen.generate pa));
        t (Printf.sprintf "scale_intersect_ladder_%03d" n) (fun () ->
            ignore (C.Ops.intersect a b));
        t (Printf.sprintf "scale_consistency_ladder_%03d" n) (fun () ->
            ignore (C.Consistency.consistent a b));
        t (Printf.sprintf "scale_difference_ladder_%03d" n) (fun () ->
            ignore (C.Ops.difference a b));
        t (Printf.sprintf "scale_minimize_ladder_%03d" n) (fun () ->
            ignore (C.Minimize.minimize a));
      ])
    ns

(* Subset construction, benchmarked directly (it was only ever timed
   inside difference/minimize rows before): a two-label suffix-matching
   NFA over the ladder alphabet whose determinization walks Θ(n)
   subsets of Θ(n) members each — the determinize-heavy axis the packed
   kernels target. [Afsa.copy] inside the closure makes every run pay
   its own index/pack build, so both kernel modes are timed cold. *)
let determinize_tests ns =
  List.map
    (fun n ->
      (* A subset-heavy NFA: every state steps to its successor on both
         labels and the start state also self-loops, so the reachable
         subsets are the saturating prefixes {0..k} — the construction
         merges Θ(n²) member rows into a linear DFA, which is exactly
         the row-merging work the packed kernel accelerates. *)
      let ping = "A#B#pingOp" and pong = "B#A#pongOp" in
      let chain =
        List.concat_map
          (fun i -> [ (i, ping, i + 1); (i, pong, i + 1) ])
          (List.init n (fun i -> i))
      in
      let nfa =
        C.Afsa.of_strings ~start:0 ~finals:[ n ]
          ~edges:((0, ping, 0) :: (0, pong, 0) :: chain)
          ()
      in
      t (Printf.sprintf "scale_determinize_ladder_%03d" n) (fun () ->
          ignore (C.Determinize.determinize (C.Afsa.copy nfa))))
    ns

(* ε-elimination, benchmarked directly: a chain interleaving ε-runs of
   length 7 with one proper step per run, so every closure spans a full
   run and the eliminate sweep merges it per state. *)
let eps_eliminate_tests ns =
  List.map
    (fun n ->
      let edges =
        List.init n (fun i ->
            if i mod 8 = 7 then
              (i, Printf.sprintf "A#B#step%dOp" (i / 8), i + 1)
            else (i, "", i + 1))
      in
      let a = C.Afsa.of_strings ~start:0 ~finals:[ n ] ~edges () in
      t (Printf.sprintf "scale_eps_eliminate_%03d" n) (fun () ->
          ignore (C.Epsilon.eliminate (C.Afsa.copy a))))
    ns

(* Annotation width: the menu family, conjunctions of n variables. *)
let menu_tests () =
  List.concat_map
    (fun n ->
      let pa, pb = C.Workload.Scale.menu n in
      let a, b = publics2 pa pb in
      [
        t (Printf.sprintf "scale_consistency_menu_%02d" n) (fun () ->
            ignore (C.Consistency.consistent a b));
      ])
    [ 4; 8; 16; 32 ]

(* Loopy protocols: the service-loop family (views + emptiness on
   cyclic automata). *)
let service_tests () =
  List.concat_map
    (fun n ->
      let pa, pb = C.Workload.Scale.service_loop n in
      let a, b = publics2 pa pb in
      [
        t (Printf.sprintf "scale_view_service_%02d" n) (fun () ->
            ignore (C.View.tau ~observer:"B" a));
        t (Printf.sprintf "scale_consistency_service_%02d" n) (fun () ->
            ignore (C.Consistency.consistent a b));
      ])
    [ 2; 4; 8; 16 ]

(* End-to-end propagation cost vs. process size: the originator appends
   one message to a ladder conversation; the partner must adapt. *)
let propagation_tests () =
  List.map
    (fun n ->
      let pa, pb = C.Workload.Scale.ladder n in
      let pa' =
        C.Change.Ops.apply_exn
          (C.Change.Ops.Insert_activity
             {
               path = [];
               pos = 2 * n;
               act = C.Bpel.Activity.invoke ~partner:"B" ~op:"extraOp";
             })
          pa
      in
      let a' = gen pa' in
      t (Printf.sprintf "scale_propagate_ladder_%03d" n) (fun () ->
          ignore
            (C.Propagate.Engine.run
               ~direction:C.Propagate.Engine.Additive ~a'
               ~partner_private:pb ())))
    [ 10; 25; 50; 100 ]

(* Party count: decentralized protocol over a k-spoke hub, plus the
   all-pairs consistency sweep over the same model — the latter fans
   its pair checks out over the domain pool, so it scales with
   [--jobs]/[CHOREV_DOMAINS]. *)
let protocol_tests () =
  List.concat_map
    (fun k ->
      let hub, spokes = C.Workload.Scale.hub k in
      let tchor = C.Choreography.Model.of_processes (hub :: spokes) in
      let changed =
        C.Change.Ops.apply_exn
          (C.Change.Ops.Insert_activity
             {
               path = [];
               pos = 0;
               act = C.Bpel.Activity.invoke ~partner:"P0" ~op:"noticeOp";
             })
          hub
      in
      [
        t (Printf.sprintf "scale_protocol_hub_%02d" k) (fun () ->
            ignore (C.Choreography.Protocol.run tchor ~owner:"HUB" ~changed));
        t (Printf.sprintf "scale_checkall_hub_%02d" k) (fun () ->
            ignore (C.Choreography.Consistency.check_all tchor));
      ])
    [ 2; 4; 8 ]
  @
  (* The same protocol driven asynchronously over a faulty network:
     event-queue + retransmission overhead of the simulator. *)
  let tproc =
    C.Choreography.Model.of_processes
      (List.map snd C.Scenario.Procurement.parties)
  in
  [
    t "scale_protocol_sim" (fun () ->
        ignore
          (C.Sim.run ~seed:7
             ~profile:(C.Sim.Fault.chaos ())
             tproc ~owner:"A"
             ~changed:C.Scenario.Procurement.accounting_cancel));
  ]

(* Cross-round incremental re-checking (DESIGN.md §10): [rounds]
   successive evolutions of one model, toggling between two variants of
   the owner's private process so every fingerprint recurs from round 3
   on — the steady state of an evolving choreography whose partners
   mostly don't change. The [_cached] rows thread one
   [Evolution.Cache] handle through all rounds (created inside the
   timed closure, so each timed run pays its own cold rounds); the
   [_nocache] rows run the same workload with [cache = false]. Both
   produce identical reports — the cache tests assert it — so the gap
   is pure reuse. *)
let evolution_rounds = 20

let evolution_rounds_tests () =
  let insert partner op p =
    C.Change.Ops.apply_exn
      (C.Change.Ops.Insert_activity
         { path = []; pos = 0; act = C.Bpel.Activity.invoke ~partner ~op })
      p
  in
  let families =
    [
      (let pa, pb = C.Workload.Scale.ladder 50 in
       ("ladder_050", pa, [ pb ], "B"));
      (let hub, spokes = C.Workload.Scale.hub 8 in
       ("hub_08", hub, spokes, "P0"));
    ]
  in
  List.concat_map
    (fun (fname, owner_p, partners, partner) ->
      let model = C.Choreography.Model.of_processes (owner_p :: partners) in
      let owner = C.Bpel.Process.party owner_p in
      let va = insert partner "toggleOpA" owner_p
      and vb = insert partner "toggleOpB" owner_p in
      let run_rounds ~cache =
        let config = { C.Choreography.Evolution.default with cache } in
        let handle =
          if cache then Some (C.Choreography.Evolution.Cache.create ())
          else None
        in
        for r = 1 to evolution_rounds do
          match
            C.Choreography.Evolution.run ~config ?cache:handle model ~owner
              ~changed:(if r mod 2 = 0 then va else vb)
          with
          | Ok _ -> ()
          | Error (`Unknown_party p) -> failwith ("unknown party " ^ p)
        done;
        handle
      in
      let cached_name = Printf.sprintf "scale_evolution_rounds_%s_cached" fname
      and nocache_name =
        Printf.sprintf "scale_evolution_rounds_%s_nocache" fname
      in
      [
        t cached_name (fun () ->
            match run_rounds ~cache:true with
            | None -> ()
            | Some handle ->
                let hit, miss, evict =
                  List.fold_left
                    (fun (h, m, e) (_, (s : C.Cache.Lru.stats)) ->
                      ( h + s.C.Cache.Lru.hits,
                        m + s.C.Cache.Lru.misses,
                        e + s.C.Cache.Lru.evictions ))
                    (0, 0, 0)
                    (C.Choreography.Evolution.Cache.stats handle)
                in
                record_counters cached_name
                  [
                    ("cache.hit", hit);
                    ("cache.miss", miss);
                    ("cache.evict", evict);
                  ]);
        t nocache_name (fun () -> ignore (run_rounds ~cache:false));
      ])
    families

(* Runtime exploration of the joint state space. *)
let runtime_tests () =
  let pub_buyer = Lazy.force pub_buyer in
  let pub_acc = Lazy.force pub_acc in
  let pub_log = Lazy.force pub_log in
  [
    t "scale_runtime_procurement" (fun () ->
        ignore
          (C.Runtime.Exec.explore
             (C.Runtime.Exec.make
                [ ("B", pub_buyer); ("A", pub_acc); ("L", pub_log) ])));
    t "scale_runtime_service_08" (fun () ->
        let pa, pb = C.Workload.Scale.service_loop 8 in
        ignore
          (C.Runtime.Exec.explore
             (C.Runtime.Exec.make [ ("A", gen pa); ("B", gen pb) ])));
  ]

(* Extension benchmarks: service discovery (Sec. 6 building block) and
   instance migration (Sec. 8 outlook). *)
let discovery_tests () =
  let pub_buyer = Lazy.force pub_buyer in
  let pub_acc = Lazy.force pub_acc in
  List.map
    (fun n ->
      let reg = C.Discovery.create () in
      for i = 0 to n - 1 do
        let a =
          C.Workload.Gen_afsa.random_protocol ~party_a:"A" ~party_b:"B"
            ~seed:i ~states:10 ()
        in
        C.Discovery.advertise reg
          ~name:(Printf.sprintf "svc%d" i)
          ~party:"A" a
      done;
      C.Discovery.advertise reg ~name:"the-accounting" ~party:"A"
        (C.View.tau ~observer:"B" pub_acc);
      t (Printf.sprintf "ext_discovery_query_%03d" n) (fun () ->
          ignore (C.Discovery.query reg ~party:"B" ~requester:pub_buyer)))
    [ 10; 50; 100 ]

let migration_tests () =
  let pub_buyer = Lazy.force pub_buyer in
  List.map
    (fun n ->
      let instances =
        List.init n (fun i ->
            C.Migration.Instance.sample pub_buyer
              ~id:(string_of_int i) ~seed:i ~max_len:8)
      in
      let new_pub = gen P.buyer_once in
      t (Printf.sprintf "ext_migration_check_%03d" n) (fun () ->
          ignore (C.Migration.Compliance.partition new_pub instances)))
    [ 10; 100; 1000 ]

(* The serving layer (DESIGN.md §11): the replay driver pushes a
   deterministic mixed script (register / evolve across the request
   classes / query / migrate-status) through the cycle scheduler and
   records throughput, shed rate and per-op tail latency. The big row
   is the scale claim: 10k mixed requests across 1k registered
   choreographies. *)
let serve_test ~name ~tenants ~requests ?(options = C.Serve.Server.default_options)
    () =
  let script =
    lazy (C.Serve.Driver.gen_script ~tenants ~requests ~seed:42 ())
  in
  t name (fun () ->
      let report = C.Serve.Driver.replay ~options (Lazy.force script) in
      record_counters name (C.Serve.Driver.report_counters report))

let serve_tests () =
  [
    serve_test ~name:"scale_serve_mixed_10k" ~tenants:1000 ~requests:10_000 ();
    (* over-committed queue: sheds deterministically — the row records
       the shed count next to the surviving throughput *)
    serve_test ~name:"scale_serve_shed" ~tenants:100 ~requests:2000
      ~options:
        {
          C.Serve.Server.default_options with
          batch = 64;
          queue_capacity = 16;
          headroom = Some 8;
        }
      ();
  ]

let serve_tests_quick () =
  [ serve_test ~name:"scale_serve_mixed_small" ~tenants:16 ~requests:128 () ]

(* The batched instance migrator (lib/migrate, DESIGN.md §13): each run
   rebuilds the seeded two-version population from its plan and pushes
   it through the tracking-shape schema change. The counters put the
   verdict mix, memo behaviour and fuel spend next to the timing row. *)
let migrate_scale_test ~name instances =
  let plan =
    {
      C.Migrate.Engine.publics = [ gen P.buyer_process; gen P.buyer_with_cancel ];
      target = gen P.buyer_once;
      pops =
        [
          {
            C.Migrate.Population.version = 1;
            count = instances / 2;
            seed = 17;
            max_len = 12;
            prefix = "a-";
          };
          {
            C.Migrate.Population.version = 2;
            count = instances - (instances / 2);
            seed = 1_000_017;
            max_len = 12;
            prefix = "b-";
          };
        ];
      batch_size = 1024;
      batch_fuel = None;
      memo_capacity = 65_536;
    }
  in
  t name (fun () ->
      let vs = C.Migrate.Engine.build_plan plan in
      let rep =
        C.Migrate.Engine.run
          ~options:(C.Migrate.Engine.options_of_plan plan)
          vs plan.C.Migrate.Engine.target
      in
      let migrated, finishing, stuck, fresh, hits, fuel =
        C.Migrate.Engine.totals rep
      in
      record_counters name
        [
          ("migrate.instances", rep.C.Migrate.Engine.total);
          ("migrate.migrated", migrated);
          ("migrate.finishing", finishing);
          ("migrate.stuck", stuck);
          ("migrate.fresh", fresh);
          ("migrate.hits", hits);
          ("migrate.fuel", fuel);
          ( "migrate.deferred",
            List.length (C.Migrate.Engine.deferred_batches rep) );
        ])

let migrate_scale_tests () =
  [
    migrate_scale_test ~name:"scale_migrate_10k" 10_000;
    migrate_scale_test ~name:"scale_migrate_100k" 100_000;
  ]

let migrate_scale_tests_quick () =
  [ migrate_scale_test ~name:"scale_migrate_small" 2_000 ]

(* The self-healing repair loop (lib/repair, DESIGN.md §14): the
   amendment search on its two canonical outcomes — a rogue insert it
   heals, a deletion it must declare unrepairable — the causal-cone
   computation on synthetic delivery histories, and the decentralized
   protocol with the amendment fallback as the only healer. Each row
   records the repair counters of its last run. *)
let repair_failed_check changed =
  let t = Lazy.force procurement in
  let old_pub = C.Choreography.Model.public t "A" in
  let new_pub = gen changed in
  let fw =
    C.Change.Classify.framework
      ~old_public:(C.View.tau ~observer:"B" old_pub)
      ~new_public:(C.View.tau ~observer:"B" new_pub)
      ()
  in
  let direction = C.Propagate.Engine.direction_of_framework fw in
  let config = { C.Config.default with C.Config.auto_apply = false } in
  let outcome =
    C.Propagate.Engine.run ~config ~direction ~a':new_pub
      ~partner_private:(C.Choreography.Model.private_ t "B") ()
  in
  (direction, outcome)

let repair_changes =
  lazy
    (let module A = C.Bpel.Activity in
     let t = Lazy.force procurement in
     let a = C.Choreography.Model.private_ t "A" in
     let path, n =
       C.Bpel.Activity.all_nodes (C.Bpel.Process.body a)
       |> List.find_map (fun (path, act) ->
              match act with
              | A.Sequence (_, items) -> Some (path, List.length items)
              | _ -> None)
       |> Option.get
     in
     (* first rogue-insert position that breaks consistency; tail
        appends can be benign under the annotated semantics *)
     let act = A.invoke ~partner:"B" ~op:"rogueT" in
     let rec breaking pos =
       if pos > n then failwith "no breaking rogue position"
       else
         let a' =
           C.Change.Ops.apply_exn
             (C.Change.Ops.Insert_activity { path; pos; act })
             a
         in
         if
           C.Choreography.Consistency.consistent
             (C.Choreography.Model.update t a')
         then breaking (pos + 1)
         else a'
     in
     let deleted =
       C.Change.Ops.apply_exn
         (C.Change.Ops.Delete_activity { path; index = 0 })
         a
     in
     (breaking 0, deleted))

let repair_amend_test ~name changed =
  t name (fun () ->
      let direction, outcome = repair_failed_check changed in
      let policy = (C.Config.with_repair C.Config.default).C.Config.repair in
      let t' = Lazy.force procurement in
      let r =
        C.Repair.Amend.search ~policy ~direction
          ~partner_private:(C.Choreography.Model.private_ t' "B")
          ~view_new:outcome.C.Propagate.Engine.analysis.C.Propagate.Engine.view_new
          ~delta:outcome.C.Propagate.Engine.analysis.C.Propagate.Engine.delta ()
      in
      record_counters name
        [
          ("repair.attempts", r.C.Repair.Amend.attempts);
          ("repair.fuel", r.C.Repair.Amend.fuel_spent);
          ("repair.repaired", if r.C.Repair.Amend.repaired = None then 0 else 1);
        ])

let repair_cone_test n =
  let name = Printf.sprintf "repair_rollback_cone_%d" n in
  (* a delivery chain salted with unrelated and stale traffic: every
     third edge is noise the BFS must skip *)
  let party i = Printf.sprintf "p%d" i in
  let edges =
    List.concat
      (List.init n (fun i ->
           let hop =
             { C.Repair.Rollback.at = (2 * i) + 2;
               src = party i;
               dst = party (i + 1);
             }
           in
           let noise =
             { C.Repair.Rollback.at = 1; src = party (i + 1); dst = party i }
           in
           [ noise; hop ]))
  in
  t name (fun () ->
      let cone = C.Repair.Rollback.cone ~origin:(party 0) ~edges in
      record_counters name [ ("repair.cone", List.length cone) ])

let repair_tests () =
  let rogue, deleted = Lazy.force repair_changes in
  let selfheal_config =
    { (C.Config.with_repair C.Config.default) with C.Config.auto_apply = false }
  in
  [
    repair_amend_test ~name:"repair_amend_success" rogue;
    repair_amend_test ~name:"repair_amend_exhausted" deleted;
    repair_cone_test 100;
    repair_cone_test 1_000;
    repair_cone_test 10_000;
    t "repair_protocol_selfheal" (fun () ->
        let t' = Lazy.force procurement in
        let r =
          C.Choreography.Protocol.run ~engine_config:selfheal_config
            (C.Choreography.Model.copy t')
            ~owner:"A" ~changed:rogue
        in
        record_counters "repair_protocol_selfheal"
          [
            ( "protocol.repairs",
              r.C.Choreography.Protocol.stats.C.Choreography.Protocol.repairs );
            ( "protocol.agreed",
              if r.C.Choreography.Protocol.agreed then 1 else 0 );
          ]);
    t "repair_protocol_withdraw" (fun () ->
        let t' = Lazy.force procurement in
        let r =
          C.Choreography.Protocol.run ~adapt:false ~rollback:true
            (C.Choreography.Model.copy t')
            ~owner:"A" ~changed:rogue
        in
        record_counters "repair_protocol_withdraw"
          [
            ( "protocol.aborts",
              r.C.Choreography.Protocol.stats.C.Choreography.Protocol.aborts );
            ( "protocol.rolled_back",
              if r.C.Choreography.Protocol.rolled_back then 1 else 0 );
          ]);
  ]

let repair_tests_quick () =
  let rogue, _ = Lazy.force repair_changes in
  [ repair_amend_test ~name:"repair_amend_success" rogue; repair_cone_test 100 ]

let global_tests () =
  let pub_acc = Lazy.force pub_acc in
  let procurement = Lazy.force procurement in
  [
    t "ext_global_diagnose_procurement" (fun () ->
        ignore (C.Choreography.Global.diagnose procurement));
    t "ext_global_conversation_automaton" (fun () ->
        ignore (C.Choreography.Global.conversation_automaton procurement));
    t "ext_skeleton_accounting" (fun () ->
        ignore (C.Skeleton.synthesize ~party:"A" pub_acc));
    t "ext_skeleton_buyer_stub" (fun () ->
        ignore
          (C.Skeleton.synthesize ~party:"B"
             (C.View.tau ~observer:"B" pub_acc)));
  ]

(* Ablations: cost (not just correctness) of the semantic decisions.
   [abl_minimize_reference] is the pre-optimization list/Hashtbl
   Hopcroft kept as the differential oracle — its gap to
   [abl_minimize_annotated] shows the refinable-partition win on the
   same input. *)
let ablation_tests () =
  let pub_buyer = Lazy.force pub_buyer in
  let view_cancel = Lazy.force view_cancel in
  let i_big =
    let pa, pb = C.Workload.Scale.service_loop 8 in
    C.Ops.intersect (gen pa) (gen pb)
  in
  let delta = C.Ops.difference view_cancel pub_buyer in
  [
    t "abl_emptiness_gfp" (fun () -> ignore (C.Emptiness.is_empty i_big));
    t "abl_emptiness_lfp" (fun () ->
        ignore (C.Ablation.is_empty_least_fixpoint i_big));
    t "abl_union_direct" (fun () -> ignore (C.Ops.union delta pub_buyer));
    t "abl_union_de_morgan" (fun () ->
        ignore (C.Ops.union_de_morgan delta pub_buyer));
    t "abl_minimize_annotated" (fun () ->
        ignore (C.Minimize.minimize pub_buyer));
    t "abl_minimize_oblivious" (fun () ->
        ignore (C.Ablation.minimize_ignoring_annotations pub_buyer));
    t "abl_minimize_reference" (fun () ->
        ignore (C.Ablation.minimize_ref pub_buyer));
  ]

(* Resource governance (PR 5): the same product hot path under (a) the
   ambient unlimited budget — the default everywhere, priced against
   BENCH_PR4 by --compare — (b) an explicit finite-fuel budget, which
   exercises the full tick slow path (decrement + trip check +
   amortized deadline poll), and (c) the adversarial blowup workload:
   a triple product of dense random publics that runs for seconds
   unbounded but returns `Exceeded within its deadline under guard. *)
let guard_tests () =
  let module B = C.Guard.Budget in
  let pa, pb = C.Workload.Scale.ladder 200 in
  let a, b = publics2 pa pb in
  let d1 = C.Workload.Gen_afsa.random ~seed:11 ~states:400 ~labels:4 ~density:30.0 ()
  and d2 = C.Workload.Gen_afsa.random ~seed:12 ~states:400 ~labels:4 ~density:30.0 ()
  and d3 = C.Workload.Gen_afsa.random ~seed:13 ~states:400 ~labels:4 ~density:30.0 () in
  [
    t "guard_overhead_unlimited_ladder_200" (fun () ->
        ignore (C.Ops.intersect ~budget:B.unlimited a b));
    t "guard_overhead_fueled_ladder_200" (fun () ->
        let budget = B.create ~fuel:max_int () in
        ignore (C.Ops.intersect ~budget a b));
    t "guard_blowup_deadline_50ms" (fun () ->
        let budget = B.create ~timeout_s:0.05 () in
        match
          B.run budget (fun () ->
              C.Ops.intersect ~budget (C.Ops.intersect ~budget d1 d2) d3)
        with
        | `Done _ -> failwith "blowup workload unexpectedly completed"
        | `Exceeded _ -> ());
  ]

(* ------------------------------ driver ----------------------------- *)

(* Pre-optimization measurements of the hot aFSA operations (seed
   commit, same machine and harness family), in ms/run. The run header
   reports the speedup of the current build against these so a
   regression is visible in every bench run. *)
let baseline_ms =
  [
    ("scale_intersect_ladder_200", 17.381);
    ("scale_consistency_ladder_200", 17.722);
    ("scale_difference_ladder_200", 197.962);
    ("scale_minimize_ladder_200", 1041.973);
    ("scale_intersect_ladder_400", 77.580);
  ]

(* Slow workloads starve Bechamel's quota-driven sampler: with only one
   or two samples inside the quota the OLS fit is degenerate and the
   report carries a nan r² (earlier reports had exactly that for the
   400-rung ladder rows). Any workload whose probe run exceeds this
   threshold is measured with a fixed number of timed runs instead and
   fitted the same way — cumulative time against run count — so every
   row carries a valid fit. *)
let slow_threshold_s = 0.025

let measure_fixed ~quota ~probe_s f =
  let runs =
    max 5 (min 30 (int_of_float (ceil (4.0 *. quota /. probe_s))))
  in
  let cum = Array.make runs 0.0 in
  let total = ref 0.0 in
  for i = 0 to runs - 1 do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    total := !total +. (Unix.gettimeofday () -. t0);
    cum.(i) <- !total
  done;
  (* OLS through the origin of cumulative time against run count — the
     same predictor Bechamel fits. *)
  let sxy = ref 0.0 and sxx = ref 0.0 in
  Array.iteri
    (fun i y ->
      let x = float_of_int (i + 1) in
      sxy := !sxy +. (x *. y);
      sxx := !sxx +. (x *. x))
    cum;
  let slope = !sxy /. !sxx in
  let mean_y = !total /. float_of_int runs in
  let ss_res = ref 0.0 and ss_tot = ref 0.0 in
  Array.iteri
    (fun i y ->
      let d = y -. (slope *. float_of_int (i + 1)) in
      ss_res := !ss_res +. (d *. d);
      let m = y -. mean_y in
      ss_tot := !ss_tot +. (m *. m))
    cum;
  let r2 = if !ss_tot > 0.0 then 1.0 -. (!ss_res /. !ss_tot) else 1.0 in
  (slope *. 1e9, r2)

let measure_bechamel ~cfg ~ols name f =
  let test = Test.make ~name (Staged.stage f) in
  let results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let analyzed = Analyze.all ols Instance.monotonic_clock results in
  let est = ref nan and r2 = ref nan in
  Hashtbl.iter
    (fun _ ols_result ->
      (match Analyze.OLS.estimates ols_result with
      | Some (e :: _) -> est := e
      | _ -> ());
      match Analyze.OLS.r_square ols_result with
      | Some r -> r2 := r
      | None -> ())
    analyzed;
  (!est, !r2)

(* Every committed row must carry a sound fit: estimates with r² below
   this floor are re-measured with batched fixed sampling (below)
   before being reported. *)
let r2_floor = 0.8

(* Batched fixed measurement for fast-but-noisy workloads: each sample
   is a batch of [batch] runs (sized to a few milliseconds, so timer
   granularity and scheduler preemption average out), fitted by the
   same cumulative OLS as [measure_fixed] with run count as the
   predictor. *)
let measure_batched ~batch f =
  let samples = 15 in
  let cum = Array.make samples 0.0 in
  let total = ref 0.0 in
  for i = 0 to samples - 1 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      ignore (f ())
    done;
    total := !total +. (Unix.gettimeofday () -. t0);
    cum.(i) <- !total
  done;
  let sxy = ref 0.0 and sxx = ref 0.0 in
  Array.iteri
    (fun i y ->
      let x = float_of_int ((i + 1) * batch) in
      sxy := !sxy +. (x *. y);
      sxx := !sxx +. (x *. x))
    cum;
  let slope = !sxy /. !sxx in
  let mean_y = !total /. float_of_int samples in
  let ss_res = ref 0.0 and ss_tot = ref 0.0 in
  Array.iteri
    (fun i y ->
      let d = y -. (slope *. float_of_int ((i + 1) * batch)) in
      ss_res := !ss_res +. (d *. d);
      let m = y -. mean_y in
      ss_tot := !ss_tot +. (m *. m))
    cum;
  let r2 = if !ss_tot > 0.0 then 1.0 -. (!ss_res /. !ss_tot) else 1.0 in
  (slope *. 1e9, r2)

(* One probe run warms the workload up and picks the measurement
   strategy; low-r² fits are retried with batched sampling, doubling
   the batch each attempt, and the best fit is kept. *)
let measure_one ~quota name f =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  let probe_s = Unix.gettimeofday () -. t0 in
  let est, r2 =
    if probe_s >= slow_threshold_s then measure_fixed ~quota ~probe_s f
    else measure_bechamel ~cfg ~ols name f
  in
  if r2 >= r2_floor then (est, r2)
  else begin
    (* nan r² (degenerate fit) also lands here *)
    let batch0 =
      max 1 (int_of_float (ceil (0.002 /. Float.max probe_s 1e-7)))
    in
    let best = ref (est, r2) in
    let batch = ref batch0 in
    let attempts = ref 0 in
    while
      (let _, r = !best in
       not (r >= r2_floor))
      && !attempts < 4
    do
      let est', r2' = measure_batched ~batch:!batch f in
      (let _, r = !best in
       if Float.is_finite r2' && (not (Float.is_finite r)) || r2' > r then
         best := (est', r2'));
      batch := !batch * 2;
      incr attempts
    done;
    !best
  end

(* Runs every test, prints the human-readable table, and returns the
   [(name, time_ns, r²)] rows in run order for the JSON report. *)
let run_and_report ~quota tests =
  Fmt.pr "@.%-34s %14s %10s %8s@." "benchmark" "time/run" "unit" "r²";
  Fmt.pr "%s@." (String.make 70 '-');
  List.map
    (fun (name, f) ->
      let est, r2 = measure_one ~quota name f in
      let time, unit =
        if est > 1e9 then (est /. 1e9, "s")
        else if est > 1e6 then (est /. 1e6, "ms")
        else if est > 1e3 then (est /. 1e3, "us")
        else (est, "ns")
      in
      Fmt.pr "%-34s %14.2f %10s %8.4f@." name time unit r2;
      (name, est, r2))
    tests

let print_speedups rows =
  let tracked =
    List.filter_map
      (fun (name, est, _) ->
        Option.map
          (fun base -> (name, base, est /. 1e6))
          (List.assoc_opt name baseline_ms))
      rows
  in
  if tracked <> [] then begin
    Fmt.pr "@.%-34s %12s %12s %9s@." "hot operation" "seed ms" "now ms"
      "speedup";
    Fmt.pr "%s@." (String.make 70 '-');
    List.iter
      (fun (name, base, now) ->
        Fmt.pr "%-34s %12.3f %12.3f %8.1fx@." name base now (base /. now))
      tracked
  end

(* --------------------------- comparison ---------------------------- *)

(* [--compare OLD.json]: parse a previous [--json] report and print a
   per-benchmark old/new/speedup table. The format is our own
   hand-rolled writer's (one benchmark object per line), so a
   line-oriented scan suffices — no JSON dependency. Rows whose old
   time is null (degenerate fit) are skipped. *)
let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let extract_string line pat =
  Option.bind (find_sub line pat) (fun start ->
      match String.index_from_opt line start '"' with
      | Some stop -> Some (String.sub line start (stop - start))
      | None -> None)

let extract_number line pat =
  Option.bind (find_sub line pat) (fun start ->
      let n = String.length line in
      let stop = ref start in
      while
        !stop < n
        &&
        match line.[!stop] with
        | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
        | _ -> false
      do
        incr stop
      done;
      if !stop = start then None (* "null" *)
      else float_of_string_opt (String.sub line start (!stop - start)))

let parse_report file =
  let ic = open_in file in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match extract_string line "\"name\": \"" with
       | None -> ()
       | Some name -> (
           match extract_number line "\"time_ns\": " with
           | Some time -> rows := (name, time) :: !rows
           | None -> ())
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

(* Apparent regressions on a busy single-core box are mostly sampler
   noise — scheduler preemption can only ever inflate an estimate, so a
   flagged row is re-measured (at most twice) and the better estimate
   kept. A real regression reproduces under retry; noise does not. *)
let confirm_regressions ~quota ~old_rows ~tests rows =
  let flagged rows =
    List.filter_map
      (fun (name, est, _) ->
        match List.assoc_opt name old_rows with
        | Some old
          when Float.is_finite old && Float.is_finite est && est > old *. 1.2
          ->
            Some name
        | _ -> None)
      rows
  in
  let retry rows =
    match flagged rows with
    | [] -> rows
    | names ->
        List.map
          (fun ((name, est, r2) as row) ->
            ignore r2;
            if not (List.mem name names) then row
            else
              match List.assoc_opt name tests with
              | None -> row
              | Some f ->
                  let est', r2' = measure_one ~quota name f in
                  if Float.is_finite est' && est' < est then begin
                    Fmt.pr "  re-measured %-32s %10.3f -> %.3f ms@." name
                      (est /. 1e6) (est' /. 1e6);
                    (name, est', r2')
                  end
                  else row)
          rows
  in
  match flagged rows with
  | [] -> rows
  | _ ->
      Fmt.pr
        "@.re-measuring apparent regressions (busy-machine noise check):@.";
      retry (retry rows)

(* Returns false when any shared benchmark regressed by more than 20%
   — the driver folds that into the exit code, so CI can gate on the
   comparison (or downgrade it to informational with [|| true]). *)
let print_comparison ~old_file old_rows rows =
  Fmt.pr "@.comparison against %s:@.@." old_file;
  Fmt.pr "%-34s %12s %12s %9s@." "benchmark" "old ms" "new ms" "speedup";
  Fmt.pr "%s@." (String.make 70 '-');
  let regressions = ref [] in
  List.iter
    (fun (name, est, _) ->
      match List.assoc_opt name old_rows with
      | Some old when Float.is_finite old && Float.is_finite est ->
          let ratio = old /. est in
          Fmt.pr "%-34s %12.3f %12.3f %8.2fx@." name (old /. 1e6) (est /. 1e6)
            ratio;
          if est > old *. 1.2 then regressions := (name, ratio) :: !regressions
      | Some _ | None -> ())
    rows;
  match !regressions with
  | [] ->
      Fmt.pr "@.no benchmark regressed by more than 20%%.@.";
      true
  | rs ->
      Fmt.pr "@.REGRESSIONS — more than 20%% slower than %s:@." old_file;
      List.iter
        (fun (name, ratio) -> Fmt.pr "  %-34s %8.2fx@." name ratio)
        (List.rev rs);
      false

(* ----------------------- counter collection ------------------------ *)

(* The [--profile] pass: after timing (which runs with instrumentation
   off, so the flags-off numbers stay honest), run every workload once
   more with metrics enabled and snapshot the non-zero counters per
   test. The spans of that single run feed a [Profile] aggregate (and a
   JSON-lines trace when [--trace FILE] is given). *)
let collect_counters ~trace_file tests =
  let prof = C.Obs.Profile.create () in
  let psink = C.Obs.Profile.sink prof in
  let sink, cleanup =
    match trace_file with
    | None -> (psink, fun () -> ())
    | Some file ->
        let oc = open_out file in
        ( C.Obs.Sink.tee psink (C.Obs.Sink.jsonl oc),
          fun () ->
            close_out_noerr oc;
            Fmt.pr "wrote span trace to %s@." file )
  in
  C.Obs.Metrics.enabled := true;
  let per_test =
    List.map
      (fun (name, f) ->
        C.Obs.Metrics.reset ();
        (* wrap the run in an allocation measurement so the gc.* words
           and collection counts land next to the kernel counters *)
        let (), d = C.Obs.Alloc.measure (fun () -> C.Obs.with_sink sink f) in
        C.Obs.Alloc.record d;
        (name, C.Obs.Metrics.nonzero_counters ()))
      tests
  in
  C.Obs.Metrics.enabled := false;
  cleanup ();
  Fmt.pr "@.per-phase wall clock over one profiled run of every benchmark:@.";
  Fmt.pr "%a@." C.Obs.Profile.pp prof;
  per_test

(* Hand-rolled JSON writer (no dependency): one row per benchmark with
   the Bechamel OLS estimate, per-op counters when the [--profile] pass
   ran, plus run metadata. *)
let write_json ~quick ~counters ~file rows =
  let buf = Buffer.create 4096 in
  let escape s =
    String.to_seq s
    |> Seq.fold_left
         (fun acc c ->
           acc
           ^
           match c with
           | '"' -> "\\\""
           | '\\' -> "\\\\"
           | '\n' -> "\\n"
           | c when Char.code c < 0x20 -> Printf.sprintf "\\u%04x" (Char.code c)
           | c -> String.make 1 c)
         ""
  in
  let tm = Unix.gmtime (Unix.time ()) in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"chorev-bench/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"date\": \"%04d-%02d-%02dT%02d:%02d:%02dZ\",\n"
       (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
       tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec);
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if quick then "quick" else "full"));
  Buffer.add_string buf
    (Printf.sprintf "  \"jobs\": %d,\n" (C.Parallel.Pool.default_size ()));
  Buffer.add_string buf "  \"unit\": \"ns/run\",\n";
  Buffer.add_string buf "  \"benchmarks\": [\n";
  (* Bechamel can return nan estimates (e.g. r² on a degenerate fit);
     JSON has no nan, so emit null. *)
  let num fmt v = if Float.is_finite v then Printf.sprintf fmt v else "null" in
  let counters_field name =
    let profiled =
      Option.value ~default:[] (Option.bind counters (List.assoc_opt name))
    in
    let extra = Option.value ~default:[] (List.assoc_opt name !extra_counters) in
    (* closure-recorded counters win over the profile pass's *)
    let merged =
      extra @ List.filter (fun (c, _) -> not (List.mem_assoc c extra)) profiled
    in
    match merged with
    | [] -> ""
    | cs ->
        Printf.sprintf ", \"counters\": {%s}"
          (String.concat ", "
             (List.map
                (fun (c, v) -> Printf.sprintf "\"%s\": %d" (escape c) v)
                cs))
  in
  List.iteri
    (fun i (name, est, r2) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"time_ns\": %s, \"r2\": %s%s}%s\n"
           (escape name) (num "%.2f" est) (num "%.6f" r2)
           (counters_field name)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "@.wrote %d benchmark estimates to %s@." (List.length rows) file

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let () =
  let json_file = ref None in
  let quick = ref false in
  let profile = ref false in
  let trace_file = ref None in
  let compare_file = ref None in
  let only = ref None in
  let usage () =
    prerr_endline
      "usage: main.exe [--quick] [--json FILE] [--compare OLD.json]\n\
      \       [--jobs N] [--only SUBSTRING] [--profile] [--trace FILE]";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse rest
    | [ "--json" ] ->
        prerr_endline "--json requires a FILE argument";
        exit 2
    | "--compare" :: file :: rest ->
        compare_file := Some file;
        parse rest
    | [ "--compare" ] ->
        prerr_endline "--compare requires a FILE argument";
        exit 2
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n ->
            C.Parallel.Pool.set_default_size n;
            parse rest
        | None ->
            prerr_endline "--jobs requires an integer argument";
            exit 2)
    | [ "--jobs" ] ->
        prerr_endline "--jobs requires an integer argument";
        exit 2
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--only" :: s :: rest ->
        only := Some s;
        parse rest
    | [ "--only" ] ->
        prerr_endline "--only requires a SUBSTRING argument";
        exit 2
    | "--profile" :: rest ->
        profile := true;
        parse rest
    | "--trace" :: file :: rest ->
        trace_file := Some file;
        profile := true;
        parse rest
    | [ "--trace" ] ->
        prerr_endline "--trace requires a FILE argument";
        exit 2
    | arg :: _ ->
        Printf.eprintf "unknown argument: %s\n" arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  Fmt.pr "==========================================================@.";
  Fmt.pr " chorev benchmark harness — paper artifact reproduction@.";
  Fmt.pr "==========================================================@.@.";
  let all_ok = C.Scenario.Report.print_all () in
  Fmt.pr "@.==========================================================@.";
  Fmt.pr " timings (Bechamel, OLS estimate per run)%s — %d domain%s@."
    (if !quick then " — quick mode" else "")
    (C.Parallel.Pool.default_size ())
    (if C.Parallel.Pool.default_size () = 1 then "" else "s");
  Fmt.pr "==========================================================@.";
  let tests =
    if !quick then
      figure_tests () @ ladder_tests [ 10; 50 ] @ evolution_rounds_tests ()
      @ serve_tests_quick ()
      @ migrate_scale_tests_quick ()
      @ repair_tests_quick ()
    else
      figure_tests ()
      @ ladder_tests [ 10; 50; 100; 200; 400 ]
      @ determinize_tests [ 50; 100; 200; 400 ]
      @ eps_eliminate_tests [ 50; 100; 200; 400 ]
      @ menu_tests () @ service_tests () @ propagation_tests ()
      @ protocol_tests () @ runtime_tests () @ discovery_tests ()
      @ migration_tests () @ global_tests () @ ablation_tests ()
      @ guard_tests ()
      @ evolution_rounds_tests ()
      @ serve_tests ()
      @ migrate_scale_tests ()
      @ repair_tests ()
  in
  let tests =
    match !only with
    | None -> tests
    | Some s -> List.filter (fun (name, _) -> contains_sub name s) tests
  in
  let quota = if !quick then 0.05 else 0.25 in
  let rows = run_and_report ~quota tests in
  print_speedups rows;
  let rows, compare_ok =
    match !compare_file with
    | None -> (rows, true)
    | Some file ->
        let old_rows = parse_report file in
        let rows = confirm_regressions ~quota ~old_rows ~tests rows in
        (rows, print_comparison ~old_file:file old_rows rows)
  in
  let counters =
    if !profile then Some (collect_counters ~trace_file:!trace_file tests)
    else None
  in
  Option.iter
    (fun file -> write_json ~quick:!quick ~counters ~file rows)
    !json_file;
  Fmt.pr "@.reproduction status: %s@."
    (if all_ok then "ALL ARTIFACTS REPRODUCED"
     else "MISMATCHES PRESENT — see report above");
  if not compare_ok then
    Fmt.pr "comparison status: REGRESSIONS PRESENT — see table above@.";
  exit (if all_ok && compare_ok then 0 else 1)
