(* Benchmark harness: one Bechamel benchmark per figure/table of the
   paper (regenerating exactly the artifact the figure shows), plus the
   scalability sweeps the paper lacks in DESIGN.md section 4, the scale rows.

   Before timing anything the harness prints the reproduction report —
   paper claim vs. measured outcome for every figure — so one run of
   `dune exec bench/main.exe` documents both correctness and cost. *)

open Bechamel
open Toolkit
module C = Chorev
module P = C.Scenario.Procurement

let gen = C.Public_gen.public

(* Pre-built inputs shared by the benchmark closures (building them is
   itself benchmarked where relevant). *)
let pub_buyer = gen P.buyer_process
let pub_acc = gen P.accounting_process
let pub_log = gen P.logistics_process
let pub_cancel = gen P.accounting_cancel
let pub_once = gen P.accounting_once
let view_cancel = C.View.tau ~observer:"B" pub_cancel
let view_once = C.View.tau ~observer:"B" pub_once
let procurement = C.Choreography.Model.of_processes (List.map snd P.parties)

(* Tests are kept as [(name, closure)] pairs rather than opaque
   [Test.t] values so the counter-collection pass ([--profile]) can run
   each workload once more outside Bechamel, with metrics enabled. *)
let t name f = (name, f)

(* ------------------------ per-figure benchmarks -------------------- *)

let figure_tests =
  [
    t "fig01_overview" (fun () ->
        ignore (C.Choreography.Model.of_processes (List.map snd P.parties)));
    t "fig02_accounting_private" (fun () ->
        ignore (C.Bpel.Validate.check P.accounting_process));
    t "fig03_buyer_private" (fun () ->
        ignore (C.Bpel.Validate.check P.buyer_process));
    t "fig04_pipeline" (fun () ->
        ignore
          (C.Choreography.Evolution.run procurement ~owner:"A"
             ~changed:P.accounting_cancel));
    t "fig05_intersection" (fun () ->
        ignore (C.Emptiness.is_empty (C.Scenario.Fig5.intersection ())));
    t "fig06_buyer_public" (fun () ->
        ignore (C.Public_gen.generate P.buyer_process));
    t "fig07_accounting_public" (fun () ->
        ignore (C.Public_gen.generate P.accounting_process));
    t "fig08_views" (fun () ->
        ignore (C.View.tau ~observer:"B" pub_acc);
        ignore (C.View.tau ~observer:"L" pub_acc));
    t "fig09_invariant_change" (fun () -> ignore (gen P.accounting_order2));
    t "fig10_invariant_check" (fun () ->
        ignore
          (C.Consistency.consistent
             (C.View.tau ~observer:"B" (gen P.accounting_order2))
             pub_buyer));
    t "fig11_variant_additive" (fun () -> ignore (gen P.accounting_cancel));
    t "fig12_variant_check" (fun () ->
        ignore (C.Emptiness.is_empty (C.Ops.intersect view_cancel pub_buyer)));
    t "fig13_propagation_delta" (fun () ->
        let delta = C.Ops.difference view_cancel pub_buyer in
        ignore (C.Ops.union delta pub_buyer));
    t "fig14_private_adaptation" (fun () ->
        ignore
          (C.Propagate.Engine.run ~direction:C.Propagate.Engine.Additive
             ~a':pub_cancel ~partner_private:P.buyer_process ()));
    t "fig15_variant_subtractive" (fun () -> ignore (gen P.accounting_once));
    t "fig16_subtractive_check" (fun () ->
        ignore (C.Emptiness.is_empty (C.Ops.intersect view_once pub_buyer)));
    t "fig17_subtractive_delta" (fun () ->
        let removed = C.Ops.difference pub_buyer view_once in
        ignore (C.Ops.difference pub_buyer removed));
    t "fig18_subtractive_adaptation" (fun () ->
        ignore
          (C.Propagate.Engine.run
             ~direction:C.Propagate.Engine.Subtractive ~a':pub_once
             ~partner_private:P.buyer_process ()));
  ]

(* -------------------------- scale sweeps --------------------------- *)

(* Process size: the ladder family, Θ(n) public states. *)
let ladder_tests ns =
  List.concat_map
    (fun n ->
      let pa, pb = C.Workload.Scale.ladder n in
      let a = gen pa and b = gen pb in
      [
        t (Printf.sprintf "scale_generate_ladder_%03d" n) (fun () ->
            ignore (C.Public_gen.generate pa));
        t (Printf.sprintf "scale_intersect_ladder_%03d" n) (fun () ->
            ignore (C.Ops.intersect a b));
        t (Printf.sprintf "scale_consistency_ladder_%03d" n) (fun () ->
            ignore (C.Consistency.consistent a b));
        t (Printf.sprintf "scale_difference_ladder_%03d" n) (fun () ->
            ignore (C.Ops.difference a b));
        t (Printf.sprintf "scale_minimize_ladder_%03d" n) (fun () ->
            ignore (C.Minimize.minimize a));
      ])
    ns

(* Annotation width: the menu family, conjunctions of n variables. *)
let menu_tests =
  List.concat_map
    (fun n ->
      let pa, pb = C.Workload.Scale.menu n in
      let a = gen pa and b = gen pb in
      [
        t (Printf.sprintf "scale_consistency_menu_%02d" n) (fun () ->
            ignore (C.Consistency.consistent a b));
      ])
    [ 4; 8; 16; 32 ]

(* Loopy protocols: the service-loop family (views + emptiness on
   cyclic automata). *)
let service_tests =
  List.concat_map
    (fun n ->
      let pa, pb = C.Workload.Scale.service_loop n in
      let a = gen pa and b = gen pb in
      [
        t (Printf.sprintf "scale_view_service_%02d" n) (fun () ->
            ignore (C.View.tau ~observer:"B" a));
        t (Printf.sprintf "scale_consistency_service_%02d" n) (fun () ->
            ignore (C.Consistency.consistent a b));
      ])
    [ 2; 4; 8; 16 ]

(* End-to-end propagation cost vs. process size: the originator appends
   one message to a ladder conversation; the partner must adapt. *)
let propagation_tests =
  List.map
    (fun n ->
      let pa, pb = C.Workload.Scale.ladder n in
      let pa' =
        C.Change.Ops.apply_exn
          (C.Change.Ops.Insert_activity
             {
               path = [];
               pos = 2 * n;
               act = C.Bpel.Activity.invoke ~partner:"B" ~op:"extraOp";
             })
          pa
      in
      let a' = gen pa' in
      t (Printf.sprintf "scale_propagate_ladder_%03d" n) (fun () ->
          ignore
            (C.Propagate.Engine.run
               ~direction:C.Propagate.Engine.Additive ~a'
               ~partner_private:pb ())))
    [ 10; 25; 50; 100 ]

(* Party count: decentralized protocol over a k-spoke hub. *)
let protocol_tests =
  List.map
    (fun k ->
      let hub, spokes = C.Workload.Scale.hub k in
      let tchor = C.Choreography.Model.of_processes (hub :: spokes) in
      let changed =
        C.Change.Ops.apply_exn
          (C.Change.Ops.Insert_activity
             {
               path = [];
               pos = 0;
               act = C.Bpel.Activity.invoke ~partner:"P0" ~op:"noticeOp";
             })
          hub
      in
      t (Printf.sprintf "scale_protocol_hub_%02d" k) (fun () ->
          ignore (C.Choreography.Protocol.run tchor ~owner:"HUB" ~changed)))
    [ 2; 4; 8 ]

(* Runtime exploration of the joint state space. *)
let runtime_tests =
  [
    t "scale_runtime_procurement" (fun () ->
        ignore
          (C.Runtime.Exec.explore
             (C.Runtime.Exec.make
                [ ("B", pub_buyer); ("A", pub_acc); ("L", pub_log) ])));
    t "scale_runtime_service_08" (fun () ->
        let pa, pb = C.Workload.Scale.service_loop 8 in
        ignore
          (C.Runtime.Exec.explore
             (C.Runtime.Exec.make [ ("A", gen pa); ("B", gen pb) ])));
  ]

(* Extension benchmarks: service discovery (Sec. 6 building block) and
   instance migration (Sec. 8 outlook). *)
let discovery_tests =
  List.map
    (fun n ->
      let reg = C.Discovery.create () in
      for i = 0 to n - 1 do
        let a =
          C.Workload.Gen_afsa.random_protocol ~party_a:"A" ~party_b:"B"
            ~seed:i ~states:10 ()
        in
        C.Discovery.advertise reg
          ~name:(Printf.sprintf "svc%d" i)
          ~party:"A" a
      done;
      C.Discovery.advertise reg ~name:"the-accounting" ~party:"A"
        (C.View.tau ~observer:"B" pub_acc);
      t (Printf.sprintf "ext_discovery_query_%03d" n) (fun () ->
          ignore (C.Discovery.query reg ~party:"B" ~requester:pub_buyer)))
    [ 10; 50; 100 ]

let migration_tests =
  List.map
    (fun n ->
      let instances =
        List.init n (fun i ->
            C.Migration.Instance.sample pub_buyer
              ~id:(string_of_int i) ~seed:i ~max_len:8)
      in
      let new_pub = gen P.buyer_once in
      t (Printf.sprintf "ext_migration_check_%03d" n) (fun () ->
          ignore (C.Migration.Compliance.partition new_pub instances)))
    [ 10; 100; 1000 ]

let global_tests =
  [
    t "ext_global_diagnose_procurement" (fun () ->
        ignore (C.Choreography.Global.diagnose procurement));
    t "ext_global_conversation_automaton" (fun () ->
        ignore (C.Choreography.Global.conversation_automaton procurement));
    t "ext_skeleton_accounting" (fun () ->
        ignore (C.Skeleton.synthesize ~party:"A" pub_acc));
    t "ext_skeleton_buyer_stub" (fun () ->
        ignore
          (C.Skeleton.synthesize ~party:"B"
             (C.View.tau ~observer:"B" pub_acc)));
  ]

(* Ablations: cost (not just correctness) of the semantic decisions. *)
let ablation_tests =
  let i_big =
    let pa, pb = C.Workload.Scale.service_loop 8 in
    C.Ops.intersect (gen pa) (gen pb)
  in
  let delta = C.Ops.difference view_cancel pub_buyer in
  [
    t "abl_emptiness_gfp" (fun () -> ignore (C.Emptiness.is_empty i_big));
    t "abl_emptiness_lfp" (fun () ->
        ignore (C.Ablation.is_empty_least_fixpoint i_big));
    t "abl_union_direct" (fun () -> ignore (C.Ops.union delta pub_buyer));
    t "abl_union_de_morgan" (fun () ->
        ignore (C.Ops.union_de_morgan delta pub_buyer));
    t "abl_minimize_annotated" (fun () ->
        ignore (C.Minimize.minimize pub_buyer));
    t "abl_minimize_oblivious" (fun () ->
        ignore (C.Ablation.minimize_ignoring_annotations pub_buyer));
  ]

(* ------------------------------ driver ----------------------------- *)

(* Pre-optimization measurements of the hot aFSA operations (seed
   commit, same machine and harness family), in ms/run. The run header
   reports the speedup of the current build against these so a
   regression is visible in every bench run. *)
let baseline_ms =
  [
    ("scale_intersect_ladder_200", 17.381);
    ("scale_consistency_ladder_200", 17.722);
    ("scale_difference_ladder_200", 197.962);
    ("scale_minimize_ladder_200", 1041.973);
    ("scale_intersect_ladder_400", 77.580);
  ]

(* Runs every test, prints the human-readable table, and returns the
   [(name, time_ns, r²)] rows in run order for the JSON report. *)
let run_and_report ~quota tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let raw =
    List.map
      (fun (name, f) ->
        let test = Test.make ~name (Staged.stage f) in
        let results = Benchmark.all cfg instances test in
        (test, results))
      tests
  in
  Fmt.pr "@.%-34s %14s %10s %8s@." "benchmark" "time/run" "unit" "r²";
  Fmt.pr "%s@." (String.make 70 '-');
  let rows = ref [] in
  List.iter
    (fun (_, results) ->
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> r
            | None -> nan
          in
          rows := (name, est, r2) :: !rows;
          let time, unit =
            if est > 1e9 then (est /. 1e9, "s")
            else if est > 1e6 then (est /. 1e6, "ms")
            else if est > 1e3 then (est /. 1e3, "us")
            else (est, "ns")
          in
          Fmt.pr "%-34s %14.2f %10s %8.4f@." name time unit r2)
        analyzed)
    raw;
  List.rev !rows

let print_speedups rows =
  let tracked =
    List.filter_map
      (fun (name, est, _) ->
        Option.map
          (fun base -> (name, base, est /. 1e6))
          (List.assoc_opt name baseline_ms))
      rows
  in
  if tracked <> [] then begin
    Fmt.pr "@.%-34s %12s %12s %9s@." "hot operation" "seed ms" "now ms"
      "speedup";
    Fmt.pr "%s@." (String.make 70 '-');
    List.iter
      (fun (name, base, now) ->
        Fmt.pr "%-34s %12.3f %12.3f %8.1fx@." name base now (base /. now))
      tracked
  end

(* ----------------------- counter collection ------------------------ *)

(* The [--profile] pass: after timing (which runs with instrumentation
   off, so the flags-off numbers stay honest), run every workload once
   more with metrics enabled and snapshot the non-zero counters per
   test. The spans of that single run feed a [Profile] aggregate (and a
   JSON-lines trace when [--trace FILE] is given). *)
let collect_counters ~trace_file tests =
  let prof = C.Obs.Profile.create () in
  let psink = C.Obs.Profile.sink prof in
  let sink, cleanup =
    match trace_file with
    | None -> (psink, fun () -> ())
    | Some file ->
        let oc = open_out file in
        ( C.Obs.Sink.tee psink (C.Obs.Sink.jsonl oc),
          fun () ->
            close_out_noerr oc;
            Fmt.pr "wrote span trace to %s@." file )
  in
  C.Obs.Metrics.enabled := true;
  let per_test =
    List.map
      (fun (name, f) ->
        C.Obs.Metrics.reset ();
        C.Obs.with_sink sink f;
        (name, C.Obs.Metrics.nonzero_counters ()))
      tests
  in
  C.Obs.Metrics.enabled := false;
  cleanup ();
  Fmt.pr "@.per-phase wall clock over one profiled run of every benchmark:@.";
  Fmt.pr "%a@." C.Obs.Profile.pp prof;
  per_test

(* Hand-rolled JSON writer (no dependency): one row per benchmark with
   the Bechamel OLS estimate, per-op counters when the [--profile] pass
   ran, plus run metadata. *)
let write_json ~quick ~counters ~file rows =
  let buf = Buffer.create 4096 in
  let escape s =
    String.to_seq s
    |> Seq.fold_left
         (fun acc c ->
           acc
           ^
           match c with
           | '"' -> "\\\""
           | '\\' -> "\\\\"
           | '\n' -> "\\n"
           | c when Char.code c < 0x20 -> Printf.sprintf "\\u%04x" (Char.code c)
           | c -> String.make 1 c)
         ""
  in
  let tm = Unix.gmtime (Unix.time ()) in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"chorev-bench/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"date\": \"%04d-%02d-%02dT%02d:%02d:%02dZ\",\n"
       (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
       tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec);
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if quick then "quick" else "full"));
  Buffer.add_string buf "  \"unit\": \"ns/run\",\n";
  Buffer.add_string buf "  \"benchmarks\": [\n";
  (* Bechamel can return nan estimates (e.g. r² on a degenerate fit);
     JSON has no nan, so emit null. *)
  let num fmt v = if Float.is_finite v then Printf.sprintf fmt v else "null" in
  let counters_field name =
    match Option.bind counters (List.assoc_opt name) with
    | None | Some [] -> ""
    | Some cs ->
        Printf.sprintf ", \"counters\": {%s}"
          (String.concat ", "
             (List.map
                (fun (c, v) -> Printf.sprintf "\"%s\": %d" (escape c) v)
                cs))
  in
  List.iteri
    (fun i (name, est, r2) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"time_ns\": %s, \"r2\": %s%s}%s\n"
           (escape name) (num "%.2f" est) (num "%.6f" r2)
           (counters_field name)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "@.wrote %d benchmark estimates to %s@." (List.length rows) file

let () =
  let json_file = ref None in
  let quick = ref false in
  let profile = ref false in
  let trace_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse rest
    | [ "--json" ] ->
        prerr_endline "--json requires a FILE argument";
        exit 2
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--profile" :: rest ->
        profile := true;
        parse rest
    | "--trace" :: file :: rest ->
        trace_file := Some file;
        profile := true;
        parse rest
    | [ "--trace" ] ->
        prerr_endline "--trace requires a FILE argument";
        exit 2
    | arg :: _ ->
        Printf.eprintf
          "unknown argument: %s\n\
           usage: main.exe [--quick] [--json FILE] [--profile] [--trace FILE]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Fmt.pr "==========================================================@.";
  Fmt.pr " chorev benchmark harness — paper artifact reproduction@.";
  Fmt.pr "==========================================================@.@.";
  let all_ok = C.Scenario.Report.print_all () in
  Fmt.pr "@.==========================================================@.";
  Fmt.pr " timings (Bechamel, OLS estimate per run)%s@."
    (if !quick then " — quick mode" else "");
  Fmt.pr "==========================================================@.";
  let tests =
    if !quick then figure_tests @ ladder_tests [ 10; 50 ]
    else
      figure_tests
      @ ladder_tests [ 10; 50; 100; 200; 400 ]
      @ menu_tests @ service_tests @ propagation_tests @ protocol_tests
      @ runtime_tests @ discovery_tests @ migration_tests @ global_tests
      @ ablation_tests
  in
  let rows = run_and_report ~quota:(if !quick then 0.05 else 0.25) tests in
  print_speedups rows;
  let counters =
    if !profile then Some (collect_counters ~trace_file:!trace_file tests)
    else None
  in
  Option.iter
    (fun file -> write_json ~quick:!quick ~counters ~file rows)
    !json_file;
  Fmt.pr "@.reproduction status: %s@."
    (if all_ok then "ALL ARTIFACTS REPRODUCED" else "MISMATCHES PRESENT — see report above");
  exit (if all_ok then 0 else 1)
