(** Classification of changes (Sec. 4 of the paper).

    Changes are classified along two dimensions:

    - the *change framework* (Def. 5): a change [δ : A → A'] is
      {e additive} iff [A' \ A ≠ ∅] and {e subtractive} iff
      [A \ A' ≠ ∅] — both can hold for one change;
    - the *change propagation* dimension (Def. 6), relative to one
      partner's public process [B]: δ is {e invariant} iff [A' ∩ B ≠ ∅]
      (no propagation needed) and {e variant} iff [A' ∩ B = ∅].

    Both dimensions are computed on the *bilateral views*: the paper's
    Sec. 3.4 requires that processes compared for consistency represent
    the bilateral message exchanges only. Differences (Def. 5) are
    plain-language tests; variance (Def. 6) uses the annotated
    emptiness test. *)

module Afsa = Chorev_afsa.Afsa

type framework = {
  additive : bool;
  subtractive : bool;
  added : Afsa.t;  (** A' \ A — the added message sequences *)
  removed : Afsa.t;  (** A \ A' — the removed message sequences *)
}

type propagation = Invariant | Variant [@@deriving eq, show]

type verdict = {
  partner : string;
  framework : framework;
  propagation : propagation;
}

(** Def. 5 on two versions of (a view of) a public process. With
    [cache] the two differences go through the fingerprint-keyed memo
    tables (a no-op under a limited ambient budget — see
    [Chorev_cache.Memo]). *)
let framework ?(cache = false) ~old_public ~new_public () =
  let diff =
    if cache then Chorev_cache.Memo.difference
    else fun a b -> Chorev_afsa.Ops.difference a b
  in
  let added = diff new_public old_public in
  let removed = diff old_public new_public in
  {
    additive = not (Chorev_afsa.Emptiness.is_empty_plain added);
    subtractive = not (Chorev_afsa.Emptiness.is_empty_plain removed);
    added;
    removed;
  }

(** Def. 6 against one partner. *)
let propagation ?(cache = false) ~new_public ~partner_public () =
  let consistent =
    if cache then Chorev_cache.Memo.consistent
    else fun a b -> Chorev_afsa.Consistency.consistent a b
  in
  if consistent new_public partner_public then Invariant else Variant

let c_runs = Chorev_obs.Metrics.counter "change.classify.runs"
let c_variant = Chorev_obs.Metrics.counter "change.classify.variant"

(** Full classification of a change of [owner]'s public process against
    partner [partner] whose public process is [partner_public]. The
    views [τ_partner] are taken internally. *)
let classify ?(cache = false) ~owner:_ ~partner ~old_public ~new_public
    ~partner_public () =
  Chorev_obs.Metrics.incr c_runs;
  Chorev_obs.Obs.span "classify"
    ~attrs:[ ("partner", Chorev_obs.Sink.Str partner) ]
  @@ fun () ->
  let tau =
    if cache then Chorev_cache.Memo.tau
    else fun ~observer a -> Chorev_afsa.View.tau ~observer a
  in
  let v_old = tau ~observer:partner old_public in
  let v_new = tau ~observer:partner new_public in
  let verdict =
    {
      partner;
      framework = framework ~cache ~old_public:v_old ~new_public:v_new ();
      propagation = propagation ~cache ~new_public:v_new ~partner_public ();
    }
  in
  if verdict.propagation = Variant then Chorev_obs.Metrics.incr c_variant;
  verdict

(** Does the change touch the public level at all? (If the public views
    are language- and annotation-equal for every partner, the change is
    local to the private process — the top of the paper's Fig. 4
    flowchart.) *)
let public_unchanged ?(cache = false) ~old_public ~new_public () =
  if cache && Chorev_cache.Memo.active () then
    (* [equal_annotated] is minimize-both-and-compare; with the memo
       the minimized forms are interned and carry cached digests, so a
       recurring comparison is two table hits and a string equality *)
    Chorev_afsa.Fingerprint.equal
      (Chorev_cache.Memo.minimize old_public)
      (Chorev_cache.Memo.minimize new_public)
  else Chorev_afsa.Equiv.equal_annotated old_public new_public

let requires_propagation v = v.propagation = Variant

let pp_verdict ppf v =
  Fmt.pf ppf "partner %s: %s%s, %s" v.partner
    (if v.framework.additive then "additive" else "")
    (if v.framework.subtractive then
       (if v.framework.additive then "+subtractive" else "subtractive")
     else if not v.framework.additive then "neutral"
     else "")
    (match v.propagation with
    | Invariant -> "invariant (no propagation needed)"
    | Variant -> "variant (propagation required)")
