(** Classification of changes (Sec. 4): additive/subtractive along the
    change-framework dimension (Def. 5, via aFSA difference) and
    variant/invariant along the propagation dimension (Def. 6, via
    annotated intersection emptiness against a partner). Both are
    computed on bilateral views. *)

module Afsa = Chorev_afsa.Afsa

type framework = {
  additive : bool;
  subtractive : bool;
  added : Afsa.t;  (** A′ ∖ A *)
  removed : Afsa.t;  (** A ∖ A′ *)
}

type propagation = Invariant | Variant

val equal_propagation : propagation -> propagation -> bool
val pp_propagation : Format.formatter -> propagation -> unit
val show_propagation : propagation -> string

type verdict = {
  partner : string;
  framework : framework;
  propagation : propagation;
}

val framework :
  ?cache:bool -> old_public:Afsa.t -> new_public:Afsa.t -> unit -> framework

val propagation :
  ?cache:bool -> new_public:Afsa.t -> partner_public:Afsa.t -> unit -> propagation

val classify :
  ?cache:bool ->
  owner:string ->
  partner:string ->
  old_public:Afsa.t ->
  new_public:Afsa.t ->
  partner_public:Afsa.t ->
  unit ->
  verdict
(** Takes the partner's views of both versions internally. With
    [cache] (default [false]) the views, differences and the
    consistency test go through [Chorev_cache.Memo]'s
    fingerprint-keyed tables — identical results, memoized; the memo
    layer stands down by itself under a limited ambient budget. *)

val public_unchanged :
  ?cache:bool -> old_public:Afsa.t -> new_public:Afsa.t -> unit -> bool
(** Language- and annotation-equal: the change is local, nothing to
    propagate (top of the paper's Fig. 4). With [cache] the minimized
    forms come from the memo tables and the comparison is by
    fingerprint — same verdict, O(1) when recurring. *)

val requires_propagation : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit
