(** {1 chorev — controlled evolution of process choreographies}

    An OCaml implementation of Rinderle, Wombacher & Reichert,
    {e On the Controlled Evolution of Process Choreographies}
    (ICDE 2006), together with every substrate the paper builds on.

    The modules below re-export the whole public API; see README.md for
    a guided tour and DESIGN.md for the architecture.

    {2 Formal substrate}
    - {!Formula} — the annotation logic (Def. 1)
    - {!Label}, {!Sym}, {!Afsa} — annotated finite state automata
      (Def. 2)
    - {!Ops} — intersection / difference / union / complement
      (Defs. 3, 4)
    - {!Emptiness}, {!Consistency} — the annotated emptiness test and
      bilateral consistency (Sec. 3.2)
    - {!View} — bilateral views τ_P (Sec. 3.4)

    {2 Process substrate}
    - {!Bpel} — block-structured private processes (Sec. 2)
    - {!Public_gen}, {!Table} — public-process generation and the
      mapping table (Sec. 3.3)

    {2 The paper's contribution}
    - {!Change} — change operations and their classification (Sec. 4)
    - {!Propagate} — propagation of variant changes (Sec. 5)
    - {!Choreography} — the multi-party model, the Fig. 4 pipeline, and
      the decentralized consistency protocol (Sec. 6)

    {2 Validation and evaluation substrate}
    - {!Runtime} — a synchronous execution engine (deadlock-freeness)
    - {!Workload} — synthetic generators for benchmarks and property
      tests
    - {!Scenario} — the paper's procurement example (Figs. 1–18)

    {2 Incremental re-checking}
    - {!Fingerprint}, {!Cache} — structural fingerprints, hash-consed
      interning and fingerprint-keyed memoization of the algebra
      (DESIGN.md §10)

    {2 Robustness}
    - {!Guard} — fuel/deadline budgets, cooperative cancellation and
      graceful-degradation markers for the algebra hot loops
      (DESIGN.md §9)
    - {!Journal} — checksummed write-ahead journal and the resumable
      crash-safe evolution driver (DESIGN.md §9)
    - {!Repair} — self-healing evolution: amendment search over
      counterexample witnesses, and causal rollback of half-propagated
      changes (DESIGN.md §14)

    {2 Observability}
    - {!Obs} — trace spans, metrics counters and profiling sinks for
      the whole pipeline (DESIGN.md §7) *)

(* Formal substrate *)
module Formula = struct
  include Chorev_formula.Syntax
  module Eval = Chorev_formula.Eval
  module Simplify = Chorev_formula.Simplify
  module Sat = Chorev_formula.Sat
  module Pp = Chorev_formula.Pp
  module Parse = Chorev_formula.Parse
end

module Label = Chorev_afsa.Label
module Sym = Chorev_afsa.Sym
module Afsa = struct
  include Chorev_afsa.Afsa
  module Pp = Chorev_afsa.Pp
end
module Epsilon = Chorev_afsa.Epsilon
module Determinize = Chorev_afsa.Determinize
module Complete = Chorev_afsa.Complete
module Minimize = Chorev_afsa.Minimize
module Ops = Chorev_afsa.Ops
module Emptiness = Chorev_afsa.Emptiness
module Guarded = Chorev_afsa.Guarded
module Ablation = Chorev_afsa.Ablation
module Consistency = Chorev_afsa.Consistency
module View = Chorev_afsa.View
module Trace = Chorev_afsa.Trace
module Fingerprint = Chorev_afsa.Fingerprint
module Equiv = Chorev_afsa.Equiv
module Dot = Chorev_afsa.Dot
module Serialize = Chorev_afsa.Serialize

(* Process substrate *)
module Bpel = struct
  module Types = Chorev_bpel.Types
  module Activity = Chorev_bpel.Activity
  module Process = Chorev_bpel.Process
  module Validate = Chorev_bpel.Validate
  module Edit = Chorev_bpel.Edit
  module Pp = Chorev_bpel.Pp
  module Sexp = Chorev_bpel.Sexp
end

module Table = Chorev_mapping.Table
module Public_gen = Chorev_mapping.Public_gen
module Firsts = Chorev_mapping.Firsts
module Skeleton = Chorev_mapping.Skeleton

(* The paper's contribution *)
module Change = struct
  module Ops = Chorev_change.Ops
  module Classify = Chorev_change.Classify
end

module Propagate = struct
  module Localize = Chorev_propagate.Localize
  module Suggest = Chorev_propagate.Suggest
  module Engine = Chorev_propagate.Engine
end

module Choreography = struct
  module Model = Chorev_choreography.Model
  module Consistency = Chorev_choreography.Consistency
  module Evolution = Chorev_choreography.Evolution
  module Node = Chorev_choreography.Node
  module Protocol = Chorev_choreography.Protocol
  module Global = Chorev_choreography.Global
end

(* The one configuration record (engine, pipeline, journal driver and
   per-request server overrides are all the same type) *)
module Config = Chorev_config.Config

(* Resource governance: budgets, cancellation, degrade markers *)
module Guard = struct
  module Budget = Chorev_guard.Budget
  module Degrade = Chorev_guard.Degrade
end

(* Crash-safe evolution: write-ahead journal + resumable driver *)
module Journal = struct
  include Chorev_journal.Journal
  module Evolve = Chorev_journal.Evolve
  module Dir = Chorev_journal.Dir
end

(* The durable substrate the journals sit on (JSON, WAL, fsync'd dirs) *)
module Wal = struct
  module Json = Chorev_wal.Json
  module Wal = Chorev_wal.Wal
  module Dir = Chorev_wal.Dir
end

(* Self-healing repair: amendment search + causal rollback
   (DESIGN.md §14) *)
module Repair = struct
  module Amend = Chorev_repair.Amend
  module Rollback = Chorev_repair.Rollback
end

(* Distributed simulation of the Sec. 6 protocol over faulty links *)
module Sim = struct
  include Chorev_sim.Sim
  module Fault = Chorev_sim.Fault
  module Eventq = Chorev_sim.Eventq
  module Soak = Chorev_sim.Soak
end

(* Validation and evaluation substrate *)
module Runtime = struct
  module Exec = Chorev_runtime.Exec
  module Conformance = Chorev_runtime.Conformance
end

(* Extensions following the paper's Sec. 6 building blocks and Sec. 8
   outlook *)
module Migration = struct
  module Instance = Chorev_migration.Instance
  module Compliance = Chorev_migration.Compliance
  module Versions = Chorev_migration.Versions
end

module Discovery = Chorev_discovery.Registry

(* Incremental re-checking: interning, memoization, dirty-region
   sessions (DESIGN.md §10) *)
module Cache = struct
  module Lru = Chorev_cache.Lru
  module Intern = Chorev_cache.Intern
  module Memo = Chorev_cache.Memo
  module Session = Chorev_cache.Session
end

module Workload = struct
  module Gen_afsa = Chorev_workload.Gen_afsa
  module Gen_process = Chorev_workload.Gen_process
  module Gen_change = Chorev_workload.Gen_change
  module Scale = Chorev_workload.Scale
end

module Scenario = struct
  module Procurement = Chorev_scenario.Procurement
  module Fig5 = Chorev_scenario.Fig5
  module Report = Chorev_scenario.Report
end

(* Batched instance migration at scale (chorev migrate; DESIGN.md §13) *)
module Migrate = struct
  module Population = Chorev_migrate.Population
  module Engine = Chorev_migrate.Migrate
end

(* The multi-tenant evolution service (chorev serve; DESIGN.md §11) *)
module Serve = struct
  module Wire = Chorev_serve.Wire
  module Tenant = Chorev_serve.Tenant
  module Server = Chorev_serve.Server
  module Driver = Chorev_serve.Driver
end

(* Observability *)
module Obs = struct
  include Chorev_obs.Obs
  module Sink = Chorev_obs.Sink
  module Metrics = Chorev_obs.Metrics
  module Profile = Chorev_obs.Profile
  module Alloc = Chorev_obs.Alloc
end

(* Multicore fan-out *)
module Parallel = struct
  module Pool = Chorev_parallel.Pool
end
