(** The amendment half of the self-healing repair loop.

    When a propagation step leaves a partner inconsistent, the engine's
    difference automaton is a machine-checkable counterexample: its
    shortest word is a concrete message sequence the partner cannot
    follow (additive) or must stop producing (subtractive). The search
    here turns that witness into candidate edits of the partner's
    private process — smallest edit first — and re-verifies each
    candidate through the same consistency decision procedure the
    engine uses, under one {!Chorev_guard.Budget} minted per search so
    the whole loop is fuel-deterministic and degrades to
    "unrepairable" instead of hanging. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
module Budget = Chorev_guard.Budget
module Degrade = Chorev_guard.Degrade
module Obs = Chorev_obs.Obs
module Metrics = Chorev_obs.Metrics
module Ops = Chorev_change.Ops
module Suggest = Chorev_propagate.Suggest
module Engine = Chorev_propagate.Engine
open Chorev_bpel

type candidate = {
  ops : Ops.t list;  (** applied in order; failure skips the candidate *)
  cost : int;  (** number of primitive edits *)
  description : string;
}

type result = {
  repaired : (Process.t * Afsa.t) option;
      (** amended private process and its regenerated public process,
          when a candidate restored pairwise consistency *)
  attempts : int;  (** candidates actually verified *)
  fuel_spent : int;
  witness : Label.t list option;
      (** the counterexample trace the candidates were anchored on *)
  chosen : string option;  (** description of the winning candidate *)
  degraded : Degrade.t list;
      (** non-empty iff the search ran out of budget before exhausting
          the candidate queue *)
}

let c_attempts = Metrics.counter "repair.attempts"
let c_repaired = Metrics.counter "repair.repaired"

let str s = Chorev_obs.Sink.Str s
let int i = Chorev_obs.Sink.Int i

(* ---------------------- candidate generation --------------------- *)

(* Witness labels in first-occurrence order, deduplicated. *)
let distinct_labels w =
  List.fold_left
    (fun acc l -> if List.exists (Label.equal l) acc then acc else l :: acc)
    [] w
  |> List.rev

(* The first (preorder-topmost) sequence of the body — the anchor for
   positional insertions. *)
let first_sequence body =
  Activity.all_nodes body
  |> List.find_map (fun (path, a) ->
         match a with
         | Activity.Sequence (_, items) -> Some (path, List.length items)
         | _ -> None)

(* The communication handling label [l] first, as (path, kind). *)
let comm_for_label (p : Process.t) (l : Label.t) =
  Activity.communications (Process.body p)
  |> List.find_opt (fun (_, kind, c) ->
         List.exists (Label.equal l) (Process.labels_of_comm p kind c))

let lstr = Label.to_string

(* Candidate edits for one missing label (additive direction): insert
   the matching receive/invoke at every position of the topmost
   sequence, then relax an existing receive into a pick (or extend a
   pick / add a switch branch) so the new message becomes an
   alternative. All cost-1. *)
let additive_singles (p : Process.t) (l : Label.t) : candidate list =
  let me = Process.party p in
  let body = Process.body p in
  let new_act, verb =
    if String.equal l.receiver me then
      (Activity.Receive { Activity.partner = l.sender; op = l.msg },
       "insert a receive for")
    else if String.equal l.sender me then
      (Activity.Invoke { Activity.partner = l.receiver; op = l.msg },
       "insert an invoke of")
    else (Activity.Empty, "")
  in
  if new_act = Activity.Empty then []
  else
    let inserts =
      match first_sequence body with
      | None -> []
      | Some (path, n) ->
          List.init (n + 1) (fun pos ->
              {
                ops = [ Ops.Insert_activity { path; pos; act = new_act } ];
                cost = 1;
                description =
                  Fmt.str "%s %s at position %d" verb (lstr l) pos;
              })
    in
    let relaxations =
      if String.equal l.receiver me then
        let arm = ({ Activity.partner = l.sender; op = l.msg }, Activity.Empty) in
        Activity.all_nodes body
        |> List.filter_map (fun (path, a) ->
               match a with
               | Activity.Receive _ ->
                   Some
                     {
                       ops =
                         [
                           Ops.Receive_to_pick
                             { path; name = "choice:" ^ l.msg; arms = [ arm ] };
                         ];
                       cost = 1;
                       description =
                         Fmt.str "relax the receive at %a into a pick also \
                                  accepting %s"
                           Ops.pp_path path (lstr l);
                     }
               | Activity.Pick _ ->
                   Some
                     {
                       ops = [ Ops.Add_pick_arm { path; arm } ];
                       cost = 1;
                       description =
                         Fmt.str "add an onMessage arm for %s to the pick at %a"
                           (lstr l) Ops.pp_path path;
                     }
               | _ -> None)
      else
        Activity.all_nodes body
        |> List.filter_map (fun (path, a) ->
               match a with
               | Activity.Switch _ ->
                   Some
                     {
                       ops =
                         [
                           Ops.Add_switch_branch
                             {
                               path;
                               branch =
                                 Activity.branch ~cond:("may send " ^ l.msg)
                                   (Activity.invoke ~partner:l.receiver
                                      ~op:l.msg);
                             };
                         ];
                       cost = 1;
                       description =
                         Fmt.str "add a switch branch sending %s at %a"
                           (lstr l) Ops.pp_path path;
                     }
               | _ -> None)
    in
    inserts @ relaxations

(* Candidate edits for one forbidden label (subtractive direction):
   delete the communication that produces it, or unroll the loop that
   repeats it. All cost-1. *)
let subtractive_singles (p : Process.t) (l : Label.t) : candidate list =
  let body = Process.body p in
  let deletions =
    match comm_for_label p l with
    | Some (path, _, _) when path <> [] -> (
        let parent = List.filteri (fun i _ -> i < List.length path - 1) path in
        let index = List.nth path (List.length path - 1) in
        match Activity.find_at parent body with
        | Some (Activity.Sequence _) ->
            [
              {
                ops = [ Ops.Delete_activity { path = parent; index } ];
                cost = 1;
                description =
                  Fmt.str "delete the communication for %s at %a" (lstr l)
                    Ops.pp_path path;
              };
            ]
        | _ ->
            [
              {
                ops = [ Ops.Replace_activity { path; by = Activity.Empty } ];
                cost = 1;
                description =
                  Fmt.str "blank out the communication for %s at %a" (lstr l)
                    Ops.pp_path path;
              };
            ])
    | _ -> []
  in
  let unrolls =
    Activity.all_nodes body
    |> List.filter_map (fun (path, a) ->
           match a with
           | Activity.While _ ->
               Some
                 {
                   ops =
                     [
                       Ops.Unroll_loop_once
                         {
                           path;
                           switch_name = "iterate once?";
                           suffix = Activity.Empty;
                         };
                     ];
                   cost = 1;
                   description =
                     Fmt.str "unroll the loop at %a once" Ops.pp_path path;
                 }
           | _ -> None)
  in
  deletions @ unrolls

(* All ordered pairs of distinct singles (cost 2). The second edit's
   paths are interpreted against the once-edited process; pairs whose
   ops no longer apply just fail and are skipped by the search. *)
let pairs singles =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if a == b then None
          else
            Some
              {
                ops = a.ops @ b.ops;
                cost = a.cost + b.cost;
                description = a.description ^ " + " ^ b.description;
              })
        singles)
    singles

(** The bounded candidate queue for one witness, smallest edit first:
    every single-edit candidate (in witness-label order), then — when
    the policy allows a second edit — every ordered pair, the whole
    queue truncated at [max_candidates]. Deterministic: depends only on
    the process, the witness and the policy. *)
let candidates ~(policy : Chorev_config.Config.repair)
    ~(direction : Engine.direction) (p : Process.t) (w : Label.t list) :
    candidate list =
  let per_label =
    match direction with
    | Engine.Additive -> additive_singles p
    | Engine.Subtractive -> subtractive_singles p
  in
  let singles = List.concat_map per_label (distinct_labels w) in
  let all =
    if policy.max_edits >= 2 then singles @ pairs singles else singles
  in
  List.filteri (fun i _ -> i < policy.max_candidates) all

(* --------------------------- the search --------------------------- *)

let apply_ops ops p =
  List.fold_left (fun acc op -> Result.bind acc (Ops.apply op)) (Ok p) ops

(** Run the amendment search for one failed bilateral check.

    [view_new] is what the partner must be consistent with (τ_P(A')),
    [delta] the difference automaton the witness is extracted from.
    The search budget is minted here from [policy.repair_budget] — the
    caller invokes [search] inside the pool task, so fuel-only budgets
    trip identically at every pool size. *)
let search ?(cache = true) ?cancel ~(policy : Chorev_config.Config.repair)
    ~direction ~partner_private ~view_new ~delta () : result =
  let me = Process.party partner_private in
  Obs.span "repair.amend" ~attrs:[ ("partner", str me) ] @@ fun () ->
  let witness = Suggest.witness delta in
  let b = Budget.of_spec ?cancel policy.repair_budget in
  let attempts = ref 0 in
  let searched () =
    match witness with
    | None -> None
    | Some w ->
        let queue = candidates ~policy ~direction partner_private w in
        Obs.span "repair.queue"
          ~attrs:[ ("candidates", int (List.length queue)) ] (fun () -> ());
        List.find_map
          (fun c ->
            Budget.tick b;
            incr attempts;
            Metrics.incr c_attempts;
            match apply_ops c.ops partner_private with
            | Error _ -> None
            | Ok p' ->
                let pub' =
                  if cache && Budget.is_unlimited b then
                    Chorev_cache.Memo.public p'
                  else Chorev_mapping.Public_gen.public p'
                in
                let ok =
                  if cache && Budget.is_unlimited b then
                    Chorev_cache.Memo.consistent pub' view_new
                  else
                    match
                      Chorev_afsa.Consistency.decide ~budget:b pub' view_new
                    with
                    | `Consistent -> true
                    | `Inconsistent | `Unknown _ -> false
                in
                if ok then Some (p', pub', c.description) else None)
          queue
  in
  let finish ?(degraded = []) found =
    match found with
    | Some (p', pub', description) ->
        Metrics.incr c_repaired;
        {
          repaired = Some (p', pub');
          attempts = !attempts;
          fuel_spent = Budget.spent b;
          witness;
          chosen = Some description;
          degraded;
        }
    | None ->
        {
          repaired = None;
          attempts = !attempts;
          fuel_spent = Budget.spent b;
          witness;
          chosen = None;
          degraded;
        }
  in
  match Budget.run b searched with
  | `Done found -> finish found
  | `Exceeded info ->
      finish None
        ~degraded:[ Degrade.Aborted_step { step = "repair"; info } ]

let repaired_process r = Option.map fst r.repaired

let pp_result ppf r =
  Fmt.pf ppf "@[<v>repair: %s after %d attempt(s)%a%a%a@]"
    (match r.repaired with Some _ -> "amended" | None -> "unrepairable")
    r.attempts
    (fun ppf -> function
      | Some c -> Fmt.pf ppf ",@ chose: %s" c
      | None -> ())
    r.chosen
    (fun ppf -> function
      | Some w -> Fmt.pf ppf ",@ witness: %a" Suggest.pp_witness w
      | None -> ())
    r.witness
    (fun ppf -> function
      | [] -> ()
      | ds -> Fmt.pf ppf ", degraded: %a" Degrade.pp_list ds)
    r.degraded
