(** The causal-rollback half of the self-healing repair loop.

    When amendment fails mid-protocol, the applied change must not stay
    half-propagated: every party the change causally reached is rolled
    back to its pre-change snapshot, every party it did not reach is
    left untouched. The causal cone is computed from the delivery
    history (who processed an announcement from whom, and when); the
    restore itself is journal-backed through {!Chorev_wal.Wal}, so a
    crash in the middle resumes byte-identically.

    This module is deliberately below the choreography layer: parties
    are names, snapshots are sexp strings, and the actual restore is a
    caller-provided callback — the simulator and the CLI plug their own
    model types in. *)

module Wal = Chorev_wal.Wal
module Json = Chorev_wal.Json
module Dir = Chorev_wal.Dir
module Obs = Chorev_obs.Obs
module Metrics = Chorev_obs.Metrics

let c_rolled_back = Metrics.counter "repair.rolled_back"

let str s = Chorev_obs.Sink.Str s
let int i = Chorev_obs.Sink.Int i

(* ------------------------- the causal cone ------------------------ *)

type edge = {
  at : int;  (** delivery tick *)
  src : string;
  dst : string;
}

(** Which parties the change reached: time-ordered BFS over the
    delivery edges. A party joins the cone when it processes a message
    from a party already in the cone — so an edge only infects its
    destination if its source was contaminated at an earlier (or equal)
    tick. Returns the origin first, then parties in discovery order
    (deterministic: edges are sorted by [(at, src, dst)] before the
    sweep). *)
let cone ~origin ~edges =
  let edges =
    List.sort
      (fun a b ->
        match compare a.at b.at with
        | 0 -> (
            match String.compare a.src b.src with
            | 0 -> String.compare a.dst b.dst
            | c -> c)
        | c -> c)
      edges
  in
  let infected = Hashtbl.create 8 in
  Hashtbl.replace infected origin ();
  let order = ref [ origin ] in
  List.iter
    (fun e ->
      if Hashtbl.mem infected e.src && not (Hashtbl.mem infected e.dst) then begin
        Hashtbl.replace infected e.dst ();
        order := e.dst :: !order
      end)
    edges;
  List.rev !order

(* --------------------------- the journal -------------------------- *)

type meta = {
  owner : string;  (** the change originator (first element of the cone) *)
  parties : string list;  (** the cone, in restore order *)
  prelude : string;
      (** rendered output of the interrupted run up to the rollback —
          replayed verbatim on resume so an interrupted-and-resumed run
          prints byte-identically to an uninterrupted one *)
}

type record = Start | Restored of string | Sealed

let record_to_json = function
  | Start -> Json.Obj [ ("t", Json.Str "start") ]
  | Restored party ->
      Json.Obj [ ("t", Json.Str "restored"); ("party", Json.Str party) ]
  | Sealed -> Json.Obj [ ("t", Json.Str "sealed") ]

let record_of_json j =
  match Json.member "t" j with
  | Some (Json.Str "start") -> Ok Start
  | Some (Json.Str "restored") -> (
      match Json.member "party" j with
      | Some (Json.Str p) -> Ok (Restored p)
      | _ -> Error "restored record without party")
  | Some (Json.Str "sealed") -> Ok Sealed
  | _ -> Error "unknown rollback record"

let journal_path dir = Filename.concat dir "journal.jsonl"
let meta_path dir = Filename.concat dir "meta.json"
let pre_path dir party = Filename.concat (Filename.concat dir "pre") (Dir.sanitize party ^ ".sexp")
let state_path dir party =
  Filename.concat (Filename.concat dir "state") (Dir.sanitize party ^ ".sexp")

let meta_to_json m =
  Json.Obj
    [
      ("kind", Json.Str "rollback");
      ("owner", Json.Str m.owner);
      ("parties", Json.Arr (List.map (fun p -> Json.Str p) m.parties));
      ("prelude", Json.Str m.prelude);
    ]

let meta_of_json j =
  match
    (Json.member "kind" j, Json.member "owner" j, Json.member "parties" j,
     Json.member "prelude" j)
  with
  | Some (Json.Str "rollback"), Some (Json.Str owner), Some (Json.Arr ps),
    Some (Json.Str prelude) ->
      let parties =
        List.filter_map (function Json.Str p -> Some p | _ -> None) ps
      in
      if List.length parties <> List.length ps then
        Error "non-string party in rollback meta"
      else Ok { owner; parties; prelude }
  | _ -> Error "not a rollback meta.json"

(** Does [dir] hold a rollback journal (as opposed to an evolution
    one)? Dispatched on by [chorev resume]. *)
let journal_exists ~dir =
  Sys.file_exists (journal_path dir)
  && Sys.file_exists (meta_path dir)
  &&
  match Json.of_string (Dir.read_file (meta_path dir)) with
  | Ok j -> (
      match Json.member "kind" j with
      | Some (Json.Str "rollback") -> true
      | _ -> false)
  | Error _ -> false

exception Simulated_crash of int
(** Raised by {!restore_all} after the [crash_after]-th committed
    restore — the test hook for kill-during-rollback. *)

type writer = {
  dir : string;
  meta : meta;
  pre : (string * string) list;  (** cone party -> pre-change sexp *)
  wal : Wal.writer;
}

(** Open a fresh rollback journal: write [pre/<party>.sexp] for every
    cone party, [state/<party>.sexp] for {e every} party of the
    protocol (so a resuming process can rebuild the full model), then
    [meta.json], then the [start] record — all durable before [start]
    returns. *)
let start ~dir ~owner ~cone:parties ~prelude ~pre ~state =
  Dir.mkdir_p (Filename.concat dir "pre");
  Dir.mkdir_p (Filename.concat dir "state");
  List.iter (fun (party, sexp) -> Dir.write_atomic (pre_path dir party) sexp) pre;
  List.iter
    (fun (party, sexp) -> Dir.write_atomic (state_path dir party) sexp)
    state;
  let meta = { owner; parties; prelude } in
  Dir.write_atomic (meta_path dir) (Json.to_string (meta_to_json meta));
  let wal = Wal.open_append ~path:(journal_path dir) in
  Wal.append wal (record_to_json Start);
  { dir; meta; pre; wal }

let close w = Wal.close w.wal

(** Restore every cone party through [restore], committing each one
    with a journal record before moving on. [already] names parties
    whose restore records are already on disk (the resume path): they
    are {e re-restored} (the in-memory effect of a pre-crash restore
    died with the process; restoring is an idempotent overwrite) but
    not re-journalled. [crash_after n] raises {!Simulated_crash} once
    [n] restores have been committed {e by this call}. Appends the
    [sealed] record when the whole cone is done. *)
let restore_all ?crash_after ?(already = []) w ~restore =
  Obs.span "repair.rollback"
    ~attrs:
      [ ("owner", str w.meta.owner); ("cone", int (List.length w.meta.parties)) ]
  @@ fun () ->
  let committed = ref 0 in
  List.iter
    (fun party ->
      let pre =
        match List.assoc_opt party w.pre with
        | Some s -> s
        | None -> Dir.read_file (pre_path w.dir party)
      in
      restore ~party ~pre;
      if not (List.mem party already) then begin
        Wal.append w.wal (record_to_json (Restored party));
        Metrics.incr c_rolled_back;
        incr committed;
        match crash_after with
        | Some n when !committed >= n -> raise (Simulated_crash n)
        | _ -> ()
      end)
    w.meta.parties;
  Wal.append w.wal (record_to_json Sealed)

(** Journal-less variant for embedded drivers (the simulator without a
    [--rollback-journal] directory): restore each [(party, pre)] pair
    under the same span and counter, with no durability. *)
let restore_inline ~owner ~cone:pairs ~restore =
  Obs.span "repair.rollback"
    ~attrs:[ ("owner", str owner); ("cone", int (List.length pairs)) ]
  @@ fun () ->
  List.iter
    (fun (party, pre) ->
      restore ~party ~pre;
      Metrics.incr c_rolled_back)
    pairs

(* ---------------------------- recovery ---------------------------- *)

type loaded = {
  l_meta : meta;
  l_pre : (string * string) list;  (** cone party -> pre-change sexp *)
  l_state : (string * string) list;  (** every party -> post-run sexp *)
  restored : string list;  (** committed restores, journal order *)
  sealed : bool;
  l_valid_bytes : int;
}

let load ~dir =
  match Json.of_string (Dir.read_file (meta_path dir)) with
  | exception Sys_error e -> Error e
  | Error e -> Error ("meta.json: " ^ e)
  | Ok j -> (
      match meta_of_json j with
      | Error e -> Error e
      | Ok meta -> (
          match Wal.read ~path:(journal_path dir) ~decode:record_of_json with
          | Error e -> Error e
          | Ok { Wal.records; torn = _; valid_bytes } ->
              let restored =
                List.filter_map
                  (function Restored p -> Some p | _ -> None)
                  records
              in
              let sealed = List.exists (function Sealed -> true | _ -> false) records in
              let read_of path_of parties =
                List.map (fun p -> (p, Dir.read_file (path_of dir p))) parties
              in
              let state_parties =
                Sys.readdir (Filename.concat dir "state")
                |> Array.to_list |> List.sort String.compare
                |> List.filter_map (fun f ->
                       Filename.chop_suffix_opt ~suffix:".sexp" f)
              in
              (* state files are keyed by sanitized name; cone parties
                 we can map back through meta, the rest only matter as
                 (sanitized-name, sexp) payloads for the caller *)
              let unsanitized p =
                match
                  List.find_opt
                    (fun q -> String.equal (Dir.sanitize q) p)
                    meta.parties
                with
                | Some q -> q
                | None -> p
              in
              let l_state =
                List.map
                  (fun f ->
                    ( unsanitized f,
                      Dir.read_file
                        (Filename.concat (Filename.concat dir "state")
                           (f ^ ".sexp")) ))
                  state_parties
              in
              Ok
                {
                  l_meta = meta;
                  l_pre = read_of pre_path meta.parties;
                  l_state;
                  restored;
                  sealed;
                  l_valid_bytes = valid_bytes;
                }))

(** Resume an interrupted rollback: re-open the journal at its last
    valid byte, re-apply {e every} cone restore through [restore]
    (idempotent overwrite — the in-memory effect of pre-crash restores
    did not survive), journal only the missing ones, and seal. Returns
    the loaded journal so the caller can rebuild the surrounding model
    (from [l_state] overlaid with [l_pre]) and re-print the prelude.
    No-op (beyond the load) when the journal is already sealed. *)
let resume ~dir ~restore =
  match load ~dir with
  | Error e -> Error e
  | Ok l ->
      if l.sealed then begin
        (* finished before the crash: re-apply nothing, the state and
           pre files already describe the final model *)
        List.iter
          (fun party ->
            match List.assoc_opt party l.l_pre with
            | Some pre -> restore ~party ~pre
            | None -> ())
          l.l_meta.parties;
        Ok l
      end
      else begin
        let w =
          {
            dir;
            meta = l.l_meta;
            pre = l.l_pre;
            wal = Wal.reopen ~path:(journal_path dir) ~valid_bytes:l.l_valid_bytes;
          }
        in
        restore_all ~already:l.restored w ~restore;
        close w;
        Ok l
      end
