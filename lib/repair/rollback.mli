(** Causal rollback of a half-propagated change (DESIGN.md §14).

    When amendment fails mid-protocol, every party the change causally
    reached is restored to its pre-change snapshot and every other
    party is left untouched. The cone is computed from the delivery
    history; the restore is journal-backed (one fsynced record per
    committed restore, torn-tail recovery), so a crash in the middle
    resumes byte-identically via {!resume}.

    Deliberately below the choreography layer: parties are names,
    snapshots are sexp strings, the restore itself is a caller
    callback. Layout of a rollback journal directory:

    {v
    DIR/
      meta.json               -- {kind:"rollback", owner, parties, prelude}
      pre/<party>.sexp        -- pre-change snapshots of the cone
      state/<party>.sexp      -- post-run state of every party
      journal.jsonl           -- start / restored{party} / sealed
    v} *)

type edge = {
  at : int;  (** delivery tick *)
  src : string;
  dst : string;
}

val cone : origin:string -> edges:edge list -> string list
(** Which parties the change reached: time-ordered BFS — a party joins
    the cone when it processes a message from an already-contaminated
    party. [origin] first, then discovery order; deterministic (edges
    are sorted by [(at, src, dst)] first). *)

type meta = {
  owner : string;
  parties : string list;  (** the cone, in restore order *)
  prelude : string;
      (** rendered output of the interrupted run, replayed verbatim on
          resume for byte-identical output *)
}

exception Simulated_crash of int
(** Raised by {!restore_all} after the [crash_after]-th committed
    restore — the kill-during-rollback test hook (CLI exit code 3). *)

type writer

val start :
  dir:string ->
  owner:string ->
  cone:string list ->
  prelude:string ->
  pre:(string * string) list ->
  state:(string * string) list ->
  writer
(** Open a fresh rollback journal: [pre] maps each cone party to its
    pre-change sexp, [state] every party to its current sexp. All
    snapshot files, [meta.json] and the [start] record are durable
    before this returns. *)

val restore_all :
  ?crash_after:int ->
  ?already:string list ->
  writer ->
  restore:(party:string -> pre:string -> unit) ->
  unit
(** Restore the cone in order through [restore], appending one fsynced
    journal record per committed restore (the [repair.rolled_back]
    counter ticks with it), then seal. [already] (the resume path)
    names parties to re-restore without re-journalling. Runs under an
    [repair.rollback] span. *)

val restore_inline :
  owner:string ->
  cone:(string * string) list ->
  restore:(party:string -> pre:string -> unit) ->
  unit
(** Journal-less variant for embedded drivers: restore each
    [(party, pre-sexp)] pair under the same span and counter, with no
    durability. *)

val close : writer -> unit

val journal_exists : dir:string -> bool
(** Is [dir] a rollback journal (vs an evolution one)? What
    [chorev resume] dispatches on. *)

type loaded = {
  l_meta : meta;
  l_pre : (string * string) list;  (** cone party → pre-change sexp *)
  l_state : (string * string) list;  (** every party → post-run sexp *)
  restored : string list;  (** committed restores, journal order *)
  sealed : bool;
  l_valid_bytes : int;
}

val load : dir:string -> (loaded, string) result

val resume :
  dir:string -> restore:(party:string -> pre:string -> unit) -> (loaded, string) result
(** Finish an interrupted rollback: re-apply {e every} cone restore
    (idempotent overwrite — pre-crash restores died with the process),
    journal only the missing ones, seal. The caller rebuilds the full
    model from [l_state] overlaid with the restores and re-prints
    [l_meta.prelude] for byte-identical output. *)
