(** Automatic amendment of a partner's private process after a failed
    propagation (DESIGN.md §14).

    The failed bilateral check's difference automaton is a
    counterexample; its shortest word (the witness,
    {!Chorev_propagate.Suggest.witness}) anchors a bounded queue of
    candidate edits — insert / relax (receive→pick, pick arm, switch
    branch) / delete / unroll, smallest edit first. Each candidate is
    re-verified with the same consistency decision procedure the
    engine uses. The whole search runs under one budget minted from
    the policy, so it is fuel-deterministic across pool sizes and
    degrades to "unrepairable" rather than hanging. *)

type candidate = {
  ops : Chorev_change.Ops.t list;
      (** applied in order; a failing op skips the candidate *)
  cost : int;  (** number of primitive edits *)
  description : string;
}

type result = {
  repaired : (Chorev_bpel.Process.t * Chorev_afsa.Afsa.t) option;
      (** amended private process and its regenerated public process,
          when a candidate restored pairwise consistency *)
  attempts : int;  (** candidates actually verified *)
  fuel_spent : int;  (** fuel consumed by the search budget *)
  witness : Chorev_afsa.Label.t list option;
      (** the counterexample trace the candidates were anchored on;
          [None] when the delta was language-empty (nothing to anchor
          on — unrepairable) *)
  chosen : string option;  (** description of the winning candidate *)
  degraded : Chorev_guard.Degrade.t list;
      (** non-empty iff the search ran out of budget before exhausting
          the candidate queue *)
}

val candidates :
  policy:Chorev_config.Config.repair ->
  direction:Chorev_propagate.Engine.direction ->
  Chorev_bpel.Process.t ->
  Chorev_afsa.Label.t list ->
  candidate list
(** The bounded queue for one witness, smallest edit first: cost-1
    candidates in witness-label order, then (when [max_edits >= 2])
    ordered pairs, truncated at [max_candidates]. Deterministic in the
    process, witness and policy. Exposed for tests and the bench. *)

val search :
  ?cache:bool ->
  ?cancel:Chorev_guard.Budget.Cancel.t ->
  policy:Chorev_config.Config.repair ->
  direction:Chorev_propagate.Engine.direction ->
  partner_private:Chorev_bpel.Process.t ->
  view_new:Chorev_afsa.Afsa.t ->
  delta:Chorev_afsa.Afsa.t ->
  unit ->
  result
(** Run the amendment search for one failed bilateral check:
    [view_new] is what the partner must be consistent with (τ_P(A')),
    [delta] the difference automaton the witness is extracted from.
    The search budget is minted inside this call from
    [policy.repair_budget] — invoke it inside the pool task and
    fuel-only budgets trip identically at every pool size. [cache]
    (default [true]) routes verification through
    [Chorev_cache.Memo.consistent] when no budget bound is in force.
    Bumps the [repair.attempts] / [repair.repaired] counters; spans
    [repair.amend] / [repair.queue]. *)

val repaired_process : result -> Chorev_bpel.Process.t option

val pp_result : Format.formatter -> result -> unit
