(** Deliberately naive alternatives to DESIGN.md's semantic decisions,
    kept so tests and benches can demonstrate the decisions are
    load-bearing. Not part of the recommended API. *)

val analyze_least_fixpoint : Afsa.t -> bool
(** Least-fixpoint emptiness: wrongly rejects mutually-supporting
    loops (the Fig. 6 tracking loop). Returns non-emptiness. *)

val is_empty_least_fixpoint : Afsa.t -> bool

val minimize_ignoring_annotations : Afsa.t -> Afsa.t
(** Merges states with different obligations — breaks the Fig. 16
    verdict. *)

val tau_hidden_false : observer:string -> Afsa.t -> Afsa.t
(** Views substituting hidden variables with [false] — kills every
    protocol with multi-party obligations. *)

(** {1 Seed reference implementations}

    The original (pre-index) implementations of the algebra, kept
    verbatim as differential-testing oracles for the optimized
    operations. Slow on purpose; not part of the recommended API. *)

val product_ref : Product.spec -> Afsa.t -> Afsa.t -> Afsa.t
(** Recursive Map-based product sweeping the full alphabet per state.
    May overflow the stack on very deep products. *)

val intersect_ref : Afsa.t -> Afsa.t -> Afsa.t
val difference_ref : Afsa.t -> Afsa.t -> Afsa.t
(** Materializes the completed complement of the right argument. *)

val union_ref : Afsa.t -> Afsa.t -> Afsa.t
(** Materializes both completions and the full total product. *)

val analyze_ref : Afsa.t -> Afsa.ISet.t * bool * int
(** Seed emptiness fixpoint, rebuilding the reverse-edge table every
    iteration: [(sat, nonempty, iterations)], same iteration-counting
    convention as {!Emptiness.analyze}. *)

val is_empty_ref : Afsa.t -> bool

val minimize_ref : Afsa.t -> Afsa.t
(** The pre-rewrite minimization (list/Hashtbl Hopcroft, string class
    keys, unconditional determinize + double renumbering), kept
    verbatim as the oracle for the refinable-partition implementation:
    [Minimize.minimize a] must be structurally equal to
    [minimize_ref a] on every input. *)
