(** ε-closure and ε-elimination. Annotations of states merged along
    ε-paths combine by conjunction. *)

val closure : Afsa.t -> Afsa.ISet.t -> Afsa.ISet.t
val closure_of : Afsa.t -> int -> Afsa.ISet.t

val eliminate : ?budget:Chorev_guard.Budget.t -> Afsa.t -> Afsa.t
(** Remove all ε-transitions, preserving the language; unreachable
    states are dropped. *)
