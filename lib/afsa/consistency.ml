(** Bilateral consistency (Sec. 3.2).

    Two public processes are consistent — their interaction is
    deadlock-free — iff their intersection is non-empty under the
    annotated emptiness test: there is at least one execution sequence
    to a final state along which every mandatory obligation is met. *)

type verdict = {
  consistent : bool;
  intersection : Afsa.t;
  witness : Label.t list option;
      (** a deadlock-free conversation, when consistent *)
}

let check ?budget a b =
  let i = Ops.intersect ?budget a b in
  let consistent = Emptiness.is_nonempty ?budget i in
  let witness = if consistent then Emptiness.witness ?budget i else None in
  { consistent; intersection = i; witness }

(** [consistent a b] — the paper's bilateral consistency predicate. *)
let consistent ?budget a b =
  Emptiness.is_nonempty ?budget (Ops.intersect ?budget a b)

(** Three-valued consistency under an explicit budget: [`Unknown] when
    the budget trips before a verdict is reached — the conservative
    answer the engine degrades to instead of hanging. *)
let decide ~budget a b =
  match
    Chorev_guard.Budget.run budget (fun () ->
        Emptiness.is_nonempty ~budget (Ops.intersect ~budget a b))
  with
  | `Done true -> `Consistent
  | `Done false -> `Inconsistent
  | `Exceeded info -> `Unknown info
