(** Annotated emptiness test (Sec. 3.2 of the paper).

    A standard FSA is non-empty when a final state is reachable; the
    aFSA test additionally requires that every formula annotated to a
    state on the accepting path evaluates to true, where a variable [v]
    is true at state [q] iff there is a [v]-labeled transition from [q]
    to a state that itself admits acceptance. In the paper's words: "all
    transitions of a conjunction associated to a single state are
    available in the automaton and a final state can be reached
    following each of these transitions".

    We compute the *greatest* fixpoint of the predicate
    [sat : Q -> bool]:

      sat(q) = eval(ann(q), σ_q) ∧ reach_final_through_sat(q)
      σ_q(v) = ∃ (q,v,q') ∈ Δ. sat(q')

    where [reach_final_through_sat(q)] holds when a final sat-state is
    reachable from [q] via sat-states only. Starting from sat = Q and
    shrinking is essential: protocol loops support their annotations
    mutually (the buyer's tracking loop of Fig. 6 requires
    [get_statusOp], whose target supports the loop head in turn), which
    a least fixpoint would wrongly reject; the reachability conjunct
    rules out vacuous self-supporting cycles that never reach a final
    state. Both conjuncts are monotone in [sat] for positive
    annotations (all the paper uses), so the iteration converges to the
    greatest fixpoint; for annotations containing negation the result
    is an approximation and the API reports a warning.

    The automaton is non-empty iff sat(q0) — equivalently, iff "the
    annotation of the start state is true" in the paper's phrasing.

    Implementation notes: the reverse-edge table is the automaton's
    shared {!Afsa.preds} index, built once per [analyze] call (not once
    per fixpoint iteration), and each annotated state gets a
    variable → targets table computed once up front, so an iteration is
    O(V + E) with no per-iteration allocation of edge lists. *)

module F = Chorev_formula.Syntax
module Budget = Chorev_guard.Budget
module ISet = Afsa.ISet

(* Fixpoint-level instrumentation (DESIGN.md §7): number of [analyze]
   runs and total iterations until convergence across them. *)
let c_runs = Chorev_obs.Metrics.counter "afsa.emptiness.runs"
let c_iterations = Chorev_obs.Metrics.counter "afsa.emptiness.iterations"

type result = {
  sat : ISet.t;  (** states from which annotated acceptance is possible *)
  nonempty : bool;
  iterations : int;
      (** fixpoint iterations until convergence (≥ 1); exposed so tests
          can assert parity with the reference implementation *)
  warning : string option;
      (** set when a non-positive annotation was encountered *)
}

(* States that can reach a final state of [sat] moving through [sat]
   states only: backward closure from F ∩ sat inside sat, over the
   shared predecessor index. *)
let reach_final_through budget a sat =
  let seen = Hashtbl.create 64 in
  let acc = ref ISet.empty in
  let stack = ref (List.filter (fun f -> ISet.mem f sat) (Afsa.finals a)) in
  List.iter (fun q -> Hashtbl.replace seen q ()) !stack;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | q :: rest ->
        Budget.tick budget;
        stack := rest;
        acc := ISet.add q !acc;
        List.iter
          (fun p ->
            if ISet.mem p sat && not (Hashtbl.mem seen p) then begin
              Hashtbl.replace seen p ();
              stack := p :: !stack
            end)
          (Afsa.preds a q)
  done;
  !acc

(* Packed kernel: the greatest-fixpoint loop over bitsets and the
   packed predecessor CSR — [sat]/[reach]/[seen] are flat bitsets over
   dense indexes, the backward closure is an int-array stack, and an
   iteration allocates nothing. Tick totals match the map kernel
   exactly: one per fixpoint pass plus one per state popped in the
   backward closure (a canonical set either way), so fuel-bounded
   outcomes are identical. *)
let analyze_packed ~budget ~warning a =
  let module P = Afsa.Packed in
  let p = P.get a in
  let n = p.P.n in
  (* per annotated state: variable → dense targets, computed once *)
  let vt_of = Array.make (max 1 n) None in
  Bitset.iter
    (fun i ->
      let vt : (string, int list) Hashtbl.t = Hashtbl.create 8 in
      let e = ref p.P.row_off.(i) in
      let hi = p.P.row_off.(i + 1) in
      while !e < hi do
        let sid = p.P.row_sym.(!e) in
        let g0 = !e in
        while !e < hi && p.P.row_sym.(!e) = sid do
          incr e
        done;
        let v =
          match p.P.syms.(sid) with
          | Sym.L l -> Label.to_string l
          | Sym.Eps -> assert false
        in
        let ts = ref (Option.value ~default:[] (Hashtbl.find_opt vt v)) in
        for f = g0 to !e - 1 do
          ts := p.P.row_tgt.(f) :: !ts
        done;
        Hashtbl.replace vt v !ts
      done;
      vt_of.(i) <- Some vt)
    p.P.ann_nontrivial;
  let holds sat i =
    match vt_of.(i) with
    | None -> true (* default annotation [True] *)
    | Some vt ->
        let assign v =
          match Hashtbl.find_opt vt v with
          | None -> false
          | Some ts -> List.exists (fun t -> Bitset.mem sat t) ts
        in
        Chorev_formula.Eval.eval ~assign p.P.ann.(i)
  in
  let poff, psrc = P.preds_csr p in
  let stack = Array.make (max 1 n) 0 in
  let seen = Bitset.create n in
  let reach_final_through sat reach =
    Bitset.clear reach;
    Bitset.clear seen;
    let sp = ref 0 in
    Bitset.iter
      (fun f ->
        if Bitset.mem sat f then begin
          Bitset.add seen f;
          stack.(!sp) <- f;
          incr sp
        end)
      p.P.finals;
    while !sp > 0 do
      Budget.tick budget;
      decr sp;
      let q = stack.(!sp) in
      Bitset.add reach q;
      for e = poff.(q) to poff.(q + 1) - 1 do
        let pr = psrc.(e) in
        if Bitset.mem sat pr && not (Bitset.mem seen pr) then begin
          Bitset.add seen pr;
          stack.(!sp) <- pr;
          incr sp
        end
      done
    done
  in
  let sat = Bitset.create n in
  Bitset.fill sat;
  let reach = Bitset.create n in
  let sat' = Bitset.create n in
  let iterations = ref 1 in
  let converged = ref false in
  while not !converged do
    Budget.tick budget;
    reach_final_through sat reach;
    Bitset.clear sat';
    Bitset.iter (fun q -> if holds sat q then Bitset.add sat' q) reach;
    if Bitset.equal sat' sat then converged := true
    else begin
      Bitset.blit ~src:sat' ~dst:sat;
      incr iterations
    end
  done;
  Chorev_obs.Metrics.incr c_runs;
  Chorev_obs.Metrics.add c_iterations !iterations;
  let sat_set =
    Bitset.fold (fun i acc -> ISet.add p.P.state_ids.(i) acc) sat ISet.empty
  in
  {
    sat = sat_set;
    nonempty = Bitset.mem sat p.P.start;
    iterations = !iterations;
    warning;
  }

let analyze ?budget a =
  let budget =
    match budget with Some b -> b | None -> Budget.ambient ()
  in
  let warning =
    if List.for_all (fun (_, f) -> F.is_positive f) (Afsa.annotations a) then
      None
    else
      Some
        "annotation contains negation: emptiness fixpoint is an \
         approximation only"
  in
  if Afsa.Packed.enabled () && Afsa.Packed.worth a then
    analyze_packed ~budget ~warning a
  else
  (* For each annotated state, the targets of each variable's edges,
     computed once: σ_q(v) then costs one lookup + membership checks. *)
  let ann_tbl : (int, F.t * (string, int list) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (q, f) ->
      let vt = Hashtbl.create 8 in
      List.iter
        (fun (sym, ts) ->
          match sym with
          | Sym.Eps -> ()
          | Sym.L l ->
              let v = Label.to_string l in
              Hashtbl.replace vt v
                (ts @ Option.value ~default:[] (Hashtbl.find_opt vt v)))
        (Afsa.out_rows a q);
      Hashtbl.replace ann_tbl q (f, vt))
    (Afsa.annotations a);
  let holds sat q =
    match Hashtbl.find_opt ann_tbl q with
    | None -> true (* default annotation [True] *)
    | Some (f, vt) ->
        let assign v =
          (* σ_q(v): some v-labeled edge to a sat state. *)
          match Hashtbl.find_opt vt v with
          | None -> false
          | Some ts -> List.exists (fun t -> ISet.mem t sat) ts
        in
        Chorev_formula.Eval.eval ~assign f
  in
  let rec fix n sat =
    Budget.tick budget;
    let reach = reach_final_through budget a sat in
    (* [reach ⊆ sat] by construction, so filtering [reach] by [holds]
       equals the seed's [filter (reach ∧ holds) sat]. *)
    let sat' = ISet.filter (fun q -> holds sat q) reach in
    if ISet.equal sat' sat then (sat, n) else fix (n + 1) sat'
  in
  let sat, iterations = fix 1 a.Afsa.states in
  Chorev_obs.Metrics.incr c_runs;
  Chorev_obs.Metrics.add c_iterations iterations;
  { sat; nonempty = ISet.mem (Afsa.start a) sat; iterations; warning }

(** An aFSA is empty when no message sequence satisfying all mandatory
    annotations leads from the start state to a final state. *)
let is_empty ?budget a = not (analyze ?budget a).nonempty

let is_nonempty ?budget a = (analyze ?budget a).nonempty

(** Plain (annotation-oblivious) emptiness: no final state reachable. *)
let is_empty_plain a =
  let r = Afsa.reachable_from a (Afsa.start a) in
  not (List.exists (fun f -> ISet.mem f r) (Afsa.finals a))

(** Shortest witness of annotated non-emptiness: a label sequence along
    sat-states from the start to a final sat-state. [None] if empty. *)
let witness ?budget a =
  let { sat; nonempty; _ } = analyze ?budget a in
  if not nonempty then None
  else
    let module Q = Queue in
    let q = Q.create () in
    Q.add (Afsa.start a, []) q;
    let seen = ref (ISet.singleton (Afsa.start a)) in
    let rec bfs () =
      if Q.is_empty q then None
      else
        let st, path = Q.pop q in
        if Afsa.is_final a st then Some (List.rev path)
        else begin
          List.iter
            (fun (sym, t) ->
              if ISet.mem t sat && not (ISet.mem t !seen) then begin
                seen := ISet.add t !seen;
                let path' =
                  match sym with Sym.Eps -> path | Sym.L l -> l :: path
                in
                Q.add (t, path') q
              end)
            (Afsa.out_edges a st);
          bfs ()
        end
    in
    bfs ()
