(** Non-raising budgeted wrappers over the algebra (see guarded.mli). *)

module Budget = Chorev_guard.Budget

type 'a outcome = [ `Done of 'a | `Exceeded of Budget.info ]

let intersect ~budget a b =
  Budget.run budget (fun () -> Ops.intersect ~budget a b)

let difference ~budget a b =
  Budget.run budget (fun () -> Ops.difference ~budget a b)

let union ~budget a b = Budget.run budget (fun () -> Ops.union ~budget a b)

let determinize ~budget a =
  Budget.run budget (fun () -> Determinize.determinize ~budget a)

let minimize ~budget a =
  Budget.run budget (fun () -> Minimize.minimize ~budget a)

let emptiness ~budget a =
  Budget.run budget (fun () -> Emptiness.analyze ~budget a)

let minimize_or_self ~budget a =
  match minimize ~budget a with
  | `Done m -> (m, None)
  | `Exceeded info -> (a, Some info)
