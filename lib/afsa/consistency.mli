(** Bilateral consistency (Sec. 3.2): two public processes interact
    deadlock-free iff their annotated intersection is non-empty. *)

type verdict = {
  consistent : bool;
  intersection : Afsa.t;
  witness : Label.t list option;
      (** a deadlock-free conversation, when consistent *)
}

val check : ?budget:Chorev_guard.Budget.t -> Afsa.t -> Afsa.t -> verdict
val consistent : ?budget:Chorev_guard.Budget.t -> Afsa.t -> Afsa.t -> bool

val decide :
  budget:Chorev_guard.Budget.t ->
  Afsa.t ->
  Afsa.t ->
  [ `Consistent | `Inconsistent | `Unknown of Chorev_guard.Budget.info ]
(** Three-valued consistency under an explicit budget: [`Unknown]
    carries the trip info when fuel/deadline ran out before a verdict
    was reached. Never raises {!Chorev_guard.Budget.Expired} for the
    given budget. *)
