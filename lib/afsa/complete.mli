(** Completion with a non-final sink (Definition 4 of the paper assumes
    complete automata). *)

val complete : ?budget:Chorev_guard.Budget.t -> ?over:Label.t list -> Afsa.t -> Afsa.t
(** Complete over the automaton's alphabet unioned with [over]. The
    input must be ε-free. *)

val is_complete : Afsa.t -> bool
