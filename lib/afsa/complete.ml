(** Completion: make every state have an outgoing transition for every
    alphabet symbol, by adding a non-final sink. Definition 4 of the
    paper (difference) assumes complete automata. The sink carries the
    default annotation [true]. *)

module ISet = Afsa.ISet

(** [complete ?over a] completes [a] over its own alphabet unioned with
    [over]. No-op when already complete. The automaton must be
    ε-free (determinize first if needed). *)
let complete ?budget ?(over = []) a =
  let budget =
    match budget with
    | Some b -> b
    | None -> Chorev_guard.Budget.ambient ()
  in
  let a = Afsa.widen_alphabet a over in
  if Afsa.has_eps a then
    invalid_arg "Complete.complete: automaton has ε-transitions";
  let alpha = Afsa.alphabet a in
  let needs q =
    Chorev_guard.Budget.tick budget;
    let out = Afsa.out_symbols a q in
    List.filter (fun l -> not (Label.Set.mem l out)) alpha
  in
  let missing =
    List.concat_map (fun q -> List.map (fun l -> (q, l)) (needs q)) (Afsa.states a)
  in
  if missing = [] then a
  else
    let sink = 1 + List.fold_left max 0 (Afsa.states a) in
    Afsa.add_edges a
      (List.map (fun (q, l) -> (q, Sym.L l, sink)) missing
      @ List.map (fun l -> (sink, Sym.L l, sink)) alpha)

let is_complete a =
  let alpha = Label.Set.of_list (Afsa.alphabet a) in
  List.for_all
    (fun q -> Label.Set.subset alpha (Afsa.out_symbols a q))
    (Afsa.states a)
