(** Completion: make every state have an outgoing transition for every
    alphabet symbol, by adding a non-final sink. Definition 4 of the
    paper (difference) assumes complete automata. The sink carries the
    default annotation [true]. *)

module ISet = Afsa.ISet

(** [complete ?over a] completes [a] over its own alphabet unioned with
    [over]. No-op when already complete. The automaton must be
    ε-free (determinize first if needed). *)
let complete ?budget ?(over = []) a =
  let budget =
    match budget with
    | Some b -> b
    | None -> Chorev_guard.Budget.ambient ()
  in
  let a = Afsa.widen_alphabet a over in
  if Afsa.has_eps a then
    invalid_arg "Complete.complete: automaton has ε-transitions";
  let alpha = Afsa.alphabet a in
  let needs q =
    Chorev_guard.Budget.tick budget;
    let out = Afsa.out_symbols a q in
    List.filter (fun l -> not (Label.Set.mem l out)) alpha
  in
  let missing =
    if Afsa.Packed.enabled () && Afsa.Packed.worth a then begin
      (* packed presence scan: mark the symbol ids of each state's CSR
         row in a stamp array, then sweep [alpha] in list order — the
         same (state ascending, alphabet order) pair sequence the map
         path produces, with one tick per state *)
      let module P = Afsa.Packed in
      let p = P.get a in
      let ns = Array.length p.P.syms in
      let sid_of = Hashtbl.create (2 * ns) in
      Array.iteri
        (fun s sym ->
          match sym with
          | Sym.L l -> Hashtbl.replace sid_of l s
          | Sym.Eps -> ())
        p.P.syms;
      let alpha_sid =
        List.map
          (fun l -> Option.value ~default:(-1) (Hashtbl.find_opt sid_of l))
          alpha
      in
      let mark = Array.make (max 1 ns) (-1) in
      let acc = ref [] in
      for i = 0 to p.P.n - 1 do
        Chorev_guard.Budget.tick budget;
        for e = p.P.row_off.(i) to p.P.row_off.(i + 1) - 1 do
          mark.(p.P.row_sym.(e)) <- i
        done;
        let q = p.P.state_ids.(i) in
        List.iter2
          (fun l sid ->
            if sid < 0 || mark.(sid) <> i then acc := (q, l) :: !acc)
          alpha alpha_sid
      done;
      List.rev !acc
    end
    else
      List.concat_map
        (fun q -> List.map (fun l -> (q, l)) (needs q))
        (Afsa.states a)
  in
  if missing = [] then a
  else
    let sink = 1 + List.fold_left max 0 (Afsa.states a) in
    Afsa.add_edges a
      (List.map (fun (q, l) -> (q, Sym.L l, sink)) missing
      @ List.map (fun l -> (sink, Sym.L l, sink)) alpha)

let is_complete a =
  let alpha = Label.Set.of_list (Afsa.alphabet a) in
  List.for_all
    (fun q -> Label.Set.subset alpha (Afsa.out_symbols a q))
    (Afsa.states a)
