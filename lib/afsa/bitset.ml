(** Flat bitsets over dense state indexes [0 .. n-1].

    The packed kernels (see {!Afsa.Packed}) replace [ISet.t] frontiers
    and membership sets with these: one byte-per-8-states [Bytes.t]
    buffer, so membership is a load-and-mask, equality is [Bytes.equal]
    (a memcmp), and a full sweep allocates nothing. Capacity is fixed at
    creation — exactly the dense state count of the automaton being
    processed. *)

type t = { bits : Bytes.t; n : int }

let create n = { bits = Bytes.make ((n + 7) / 8) '\000'; n }

let length t = t.n

let mem t i =
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  let j = i lsr 3 in
  Bytes.unsafe_set t.bits j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits j) lor (1 lsl (i land 7))))

let remove t i =
  let j = i lsr 3 in
  Bytes.unsafe_set t.bits j
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits j) land lnot (1 lsl (i land 7))))

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let fill t =
  (* set every valid bit, leaving the padding bits of the last byte 0 so
     [equal] stays a plain memcmp *)
  for i = 0 to t.n - 1 do
    add t i
  done

let copy t = { bits = Bytes.copy t.bits; n = t.n }
let equal a b = a.n = b.n && Bytes.equal a.bits b.bits
let blit ~src ~dst = Bytes.blit src.bits 0 dst.bits 0 (Bytes.length src.bits)

let cardinal t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if mem t i then incr c
  done;
  !c

(** Ascending-index iteration. *)
let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  for i = 0 to t.n - 1 do
    if mem t i then acc := f i !acc
  done;
  !acc

let of_list n l =
  let t = create n in
  List.iter (fun i -> add t i) l;
  t

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])
