(** Bilateral views τ_P (Sec. 3.4): relabel transitions not involving
    the observer with ε; substitute hidden message variables with
    [true] in annotations; ε-eliminate (and minimize, for {!tau}). *)

val relabel : observer:string -> Afsa.t -> Afsa.t
val tau_raw : ?budget:Chorev_guard.Budget.t -> observer:string -> Afsa.t -> Afsa.t
val tau : ?budget:Chorev_guard.Budget.t -> observer:string -> Afsa.t -> Afsa.t

val parties : Afsa.t -> string list
(** Parties mentioned by the alphabet. *)
