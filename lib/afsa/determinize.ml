(** Subset construction for aFSAs.

    Annotations of the member states of a subset are combined by
    disjunction: a deterministic run being "in" a subset corresponds to
    the nondeterministic automaton being in one of its members, so the
    obligations that must hold are those of whichever member is actually
    inhabited — the weakest combination. This follows the annotated
    deterministic FSAs of Wombacher et al. (ICWS 2004) which the paper
    builds on. *)

module F = Chorev_formula.Syntax
module Budget = Chorev_guard.Budget
module ISet = Afsa.ISet

module SetKey = struct
  type t = ISet.t

  let compare = ISet.compare
end

module SMap = Map.Make (SetKey)

(* Subsets in the packed kernel are sorted arrays of dense state
   indexes, hashed FNV-style into a flat Hashtbl — no [ISet.compare]
   over balanced trees per visit. *)
module SubsetKey = struct
  type t = int array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i =
      i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
    in
    go 0

  let hash a =
    let h = ref 0x811c9dc5 in
    Array.iter (fun x -> h := (!h lxor x) * 0x01000193 land max_int) a;
    !h
end

module SubsetTbl = Hashtbl.Make (SubsetKey)

let int_cmp (x : int) (y : int) = if x < y then -1 else if x > y then 1 else 0

(* Packed subset construction. Mirrors the map kernel event for event:
   one budget tick per newly discovered subset, DFS preorder, successor
   symbols visited ascending and member rows merged target-ascending —
   so the output automaton (state numbering, edges, annotation formula
   structure) and every fuel-bounded outcome are identical. Member
   out-rows are merged into reusable per-symbol target buckets; each
   bucket is then canonicalized to a sorted distinct subset either by
   an int sort (small buckets) or by a stamp-marked counting scan over
   the dense state space (large buckets) — never a [Sym.Map]-of-[ISet]
   accumulation, and no global sort of all merged edges. *)
let determinize_packed ~budget a =
  let module P = Afsa.Packed in
  let p = P.get a in
  let nsym = Array.length p.P.syms in
  let next_id = ref 0 in
  let ids : int SubsetTbl.t = SubsetTbl.create 256 in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  (* per-symbol target buckets, reused across visits (drained into
     fresh subset arrays before any recursion) *)
  let bucket = Array.make (max 1 nsym) [||] in
  let blen = Array.make (max 1 nsym) 0 in
  let bpush s t =
    let b = bucket.(s) in
    let l = blen.(s) in
    if l = Array.length b then begin
      let nb = Array.make (max 8 (2 * l)) 0 in
      Array.blit b 0 nb 0 l;
      bucket.(s) <- nb;
      nb.(l) <- t
    end
    else b.(l) <- t;
    blen.(s) <- l + 1
  in
  (* stamp array for the counting-scan canonicalization *)
  let stamp = Array.make (max 1 p.P.n) (-1) in
  let round = ref 0 in
  let rec visit (members : int array) =
    match SubsetTbl.find_opt ids members with
    | Some id -> id
    | None ->
        (* one fuel unit per discovered subset — the exponential axis *)
        Budget.tick budget;
        let id = !next_id in
        incr next_id;
        SubsetTbl.add ids members id;
        if Array.exists (fun i -> Bitset.mem p.P.finals i) members then
          finals := id :: !finals;
        let ann =
          Array.fold_left (fun acc i -> F.or_ p.P.ann.(i) acc) F.False members
        in
        let ann = Chorev_formula.Simplify.simplify ann in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        (* merge the members' out-rows into the per-symbol buckets *)
        let touched = ref [] in
        Array.iter
          (fun i ->
            for e = p.P.row_off.(i) to p.P.row_off.(i + 1) - 1 do
              let s = p.P.row_sym.(e) in
              if blen.(s) = 0 then touched := s :: !touched;
              bpush s p.P.row_tgt.(e)
            done)
          members;
        let sids = Array.of_list (List.sort int_cmp !touched) in
        (* drain every bucket into a canonical (sorted, distinct) subset
           array before recursing — the buckets are shared state *)
        let groups =
          Array.map
            (fun sid ->
              let m = blen.(sid) in
              blen.(sid) <- 0;
              let b = bucket.(sid) in
              let tgts =
                if 4 * m >= p.P.n then begin
                  (* counting scan: mark, then collect ascending *)
                  incr round;
                  let r = !round in
                  let cnt = ref 0 in
                  for j = 0 to m - 1 do
                    let t = b.(j) in
                    if stamp.(t) <> r then begin
                      stamp.(t) <- r;
                      incr cnt
                    end
                  done;
                  let out = Array.make !cnt 0 in
                  let k = ref 0 in
                  for t = 0 to p.P.n - 1 do
                    if stamp.(t) = r then begin
                      out.(!k) <- t;
                      incr k
                    end
                  done;
                  out
                end
                else begin
                  let sub = Array.sub b 0 m in
                  Array.sort int_cmp sub;
                  let k = ref 0 in
                  for j = 0 to m - 1 do
                    if !k = 0 || sub.(!k - 1) <> sub.(j) then begin
                      sub.(!k) <- sub.(j);
                      incr k
                    end
                  done;
                  if !k = m then sub else Array.sub sub 0 !k
                end
              in
              (sid, tgts))
            sids
        in
        Array.iter
          (fun (sid, tgts) ->
            let tid = visit tgts in
            edges := (id, p.P.syms.(sid), tid) :: !edges)
          groups;
        id
  in
  let s0 = visit [| p.P.start |] in
  Afsa.make ~alphabet:(Afsa.alphabet a) ~start:s0 ~finals:!finals
    ~edges:!edges ~ann:!anns ()

(** Determinize; the result has no ε-transitions and at most one
    transition per (state, label). State numbering is dense from 0
    (start = 0). *)
let determinize ?budget a =
  let budget =
    match budget with Some b -> b | None -> Budget.ambient ()
  in
  let a = Epsilon.eliminate ~budget a in
  if Afsa.is_deterministic a then fst (Afsa.renumber a)
  else if Afsa.Packed.enabled () && Afsa.Packed.worth a then
    determinize_packed ~budget a
  else
    let start_set = ISet.singleton (Afsa.start a) in
    let next_id = ref 0 in
    let ids = ref SMap.empty in
    let edges = ref [] in
    let finals = ref [] in
    let anns = ref [] in
    let rec visit set =
      match SMap.find_opt set !ids with
      | Some id -> id
      | None ->
          (* one fuel unit per discovered subset — the exponential axis *)
          Budget.tick budget;
          let id = !next_id in
          incr next_id;
          ids := SMap.add set id !ids;
          if ISet.exists (Afsa.is_final a) set then finals := id :: !finals;
          let ann =
            ISet.fold (fun q acc -> F.or_ (Afsa.annotation a q) acc) set F.False
          in
          let ann = Chorev_formula.Simplify.simplify ann in
          if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
          (* group successors by symbol (via the shared index) *)
          let by_sym =
            ISet.fold
              (fun q acc ->
                List.fold_left
                  (fun acc (sym, ts) ->
                    match sym with
                    | Sym.Eps -> acc
                    | Sym.L _ ->
                        let cur =
                          Option.value ~default:ISet.empty
                            (Sym.Map.find_opt sym acc)
                        in
                        Sym.Map.add sym
                          (List.fold_left
                             (fun cur t -> ISet.add t cur)
                             cur ts)
                          acc)
                  acc (Afsa.out_rows a q))
              set Sym.Map.empty
          in
          Sym.Map.iter
            (fun sym tgt_set ->
              let tid = visit tgt_set in
              edges := (id, sym, tid) :: !edges)
            by_sym;
          id
    in
    let s0 = visit start_set in
    Afsa.make ~alphabet:(Afsa.alphabet a) ~start:s0 ~finals:!finals
      ~edges:!edges ~ann:!anns ()
