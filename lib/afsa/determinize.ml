(** Subset construction for aFSAs.

    Annotations of the member states of a subset are combined by
    disjunction: a deterministic run being "in" a subset corresponds to
    the nondeterministic automaton being in one of its members, so the
    obligations that must hold are those of whichever member is actually
    inhabited — the weakest combination. This follows the annotated
    deterministic FSAs of Wombacher et al. (ICWS 2004) which the paper
    builds on. *)

module F = Chorev_formula.Syntax
module Budget = Chorev_guard.Budget
module ISet = Afsa.ISet

module SetKey = struct
  type t = ISet.t

  let compare = ISet.compare
end

module SMap = Map.Make (SetKey)

(** Determinize; the result has no ε-transitions and at most one
    transition per (state, label). State numbering is dense from 0
    (start = 0). *)
let determinize ?budget a =
  let budget =
    match budget with Some b -> b | None -> Budget.ambient ()
  in
  let a = Epsilon.eliminate ~budget a in
  if Afsa.is_deterministic a then fst (Afsa.renumber a)
  else
    let start_set = ISet.singleton (Afsa.start a) in
    let next_id = ref 0 in
    let ids = ref SMap.empty in
    let edges = ref [] in
    let finals = ref [] in
    let anns = ref [] in
    let rec visit set =
      match SMap.find_opt set !ids with
      | Some id -> id
      | None ->
          (* one fuel unit per discovered subset — the exponential axis *)
          Budget.tick budget;
          let id = !next_id in
          incr next_id;
          ids := SMap.add set id !ids;
          if ISet.exists (Afsa.is_final a) set then finals := id :: !finals;
          let ann =
            ISet.fold (fun q acc -> F.or_ (Afsa.annotation a q) acc) set F.False
          in
          let ann = Chorev_formula.Simplify.simplify ann in
          if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
          (* group successors by symbol (via the shared index) *)
          let by_sym =
            ISet.fold
              (fun q acc ->
                List.fold_left
                  (fun acc (sym, ts) ->
                    match sym with
                    | Sym.Eps -> acc
                    | Sym.L _ ->
                        let cur =
                          Option.value ~default:ISet.empty
                            (Sym.Map.find_opt sym acc)
                        in
                        Sym.Map.add sym
                          (List.fold_left
                             (fun cur t -> ISet.add t cur)
                             cur ts)
                          acc)
                  acc (Afsa.out_rows a q))
              set Sym.Map.empty
          in
          Sym.Map.iter
            (fun sym tgt_set ->
              let tid = visit tgt_set in
              edges := (id, sym, tid) :: !edges)
            by_sym;
          id
    in
    let s0 = visit start_set in
    Afsa.make ~alphabet:(Afsa.alphabet a) ~start:s0 ~finals:!finals
      ~edges:!edges ~ann:!anns ()
