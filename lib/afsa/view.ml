(** Bilateral views (Sec. 3.4).

    The view [τ_P(wf)] of party [P] on a public process [wf] relabels
    every transition not related to [P] with ε; annotations referring to
    hidden messages substitute them with [true] (they are obligations the
    owner discharges internally — invisible to [P], cf. Fig. 8 where the
    logistics messages vanish from the buyer view). The result is
    ε-eliminated; [tau] additionally minimizes, [tau_raw] does not. *)

module F = Chorev_formula.Syntax

let relabel ~observer a =
  let keep l = Label.involves observer l in
  let edges =
    List.map
      (fun (s, sym, t) ->
        match sym with
        | Sym.Eps -> (s, Sym.Eps, t)
        | Sym.L l -> if keep l then (s, sym, t) else (s, Sym.Eps, t))
      (Afsa.edges a)
  in
  let visible_vars =
    let h = Hashtbl.create 16 in
    List.iter
      (fun l -> if keep l then Hashtbl.replace h (Label.to_string l) ())
      (Afsa.alphabet a);
    fun v -> Hashtbl.mem h v
  in
  let ann =
    List.map
      (fun (q, f) ->
        ( q,
          Chorev_formula.Simplify.simplify
            (Chorev_formula.Eval.restrict_to ~keep:visible_vars ~default:true f)
        ))
      (Afsa.annotations a)
  in
  Afsa.make
    ~alphabet:(List.filter keep (Afsa.alphabet a))
    ~start:(Afsa.start a) ~finals:(Afsa.finals a) ~edges ~ann ()

(** Un-minimized view: relabel + ε-elimination only. *)
let tau_raw ?budget ~observer a =
  Epsilon.eliminate ?budget (relabel ~observer a)

(** The view of [observer] on [a], minimized (as the paper's figures
    present it). *)
let tau ?budget ~observer a = Minimize.minimize ?budget (relabel ~observer a)

(** Parties mentioned by the automaton's alphabet. *)
let parties a =
  List.fold_left
    (fun acc (l : Label.t) ->
      let add s set = if List.mem s set then set else s :: set in
      add l.sender (add l.receiver acc))
    [] (Afsa.alphabet a)
  |> List.sort String.compare
