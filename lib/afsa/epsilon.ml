(** ε-closure and ε-elimination.

    View generation (Sec. 3.4) relabels foreign transitions with ε; the
    resulting automaton is then ε-eliminated before minimization.
    Annotations of states merged along ε-paths are combined by
    conjunction: every obligation of a state silently reachable from [q]
    is already an obligation at [q].

    All closure queries route through {!Afsa.eps_closures}: one
    SCC-memoized O(V+E) pass per automaton, cached on the index slot,
    shared with ε-elimination. There is no per-call list-append walk
    left — the old [eps_succs a q @ rest] closure was O(V·E) per
    query. *)

module F = Chorev_formula.Syntax
module Budget = Chorev_guard.Budget
module ISet = Afsa.ISet

(** ε-closure of a single state. States outside the automaton close to
    themselves, matching the old walk's behavior. *)
let closure_of a q =
  match Hashtbl.find_opt (Afsa.eps_closures a) q with
  | Some cl -> cl
  | None -> ISet.singleton q

(** ε-closure of a state set. *)
let closure a set =
  let tbl = Afsa.eps_closures a in
  ISet.fold
    (fun q acc ->
      match Hashtbl.find_opt tbl q with
      | Some cl -> ISet.union cl acc
      | None -> ISet.add q acc)
    set ISet.empty

(** Remove all ε-transitions, preserving the language. For each state
    [q], the new outgoing edges are the proper edges of all states in
    the ε-closure of [q]; [q] is final if its closure meets a final
    state; its annotation is the conjunction of the closure's
    annotations. Unreachable states are dropped. ε-closures are
    computed once per automaton (shared within ε-SCCs), not re-explored
    per state; when the packed form is enabled the proper out-edges are
    swept from the CSR rows instead of materializing [out_rows]. *)
let eliminate ?budget a =
  let budget =
    match budget with Some b -> b | None -> Budget.ambient ()
  in
  if not (Afsa.has_eps a) then a
  else
    let edges, finals, ann =
      if Afsa.Packed.enabled () && Afsa.Packed.worth a then begin
        (* One fused sweep per state over the dense ε-closure CSR: the
           closure rows come out sorted ascending (dense ascending ==
           original-id ascending), so the finals test, the F.and_ fold
           and the budget tick all happen in exactly the order the map
           branch below uses. *)
        let module P = Afsa.Packed in
        let p = P.get a in
        let cl_off, cl_tgt = P.eps_closure_csr p in
        let edges = ref [] and finals = ref [] and ann = ref [] in
        for i = 0 to p.P.n - 1 do
          Budget.tick budget;
          let q = p.P.state_ids.(i) in
          let fin = ref false and f = ref F.True in
          for k = cl_off.(i) to cl_off.(i + 1) - 1 do
            let m = cl_tgt.(k) in
            if Bitset.mem p.P.finals m then fin := true;
            f := F.and_ p.P.ann.(m) !f;
            for e = p.P.row_off.(m) to p.P.row_off.(m + 1) - 1 do
              edges :=
                ( q,
                  p.P.syms.(p.P.row_sym.(e)),
                  p.P.state_ids.(p.P.row_tgt.(e)) )
                :: !edges
            done
          done;
          if !fin then finals := q :: !finals;
          let f = Chorev_formula.Simplify.simplify !f in
          if not (F.equal f F.True) then ann := (q, f) :: !ann
        done;
        (!edges, !finals, !ann)
      end
      else begin
        let states = Afsa.states a in
        let cl_tbl = Afsa.eps_closures a in
        let closure_of q = Hashtbl.find cl_tbl q in
        let edges =
          List.concat_map
            (fun q ->
              Budget.tick budget;
              ISet.fold
                (fun p acc ->
                  List.fold_left
                    (fun acc (sym, ts) ->
                      match sym with
                      | Sym.Eps -> acc
                      | Sym.L _ ->
                          List.fold_left
                            (fun acc t -> (q, sym, t) :: acc)
                            acc ts)
                    acc (Afsa.out_rows a p))
                (closure_of q) [])
            states
        in
        let finals =
          List.filter
            (fun q -> ISet.exists (Afsa.is_final a) (closure_of q))
            states
        in
        let ann =
          List.filter_map
            (fun q ->
              let f =
                ISet.fold
                  (fun p acc -> F.and_ (Afsa.annotation a p) acc)
                  (closure_of q) F.True
              in
              let f = Chorev_formula.Simplify.simplify f in
              if F.equal f F.True then None else Some (q, f))
            states
        in
        (edges, finals, ann)
      end
    in
    Afsa.make
      ~alphabet:(Afsa.alphabet a)
      ~start:(Afsa.start a) ~finals ~edges ~ann ()
    |> Afsa.trim_unreachable
