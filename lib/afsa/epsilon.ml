(** ε-closure and ε-elimination.

    View generation (Sec. 3.4) relabels foreign transitions with ε; the
    resulting automaton is then ε-eliminated before minimization.
    Annotations of states merged along ε-paths are combined by
    conjunction: every obligation of a state silently reachable from [q]
    is already an obligation at [q]. *)

module F = Chorev_formula.Syntax
module Budget = Chorev_guard.Budget
module ISet = Afsa.ISet

(** ε-closure of a state set. *)
let closure a set =
  let rec go seen = function
    | [] -> seen
    | q :: rest ->
        if ISet.mem q seen then go seen rest
        else go (ISet.add q seen) (Afsa.eps_succs a q @ rest)
  in
  go ISet.empty (ISet.elements set)

let closure_of a q = closure a (ISet.singleton q)

(* All ε-closures at once, memoized across states: states in the same
   ε-SCC share one closure set (physically), and each SCC's closure is
   the union of its members with the closures of its successor SCCs —
   computed once, in reverse topological order. Tarjan's algorithm with
   an explicit stack (views of long protocols produce ε-chains of
   unbounded depth, so no recursion), O(V + E) overall where the naive
   per-state closure is O(V · E). *)
let all_closures a states =
  let index = Hashtbl.create 64 in (* state -> DFS index *)
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let scc_stack = ref [] in
  let closures : (int, ISet.t) Hashtbl.t = Hashtbl.create 64 in
  let counter = ref 0 in
  let visit root =
    if not (Hashtbl.mem index root) then begin
      (* call-stack frames: (state, remaining successors) *)
      let enter q =
        Hashtbl.replace index q !counter;
        Hashtbl.replace lowlink q !counter;
        incr counter;
        scc_stack := q :: !scc_stack;
        Hashtbl.replace on_stack q ();
        (q, ref (Afsa.eps_succs a q))
      in
      let frames = ref [ enter root ] in
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (q, succs) :: rest -> (
            match !succs with
            | t :: ts ->
                succs := ts;
                if not (Hashtbl.mem index t) then frames := enter t :: !frames
                else if Hashtbl.mem on_stack t then
                  Hashtbl.replace lowlink q
                    (min (Hashtbl.find lowlink q) (Hashtbl.find index t))
            | [] ->
                (* q finished: pop its SCC if it is a root, then fold its
                   lowlink into the parent *)
                if Hashtbl.find lowlink q = Hashtbl.find index q then begin
                  (* collect the SCC *)
                  let rec pop members = function
                    | s :: tail ->
                        Hashtbl.remove on_stack s;
                        if s = q then (s :: members, tail)
                        else pop (s :: members) tail
                    | [] -> (members, [])
                  in
                  let members, tail = pop [] !scc_stack in
                  scc_stack := tail;
                  (* successors outside the SCC are already closed
                     (Tarjan emits SCCs in reverse topological order) *)
                  let cl =
                    List.fold_left
                      (fun acc s ->
                        List.fold_left
                          (fun acc t ->
                            match Hashtbl.find_opt closures t with
                            | Some c -> ISet.union c acc
                            | None -> acc (* t inside this SCC *))
                          (ISet.add s acc) (Afsa.eps_succs a s))
                      ISet.empty members
                  in
                  List.iter (fun s -> Hashtbl.replace closures s cl) members
                end;
                frames := rest;
                (match rest with
                | (p, _) :: _ ->
                    Hashtbl.replace lowlink p
                      (min (Hashtbl.find lowlink p) (Hashtbl.find lowlink q))
                | [] -> ()))
      done
    end
  in
  List.iter visit states;
  closures

(** Remove all ε-transitions, preserving the language. For each state
    [q], the new outgoing edges are the proper edges of all states in
    the ε-closure of [q]; [q] is final if its closure meets a final
    state; its annotation is the conjunction of the closure's
    annotations. Unreachable states are dropped. ε-closures are
    computed once per state per call (shared within ε-SCCs), not
    re-explored per state. *)
let eliminate ?budget a =
  let budget =
    match budget with Some b -> b | None -> Budget.ambient ()
  in
  if not (Afsa.has_eps a) then a
  else
    let states = Afsa.states a in
    let cl_tbl = all_closures a states in
    let closure_of q = Hashtbl.find cl_tbl q in
    let edges =
      List.concat_map
        (fun q ->
          Budget.tick budget;
          ISet.fold
            (fun p acc ->
              List.fold_left
                (fun acc (sym, ts) ->
                  match sym with
                  | Sym.Eps -> acc
                  | Sym.L _ ->
                      List.fold_left (fun acc t -> (q, sym, t) :: acc) acc ts)
                acc (Afsa.out_rows a p))
            (closure_of q) [])
        states
    in
    let finals =
      List.filter
        (fun q -> ISet.exists (Afsa.is_final a) (closure_of q))
        states
    in
    let ann =
      List.filter_map
        (fun q ->
          let f =
            ISet.fold
              (fun p acc -> F.and_ (Afsa.annotation a p) acc)
              (closure_of q) F.True
          in
          let f = Chorev_formula.Simplify.simplify f in
          if F.equal f F.True then None else Some (q, f))
        states
    in
    Afsa.make
      ~alphabet:(Afsa.alphabet a)
      ~start:(Afsa.start a) ~finals ~edges ~ann ()
    |> Afsa.trim_unreachable
