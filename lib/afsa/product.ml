(** Generic ε-tolerant product construction.

    Both intersection (Def. 3) and difference (Def. 4) of the paper are
    products over the pair state space: the automata synchronize on
    shared proper labels, and either side may take its ε-transitions
    alone. The final-state predicate and the annotation combiner are
    parameters. Only the reachable part is built.

    The construction is an explicit worklist over a hash table of pair
    states (no recursion — deep products such as long ladder protocols
    cannot overflow the stack), and it only iterates the *actual*
    outgoing edges of the left state instead of sweeping the whole
    product alphabet per state.

    Each worklist has two interchangeable kernels: the packed one pops
    int-packed [(l lsl 32) lor r] pair keys from a flat table and merges
    the two packed CSR out-rows pairwise (see {!Afsa.Packed}), and the
    original map-shaped one over {!Afsa.out_rows}, kept as the
    [CHOREV_NO_PACK] debug/oracle mode. Both kernels discover pairs in
    the same order and tick the budget once per popped pair, so state
    numbering, fuel-bounded outcomes and metrics are identical. *)

module F = Chorev_formula.Syntax
module Budget = Chorev_guard.Budget

(* Every product loop ticks its budget once per popped pair state, so
   a fuel bound translates directly into a bound on explored pairs. *)
let resolve = function Some b -> b | None -> Budget.ambient ()

module PairKey = struct
  type t = int * int

  let compare = compare
end

module PMap = Map.Make (PairKey)

type spec = {
  alphabet : Label.t list;  (** alphabet of the product *)
  final : int * int -> bool;
  combine_ann : F.t -> F.t -> F.t;
}

(* Worklist-level instrumentation (DESIGN.md §7): pair states explored
   across all product constructions, product edges generated, and pairs
   involving a virtual completion sink. The [add]s run once per product
   call (plus one branch per sink pair), so the counters are free on
   the inner loop even when metrics collection is on. *)
let c_pairs = Chorev_obs.Metrics.counter "afsa.product.pairs"
let c_edges = Chorev_obs.Metrics.counter "afsa.product.edges"
let c_sink_pairs = Chorev_obs.Metrics.counter "afsa.product.sink_pairs"

(* ------------------------------------------------------------------ *)
(* Packed-kernel plumbing                                              *)
(* ------------------------------------------------------------------ *)

module P = Afsa.Packed

(* Dense pair keys. Dense indexes are bounded by the state counts, far
   below 2^31, so the packing is exact. *)
let key i1 i2 = (i1 lsl 32) lor i2
let key_fst k = k lsr 32
let key_snd k = k land 0xFFFFFFFF

(* The polymorphic [Hashtbl.hash] folds an int's halves so that every
   diagonal key [(i lsl 32) lor i] collides on ONE hash value — a
   product's pair table would degenerate into a single linked-list
   bucket (quadratic discovery). Fischer/Knuth multiplicative mixing
   over the full word instead; the multiplier fits in 63-bit ints and
   the wrap-around is the point. *)
module PairTbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) (b : int) = a = b
  let hash k = (k * 0x2545F4914F6CDD1D) lsr 32 land 0x3FFFFFFF
end)

(* First edge index of symbol [sid] within row [lo, hi) of [row_sym]
   (rows are sorted by symbol id), or -1 when absent. *)
let find_group row_sym lo hi sid =
  let l = ref lo and h = ref hi in
  while !l < !h do
    let mid = (!l + !h) / 2 in
    if Array.unsafe_get row_sym mid < sid then l := mid + 1 else h := mid
  done;
  if !l < hi && row_sym.(!l) = sid then !l else -1

(* Left pack's symbol id → right pack's, or -1: both tables are
   ascending in the same symbol order, so one merge walk suffices — no
   per-call hashing of label strings (the per-call setup used to
   dominate products over large alphabets with tiny per-pair work). *)
let left_to_right pa pb =
  let nl = Array.length pa.P.syms and nr = Array.length pb.P.syms in
  let l2r = Array.make (max 1 nl) (-1) in
  let j = ref 0 in
  for i = 0 to nl - 1 do
    let s = pa.P.syms.(i) in
    while !j < nr && Sym.compare pb.P.syms.(!j) s < 0 do
      incr j
    done;
    if !j < nr && Sym.compare pb.P.syms.(!j) s = 0 then l2r.(i) <- !j
  done;
  l2r

let rec sorted_labels = function
  | a :: (b :: _ as rest) -> Label.compare a b <= 0 && sorted_labels rest
  | _ -> true

(* Per-symbol-id membership in the product alphabet. Product alphabets
   come from [Label.Set.elements] and arrive sorted, so the common case
   is another merge walk; unsorted caller-supplied lists fall back to a
   hash table. *)
let alpha_mask syms alphabet =
  if sorted_labels alphabet then begin
    let n = Array.length syms in
    let mask = Array.make (max 1 n) false in
    let al = ref alphabet in
    for i = 0 to n - 1 do
      match syms.(i) with
      | Sym.Eps -> ()
      | Sym.L l ->
          let rec skip () =
            match !al with
            | x :: rest when Label.compare x l < 0 ->
                al := rest;
                skip ()
            | _ -> ()
          in
          skip ();
          (match !al with
          | x :: _ when Label.compare x l = 0 -> mask.(i) <- true
          | _ -> ())
    done;
    mask
  end
  else begin
    let tbl = Hashtbl.create 64 in
    List.iter (fun l -> Hashtbl.replace tbl l ()) alphabet;
    Array.init (Array.length syms) (fun i ->
        match syms.(i) with Sym.L l -> Hashtbl.mem tbl l | Sym.Eps -> false)
  end

(* The discovery array doubles as the FIFO: [disc.(id)] is the pair key
   discovered as [id], and popping is a cursor walk — pairs are pushed
   in id order, exactly the [Queue] discipline of the map kernel. *)
let grow disc id k =
  let d = !disc in
  let d =
    if id < Array.length d then d
    else begin
      let nd = Array.make (2 * Array.length d) 0 in
      Array.blit d 0 nd 0 (Array.length d);
      disc := nd;
      nd
    end
  in
  d.(id) <- k

let finish spec ~s0 ~next ~edges ~finals ~anns ~pmap =
  Chorev_obs.Metrics.add c_pairs !next;
  if Chorev_obs.Metrics.is_enabled () then
    Chorev_obs.Metrics.add c_edges (List.length !edges);
  let auto =
    Afsa.make ~alphabet:spec.alphabet ~start:s0 ~finals:!finals ~edges:!edges
      ~ann:!anns ()
  in
  (auto, pmap)

(* ------------------------------------------------------------------ *)
(* Plain product                                                       *)
(* ------------------------------------------------------------------ *)

let run_packed ~budget spec a b =
  let pa = P.get a and pb = P.get b in
  let l2r = left_to_right pa pb in
  let alpha_l = alpha_mask pa.P.syms spec.alphabet in
  let next = ref 0 in
  let ids : int PairTbl.t = PairTbl.create 256 in
  let disc = ref (Array.make 256 0) in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let id_of i1 i2 =
    let k = key i1 i2 in
    match PairTbl.find_opt ids k with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        PairTbl.add ids k id;
        grow disc id k;
        if spec.final (pa.P.state_ids.(i1), pb.P.state_ids.(i2)) then
          finals := id :: !finals;
        let ann =
          Chorev_formula.Simplify.simplify
            (spec.combine_ann pa.P.ann.(i1) pb.P.ann.(i2))
        in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        id
  in
  let s0 = id_of pa.P.start pb.P.start in
  let cursor = ref 0 in
  while !cursor < !next do
    Budget.tick budget;
    let id = !cursor in
    let k = !disc.(id) in
    incr cursor;
    let i1 = key_fst k and i2 = key_snd k in
    (* lone ε-moves of the left (ε sorts before every proper symbol) *)
    for e = pa.P.eps_off.(i1) to pa.P.eps_off.(i1 + 1) - 1 do
      edges := (id, Sym.Eps, id_of pa.P.eps_tgt.(e) i2) :: !edges
    done;
    (* synchronized moves on shared in-alphabet labels *)
    let e = ref pa.P.row_off.(i1) in
    let hi = pa.P.row_off.(i1 + 1) in
    let rlo = pb.P.row_off.(i2) and rhi = pb.P.row_off.(i2 + 1) in
    while !e < hi do
      let sid = pa.P.row_sym.(!e) in
      let g0 = !e in
      while !e < hi && pa.P.row_sym.(!e) = sid do
        incr e
      done;
      (if alpha_l.(sid) then
         let rs = l2r.(sid) in
         if rs >= 0 then
           let r0 = find_group pb.P.row_sym rlo rhi rs in
           if r0 >= 0 then begin
             let r1 = ref r0 in
             while !r1 < rhi && pb.P.row_sym.(!r1) = rs do
               incr r1
             done;
             let sym = pa.P.syms.(sid) in
             for f1 = g0 to !e - 1 do
               let t1 = pa.P.row_tgt.(f1) in
               for f2 = r0 to !r1 - 1 do
                 edges := (id, sym, id_of t1 pb.P.row_tgt.(f2)) :: !edges
               done
             done
           end)
    done;
    (* lone ε-moves of the right *)
    for e = pb.P.eps_off.(i2) to pb.P.eps_off.(i2 + 1) - 1 do
      edges := (id, Sym.Eps, id_of i1 pb.P.eps_tgt.(e)) :: !edges
    done
  done;
  finish spec ~s0 ~next ~edges ~finals ~anns
    ~pmap:
      (PairTbl.fold
         (fun k id acc -> PMap.add ((pa.P.state_ids.(key_fst k), pb.P.state_ids.(key_snd k))) id acc)
         ids PMap.empty)

let run_map ~budget spec a b =
  let next = ref 0 in
  let ids : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let in_alpha =
    let tbl = Hashtbl.create 64 in
    List.iter (fun l -> Hashtbl.replace tbl l ()) spec.alphabet;
    fun l -> Hashtbl.mem tbl l
  in
  let pending = Queue.create () in
  let id_of ((q1, q2) as p) =
    match Hashtbl.find_opt ids p with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.add ids p id;
        if spec.final p then finals := id :: !finals;
        let ann =
          Chorev_formula.Simplify.simplify
            (spec.combine_ann (Afsa.annotation a q1) (Afsa.annotation b q2))
        in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        Queue.add (p, id) pending;
        id
  in
  let s0 = id_of (Afsa.start a, Afsa.start b) in
  while not (Queue.is_empty pending) do
    Budget.tick budget;
    let (q1, q2), id = Queue.pop pending in
    (* synchronized moves on shared labels, lone ε-moves of the left *)
    List.iter
      (fun (sym, t1s) ->
        match sym with
        | Sym.Eps ->
            List.iter
              (fun t1 -> edges := (id, Sym.Eps, id_of (t1, q2)) :: !edges)
              t1s
        | Sym.L l when in_alpha l -> (
            match Afsa.succ_list b q2 sym with
            | [] -> ()
            | t2s ->
                List.iter
                  (fun t1 ->
                    List.iter
                      (fun t2 -> edges := (id, sym, id_of (t1, t2)) :: !edges)
                      t2s)
                  t1s)
        | Sym.L _ -> ())
      (Afsa.out_rows a q1);
    (* lone ε-moves of the right *)
    List.iter
      (fun t2 -> edges := (id, Sym.Eps, id_of (q1, t2)) :: !edges)
      (Afsa.eps_succs b q2)
  done;
  finish spec ~s0 ~next ~edges ~finals ~anns
    ~pmap:(Hashtbl.fold (fun p id acc -> PMap.add p id acc) ids PMap.empty)

(** [run spec a b] builds the product automaton; state pairs are
    numbered densely in discovery (BFS) order, the start is
    [(start a, start b)] = 0. Returns the automaton together with the
    pair ↦ product-state map. *)
let run ?budget spec a b =
  let budget = resolve budget in
  if P.enabled () && (P.worth a || P.worth b) then run_packed ~budget spec a b
  else run_map ~budget spec a b

(* ------------------------------------------------------------------ *)
(* Virtually-completed products                                        *)
(* ------------------------------------------------------------------ *)

(* Definition 4 (difference) and the direct union assume *complete*
   automata. Materializing the completion adds |Q|·|Σ| sink edges —
   160k edges for a 400-state protocol over a 400-label alphabet —
   which used to dominate the cost of difference and union. The
   variants below keep the completion virtual: a sink is just a
   reserved integer outside the automaton's state space, a missing
   (state, symbol) pair moves to it implicitly, and sink states carry
   the default annotation [True]. Runs through an all-sink pair can
   never accept (both sides are total and sink-trapped), so such edges
   are pruned at generation time — exactly what [Afsa.trim] would do
   afterwards. In the packed kernels the sink is the dense index [n],
   one past the automaton's dense states. *)

(** A state id guaranteed outside [a]'s state space. *)
let sink_of a = 1 + List.fold_left max 0 (Afsa.states a)

let run_right_total_packed ~budget spec ~sink a b =
  let pa = P.get a and pb = P.get b in
  let l2r = left_to_right pa pb in
  let alpha_l = alpha_mask pa.P.syms spec.alphabet in
  let bsink = pb.P.n in
  let orig2 i2 = if i2 = bsink then sink else pb.P.state_ids.(i2) in
  let ann2 i2 = if i2 = bsink then F.True else pb.P.ann.(i2) in
  let next = ref 0 in
  let ids : int PairTbl.t = PairTbl.create 256 in
  let disc = ref (Array.make 256 0) in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let id_of i1 i2 =
    let k = key i1 i2 in
    match PairTbl.find_opt ids k with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        PairTbl.add ids k id;
        grow disc id k;
        if i2 = bsink then Chorev_obs.Metrics.incr c_sink_pairs;
        if spec.final (pa.P.state_ids.(i1), orig2 i2) then
          finals := id :: !finals;
        let ann =
          Chorev_formula.Simplify.simplify
            (spec.combine_ann pa.P.ann.(i1) (ann2 i2))
        in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        id
  in
  let s0 = id_of pa.P.start pb.P.start in
  let cursor = ref 0 in
  while !cursor < !next do
    Budget.tick budget;
    let id = !cursor in
    let k = !disc.(id) in
    incr cursor;
    let i1 = key_fst k and i2 = key_snd k in
    (* lone ε-moves of the left *)
    for e = pa.P.eps_off.(i1) to pa.P.eps_off.(i1 + 1) - 1 do
      edges := (id, Sym.Eps, id_of pa.P.eps_tgt.(e) i2) :: !edges
    done;
    let e = ref pa.P.row_off.(i1) in
    let hi = pa.P.row_off.(i1 + 1) in
    let rlo = if i2 = bsink then 0 else pb.P.row_off.(i2) in
    let rhi = if i2 = bsink then 0 else pb.P.row_off.(i2 + 1) in
    while !e < hi do
      let sid = pa.P.row_sym.(!e) in
      let g0 = !e in
      while !e < hi && pa.P.row_sym.(!e) = sid do
        incr e
      done;
      if alpha_l.(sid) then begin
        let sym = pa.P.syms.(sid) in
        let rs = l2r.(sid) in
        let r0 = if rs < 0 then -1 else find_group pb.P.row_sym rlo rhi rs in
        if r0 < 0 then
          (* right side has no move: it falls to (or stays in) the sink *)
          for f1 = g0 to !e - 1 do
            edges := (id, sym, id_of pa.P.row_tgt.(f1) bsink) :: !edges
          done
        else begin
          let r1 = ref r0 in
          while !r1 < rhi && pb.P.row_sym.(!r1) = rs do
            incr r1
          done;
          for f1 = g0 to !e - 1 do
            let t1 = pa.P.row_tgt.(f1) in
            for f2 = r0 to !r1 - 1 do
              edges := (id, sym, id_of t1 pb.P.row_tgt.(f2)) :: !edges
            done
          done
        end
      end
    done
  done;
  finish spec ~s0 ~next ~edges ~finals ~anns
    ~pmap:
      (PairTbl.fold
         (fun k id acc ->
           PMap.add (pa.P.state_ids.(key_fst k), orig2 (key_snd k)) id acc)
         ids PMap.empty)

let run_right_total_map ~budget spec ~sink a b =
  let ann_b q2 = if q2 = sink then F.True else Afsa.annotation b q2 in
  let next = ref 0 in
  let ids : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let in_alpha =
    let tbl = Hashtbl.create 64 in
    List.iter (fun l -> Hashtbl.replace tbl l ()) spec.alphabet;
    fun l -> Hashtbl.mem tbl l
  in
  let pending = Queue.create () in
  let id_of ((q1, q2) as p) =
    match Hashtbl.find_opt ids p with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.add ids p id;
        if q2 = sink then Chorev_obs.Metrics.incr c_sink_pairs;
        if spec.final p then finals := id :: !finals;
        let ann =
          Chorev_formula.Simplify.simplify
            (spec.combine_ann (Afsa.annotation a q1) (ann_b q2))
        in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        Queue.add (p, id) pending;
        id
  in
  let succ_b q2 sym =
    if q2 = sink then [ sink ]
    else
      match Afsa.succ_list b q2 sym with [] -> [ sink ] | ts -> ts
  in
  let s0 = id_of (Afsa.start a, Afsa.start b) in
  while not (Queue.is_empty pending) do
    Budget.tick budget;
    let (q1, q2), id = Queue.pop pending in
    List.iter
      (fun (sym, t1s) ->
        match sym with
        | Sym.Eps ->
            List.iter
              (fun t1 -> edges := (id, Sym.Eps, id_of (t1, q2)) :: !edges)
              t1s
        | Sym.L l when in_alpha l ->
            let t2s = succ_b q2 sym in
            List.iter
              (fun t1 ->
                List.iter
                  (fun t2 -> edges := (id, sym, id_of (t1, t2)) :: !edges)
                  t2s)
              t1s
        | Sym.L _ -> ())
      (Afsa.out_rows a q1)
  done;
  finish spec ~s0 ~next ~edges ~finals ~anns
    ~pmap:(Hashtbl.fold (fun p id acc -> PMap.add p id acc) ids PMap.empty)

(** [run_right_total spec ~sink a b] is {!run} with the right automaton
    implicitly completed over [spec.alphabet]: any missing (state,
    proper symbol) moves to [sink], which traps. [b] must be ε-free
    (determinize it first); [spec.final] and [spec.combine_ann] see
    [sink] as a regular right-state with annotation [True]. *)
let run_right_total ?budget spec ~sink a b =
  let budget = resolve budget in
  if P.enabled () && (P.worth a || P.worth b) then
    run_right_total_packed ~budget spec ~sink a b
  else run_right_total_map ~budget spec ~sink a b

let run_both_total_packed ~budget spec ~sink_a ~sink_b a b =
  let pa = P.get a and pb = P.get b in
  let nl = Array.length pa.P.syms and nr = Array.length pb.P.syms in
  (* merge both symbol tables (each ascending in the same global order)
     into one universe; [l2g]/[r2g] lift pack-local ids into it *)
  let l2g = Array.make (max 1 nl) 0 and r2g = Array.make (max 1 nr) 0 in
  let g_syms = Array.make (max 1 (nl + nr)) Sym.Eps in
  let ng = ref 0 in
  let i = ref 0 and j = ref 0 in
  while !i < nl || !j < nr do
    let c =
      if !i >= nl then 1
      else if !j >= nr then -1
      else Sym.compare pa.P.syms.(!i) pb.P.syms.(!j)
    in
    let g = !ng in
    if c <= 0 then begin
      g_syms.(g) <- pa.P.syms.(!i);
      l2g.(!i) <- g;
      incr i
    end;
    if c >= 0 then begin
      g_syms.(g) <- pb.P.syms.(!j);
      r2g.(!j) <- g;
      incr j
    end;
    incr ng
  done;
  let alpha_g = alpha_mask (Array.sub g_syms 0 (max 1 !ng)) spec.alphabet in
  let asink = pa.P.n and bsink = pb.P.n in
  let orig1 i1 = if i1 = asink then sink_a else pa.P.state_ids.(i1) in
  let orig2 i2 = if i2 = bsink then sink_b else pb.P.state_ids.(i2) in
  let ann1 i1 = if i1 = asink then F.True else pa.P.ann.(i1) in
  let ann2 i2 = if i2 = bsink then F.True else pb.P.ann.(i2) in
  let next = ref 0 in
  let ids : int PairTbl.t = PairTbl.create 256 in
  let disc = ref (Array.make 256 0) in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let id_of i1 i2 =
    let k = key i1 i2 in
    match PairTbl.find_opt ids k with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        PairTbl.add ids k id;
        grow disc id k;
        if i1 = asink || i2 = bsink then Chorev_obs.Metrics.incr c_sink_pairs;
        if spec.final (orig1 i1, orig2 i2) then finals := id :: !finals;
        let ann =
          Chorev_formula.Simplify.simplify
            (spec.combine_ann (ann1 i1) (ann2 i2))
        in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        id
  in
  let s0 = id_of pa.P.start pb.P.start in
  let cursor = ref 0 in
  while !cursor < !next do
    Budget.tick budget;
    let id = !cursor in
    let k = !disc.(id) in
    incr cursor;
    let i1 = key_fst k and i2 = key_snd k in
    if i1 <> asink && pa.P.eps_off.(i1) <> pa.P.eps_off.(i1 + 1) then
      invalid_arg "Product.run_both_total: automaton has ε-transitions";
    if i2 <> bsink && pb.P.eps_off.(i2) <> pb.P.eps_off.(i2 + 1) then
      invalid_arg "Product.run_both_total: automaton has ε-transitions";
    (* merge-walk both out-rows by global symbol id; a side without a
       move on the current symbol falls to its sink *)
    let el = ref (if i1 = asink then 0 else pa.P.row_off.(i1)) in
    let ehl = if i1 = asink then 0 else pa.P.row_off.(i1 + 1) in
    let er = ref (if i2 = bsink then 0 else pb.P.row_off.(i2)) in
    let ehr = if i2 = bsink then 0 else pb.P.row_off.(i2 + 1) in
    while !el < ehl || !er < ehr do
      let gl = if !el < ehl then l2g.(pa.P.row_sym.(!el)) else max_int in
      let gr = if !er < ehr then r2g.(pb.P.row_sym.(!er)) else max_int in
      let g = min gl gr in
      let l0 = !el in
      if gl = g then begin
        let sid = pa.P.row_sym.(!el) in
        while !el < ehl && pa.P.row_sym.(!el) = sid do
          incr el
        done
      end;
      let r0 = !er in
      if gr = g then begin
        let sid = pb.P.row_sym.(!er) in
        while !er < ehr && pb.P.row_sym.(!er) = sid do
          incr er
        done
      end;
      if alpha_g.(g) then begin
        let sym = g_syms.(g) in
        if gl = g && gr = g then
          for f1 = l0 to !el - 1 do
            let t1 = pa.P.row_tgt.(f1) in
            for f2 = r0 to !er - 1 do
              edges := (id, sym, id_of t1 pb.P.row_tgt.(f2)) :: !edges
            done
          done
        else if gl = g then
          for f1 = l0 to !el - 1 do
            edges := (id, sym, id_of pa.P.row_tgt.(f1) bsink) :: !edges
          done
        else
          for f2 = r0 to !er - 1 do
            edges := (id, sym, id_of asink pb.P.row_tgt.(f2)) :: !edges
          done
      end
    done
  done;
  finish spec ~s0 ~next ~edges ~finals ~anns
    ~pmap:
      (PairTbl.fold
         (fun k id acc ->
           PMap.add (orig1 (key_fst k), orig2 (key_snd k)) id acc)
         ids PMap.empty)

let run_both_total_map ~budget spec ~sink_a ~sink_b a b =
  let ann_a q1 = if q1 = sink_a then F.True else Afsa.annotation a q1 in
  let ann_b q2 = if q2 = sink_b then F.True else Afsa.annotation b q2 in
  let next = ref 0 in
  let ids : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let pending = Queue.create () in
  let id_of ((q1, q2) as p) =
    match Hashtbl.find_opt ids p with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.add ids p id;
        if q1 = sink_a || q2 = sink_b then
          Chorev_obs.Metrics.incr c_sink_pairs;
        if spec.final p then finals := id :: !finals;
        let ann =
          Chorev_formula.Simplify.simplify
            (spec.combine_ann (ann_a q1) (ann_b q2))
        in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        Queue.add (p, id) pending;
        id
  in
  let in_alpha =
    let tbl = Hashtbl.create 64 in
    List.iter (fun l -> Hashtbl.replace tbl l ()) spec.alphabet;
    fun l -> Hashtbl.mem tbl l
  in
  let rows side sink q =
    if q = sink then [] else Afsa.out_rows side q
  in
  let succ side sink q sym =
    if q = sink then [ sink ]
    else match Afsa.succ_list side q sym with [] -> [ sink ] | ts -> ts
  in
  let s0 = id_of (Afsa.start a, Afsa.start b) in
  while not (Queue.is_empty pending) do
    Budget.tick budget;
    let (q1, q2), id = Queue.pop pending in
    (* the union of both sides' real symbols; anything else moves both
       sides to their sink — pruned. Symbols are visited in ascending
       order so the discovery sequence is deterministic and matches the
       packed kernel's merge-walk. *)
    let syms = Hashtbl.create 8 in
    let collect side sink q =
      List.iter
        (fun (sym, _) ->
          match sym with
          | Sym.Eps ->
              invalid_arg "Product.run_both_total: automaton has ε-transitions"
          | Sym.L l -> if in_alpha l then Hashtbl.replace syms sym ())
        (rows side sink q)
    in
    collect a sink_a q1;
    collect b sink_b q2;
    let sym_list =
      List.sort Sym.compare (Hashtbl.fold (fun s () acc -> s :: acc) syms [])
    in
    List.iter
      (fun sym ->
        List.iter
          (fun t1 ->
            List.iter
              (fun t2 -> edges := (id, sym, id_of (t1, t2)) :: !edges)
              (succ b sink_b q2 sym))
          (succ a sink_a q1 sym))
      sym_list
  done;
  finish spec ~s0 ~next ~edges ~finals ~anns
    ~pmap:(Hashtbl.fold (fun p id acc -> PMap.add p id acc) ids PMap.empty)

(** [run_both_total spec ~sink_a ~sink_b a b] virtually completes both
    sides over [spec.alphabet]. Both automata must be ε-free. Pairs
    where both sides are trapped in their sink are pruned (they can
    never accept). *)
let run_both_total ?budget spec ~sink_a ~sink_b a b =
  let budget = resolve budget in
  if P.enabled () && (P.worth a || P.worth b) then
    run_both_total_packed ~budget spec ~sink_a ~sink_b a b
  else run_both_total_map ~budget spec ~sink_a ~sink_b a b
