(** Generic ε-tolerant product construction.

    Both intersection (Def. 3) and difference (Def. 4) of the paper are
    products over the pair state space: the automata synchronize on
    shared proper labels, and either side may take its ε-transitions
    alone. The final-state predicate and the annotation combiner are
    parameters. Only the reachable part is built.

    The construction is an explicit worklist over a hash table of pair
    states (no recursion — deep products such as long ladder protocols
    cannot overflow the stack), and it only iterates the *actual*
    outgoing edges of the left state (via {!Afsa.out_rows}) instead of
    sweeping the whole product alphabet per state. *)

module F = Chorev_formula.Syntax
module Budget = Chorev_guard.Budget

(* Every product loop ticks its budget once per popped pair state, so
   a fuel bound translates directly into a bound on explored pairs. *)
let resolve = function Some b -> b | None -> Budget.ambient ()

module PairKey = struct
  type t = int * int

  let compare = compare
end

module PMap = Map.Make (PairKey)

type spec = {
  alphabet : Label.t list;  (** alphabet of the product *)
  final : int * int -> bool;
  combine_ann : F.t -> F.t -> F.t;
}

(* Worklist-level instrumentation (DESIGN.md §7): pair states explored
   across all product constructions, product edges generated, and pairs
   involving a virtual completion sink. The [add]s run once per product
   call (plus one branch per sink pair), so the counters are free on
   the inner loop even when metrics collection is on. *)
let c_pairs = Chorev_obs.Metrics.counter "afsa.product.pairs"
let c_edges = Chorev_obs.Metrics.counter "afsa.product.edges"
let c_sink_pairs = Chorev_obs.Metrics.counter "afsa.product.sink_pairs"

(** [run spec a b] builds the product automaton; state pairs are
    numbered densely in discovery (BFS) order, the start is
    [(start a, start b)] = 0. Returns the automaton together with the
    pair ↦ product-state map. *)
let run ?budget spec a b =
  let budget = resolve budget in
  let next = ref 0 in
  let ids : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let in_alpha =
    let tbl = Hashtbl.create 64 in
    List.iter (fun l -> Hashtbl.replace tbl l ()) spec.alphabet;
    fun l -> Hashtbl.mem tbl l
  in
  let pending = Queue.create () in
  let id_of ((q1, q2) as p) =
    match Hashtbl.find_opt ids p with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.add ids p id;
        if spec.final p then finals := id :: !finals;
        let ann =
          Chorev_formula.Simplify.simplify
            (spec.combine_ann (Afsa.annotation a q1) (Afsa.annotation b q2))
        in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        Queue.add (p, id) pending;
        id
  in
  let s0 = id_of (Afsa.start a, Afsa.start b) in
  while not (Queue.is_empty pending) do
    Budget.tick budget;
    let (q1, q2), id = Queue.pop pending in
    (* synchronized moves on shared labels, lone ε-moves of the left *)
    List.iter
      (fun (sym, t1s) ->
        match sym with
        | Sym.Eps ->
            List.iter
              (fun t1 -> edges := (id, Sym.Eps, id_of (t1, q2)) :: !edges)
              t1s
        | Sym.L l when in_alpha l -> (
            match Afsa.succ_list b q2 sym with
            | [] -> ()
            | t2s ->
                List.iter
                  (fun t1 ->
                    List.iter
                      (fun t2 -> edges := (id, sym, id_of (t1, t2)) :: !edges)
                      t2s)
                  t1s)
        | Sym.L _ -> ())
      (Afsa.out_rows a q1);
    (* lone ε-moves of the right *)
    List.iter
      (fun t2 -> edges := (id, Sym.Eps, id_of (q1, t2)) :: !edges)
      (Afsa.eps_succs b q2)
  done;
  Chorev_obs.Metrics.add c_pairs !next;
  if Chorev_obs.Metrics.is_enabled () then
    Chorev_obs.Metrics.add c_edges (List.length !edges);
  let auto =
    Afsa.make ~alphabet:spec.alphabet ~start:s0 ~finals:!finals ~edges:!edges
      ~ann:!anns ()
  in
  let pmap = Hashtbl.fold (fun p id acc -> PMap.add p id acc) ids PMap.empty in
  (auto, pmap)

(* ------------------------------------------------------------------ *)
(* Virtually-completed products                                        *)
(* ------------------------------------------------------------------ *)

(* Definition 4 (difference) and the direct union assume *complete*
   automata. Materializing the completion adds |Q|·|Σ| sink edges —
   160k edges for a 400-state protocol over a 400-label alphabet —
   which used to dominate the cost of difference and union. The
   variants below keep the completion virtual: a sink is just a
   reserved integer outside the automaton's state space, a missing
   (state, symbol) pair moves to it implicitly, and sink states carry
   the default annotation [True]. Runs through an all-sink pair can
   never accept (both sides are total and sink-trapped), so such edges
   are pruned at generation time — exactly what [Afsa.trim] would do
   afterwards. *)

(** A state id guaranteed outside [a]'s state space. *)
let sink_of a = 1 + List.fold_left max 0 (Afsa.states a)

(** [run_right_total spec ~sink a b] is {!run} with the right automaton
    implicitly completed over [spec.alphabet]: any missing (state,
    proper symbol) moves to [sink], which traps. [b] must be ε-free
    (determinize it first); [spec.final] and [spec.combine_ann] see
    [sink] as a regular right-state with annotation [True]. *)
let run_right_total ?budget spec ~sink a b =
  let budget = resolve budget in
  let ann_b q2 = if q2 = sink then F.True else Afsa.annotation b q2 in
  let next = ref 0 in
  let ids : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let in_alpha =
    let tbl = Hashtbl.create 64 in
    List.iter (fun l -> Hashtbl.replace tbl l ()) spec.alphabet;
    fun l -> Hashtbl.mem tbl l
  in
  let pending = Queue.create () in
  let id_of ((q1, q2) as p) =
    match Hashtbl.find_opt ids p with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.add ids p id;
        if q2 = sink then Chorev_obs.Metrics.incr c_sink_pairs;
        if spec.final p then finals := id :: !finals;
        let ann =
          Chorev_formula.Simplify.simplify
            (spec.combine_ann (Afsa.annotation a q1) (ann_b q2))
        in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        Queue.add (p, id) pending;
        id
  in
  let succ_b q2 sym =
    if q2 = sink then [ sink ]
    else
      match Afsa.succ_list b q2 sym with [] -> [ sink ] | ts -> ts
  in
  let s0 = id_of (Afsa.start a, Afsa.start b) in
  while not (Queue.is_empty pending) do
    Budget.tick budget;
    let (q1, q2), id = Queue.pop pending in
    List.iter
      (fun (sym, t1s) ->
        match sym with
        | Sym.Eps ->
            List.iter
              (fun t1 -> edges := (id, Sym.Eps, id_of (t1, q2)) :: !edges)
              t1s
        | Sym.L l when in_alpha l ->
            let t2s = succ_b q2 sym in
            List.iter
              (fun t1 ->
                List.iter
                  (fun t2 -> edges := (id, sym, id_of (t1, t2)) :: !edges)
                  t2s)
              t1s
        | Sym.L _ -> ())
      (Afsa.out_rows a q1)
  done;
  Chorev_obs.Metrics.add c_pairs !next;
  if Chorev_obs.Metrics.is_enabled () then
    Chorev_obs.Metrics.add c_edges (List.length !edges);
  let auto =
    Afsa.make ~alphabet:spec.alphabet ~start:s0 ~finals:!finals ~edges:!edges
      ~ann:!anns ()
  in
  let pmap = Hashtbl.fold (fun p id acc -> PMap.add p id acc) ids PMap.empty in
  (auto, pmap)

(** [run_both_total spec ~sink_a ~sink_b a b] virtually completes both
    sides over [spec.alphabet]. Both automata must be ε-free. Pairs
    where both sides are trapped in their sink are pruned (they can
    never accept). *)
let run_both_total ?budget spec ~sink_a ~sink_b a b =
  let budget = resolve budget in
  let ann_a q1 = if q1 = sink_a then F.True else Afsa.annotation a q1 in
  let ann_b q2 = if q2 = sink_b then F.True else Afsa.annotation b q2 in
  let next = ref 0 in
  let ids : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let pending = Queue.create () in
  let id_of ((q1, q2) as p) =
    match Hashtbl.find_opt ids p with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.add ids p id;
        if q1 = sink_a || q2 = sink_b then
          Chorev_obs.Metrics.incr c_sink_pairs;
        if spec.final p then finals := id :: !finals;
        let ann =
          Chorev_formula.Simplify.simplify
            (spec.combine_ann (ann_a q1) (ann_b q2))
        in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        Queue.add (p, id) pending;
        id
  in
  let in_alpha =
    let tbl = Hashtbl.create 64 in
    List.iter (fun l -> Hashtbl.replace tbl l ()) spec.alphabet;
    fun l -> Hashtbl.mem tbl l
  in
  let rows side sink q =
    if q = sink then [] else Afsa.out_rows side q
  in
  let succ side sink q sym =
    if q = sink then [ sink ]
    else match Afsa.succ_list side q sym with [] -> [ sink ] | ts -> ts
  in
  let s0 = id_of (Afsa.start a, Afsa.start b) in
  while not (Queue.is_empty pending) do
    Budget.tick budget;
    let (q1, q2), id = Queue.pop pending in
    (* the union of both sides' real symbols; anything else moves both
       sides to their sink — pruned *)
    let syms = Hashtbl.create 8 in
    let collect side sink q =
      List.iter
        (fun (sym, _) ->
          match sym with
          | Sym.Eps ->
              invalid_arg "Product.run_both_total: automaton has ε-transitions"
          | Sym.L l -> if in_alpha l then Hashtbl.replace syms sym ())
        (rows side sink q)
    in
    collect a sink_a q1;
    collect b sink_b q2;
    Hashtbl.iter
      (fun sym () ->
        List.iter
          (fun t1 ->
            List.iter
              (fun t2 -> edges := (id, sym, id_of (t1, t2)) :: !edges)
              (succ b sink_b q2 sym))
          (succ a sink_a q1 sym))
      syms
  done;
  Chorev_obs.Metrics.add c_pairs !next;
  if Chorev_obs.Metrics.is_enabled () then
    Chorev_obs.Metrics.add c_edges (List.length !edges);
  let auto =
    Afsa.make ~alphabet:spec.alphabet ~start:s0 ~finals:!finals ~edges:!edges
      ~ann:!anns ()
  in
  let pmap = Hashtbl.fold (fun p id acc -> PMap.add p id acc) ids PMap.empty in
  (auto, pmap)
