(** The aFSA algebra of the paper: intersection (Def. 3), complement,
    difference (Def. 4) and union (Sec. 5.2, step 2). *)

module F = Chorev_formula.Syntax

(* Per-operation call counters (DESIGN.md §7). The worklist-level
   counters (pairs/edges/sink pairs) live in {!Product}. *)
let c_intersect = Chorev_obs.Metrics.counter "afsa.ops.intersect"
let c_complement = Chorev_obs.Metrics.counter "afsa.ops.complement"
let c_difference = Chorev_obs.Metrics.counter "afsa.ops.difference"
let c_union = Chorev_obs.Metrics.counter "afsa.ops.union"

let inter_alphabet a b =
  Label.Set.elements
    (Label.Set.inter
       (Label.Set.of_list (Afsa.alphabet a))
       (Label.Set.of_list (Afsa.alphabet b)))

let union_alphabet a b =
  Label.Set.elements
    (Label.Set.union
       (Label.Set.of_list (Afsa.alphabet a))
       (Label.Set.of_list (Afsa.alphabet b)))

(** Intersection of two aFSAs (Definition 3): cross product over the
    shared alphabet, finals are pairs of finals, annotations combined by
    conjunction. ε-transitions of either side are interleaved. *)
let intersect ?budget a b =
  Chorev_obs.Metrics.incr c_intersect;
  let spec =
    {
      Product.alphabet = inter_alphabet a b;
      final = (fun (q1, q2) -> Afsa.is_final a q1 && Afsa.is_final b q2);
      combine_ann = F.and_;
    }
  in
  fst (Product.run ?budget spec a b)

(** Complement over an explicit alphabet (the automaton is determinized
    and completed first; the result is annotation-free since the
    mandatory-message semantics of annotations is not closed under
    complement — cf. DESIGN.md). *)
let complement ?budget ?(over = []) a =
  Chorev_obs.Metrics.incr c_complement;
  let d = Determinize.determinize ?budget a in
  let d = Complete.complete ?budget ~over d in
  let finals =
    List.filter (fun q -> not (Afsa.is_final d q)) (Afsa.states d)
  in
  Afsa.set_finals (Afsa.clear_annotations d) finals

(** Difference [a \ b] (Definition 4): the sequences of [a] not accepted
    by [b]; annotations of [a] are retained ([QA1] in the paper). The
    definition assumes complete automata; completion is over the union
    alphabet so that sequences of [a] using messages unknown to [b] are
    kept (as in the paper's Fig. 13a, where the new [cancelOp] message
    survives the difference with the old buyer process). *)
let difference ?budget a b =
  Chorev_obs.Metrics.incr c_difference;
  let over = union_alphabet a b in
  let db = Determinize.determinize ?budget b in
  let sink = Product.sink_of db in
  (* the right side is the complement of [db] completed over [over],
     kept virtual: the sink and every non-final state of [db] are
     final in the complement. *)
  let spec =
    {
      Product.alphabet = over;
      final =
        (fun (q1, q2) ->
          Afsa.is_final a q1 && (q2 = sink || not (Afsa.is_final db q2)));
      combine_ann = (fun ann_a _ -> ann_a);
    }
  in
  fst (Product.run_right_total ?budget spec ~sink a db) |> Afsa.trim

(** Direct union: product of the two automata completed over the union
    alphabet, final when either side is final. Annotations are combined
    by conjunction — obligations of both protocols apply where their
    behaviours overlap, and each completion sink carries [true] so that
    the other side's obligations pass through unchanged (this matches
    the paper's Fig. 13b, where the buyer's original annotation and the
    new [cancelOp AND deliveryOp] annotation coexist). *)
let union ?budget a b =
  Chorev_obs.Metrics.incr c_union;
  let over = union_alphabet a b in
  let da = Determinize.determinize ?budget a in
  let db = Determinize.determinize ?budget b in
  let sink_a = Product.sink_of da and sink_b = Product.sink_of db in
  (* both sides virtually completed over [over]; a sink is never final,
     so [is_final] on a sink id is safely [false]. *)
  let spec =
    {
      Product.alphabet = over;
      final = (fun (q1, q2) -> Afsa.is_final da q1 || Afsa.is_final db q2);
      combine_ann = F.and_;
    }
  in
  fst (Product.run_both_total ?budget spec ~sink_a ~sink_b da db) |> Afsa.trim

(** Union by De Morgan, as the paper states it:
    [A ∪ B ≡ ¬(¬A ∩ ¬B)]. Language-equivalent to {!union} but
    annotation-free; kept for fidelity and cross-checked in tests. *)
let union_de_morgan ?budget a b =
  let over = union_alphabet a b in
  complement ?budget ~over
    (intersect ?budget
       (complement ?budget ~over a)
       (complement ?budget ~over b))
