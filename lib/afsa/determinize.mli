(** Subset construction. Member annotations combine by disjunction —
    the weakest obligation of whichever state is actually inhabited —
    following the annotated deterministic FSAs of Wombacher et al.
    (ICWS 2004). *)

val determinize : ?budget:Chorev_guard.Budget.t -> Afsa.t -> Afsa.t
(** ε-free, deterministic, densely numbered from the start. *)
