(** Annotated Finite State Automata (aFSA), Definition 2 of the paper.

    An aFSA is a tuple [(Q, Σ, Δ, q0, F, QA)]: states, message alphabet,
    labeled transitions (possibly ε), a start state, final states, and a
    relation of states to logical formulas. A state's annotation
    expresses which outgoing messages are mandatory: a variable [v]
    evaluates to true iff a [v]-labeled transition leads to a state from
    which acceptance is possible (see {!Emptiness}). States without an
    entry in [QA] carry the default annotation [true]. *)

module F = Chorev_formula.Syntax
module ISet = Set.Make (Int)
module IMap = Map.Make (Int)

(* The packed (CSR) compilation of an automaton — flat int arrays the
   hot kernels (determinize, ε-elimination, product, emptiness) run
   over instead of the functional maps in [delta]. Defined before
   [index] so the cache slot can hold one; the compiler itself
   ([Packed.get]) lives below, after the automaton type. *)
module Packed0 = struct
  type t = {
    n : int;  (* dense state count *)
    state_ids : int array;  (* dense → original id, strictly ascending *)
    start : int;  (* dense index of the start state *)
    finals : Bitset.t;  (* over dense indexes *)
    syms : Sym.t array;  (* proper symbols, ascending ([Sym.Map] order) *)
    row_off : int array;  (* n+1: proper out-row extents per dense state *)
    row_sym : int array;  (* per edge: symbol id; rows sorted by (sym, tgt) *)
    row_tgt : int array;  (* per edge: dense target *)
    eps_off : int array;  (* n+1: ε out-row extents *)
    eps_tgt : int array;  (* per ε-edge: dense target, sorted within row *)
    ann : F.t array;  (* per dense state; [True] when absent from [ann] *)
    ann_nontrivial : Bitset.t;  (* states with a non-[True] annotation *)
    mutable preds : (int array * int array) option;
        (* distinct-predecessor CSR (off, src), built on first backward
           traversal — same laziness as the map index's [preds_tbl] *)
    mutable eps_cl_csr : (int array * int array) option;
        (* per-state ε-closure CSR (off, tgt) over dense indexes, rows
           sorted ascending; built on first ε-elimination *)
  }
end

(* Derived indexes over [delta], built lazily on first use and cached
   in the automaton (see {!index}). Purely derived data: every
   constructor / modifier invalidates the cache, so the maps in [delta]
   remain the single source of truth. Laziness is per component —
   grouped rows materialize per *state* on demand (a product over a
   huge completed automaton only ever touches the reachable fringe),
   and the predecessor table is built in one O(|Δ|) pass the first time
   a backward traversal asks for it. *)
type index = {
  rows : (int, (Sym.t * int list) list) Hashtbl.t;
      (* outgoing edges grouped by symbol, filled per state on demand *)
  mutable preds_tbl : (int, int list) Hashtbl.t option;
      (* distinct predecessor states (any symbol), whole-automaton *)
  mutable packed : Packed0.t option;
      (* CSR compilation, built once per automaton on first hot-kernel
         entry; invalidated with the rest of the index *)
  mutable eps_cl : (int, ISet.t) Hashtbl.t option;
      (* all ε-closures (original ids), SCC-shared; computed once *)
}

type t = {
  states : ISet.t;
  alphabet : Label.Set.t;
  delta : ISet.t Sym.Map.t IMap.t; (* state -> symbol -> target set *)
  start : int;
  finals : ISet.t;
  ann : F.t IMap.t; (* absent entry = True *)
  mutable idx : index option; (* lazily-built cache, never set by hand *)
  mutable fp : string option;
      (* cached structural fingerprint (see {!Fingerprint}); like [idx]
         purely derived, so every structural modifier resets it — but
         [copy] keeps it, the structure being shared *)
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let empty_delta = IMap.empty

let add_edge_delta delta (s, sym, t) =
  let row = Option.value ~default:Sym.Map.empty (IMap.find_opt s delta) in
  let tgts = Option.value ~default:ISet.empty (Sym.Map.find_opt sym row) in
  IMap.add s (Sym.Map.add sym (ISet.add t tgts) row) delta

(** [make ~start ~finals ~edges ~ann ()] builds an aFSA. States are
    inferred from [start], [finals], [edges] and [ann]; the alphabet from
    the edge labels (ε excluded) unless [alphabet] is given explicitly
    (it is then unioned with the inferred one). Annotations equal to
    [True] are dropped. *)
let make ?(alphabet = []) ~start ~finals ~edges ?(ann = []) () =
  let states =
    List.fold_left
      (fun acc (s, _, t) -> ISet.add s (ISet.add t acc))
      (ISet.add start (ISet.of_list finals))
      edges
  in
  let states =
    List.fold_left (fun acc (q, _) -> ISet.add q acc) states ann
  in
  let alpha =
    List.fold_left
      (fun acc (_, sym, _) ->
        match sym with Sym.Eps -> acc | Sym.L l -> Label.Set.add l acc)
      (Label.Set.of_list alphabet) edges
  in
  let delta = List.fold_left add_edge_delta empty_delta edges in
  let ann =
    List.fold_left
      (fun acc (q, f) ->
        let f = Chorev_formula.Simplify.simplify f in
        if F.equal f F.True then acc else IMap.add q f acc)
      IMap.empty ann
  in
  {
    states;
    alphabet = alpha;
    delta;
    start;
    finals = ISet.of_list finals;
    ann;
    idx = None;
    fp = None;
  }

(** Convenience: edges given as [(s, "A#B#msg", t)] with ["" ] for ε. *)
let of_strings ?alphabet ~start ~finals ~edges ?(ann = []) () =
  let edges =
    List.map
      (fun (s, l, t) ->
        if String.equal l "" then (s, Sym.Eps, t)
        else (s, Sym.L (Label.of_string_exn l), t))
      edges
  in
  let alphabet = Option.map (List.map Label.of_string_exn) alphabet in
  make ?alphabet ~start ~finals ~edges ~ann ()

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let states a = ISet.elements a.states
let num_states a = ISet.cardinal a.states
let alphabet a = Label.Set.elements a.alphabet
let start a = a.start
let finals a = ISet.elements a.finals
let is_final a q = ISet.mem q a.finals

(** Annotation of a state ([True] when absent). *)
let annotation a q = Option.value ~default:F.True (IMap.find_opt q a.ann)

let annotations a = IMap.bindings a.ann
let has_annotations a = not (IMap.is_empty a.ann)

(** Successors of [q] on symbol [sym]. *)
let step a q sym =
  match IMap.find_opt q a.delta with
  | None -> ISet.empty
  | Some row -> Option.value ~default:ISet.empty (Sym.Map.find_opt sym row)

(** All outgoing edges of [q] as [(symbol, target)] pairs. *)
let out_edges a q =
  match IMap.find_opt q a.delta with
  | None -> []
  | Some row ->
      Sym.Map.fold
        (fun sym tgts acc ->
          ISet.fold (fun t acc -> (sym, t) :: acc) tgts acc)
        row []
      |> List.rev

(** Outgoing proper (non-ε) symbols of [q]. *)
let out_symbols a q =
  match IMap.find_opt q a.delta with
  | None -> Label.Set.empty
  | Some row ->
      Sym.Map.fold
        (fun sym _ acc ->
          match sym with Sym.Eps -> acc | Sym.L l -> Label.Set.add l acc)
        row Label.Set.empty

(** Every transition as a list [(source, symbol, target)]. *)
let edges a =
  IMap.fold
    (fun s row acc ->
      Sym.Map.fold
        (fun sym tgts acc ->
          ISet.fold (fun t acc -> (s, sym, t) :: acc) tgts acc)
        row acc)
    a.delta []
  |> List.rev

let num_edges a = List.length (edges a)

let has_eps a =
  IMap.exists (fun _ row -> Sym.Map.mem Sym.Eps row) a.delta

(** A deterministic aFSA has no ε-transition and at most one target per
    (state, symbol). *)
let is_deterministic a =
  IMap.for_all
    (fun _ row ->
      Sym.Map.for_all
        (fun sym tgts ->
          (not (Sym.equal sym Sym.Eps)) && ISet.cardinal tgts <= 1)
        row)
    a.delta

(* ------------------------------------------------------------------ *)
(* Derived indexes                                                     *)
(* ------------------------------------------------------------------ *)

(** The cached index of [a], created empty on first use. Safe because
    every constructor and modifier below produces a record with
    [idx = None] — cached entries can never outlive the transition
    relation they were derived from. *)
let index a =
  match a.idx with
  | Some i -> i
  | None ->
      let i =
        { rows = Hashtbl.create 64; preds_tbl = None; packed = None;
          eps_cl = None }
      in
      a.idx <- Some i;
      i

(** Grouped outgoing edges of [q]: [(symbol, targets)] with each symbol
    appearing once. Computed once per state, then O(1). *)
let out_rows a q =
  let ix = index a in
  match Hashtbl.find_opt ix.rows q with
  | Some r -> r
  | None ->
      let r =
        match IMap.find_opt q a.delta with
        | None -> []
        | Some row ->
            Sym.Map.fold
              (fun sym tgts acc -> (sym, ISet.elements tgts) :: acc)
              row []
            |> List.rev
      in
      Hashtbl.replace ix.rows q r;
      r

(** Successors of [q] on [sym] as a list; [[]] when none. *)
let succ_list a q sym =
  match IMap.find_opt q a.delta with
  | None -> []
  | Some row -> (
      match Sym.Map.find_opt sym row with
      | None -> []
      | Some tgts -> ISet.elements tgts)

(** ε-successors of [q]. *)
let eps_succs a q = succ_list a q Sym.Eps

(* One O(|Δ|) backward pass: distinct predecessors per state. *)
let build_preds a =
  let preds = Hashtbl.create 256 in
  let pred_seen = Hashtbl.create 256 in
  IMap.iter
    (fun s row ->
      Sym.Map.iter
        (fun _ tgts ->
          ISet.iter
            (fun t ->
              if not (Hashtbl.mem pred_seen (s, t)) then begin
                Hashtbl.replace pred_seen (s, t) ();
                Hashtbl.replace preds t
                  (s :: Option.value ~default:[] (Hashtbl.find_opt preds t))
              end)
            tgts)
        row)
    a.delta;
  preds

(** Distinct predecessor states of [q] over any symbol. The reverse
    table is built once per automaton, on first call. *)
let preds a q =
  let ix = index a in
  let tbl =
    match ix.preds_tbl with
    | Some t -> t
    | None ->
        let t = build_preds a in
        ix.preds_tbl <- Some t;
        t
  in
  Option.value ~default:[] (Hashtbl.find_opt tbl q)

(* ------------------------------------------------------------------ *)
(* Reachability and trimming                                           *)
(* ------------------------------------------------------------------ *)

(* Worklist closure over a neighbor function, using the index: O(V+E). *)
let closure_over neighbors seeds =
  let seen = Hashtbl.create 64 in
  let stack = ref seeds in
  let acc = ref ISet.empty in
  List.iter (fun q -> Hashtbl.replace seen q ()) seeds;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        acc := ISet.add q !acc;
        List.iter
          (fun t ->
            if not (Hashtbl.mem seen t) then begin
              Hashtbl.replace seen t ();
              stack := t :: !stack
            end)
          (neighbors q)
  done;
  !acc

let reachable_from a q0 =
  closure_over
    (fun q -> List.concat_map snd (out_rows a q))
    [ q0 ]

(** States from which some final state is reachable (co-reachable). *)
let coreachable a = closure_over (preds a) (ISet.elements a.finals)

let restrict_states a keep =
  let keep = ISet.add a.start keep in
  let delta =
    IMap.filter_map
      (fun s row ->
        if not (ISet.mem s keep) then None
        else
          let row =
            Sym.Map.filter_map
              (fun _ tgts ->
                let tgts = ISet.inter tgts keep in
                if ISet.is_empty tgts then None else Some tgts)
              row
          in
          if Sym.Map.is_empty row then None else Some row)
      a.delta
  in
  {
    a with
    states = ISet.inter a.states keep;
    delta;
    finals = ISet.inter a.finals keep;
    ann = IMap.filter (fun q _ -> ISet.mem q keep) a.ann;
    idx = None;
    fp = None;
  }

(** Remove unreachable states. *)
let trim_unreachable a = restrict_states a (reachable_from a a.start)

(** Remove states that are unreachable or cannot reach a final state
    (the start state is always kept). Preserves the (plain) language. *)
let trim a =
  let live = ISet.inter (reachable_from a a.start) (coreachable a) in
  restrict_states a live

(** Renumber states densely as [0..n-1] (start becomes [0] when
    [start_zero], default true), preserving structure. Returns the
    renamed automaton and the old→new map. *)
let renumber ?(start_zero = true) a =
  let order =
    if start_zero then
      a.start :: List.filter (fun q -> q <> a.start) (ISet.elements a.states)
    else ISet.elements a.states
  in
  let identity =
    (* already numbered 0..n-1 in [order]'s order: rebuilding would
       produce a structurally identical automaton while throwing away
       every cached index (including the pack) *)
    (not start_zero || a.start = 0)
    && (ISet.is_empty a.states
       || (ISet.min_elt a.states = 0
          && ISet.max_elt a.states = ISet.cardinal a.states - 1))
  in
  if identity then
    (a, ISet.fold (fun q m -> IMap.add q q m) a.states IMap.empty)
  else
  let map =
    List.fold_left
      (fun (i, m) q -> (i + 1, IMap.add q i m))
      (0, IMap.empty) order
    |> snd
  in
  let f q = IMap.find q map in
  let edges' = List.map (fun (s, sym, t) -> (f s, sym, f t)) (edges a) in
  ( make
      ~alphabet:(Label.Set.elements a.alphabet)
      ~start:(f a.start)
      ~finals:(List.map f (ISet.elements a.finals))
      ~edges:edges'
      ~ann:(List.map (fun (q, e) -> (f q, e)) (IMap.bindings a.ann))
      (),
    map )

(* ------------------------------------------------------------------ *)
(* Modification                                                        *)
(* ------------------------------------------------------------------ *)

let add_edge a (s, sym, t) =
  let alphabet =
    match sym with
    | Sym.Eps -> a.alphabet
    | Sym.L l -> Label.Set.add l a.alphabet
  in
  {
    a with
    states = ISet.add s (ISet.add t a.states);
    alphabet;
    delta = add_edge_delta a.delta (s, sym, t);
    idx = None;
    fp = None;
  }

(** Bulk variant of {!add_edge}: one record (and one index
    invalidation) for the whole batch. *)
let add_edges a es =
  let states, alphabet =
    List.fold_left
      (fun (states, alpha) (s, sym, t) ->
        ( ISet.add s (ISet.add t states),
          match sym with
          | Sym.Eps -> alpha
          | Sym.L l -> Label.Set.add l alpha ))
      (a.states, a.alphabet) es
  in
  {
    a with
    states;
    alphabet;
    delta = List.fold_left add_edge_delta a.delta es;
    idx = None;
    fp = None;
  }

(** A handle on the same automaton with a private index cache. The
    persistent fields are shared (they are immutable); only [idx] is
    reset. Hand one to each parallel task that reads a shared automaton
    so concurrent index builds never race on one Hashtbl. The
    fingerprint [fp] is kept: it describes the shared structure, and a
    cached digest is an immutable string safe to read from any domain. *)
let copy a = { a with idx = None }

let set_annotation a q f =
  let f = Chorev_formula.Simplify.simplify f in
  let ann =
    if F.equal f F.True then IMap.remove q a.ann else IMap.add q f a.ann
  in
  { a with ann; states = ISet.add q a.states; idx = None; fp = None }

let clear_annotations a = { a with ann = IMap.empty; idx = None; fp = None }

let set_finals a finals =
  { a with finals = ISet.of_list finals; idx = None; fp = None }

let widen_alphabet a labels =
  {
    a with
    alphabet = Label.Set.union a.alphabet (Label.Set.of_list labels);
    idx = None;
    fp = None;
  }

(* ------------------------------------------------------------------ *)
(* Packed (CSR) compilation                                            *)
(* ------------------------------------------------------------------ *)

module Packed = struct
  include Packed0

  let c_builds = Chorev_obs.Metrics.counter "afsa.pack.builds"

  (* The escape hatch: CHOREV_NO_PACK=1 (any value other than "" / "0")
     keeps every kernel on the original map-shaped implementation, so
     the map kernels stay available as a debug/oracle mode. Tests flip
     the same switch programmatically for the differential suites. *)
  let enabled_ref =
    ref
      (match Sys.getenv_opt "CHOREV_NO_PACK" with
      | None | Some "" | Some "0" -> true
      | Some _ -> false)

  let enabled () = !enabled_ref
  let set_enabled b = enabled_ref := b

  let with_enabled b f =
    let old = !enabled_ref in
    enabled_ref := b;
    Fun.protect ~finally:(fun () -> enabled_ref := old) f

  (* Original state id → dense index, by binary search over the sorted
     [state_ids]; -1 when the id is not a state of the automaton. *)
  let dense_of p q =
    let lo = ref 0 and hi = ref (p.n - 1) in
    let res = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let v = Array.unsafe_get p.state_ids mid in
      if v = q then begin
        res := mid;
        lo := !hi + 1
      end
      else if v < q then lo := mid + 1
      else hi := mid - 1
    done;
    !res

  let build a =
    Chorev_obs.Metrics.incr c_builds;
    let state_ids = Array.of_list (ISet.elements a.states) in
    let n = Array.length state_ids in
    let dense_tbl = Hashtbl.create (2 * n) in
    Array.iteri (fun i q -> Hashtbl.replace dense_tbl q i) state_ids;
    let dense q = Hashtbl.find dense_tbl q in
    (* proper symbol table, ascending in [Sym.Map]'s order *)
    let symset =
      IMap.fold
        (fun _ row acc ->
          Sym.Map.fold
            (fun sym _ acc ->
              match sym with Sym.Eps -> acc | Sym.L _ -> Sym.Set.add sym acc)
            row acc)
        a.delta Sym.Set.empty
    in
    let syms = Array.of_list (Sym.Set.elements symset) in
    let sym_id = Hashtbl.create (2 * Array.length syms) in
    Array.iteri (fun i s -> Hashtbl.replace sym_id s i) syms;
    (* degree pass *)
    let deg = Array.make (n + 1) 0 and edeg = Array.make (n + 1) 0 in
    IMap.iter
      (fun s row ->
        let i = dense s in
        Sym.Map.iter
          (fun sym tgts ->
            let c = ISet.cardinal tgts in
            match sym with
            | Sym.Eps -> edeg.(i) <- edeg.(i) + c
            | Sym.L _ -> deg.(i) <- deg.(i) + c)
          row)
      a.delta;
    let row_off = Array.make (n + 1) 0 and eps_off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      row_off.(i + 1) <- row_off.(i) + deg.(i);
      eps_off.(i + 1) <- eps_off.(i) + edeg.(i)
    done;
    let ne = row_off.(n) and neps = eps_off.(n) in
    let row_sym = Array.make (max 1 ne) 0
    and row_tgt = Array.make (max 1 ne) 0
    and eps_tgt = Array.make (max 1 neps) 0 in
    (* fill pass: [IMap] / [Sym.Map] / [ISet] iterate ascending, so each
       proper row comes out sorted by (symbol id, dense target) and each
       ε-row by dense target — the order every packed kernel (and the
       fingerprint fast path) relies on *)
    let rcur = Array.copy row_off and ecur = Array.copy eps_off in
    IMap.iter
      (fun s row ->
        let i = dense s in
        Sym.Map.iter
          (fun sym tgts ->
            match sym with
            | Sym.Eps ->
                ISet.iter
                  (fun t ->
                    eps_tgt.(ecur.(i)) <- dense t;
                    ecur.(i) <- ecur.(i) + 1)
                  tgts
            | Sym.L _ ->
                let sid = Hashtbl.find sym_id sym in
                ISet.iter
                  (fun t ->
                    row_sym.(rcur.(i)) <- sid;
                    row_tgt.(rcur.(i)) <- dense t;
                    rcur.(i) <- rcur.(i) + 1)
                  tgts)
          row)
      a.delta;
    let finals = Bitset.create n in
    ISet.iter (fun q -> Bitset.add finals (dense q)) a.finals;
    let ann = Array.make (max 1 n) F.True in
    let ann_nontrivial = Bitset.create n in
    IMap.iter
      (fun q f ->
        let i = dense q in
        ann.(i) <- f;
        Bitset.add ann_nontrivial i)
      a.ann;
    {
      n;
      state_ids;
      start = dense a.start;
      finals;
      syms;
      row_off;
      row_sym;
      row_tgt;
      eps_off;
      eps_tgt;
      ann;
      ann_nontrivial;
      preds = None;
      eps_cl_csr = None;
    }

  (** The packed form of [a], compiled once and cached on the lazy
      index slot — every structural modifier already invalidates it. *)
  let get a =
    let ix = index a in
    match ix.packed with
    | Some p -> p
    | None ->
        let p = build a in
        ix.packed <- Some p;
        p

  let peek a = Option.bind a.idx (fun ix -> ix.packed)

  (* Compiling a pack costs an O(E log E) edge sort plus a dozen array
     allocations. For tiny automata built fresh and consumed once —
     figure-sized scenarios, registry queries — the map kernels win
     outright. Both kernel families are observationally identical
     (same automata, same budget ticks), so dispatch is free to choose
     per call: reuse a pack that already exists, otherwise only pay
     for one past the size where the flat kernels repay the build. *)
  let cutoff_ref = ref 32

  let with_cutoff c f =
    let old = !cutoff_ref in
    cutoff_ref := c;
    Fun.protect ~finally:(fun () -> cutoff_ref := old) f

  let worth a =
    match peek a with
    | Some _ -> true
    | None -> num_states a > !cutoff_ref

  (** Distinct-predecessor CSR over any symbol (proper and ε), built on
      first use: [(off, src)] with [src.(off.(q) .. off.(q+1)-1)] the
      dense predecessors of [q]. *)
  let preds_csr p =
    match p.preds with
    | Some c -> c
    | None ->
        let n = p.n in
        let stamp = Array.make n (-1) in
        let cnt = Array.make (n + 1) 0 in
        let pass record =
          Array.fill stamp 0 n (-1);
          for s = 0 to n - 1 do
            for e = p.row_off.(s) to p.row_off.(s + 1) - 1 do
              let t = p.row_tgt.(e) in
              if stamp.(t) <> s then begin
                stamp.(t) <- s;
                record s t
              end
            done;
            for e = p.eps_off.(s) to p.eps_off.(s + 1) - 1 do
              let t = p.eps_tgt.(e) in
              if stamp.(t) <> s then begin
                stamp.(t) <- s;
                record s t
              end
            done
          done
        in
        pass (fun _ t -> cnt.(t + 1) <- cnt.(t + 1) + 1);
        for i = 0 to n - 1 do
          cnt.(i + 1) <- cnt.(i + 1) + cnt.(i)
        done;
        let off = Array.copy cnt in
        let src = Array.make (max 1 off.(n)) 0 in
        let cur = Array.copy off in
        pass (fun s t ->
            src.(cur.(t)) <- s;
            cur.(t) <- cur.(t) + 1);
        let c = (off, src) in
        p.preds <- Some c;
        c

  (** Per-state ε-closure CSR over dense indexes: row [q] of [(off,
      tgt)] is the sorted ε-closure of [q] (including [q] itself).
      Iterative Tarjan over the ε-CSR with int stacks only — SCCs pop
      in reverse topological order, so each SCC's closure is its
      members unioned (stamp-deduplicated) with the already-finished
      closures of its successor SCCs. No per-state list or set is ever
      allocated; cached on the packed form. *)
  let eps_closure_csr p =
    match p.eps_cl_csr with
    | Some c -> c
    | None ->
        let n = p.n in
        let idx = Array.make n (-1) and low = Array.make n 0 in
        let on_st = Array.make (max 1 n) false in
        let st = Array.make (max 1 n) 0 in
        let sp = ref 0 in
        let scc_of = Array.make (max 1 n) (-1) in
        let nscc = ref 0 in
        let counter = ref 0 in
        (* explicit DFS frames: state + cursor into its ε-row *)
        let fstate = Array.make (max 1 n) 0
        and fedge = Array.make (max 1 n) 0 in
        let fsp = ref 0 in
        (* per-SCC closure slices in one growable int buffer *)
        let scc_start = Array.make (max 1 n) 0
        and scc_len = Array.make (max 1 n) 0 in
        let stamp = Array.make (max 1 n) (-1) in
        let cap = ref (max 16 n) in
        let buf = ref (Array.make !cap 0) in
        let len = ref 0 in
        let push x =
          if !len = !cap then begin
            let nb = Array.make (2 * !cap) 0 in
            Array.blit !buf 0 nb 0 !len;
            buf := nb;
            cap := 2 * !cap
          end;
          !buf.(!len) <- x;
          incr len
        in
        let push_node q =
          idx.(q) <- !counter;
          low.(q) <- !counter;
          incr counter;
          st.(!sp) <- q;
          incr sp;
          on_st.(q) <- true;
          fstate.(!fsp) <- q;
          fedge.(!fsp) <- p.eps_off.(q);
          incr fsp
        in
        for root = 0 to n - 1 do
          if idx.(root) < 0 then begin
            push_node root;
            while !fsp > 0 do
              let q = fstate.(!fsp - 1) in
              let e = fedge.(!fsp - 1) in
              if e < p.eps_off.(q + 1) then begin
                fedge.(!fsp - 1) <- e + 1;
                let t = p.eps_tgt.(e) in
                if idx.(t) < 0 then push_node t
                else if on_st.(t) && idx.(t) < low.(q) then low.(q) <- idx.(t)
              end
              else begin
                decr fsp;
                if !fsp > 0 then begin
                  let parent = fstate.(!fsp - 1) in
                  if low.(q) < low.(parent) then low.(parent) <- low.(q)
                end;
                if low.(q) = idx.(q) then begin
                  (* pop the SCC rooted at [q]; members stay readable in
                     [st.(!sp .. mhi-1)] after the pops *)
                  let c = !nscc in
                  incr nscc;
                  let mhi = !sp in
                  let continue_ = ref true in
                  while !continue_ do
                    decr sp;
                    let m = st.(!sp) in
                    on_st.(m) <- false;
                    scc_of.(m) <- c;
                    if m = q then continue_ := false
                  done;
                  let cstart = !len in
                  for k = !sp to mhi - 1 do
                    let m = st.(k) in
                    if stamp.(m) <> c then begin
                      stamp.(m) <- c;
                      push m
                    end
                  done;
                  for k = !sp to mhi - 1 do
                    let m = st.(k) in
                    for e = p.eps_off.(m) to p.eps_off.(m + 1) - 1 do
                      let t = p.eps_tgt.(e) in
                      let ct = scc_of.(t) in
                      if ct <> c then
                        (* [t]'s SCC is already finished (Tarjan pops in
                           reverse topological order) *)
                        for j = scc_start.(ct) to scc_start.(ct) + scc_len.(ct) - 1
                        do
                          let x = !buf.(j) in
                          if stamp.(x) <> c then begin
                            stamp.(x) <- c;
                            push x
                          end
                        done
                    done
                  done;
                  let sz = !len - cstart in
                  let tmp = Array.sub !buf cstart sz in
                  Array.sort (fun (a : int) b -> compare a b) tmp;
                  Array.blit tmp 0 !buf cstart sz;
                  scc_start.(c) <- cstart;
                  scc_len.(c) <- sz
                end
              end
            done
          end
        done;
        let cl_off = Array.make (n + 1) 0 in
        for q = 0 to n - 1 do
          cl_off.(q + 1) <- cl_off.(q) + scc_len.(scc_of.(q))
        done;
        let cl_tgt = Array.make (max 1 cl_off.(n)) 0 in
        for q = 0 to n - 1 do
          let c = scc_of.(q) in
          Array.blit !buf scc_start.(c) cl_tgt cl_off.(q) scc_len.(c)
        done;
        let res = (cl_off, cl_tgt) in
        p.eps_cl_csr <- Some res;
        res
end

(* ------------------------------------------------------------------ *)
(* ε-closures, all at once, cached                                     *)
(* ------------------------------------------------------------------ *)

(* Tarjan's SCC algorithm with an explicit stack over a successor
   function: states in the same ε-SCC share one closure set
   (physically), and each SCC's closure is the union of its members
   with the closures of its successor SCCs, computed in reverse
   topological order — O(V + E) overall. Generic over the successor
   view so the packed CSR and the map index feed the same pass. *)
let closures_over ~succs states =
  let index_t = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let scc_stack = ref [] in
  let closures : (int, ISet.t) Hashtbl.t = Hashtbl.create 64 in
  let counter = ref 0 in
  let visit root =
    if not (Hashtbl.mem index_t root) then begin
      let enter q =
        Hashtbl.replace index_t q !counter;
        Hashtbl.replace lowlink q !counter;
        incr counter;
        scc_stack := q :: !scc_stack;
        Hashtbl.replace on_stack q ();
        (q, ref (succs q))
      in
      let frames = ref [ enter root ] in
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (q, sq) :: rest -> (
            match !sq with
            | t :: ts ->
                sq := ts;
                if not (Hashtbl.mem index_t t) then frames := enter t :: !frames
                else if Hashtbl.mem on_stack t then
                  Hashtbl.replace lowlink q
                    (min (Hashtbl.find lowlink q) (Hashtbl.find index_t t))
            | [] ->
                if Hashtbl.find lowlink q = Hashtbl.find index_t q then begin
                  let rec pop members = function
                    | s :: tail ->
                        Hashtbl.remove on_stack s;
                        if s = q then (s :: members, tail)
                        else pop (s :: members) tail
                    | [] -> (members, [])
                  in
                  let members, tail = pop [] !scc_stack in
                  scc_stack := tail;
                  let cl =
                    List.fold_left
                      (fun acc s ->
                        List.fold_left
                          (fun acc t ->
                            match Hashtbl.find_opt closures t with
                            | Some c -> ISet.union c acc
                            | None -> acc (* t inside this SCC *))
                          (ISet.add s acc) (succs s))
                      ISet.empty members
                  in
                  List.iter (fun s -> Hashtbl.replace closures s cl) members
                end;
                frames := rest;
                (match rest with
                | (p, _) :: _ ->
                    Hashtbl.replace lowlink p
                      (min (Hashtbl.find lowlink p) (Hashtbl.find lowlink q))
                | [] -> ()))
      done
    end
  in
  List.iter visit states;
  closures

(** The table of all ε-closures of [a], keyed by original state id,
    computed once per automaton (SCC-memoized) and cached on the index
    slot. Every closure query routes through this — there is no
    per-call quadratic walk left. *)
let eps_closures a =
  let ix = index a in
  match ix.eps_cl with
  | Some t -> t
  | None ->
      let t =
        (* walk an existing pack's ε-CSR, but never *build* one here:
           the closure pass is O(V+E) over either representation, so a
           build would only pay off for kernels that come after — and
           those trigger their own build through [worth]. *)
        match if Packed.enabled () then Packed.peek a else None with
        | Some p ->
            begin
          let succs q =
            let i = Packed.dense_of p q in
            if i < 0 then []
            else
              let rec go e acc =
                if e < p.Packed.eps_off.(i) then acc
                else go (e - 1) (p.Packed.state_ids.(p.Packed.eps_tgt.(e)) :: acc)
              in
              go (p.Packed.eps_off.(i + 1) - 1) []
          in
          closures_over ~succs (Array.to_list p.Packed.state_ids)
            end
        | None ->
            closures_over
              ~succs:(fun q -> eps_succs a q)
              (ISet.elements a.states)
      in
      ix.eps_cl <- Some t;
      t

(* ------------------------------------------------------------------ *)
(* Structural equality (same states/edges/finals/annotations)          *)
(* ------------------------------------------------------------------ *)

let structurally_equal a b =
  ISet.equal a.states b.states
  && Label.Set.equal a.alphabet b.alphabet
  && a.start = b.start
  && ISet.equal a.finals b.finals
  && IMap.equal ISet.equal
       (IMap.map (fun row -> Sym.Map.fold (fun _ t acc -> ISet.union t acc) row ISet.empty) a.delta)
       (IMap.map (fun row -> Sym.Map.fold (fun _ t acc -> ISet.union t acc) row ISet.empty) b.delta)
  && List.equal
       (fun (s1, y1, t1) (s2, y2, t2) -> s1 = s2 && Sym.equal y1 y2 && t1 = t2)
       (List.sort compare (edges a))
       (List.sort compare (edges b))
  && IMap.equal F.equal a.ann b.ann
