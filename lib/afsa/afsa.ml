(** Annotated Finite State Automata (aFSA), Definition 2 of the paper.

    An aFSA is a tuple [(Q, Σ, Δ, q0, F, QA)]: states, message alphabet,
    labeled transitions (possibly ε), a start state, final states, and a
    relation of states to logical formulas. A state's annotation
    expresses which outgoing messages are mandatory: a variable [v]
    evaluates to true iff a [v]-labeled transition leads to a state from
    which acceptance is possible (see {!Emptiness}). States without an
    entry in [QA] carry the default annotation [true]. *)

module F = Chorev_formula.Syntax
module ISet = Set.Make (Int)
module IMap = Map.Make (Int)

(* Derived indexes over [delta], built lazily on first use and cached
   in the automaton (see {!index}). Purely derived data: every
   constructor / modifier invalidates the cache, so the maps in [delta]
   remain the single source of truth. Laziness is per component —
   grouped rows materialize per *state* on demand (a product over a
   huge completed automaton only ever touches the reachable fringe),
   and the predecessor table is built in one O(|Δ|) pass the first time
   a backward traversal asks for it. *)
type index = {
  rows : (int, (Sym.t * int list) list) Hashtbl.t;
      (* outgoing edges grouped by symbol, filled per state on demand *)
  mutable preds_tbl : (int, int list) Hashtbl.t option;
      (* distinct predecessor states (any symbol), whole-automaton *)
}

type t = {
  states : ISet.t;
  alphabet : Label.Set.t;
  delta : ISet.t Sym.Map.t IMap.t; (* state -> symbol -> target set *)
  start : int;
  finals : ISet.t;
  ann : F.t IMap.t; (* absent entry = True *)
  mutable idx : index option; (* lazily-built cache, never set by hand *)
  mutable fp : string option;
      (* cached structural fingerprint (see {!Fingerprint}); like [idx]
         purely derived, so every structural modifier resets it — but
         [copy] keeps it, the structure being shared *)
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let empty_delta = IMap.empty

let add_edge_delta delta (s, sym, t) =
  let row = Option.value ~default:Sym.Map.empty (IMap.find_opt s delta) in
  let tgts = Option.value ~default:ISet.empty (Sym.Map.find_opt sym row) in
  IMap.add s (Sym.Map.add sym (ISet.add t tgts) row) delta

(** [make ~start ~finals ~edges ~ann ()] builds an aFSA. States are
    inferred from [start], [finals], [edges] and [ann]; the alphabet from
    the edge labels (ε excluded) unless [alphabet] is given explicitly
    (it is then unioned with the inferred one). Annotations equal to
    [True] are dropped. *)
let make ?(alphabet = []) ~start ~finals ~edges ?(ann = []) () =
  let states =
    List.fold_left
      (fun acc (s, _, t) -> ISet.add s (ISet.add t acc))
      (ISet.add start (ISet.of_list finals))
      edges
  in
  let states =
    List.fold_left (fun acc (q, _) -> ISet.add q acc) states ann
  in
  let alpha =
    List.fold_left
      (fun acc (_, sym, _) ->
        match sym with Sym.Eps -> acc | Sym.L l -> Label.Set.add l acc)
      (Label.Set.of_list alphabet) edges
  in
  let delta = List.fold_left add_edge_delta empty_delta edges in
  let ann =
    List.fold_left
      (fun acc (q, f) ->
        let f = Chorev_formula.Simplify.simplify f in
        if F.equal f F.True then acc else IMap.add q f acc)
      IMap.empty ann
  in
  {
    states;
    alphabet = alpha;
    delta;
    start;
    finals = ISet.of_list finals;
    ann;
    idx = None;
    fp = None;
  }

(** Convenience: edges given as [(s, "A#B#msg", t)] with ["" ] for ε. *)
let of_strings ?alphabet ~start ~finals ~edges ?(ann = []) () =
  let edges =
    List.map
      (fun (s, l, t) ->
        if String.equal l "" then (s, Sym.Eps, t)
        else (s, Sym.L (Label.of_string_exn l), t))
      edges
  in
  let alphabet = Option.map (List.map Label.of_string_exn) alphabet in
  make ?alphabet ~start ~finals ~edges ~ann ()

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let states a = ISet.elements a.states
let num_states a = ISet.cardinal a.states
let alphabet a = Label.Set.elements a.alphabet
let start a = a.start
let finals a = ISet.elements a.finals
let is_final a q = ISet.mem q a.finals

(** Annotation of a state ([True] when absent). *)
let annotation a q = Option.value ~default:F.True (IMap.find_opt q a.ann)

let annotations a = IMap.bindings a.ann
let has_annotations a = not (IMap.is_empty a.ann)

(** Successors of [q] on symbol [sym]. *)
let step a q sym =
  match IMap.find_opt q a.delta with
  | None -> ISet.empty
  | Some row -> Option.value ~default:ISet.empty (Sym.Map.find_opt sym row)

(** All outgoing edges of [q] as [(symbol, target)] pairs. *)
let out_edges a q =
  match IMap.find_opt q a.delta with
  | None -> []
  | Some row ->
      Sym.Map.fold
        (fun sym tgts acc ->
          ISet.fold (fun t acc -> (sym, t) :: acc) tgts acc)
        row []
      |> List.rev

(** Outgoing proper (non-ε) symbols of [q]. *)
let out_symbols a q =
  match IMap.find_opt q a.delta with
  | None -> Label.Set.empty
  | Some row ->
      Sym.Map.fold
        (fun sym _ acc ->
          match sym with Sym.Eps -> acc | Sym.L l -> Label.Set.add l acc)
        row Label.Set.empty

(** Every transition as a list [(source, symbol, target)]. *)
let edges a =
  IMap.fold
    (fun s row acc ->
      Sym.Map.fold
        (fun sym tgts acc ->
          ISet.fold (fun t acc -> (s, sym, t) :: acc) tgts acc)
        row acc)
    a.delta []
  |> List.rev

let num_edges a = List.length (edges a)

let has_eps a =
  IMap.exists (fun _ row -> Sym.Map.mem Sym.Eps row) a.delta

(** A deterministic aFSA has no ε-transition and at most one target per
    (state, symbol). *)
let is_deterministic a =
  IMap.for_all
    (fun _ row ->
      Sym.Map.for_all
        (fun sym tgts ->
          (not (Sym.equal sym Sym.Eps)) && ISet.cardinal tgts <= 1)
        row)
    a.delta

(* ------------------------------------------------------------------ *)
(* Derived indexes                                                     *)
(* ------------------------------------------------------------------ *)

(** The cached index of [a], created empty on first use. Safe because
    every constructor and modifier below produces a record with
    [idx = None] — cached entries can never outlive the transition
    relation they were derived from. *)
let index a =
  match a.idx with
  | Some i -> i
  | None ->
      let i = { rows = Hashtbl.create 64; preds_tbl = None } in
      a.idx <- Some i;
      i

(** Grouped outgoing edges of [q]: [(symbol, targets)] with each symbol
    appearing once. Computed once per state, then O(1). *)
let out_rows a q =
  let ix = index a in
  match Hashtbl.find_opt ix.rows q with
  | Some r -> r
  | None ->
      let r =
        match IMap.find_opt q a.delta with
        | None -> []
        | Some row ->
            Sym.Map.fold
              (fun sym tgts acc -> (sym, ISet.elements tgts) :: acc)
              row []
            |> List.rev
      in
      Hashtbl.replace ix.rows q r;
      r

(** Successors of [q] on [sym] as a list; [[]] when none. *)
let succ_list a q sym =
  match IMap.find_opt q a.delta with
  | None -> []
  | Some row -> (
      match Sym.Map.find_opt sym row with
      | None -> []
      | Some tgts -> ISet.elements tgts)

(** ε-successors of [q]. *)
let eps_succs a q = succ_list a q Sym.Eps

(* One O(|Δ|) backward pass: distinct predecessors per state. *)
let build_preds a =
  let preds = Hashtbl.create 256 in
  let pred_seen = Hashtbl.create 256 in
  IMap.iter
    (fun s row ->
      Sym.Map.iter
        (fun _ tgts ->
          ISet.iter
            (fun t ->
              if not (Hashtbl.mem pred_seen (s, t)) then begin
                Hashtbl.replace pred_seen (s, t) ();
                Hashtbl.replace preds t
                  (s :: Option.value ~default:[] (Hashtbl.find_opt preds t))
              end)
            tgts)
        row)
    a.delta;
  preds

(** Distinct predecessor states of [q] over any symbol. The reverse
    table is built once per automaton, on first call. *)
let preds a q =
  let ix = index a in
  let tbl =
    match ix.preds_tbl with
    | Some t -> t
    | None ->
        let t = build_preds a in
        ix.preds_tbl <- Some t;
        t
  in
  Option.value ~default:[] (Hashtbl.find_opt tbl q)

(* ------------------------------------------------------------------ *)
(* Reachability and trimming                                           *)
(* ------------------------------------------------------------------ *)

(* Worklist closure over a neighbor function, using the index: O(V+E). *)
let closure_over neighbors seeds =
  let seen = Hashtbl.create 64 in
  let stack = ref seeds in
  let acc = ref ISet.empty in
  List.iter (fun q -> Hashtbl.replace seen q ()) seeds;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        acc := ISet.add q !acc;
        List.iter
          (fun t ->
            if not (Hashtbl.mem seen t) then begin
              Hashtbl.replace seen t ();
              stack := t :: !stack
            end)
          (neighbors q)
  done;
  !acc

let reachable_from a q0 =
  closure_over
    (fun q -> List.concat_map snd (out_rows a q))
    [ q0 ]

(** States from which some final state is reachable (co-reachable). *)
let coreachable a = closure_over (preds a) (ISet.elements a.finals)

let restrict_states a keep =
  let keep = ISet.add a.start keep in
  let delta =
    IMap.filter_map
      (fun s row ->
        if not (ISet.mem s keep) then None
        else
          let row =
            Sym.Map.filter_map
              (fun _ tgts ->
                let tgts = ISet.inter tgts keep in
                if ISet.is_empty tgts then None else Some tgts)
              row
          in
          if Sym.Map.is_empty row then None else Some row)
      a.delta
  in
  {
    a with
    states = ISet.inter a.states keep;
    delta;
    finals = ISet.inter a.finals keep;
    ann = IMap.filter (fun q _ -> ISet.mem q keep) a.ann;
    idx = None;
    fp = None;
  }

(** Remove unreachable states. *)
let trim_unreachable a = restrict_states a (reachable_from a a.start)

(** Remove states that are unreachable or cannot reach a final state
    (the start state is always kept). Preserves the (plain) language. *)
let trim a =
  let live = ISet.inter (reachable_from a a.start) (coreachable a) in
  restrict_states a live

(** Renumber states densely as [0..n-1] (start becomes [0] when
    [start_zero], default true), preserving structure. Returns the
    renamed automaton and the old→new map. *)
let renumber ?(start_zero = true) a =
  let order =
    if start_zero then
      a.start :: List.filter (fun q -> q <> a.start) (ISet.elements a.states)
    else ISet.elements a.states
  in
  let map =
    List.fold_left
      (fun (i, m) q -> (i + 1, IMap.add q i m))
      (0, IMap.empty) order
    |> snd
  in
  let f q = IMap.find q map in
  let edges' = List.map (fun (s, sym, t) -> (f s, sym, f t)) (edges a) in
  ( make
      ~alphabet:(Label.Set.elements a.alphabet)
      ~start:(f a.start)
      ~finals:(List.map f (ISet.elements a.finals))
      ~edges:edges'
      ~ann:(List.map (fun (q, e) -> (f q, e)) (IMap.bindings a.ann))
      (),
    map )

(* ------------------------------------------------------------------ *)
(* Modification                                                        *)
(* ------------------------------------------------------------------ *)

let add_edge a (s, sym, t) =
  let alphabet =
    match sym with
    | Sym.Eps -> a.alphabet
    | Sym.L l -> Label.Set.add l a.alphabet
  in
  {
    a with
    states = ISet.add s (ISet.add t a.states);
    alphabet;
    delta = add_edge_delta a.delta (s, sym, t);
    idx = None;
    fp = None;
  }

(** Bulk variant of {!add_edge}: one record (and one index
    invalidation) for the whole batch. *)
let add_edges a es =
  let states, alphabet =
    List.fold_left
      (fun (states, alpha) (s, sym, t) ->
        ( ISet.add s (ISet.add t states),
          match sym with
          | Sym.Eps -> alpha
          | Sym.L l -> Label.Set.add l alpha ))
      (a.states, a.alphabet) es
  in
  {
    a with
    states;
    alphabet;
    delta = List.fold_left add_edge_delta a.delta es;
    idx = None;
    fp = None;
  }

(** A handle on the same automaton with a private index cache. The
    persistent fields are shared (they are immutable); only [idx] is
    reset. Hand one to each parallel task that reads a shared automaton
    so concurrent index builds never race on one Hashtbl. The
    fingerprint [fp] is kept: it describes the shared structure, and a
    cached digest is an immutable string safe to read from any domain. *)
let copy a = { a with idx = None }

let set_annotation a q f =
  let f = Chorev_formula.Simplify.simplify f in
  let ann =
    if F.equal f F.True then IMap.remove q a.ann else IMap.add q f a.ann
  in
  { a with ann; states = ISet.add q a.states; idx = None; fp = None }

let clear_annotations a = { a with ann = IMap.empty; idx = None; fp = None }

let set_finals a finals =
  { a with finals = ISet.of_list finals; idx = None; fp = None }

let widen_alphabet a labels =
  {
    a with
    alphabet = Label.Set.union a.alphabet (Label.Set.of_list labels);
    idx = None;
    fp = None;
  }

(* ------------------------------------------------------------------ *)
(* Structural equality (same states/edges/finals/annotations)          *)
(* ------------------------------------------------------------------ *)

let structurally_equal a b =
  ISet.equal a.states b.states
  && Label.Set.equal a.alphabet b.alphabet
  && a.start = b.start
  && ISet.equal a.finals b.finals
  && IMap.equal ISet.equal
       (IMap.map (fun row -> Sym.Map.fold (fun _ t acc -> ISet.union t acc) row ISet.empty) a.delta)
       (IMap.map (fun row -> Sym.Map.fold (fun _ t acc -> ISet.union t acc) row ISet.empty) b.delta)
  && List.equal
       (fun (s1, y1, t1) (s2, y2, t2) -> s1 = s2 && Sym.equal y1 y2 && t1 = t2)
       (List.sort compare (edges a))
       (List.sort compare (edges b))
  && IMap.equal F.equal a.ann b.ann
