(** Minimization by Hopcroft partition refinement whose initial
    partition distinguishes finality and the simplified annotation —
    states with different mandatory obligations never merge. *)

val minimize : ?budget:Chorev_guard.Budget.t -> Afsa.t -> Afsa.t
(** Determinizes and completes internally; trims dead states; numbers
    states canonically (BFS in sorted-label order), so equal annotated
    languages yield structurally equal automata. *)

val canonical_renumber : Afsa.t -> Afsa.t
(** BFS renumbering from the start in sorted-label order. *)
