(** Language equality and inclusion (plain languages — annotation
    equivalence is handled by comparing minimized automata whose blocks
    distinguish annotations, see {!equal_annotated}). *)

let included a b = Emptiness.is_empty_plain (Ops.difference a b)

(** Plain language equality: [a ⊆ b] and [b ⊆ a]. *)
let equal_language a b = included a b && included b a

(** Annotated equality: equal plain language and isomorphic minimized
    automata including annotation keys. Since {!Minimize.minimize}
    canonicalizes deterministic automata up to state naming with a fixed
    BFS numbering from the start state, structural equality of the two
    minimized automata decides annotated equivalence. *)
let equal_annotated a b =
  (* Fast paths: physically equal handles (common once the cache layer
     interns results) and already-computed equal fingerprints are
     structurally equal, hence annotated-equal, without minimizing. An
     undecided or negative fingerprint comparison falls through — equal
     languages can have structurally different presentations. *)
  match Fingerprint.cached_equal a b with
  | Some true -> true
  | Some false | None ->
      let ma = Minimize.minimize a and mb = Minimize.minimize b in
      Afsa.structurally_equal ma mb

(** Convenience: is the (plain) language of [a] strictly larger? *)
let strictly_includes a b = included b a && not (included a b)
