(** The aFSA algebra of the paper. *)

val inter_alphabet : Afsa.t -> Afsa.t -> Label.t list
val union_alphabet : Afsa.t -> Afsa.t -> Label.t list

val intersect : ?budget:Chorev_guard.Budget.t -> Afsa.t -> Afsa.t -> Afsa.t
(** Definition 3: product over the shared alphabet, finals are pairs of
    finals, annotations conjoined; ε-moves of either side interleave. *)

val complement : ?budget:Chorev_guard.Budget.t -> ?over:Label.t list -> Afsa.t -> Afsa.t
(** Determinize + complete + flip finals. Annotation-free: the
    mandatory-message semantics is not closed under complement. *)

val difference : ?budget:Chorev_guard.Budget.t -> Afsa.t -> Afsa.t -> Afsa.t
(** Definition 4, [a ∖ b]: sequences of [a] not accepted by [b], with
    [a]'s annotations retained. Completion is over the union alphabet
    so sequences using messages unknown to [b] survive (the paper's
    Fig. 13a). *)

val union : ?budget:Chorev_guard.Budget.t -> Afsa.t -> Afsa.t -> Afsa.t
(** Direct product union preserving annotations by conjunction where
    behaviours overlap (matches Fig. 13b). *)

val union_de_morgan : ?budget:Chorev_guard.Budget.t -> Afsa.t -> Afsa.t -> Afsa.t
(** The paper's formulation [¬(¬A ∩ ¬B)] — language-equivalent to
    {!union} but annotation-free; kept for fidelity. *)
