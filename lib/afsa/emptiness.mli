(** Annotated emptiness (Sec. 3.2): a greatest fixpoint of states from
    which an accepting conversation satisfying all mandatory
    annotations exists. See DESIGN.md for why the fixpoint must be
    greatest (mutually supporting loops) and how reachability rules out
    vacuous cycles. *)

type result = {
  sat : Afsa.ISet.t;
      (** states from which annotated acceptance is possible *)
  nonempty : bool;
  iterations : int;
      (** fixpoint iterations until convergence (≥ 1); the reverse-edge
          index is built once per call, not once per iteration *)
  warning : string option;
      (** set when a non-positive annotation makes the fixpoint an
          approximation *)
}

val analyze : ?budget:Chorev_guard.Budget.t -> Afsa.t -> result

val is_empty : ?budget:Chorev_guard.Budget.t -> Afsa.t -> bool
val is_nonempty : ?budget:Chorev_guard.Budget.t -> Afsa.t -> bool

val is_empty_plain : Afsa.t -> bool
(** Annotation-oblivious: no final state reachable. *)

val witness : ?budget:Chorev_guard.Budget.t -> Afsa.t -> Label.t list option
(** A shortest accepted conversation through sat-states; [None] when
    empty. *)
