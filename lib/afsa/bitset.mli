(** Flat bitsets over dense indexes [0 .. n-1], the membership/frontier
    representation of the packed aFSA kernels: load-and-mask membership,
    memcmp equality, zero allocation on sweeps. Capacity is fixed at
    creation. *)

type t

val create : int -> t
(** All-empty set of capacity [n]. *)

val length : t -> int
(** The capacity [n] (not the population). *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit

val fill : t -> unit
(** Set every index in [0 .. n-1]. *)

val copy : t -> t
val equal : t -> t -> bool

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with [src]'s contents (capacities must match). *)

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Ascending index order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending index order. *)

val of_list : int -> int list -> t
val elements : t -> int list
