(** Minimization of deterministic aFSAs by Hopcroft partition
    refinement.

    The initial partition distinguishes states by finality *and* by
    their simplified annotation, so states with different
    mandatory-message obligations are never merged; refinement then
    proceeds as for plain DFAs in O(|Σ|·n·log n). The input is
    determinized and completed internally; dead states are trimmed from
    the result and states are renumbered canonically (BFS from the
    start in sorted-label order), so two automata with the same
    annotated language minimize to structurally equal values — which is
    what {!Equiv.equal_annotated} relies on. *)

module F = Chorev_formula.Syntax
module ISet = Afsa.ISet
module IMap = Afsa.IMap

(* Instrumentation (DESIGN.md §7): minimization runs and the size of
   the virtually-completed transition table each run fills (states ×
   symbols — the "sink-completion size" the virtual sink avoids
   materializing as edges). *)
let c_runs = Chorev_obs.Metrics.counter "afsa.minimize.runs"
let c_table_cells = Chorev_obs.Metrics.counter "afsa.minimize.table_cells"
let h_states = Chorev_obs.Metrics.histogram "afsa.minimize.input_states"

(* Hopcroft on a complete DFA given as arrays. [init_class.(q)] is the
   initial class of state [q] (finality × annotation); returns the
   final block id per state. *)
let hopcroft ~n ~k ~succ ~init_class =
  (* predecessor lists per symbol *)
  let pred = Array.init k (fun _ -> Array.make n []) in
  for c = 0 to k - 1 do
    for q = 0 to n - 1 do
      let t = succ.(c).(q) in
      pred.(c).(t) <- q :: pred.(c).(t)
    done
  done;
  (* blocks *)
  let block = Array.make n 0 in
  let members : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let next_block = ref 0 in
  let by_class = Hashtbl.create 16 in
  for q = 0 to n - 1 do
    let id =
      match Hashtbl.find_opt by_class init_class.(q) with
      | Some id -> id
      | None ->
          let id = !next_block in
          incr next_block;
          Hashtbl.add by_class init_class.(q) id;
          id
    in
    block.(q) <- id;
    Hashtbl.replace members id
      (q :: Option.value ~default:[] (Hashtbl.find_opt members id))
  done;
  (* worklist of (block, symbol) *)
  let w = Queue.create () in
  let in_w = Hashtbl.create 64 in
  let push b c =
    if not (Hashtbl.mem in_w (b, c)) then begin
      Hashtbl.add in_w (b, c) ();
      Queue.add (b, c) w
    end
  in
  Hashtbl.iter (fun b _ -> for c = 0 to k - 1 do push b c done) members;
  while not (Queue.is_empty w) do
    let a, c = Queue.pop w in
    Hashtbl.remove in_w (a, c);
    (* X = c-preimage of block a *)
    let x =
      List.concat_map
        (fun t -> pred.(c).(t))
        (Option.value ~default:[] (Hashtbl.find_opt members a))
    in
    (* group X by current block *)
    let touched = Hashtbl.create 8 in
    List.iter
      (fun q ->
        Hashtbl.replace touched block.(q)
          (q :: Option.value ~default:[] (Hashtbl.find_opt touched block.(q))))
      x;
    Hashtbl.iter
      (fun y xs ->
        let xs = List.sort_uniq compare xs in
        let y_members = Hashtbl.find members y in
        let y_size = List.length y_members in
        let x_size = List.length xs in
        if x_size > 0 && x_size < y_size then begin
          (* split y into z (= xs) and the rest *)
          let z = !next_block in
          incr next_block;
          let in_xs = Hashtbl.create x_size in
          List.iter (fun q -> Hashtbl.replace in_xs q ()) xs;
          let rest = List.filter (fun q -> not (Hashtbl.mem in_xs q)) y_members in
          Hashtbl.replace members y rest;
          Hashtbl.replace members z xs;
          List.iter (fun q -> block.(q) <- z) xs;
          let smaller = if x_size <= y_size - x_size then z else y in
          for c' = 0 to k - 1 do
            if Hashtbl.mem in_w (y, c') then push z c' else push smaller c'
          done
        end)
      touched
  done;
  block

let rec minimize a =
  (* Hopcroft needs a complete DFA, but the completion stays virtual: a
     sink column [n] in the arrays instead of |Q|·|Σ| materialized
     edges. Transitions into the sink are dropped when rebuilding the
     automaton — they lead to dead blocks that [Afsa.trim] would remove
     anyway. *)
  let d, _ = Afsa.renumber (Determinize.determinize a) in
  let n = Afsa.num_states d in
  Chorev_obs.Metrics.incr c_runs;
  Chorev_obs.Metrics.observe h_states (float_of_int n);
  if n = 0 then d
  else begin
    let alpha = Array.of_list (Afsa.alphabet d) in
    let k = Array.length alpha in
    Chorev_obs.Metrics.add c_table_cells (k * (n + 1));
    let col = Hashtbl.create (max 1 k) in
    Array.iteri (fun c l -> Hashtbl.replace col l c) alpha;
    let sink = n in
    let m = n + 1 in
    let succ = Array.make_matrix k m sink in
    List.iter
      (fun q ->
        List.iter
          (fun (sym, ts) ->
            match (sym, ts) with
            | Sym.L l, t :: _ -> succ.(Hashtbl.find col l).(q) <- t
            | _ -> assert false (* deterministic, ε-free *))
          (Afsa.out_rows d q))
      (Afsa.states d);
    let init_class =
      Array.init m (fun q ->
          if q = sink then (false, Chorev_formula.Pp.to_string F.True)
          else
            ( Afsa.is_final d q,
              Chorev_formula.Pp.to_string
                (Chorev_formula.Simplify.simplify (Afsa.annotation d q)) ))
    in
    let block = hopcroft ~n:m ~k ~succ ~init_class in
    let edges = ref [] in
    let seen = Hashtbl.create 16 in
    for q = 0 to n - 1 do
      for c = 0 to k - 1 do
        let t = succ.(c).(q) in
        if t <> sink then begin
          let e = (block.(q), Sym.L alpha.(c), block.(t)) in
          if not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            edges := e :: !edges
          end
        end
      done
    done;
    let finals =
      List.filter_map
        (fun q -> if Afsa.is_final d q then Some block.(q) else None)
        (Afsa.states d)
      |> List.sort_uniq compare
    in
    let ann =
      List.map (fun q -> (block.(q), Afsa.annotation d q)) (Afsa.states d)
      |> List.sort_uniq compare
    in
    Afsa.make
      ~alphabet:(Array.to_list alpha)
      ~start:block.(Afsa.start d) ~finals ~edges:!edges ~ann ()
    |> Afsa.trim |> canonical_renumber
  end

(** Canonical state numbering: BFS from the start, exploring outgoing
    edges in sorted label order. Two isomorphic deterministic automata
    renumber to structurally equal ones. *)
and canonical_renumber m =
  let order = ref [] in
  let seen = Hashtbl.create 16 in
  let q = Queue.create () in
  Queue.add (Afsa.start m) q;
  Hashtbl.add seen (Afsa.start m) ();
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    order := s :: !order;
    let succs =
      Afsa.out_edges m s
      |> List.sort (fun (y1, _) (y2, _) -> Sym.compare y1 y2)
      |> List.map snd
    in
    List.iter
      (fun t ->
        if not (Hashtbl.mem seen t) then begin
          Hashtbl.add seen t ();
          Queue.add t q
        end)
      succs
  done;
  let order = List.rev !order in
  let map =
    List.fold_left
      (fun (i, acc) s -> (i + 1, IMap.add s i acc))
      (0, IMap.empty) order
    |> snd
  in
  let f s = IMap.find s map in
  Afsa.make
    ~alphabet:(Afsa.alphabet m)
    ~start:(f (Afsa.start m))
    ~finals:(List.map f (Afsa.finals m))
    ~edges:(List.map (fun (s, y, t) -> (f s, y, f t)) (Afsa.edges m))
    ~ann:(List.map (fun (s, e) -> (f s, e)) (Afsa.annotations m))
    ()
