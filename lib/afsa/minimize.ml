(** Minimization of deterministic aFSAs by partition refinement.

    The initial partition distinguishes states by finality *and* by
    their simplified annotation, so states with different
    mandatory-message obligations are never merged. Initial classes are
    keyed by the hash-consed annotation itself ([Syntax.equal]/[hash],
    physical fast path) instead of its printed string, and
    already-deterministic ε-free inputs skip the determinization pass
    entirely.

    Refinement runs on Valmari-style refinable partitions over flat int
    arrays: blocks are contiguous ranges of one element array, marking
    moves an element to the front of its block in O(1) and a split is
    two boundary updates. The main path trims first — only states that
    are both reachable and co-reachable take part — and then refines
    two partitions against each other: the live states, and the live
    transitions grouped into cords by label (Valmari & Lehtinen's
    two-partition scheme). That keeps the work proportional to the
    *real* transitions, O(|T|·log|T|), instead of the |Q|·|Σ| cells of
    the virtually-completed table — the difference between linear and
    quadratic on workloads whose alphabet grows with the state count
    (every scale family does). The result is the unique minimal
    annotated DFA, renumbered canonically (BFS from the start in
    sorted-label order), so two automata with the same annotated
    language minimize to structurally equal values — which is what
    {!Equiv.equal_annotated} relies on.

    Empty-language inputs (no co-reachable start) fall back to
    refinement over the virtually-completed table (one sink column
    instead of |Q|·|Σ| edges): the single dead state the old trim used
    to leave behind keeps exactly the self-loops and annotation that
    its equivalence class under the *completed* relation had, and that
    class is what the fallback computes. *)

module F = Chorev_formula.Syntax
module Budget = Chorev_guard.Budget
module ISet = Afsa.ISet
module IMap = Afsa.IMap

(* Instrumentation (DESIGN.md §7): minimization runs, the size of the
   virtually-completed transition table (states × symbols), and runs
   that skipped determinization because the input was already
   deterministic and ε-free. *)
let c_runs = Chorev_obs.Metrics.counter "afsa.minimize.runs"
let c_table_cells = Chorev_obs.Metrics.counter "afsa.minimize.table_cells"
let c_det_fastpath = Chorev_obs.Metrics.counter "afsa.minimize.det_fastpath"
let h_states = Chorev_obs.Metrics.histogram "afsa.minimize.input_states"

(* Initial-class keys: finality × simplified annotation. Annotations
   are hash-consed, so [F.equal] is usually one physical comparison. *)
module ClassTbl = Hashtbl.Make (struct
  type t = bool * F.t

  let equal (b1, f1) (b2, f2) = Bool.equal b1 b2 && F.equal f1 f2
  let hash (b, f) = Hashtbl.hash (b, F.hash f)
end)

(** Canonical state numbering: BFS from the start, exploring outgoing
    edges in sorted label order. Two isomorphic deterministic automata
    renumber to structurally equal ones. Exposed for tests and kept as
    the reference the fused pass inside {!minimize} must agree with. *)
let canonical_renumber m =
  let order = ref [] in
  let seen = Hashtbl.create 16 in
  let q = Queue.create () in
  Queue.add (Afsa.start m) q;
  Hashtbl.add seen (Afsa.start m) ();
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    order := s :: !order;
    let succs =
      Afsa.out_edges m s
      |> List.sort (fun (y1, _) (y2, _) -> Sym.compare y1 y2)
      |> List.map snd
    in
    List.iter
      (fun t ->
        if not (Hashtbl.mem seen t) then begin
          Hashtbl.add seen t ();
          Queue.add t q
        end)
      succs
  done;
  let order = List.rev !order in
  let map =
    List.fold_left
      (fun (i, acc) s -> (i + 1, IMap.add s i acc))
      (0, IMap.empty) order
    |> snd
  in
  let f s = IMap.find s map in
  Afsa.make
    ~alphabet:(Afsa.alphabet m)
    ~start:(f (Afsa.start m))
    ~finals:(List.map f (Afsa.finals m))
    ~edges:(List.map (fun (s, y, t) -> (f s, y, f t)) (Afsa.edges m))
    ~ann:(List.map (fun (s, e) -> (f s, e)) (Afsa.annotations m))
    ()

(* A refinable partition of the dense ids [0..m-1] (used both for
   states and for transitions).

   [elems] lists the ids, grouped so each block occupies a contiguous
   range [first.(b), past.(b)); [loc.(e)] is [e]'s position in [elems]
   and [blk.(e)] its block. Marking an element swaps it into the marked
   prefix of its block (O(1)); splitting a block with both marked and
   unmarked elements moves one boundary and gives the *smaller* half
   the fresh block id — the invariant the "process the smaller half"
   amortization needs. *)
type partition = {
  elems : int array;
  loc : int array;
  blk : int array;
  first : int array;
  past : int array;
  marked : int array;
  touched : int array;  (* blocks with ≥1 marked element, this splitter *)
  mutable ntouched : int;
  mutable nblocks : int;
}

let mark p e =
  let b = p.blk.(e) in
  let i = p.loc.(e) in
  let mstart = p.first.(b) + p.marked.(b) in
  if i >= mstart then begin
    let e' = p.elems.(mstart) in
    p.elems.(i) <- e';
    p.loc.(e') <- i;
    p.elems.(mstart) <- e;
    p.loc.(e) <- mstart;
    if p.marked.(b) = 0 then begin
      p.touched.(p.ntouched) <- b;
      p.ntouched <- p.ntouched + 1
    end;
    p.marked.(b) <- p.marked.(b) + 1
  end

(* Split every touched block into marked/unmarked halves; [on_new z] is
   called once per block created. *)
let split_touched p on_new =
  for ti = 0 to p.ntouched - 1 do
    let y = p.touched.(ti) in
    let mk = p.marked.(y) in
    let sz = p.past.(y) - p.first.(y) in
    p.marked.(y) <- 0;
    if mk < sz then begin
      let z = p.nblocks in
      p.nblocks <- z + 1;
      if mk <= sz - mk then begin
        (* fresh block = marked prefix *)
        p.first.(z) <- p.first.(y);
        p.past.(z) <- p.first.(y) + mk;
        p.first.(y) <- p.past.(z)
      end
      else begin
        (* fresh block = unmarked suffix *)
        p.first.(z) <- p.first.(y) + mk;
        p.past.(z) <- p.past.(y);
        p.past.(y) <- p.first.(z)
      end;
      for i = p.first.(z) to p.past.(z) - 1 do
        p.blk.(p.elems.(i)) <- z
      done;
      on_new z
    end
  done;
  p.ntouched <- 0

(* Partition of [0..m-1] from a dense class assignment [cls] (classes
   [0..ncls-1]), elements laid out block-contiguously by counting
   sort. [cap] bounds how many blocks the partition can ever hold,
   splits included. *)
let partition_make ~cap m cls ncls =
  let cap = max 1 cap in
  let p =
    {
      elems = Array.make (max 1 m) 0;
      loc = Array.make (max 1 m) 0;
      blk = Array.make (max 1 m) 0;
      first = Array.make cap 0;
      past = Array.make cap 0;
      marked = Array.make cap 0;
      touched = Array.make cap 0;
      ntouched = 0;
      nblocks = ncls;
    }
  in
  Array.blit cls 0 p.blk 0 m;
  let sizes = Array.make (max 1 ncls) 0 in
  for e = 0 to m - 1 do
    sizes.(cls.(e)) <- sizes.(cls.(e)) + 1
  done;
  let off = ref 0 in
  for b = 0 to ncls - 1 do
    p.first.(b) <- !off;
    off := !off + sizes.(b);
    p.past.(b) <- !off;
    sizes.(b) <- p.first.(b)
  done;
  for e = 0 to m - 1 do
    let b = cls.(e) in
    p.elems.(sizes.(b)) <- e;
    p.loc.(e) <- sizes.(b);
    sizes.(b) <- sizes.(b) + 1
  done;
  p

(* Initial state classes by (finality, simplified annotation), densely
   numbered in first-seen order. *)
let initial_classes nstates final_of ann_of =
  let class_ids = ClassTbl.create 16 in
  let cls = Array.make (max 1 nstates) 0 in
  let ncls = ref 0 in
  for q = 0 to nstates - 1 do
    let key = (final_of q, ann_of q) in
    let b =
      match ClassTbl.find_opt class_ids key with
      | Some b -> b
      | None ->
          let b = !ncls in
          incr ncls;
          ClassTbl.add class_ids key b;
          b
    in
    cls.(q) <- b
  done;
  (cls, !ncls)

(* ------------------------------------------------------------------ *)
(* Fallback: refinement over the virtually-completed table.           *)
(* ------------------------------------------------------------------ *)

(* Only empty-language inputs come here: the single state the result
   keeps stands for the start's equivalence class under the
   *completed* relation (dead states merge with the sink only when
   their whole behaviour does), and its surviving self-loops and
   annotation depend on that class — which the sparse live-core path
   never computes. Inputs with a live start never reach this function;
   size is whatever the automaton is, and empty-language automata are
   small in practice, so the |Q|·|Σ| table is affordable here. *)
let minimize_completed budget d state_ids n alpha k dense_of =
  let sink = n in
  let m = n + 1 in
  let col = Hashtbl.create (max 1 k) in
  Array.iteri (fun c l -> Hashtbl.replace col l c) alpha;
  (* Transition table of the virtually-completed DFA: succ.(q*k + c),
     missing transitions go to the sink column. *)
  let succ = Array.make (max 1 (m * k)) sink in
  Array.iteri
    (fun qi q ->
      List.iter
        (fun (sym, ts) ->
          match (sym, ts) with
          | Sym.L l, [ t ] -> succ.((qi * k) + Hashtbl.find col l) <- dense_of t
          | _ -> assert false (* deterministic, ε-free *))
        (Afsa.out_rows d q))
    state_ids;
  (* Per-symbol CSR predecessor table: the c-predecessors of dense
     state t are cdata.(c).(j) for coff.(c).(t) ≤ j < coff.(c).(t+1).
     Exactly m entries per symbol (the DFA is complete). *)
  let coff = Array.init k (fun _ -> Array.make (m + 1) 0) in
  let cdata = Array.init k (fun _ -> Array.make m 0) in
  for q = 0 to m - 1 do
    for c = 0 to k - 1 do
      let o = coff.(c) in
      let t = succ.((q * k) + c) in
      o.(t + 1) <- o.(t + 1) + 1
    done
  done;
  for c = 0 to k - 1 do
    let o = coff.(c) in
    for t = 0 to m - 1 do
      o.(t + 1) <- o.(t + 1) + o.(t)
    done
  done;
  let cursor = Array.init k (fun c -> Array.copy coff.(c)) in
  for q = 0 to m - 1 do
    for c = 0 to k - 1 do
      let t = succ.((q * k) + c) in
      let cur = cursor.(c) in
      cdata.(c).(cur.(t)) <- q;
      cur.(t) <- cur.(t) + 1
    done
  done;
  (* Finality and (simplified) annotation per dense id; the sink is a
     non-final True state. *)
  let final_d = Array.make m false in
  let ann_d = Array.make m F.True in
  Array.iteri
    (fun qi q ->
      final_d.(qi) <- Afsa.is_final d q;
      ann_d.(qi) <- Chorev_formula.Simplify.simplify (Afsa.annotation d q))
    state_ids;
  let cls, ncls = initial_classes m (Array.get final_d) (Array.get ann_d) in
  let p = partition_make ~cap:m m cls ncls in
  (* Worklist of (block, symbol), encoded b*k+c. Each pair enters at
     most once (at block creation), so m*k bounds the stack. *)
  let wstack = Array.make (max 1 (m * k)) 0 in
  let wtop = ref 0 in
  let push b =
    for c = 0 to k - 1 do
      wstack.(!wtop) <- (b * k) + c;
      incr wtop
    done
  in
  for b = 0 to ncls - 1 do
    push b
  done;
  let scratch = Array.make m 0 in
  while !wtop > 0 do
    Budget.tick budget;
    decr wtop;
    let code = wstack.(!wtop) in
    let b = code / k and c = code mod k in
    (* Copy the splitter's members first: marking reorders [elems]
       inside other blocks — including b itself when a member's
       c-successor lands back in b. *)
    let f0 = p.first.(b) in
    let cnt = p.past.(b) - f0 in
    Array.blit p.elems f0 scratch 0 cnt;
    let o = coff.(c) and data = cdata.(c) in
    for i = 0 to cnt - 1 do
      let t = scratch.(i) in
      for j = o.(t) to o.(t + 1) - 1 do
        mark p data.(j)
      done
    done;
    split_touched p push
  done;
  (* Quotient, trimming and the canonical BFS renumbering, fused. *)
  let nb = p.nblocks in
  let rep b = p.elems.(p.first.(b)) in
  let bsucc b c = p.blk.(succ.((rep b * k) + c)) in
  (* Co-reachability on blocks: reverse BFS from the final blocks.
     (Finality is uniform within a block by construction.) *)
  let colive = Array.make nb false in
  let stack = ref [] in
  for b = 0 to nb - 1 do
    if final_d.(rep b) then begin
      colive.(b) <- true;
      stack := b :: !stack
    end
  done;
  let rpreds = Array.make nb [] in
  for b = 0 to nb - 1 do
    for c = 0 to k - 1 do
      let t = bsucc b c in
      rpreds.(t) <- b :: rpreds.(t)
    done
  done;
  let rec drain () =
    match !stack with
    | [] -> ()
    | b :: rest ->
        stack := rest;
        List.iter
          (fun pb ->
            if not colive.(pb) then begin
              colive.(pb) <- true;
              stack := pb :: !stack
            end)
          rpreds.(b);
        drain ()
  in
  drain ();
  let sb = p.blk.(dense_of (Afsa.start d)) in
  let alpha_list = Array.to_list alpha in
  if not colive.(sb) then begin
    (* Dead start: the language is empty; keep one state, preserving
       the start block's real self-loops and annotation (what trimming
       the materialized quotient used to leave behind). *)
    let edges = ref [] in
    for c = k - 1 downto 0 do
      if bsucc sb c = sb then begin
        (* a self-loop survives only if backed by a non-sink target *)
        let backed = ref false in
        for i = p.first.(sb) to p.past.(sb) - 1 do
          let q = p.elems.(i) in
          if q <> sink && succ.((q * k) + c) <> sink then backed := true
        done;
        if !backed then edges := (0, Sym.L alpha.(c), 0) :: !edges
      end
    done;
    let ann = if rep sb = sink then [] else [ (0, ann_d.(rep sb)) ] in
    Afsa.make ~alphabet:alpha_list ~start:0 ~finals:[] ~edges:!edges ~ann ()
  end
  else begin
    (* Canonical BFS from the start block over live targets, assigning
       new ids in discovery order; symbols are already in sorted label
       order, which is exactly the Sym order the reference
       [canonical_renumber] sorts by. *)
    let newid = Array.make nb (-1) in
    let queue = Queue.create () in
    newid.(sb) <- 0;
    let next = ref 1 in
    Queue.add sb queue;
    let edges = ref [] in
    let finals = ref [] in
    let ann = ref [] in
    while not (Queue.is_empty queue) do
      let b = Queue.pop queue in
      let id = newid.(b) in
      if final_d.(rep b) then finals := id :: !finals;
      let f = ann_d.(rep b) in
      if not (F.equal f F.True) then ann := (id, f) :: !ann;
      for c = 0 to k - 1 do
        let t = bsucc b c in
        if colive.(t) then begin
          if newid.(t) < 0 then begin
            newid.(t) <- !next;
            incr next;
            Queue.add t queue
          end;
          edges := (id, Sym.L alpha.(c), newid.(t)) :: !edges
        end
      done
    done;
    Afsa.make ~alphabet:alpha_list ~start:0 ~finals:!finals ~edges:!edges
      ~ann:!ann ()
  end

(* ------------------------------------------------------------------ *)
(* Main path: trim first, then refine states against transition cords *)
(* over the live core only.                                           *)
(* ------------------------------------------------------------------ *)

let minimize ?budget a =
  let budget =
    match budget with Some b -> b | None -> Budget.ambient ()
  in
  Chorev_obs.Metrics.incr c_runs;
  (* A deterministic input (no ε, ≤1 target per symbol) goes straight
     to refinement; determinization would only ε-eliminate (a no-op)
     and renumber (the dense mapping below subsumes it). *)
  let d =
    if Afsa.is_deterministic a then begin
      Chorev_obs.Metrics.incr c_det_fastpath;
      a
    end
    else Determinize.determinize ~budget a
  in
  let state_ids = Array.of_list (Afsa.states d) in
  let n = Array.length state_ids in
  Chorev_obs.Metrics.observe h_states (float_of_int n);
  let alpha = Array.of_list (Afsa.alphabet d) in
  let k = Array.length alpha in
  Chorev_obs.Metrics.add c_table_cells (k * (n + 1));
  (* Dense ids: state_ids.(i) ↔ i. Determinize output is already dense
     from 0; the fast path may see sparse ids. *)
  let dense_of =
    if n > 0 && state_ids.(0) = 0 && state_ids.(n - 1) = n - 1 then fun q -> q
    else begin
      let tbl = Hashtbl.create (2 * n) in
      Array.iteri (fun i q -> Hashtbl.replace tbl q i) state_ids;
      fun q -> Hashtbl.find tbl q
    end
  in
  if n = 0 then minimize_completed budget d state_ids n alpha k dense_of
  else begin
    (* Real transitions with dense endpoints and label column ids. *)
    let col = Hashtbl.create (max 1 k) in
    Array.iteri (fun c l -> Hashtbl.replace col l c) alpha;
    let nt = ref 0 in
    Array.iter
      (fun q -> nt := !nt + List.length (Afsa.out_rows d q))
      state_ids;
    let t0 = !nt in
    let tt = Array.make (max 1 t0) 0 in
    let tl = Array.make (max 1 t0) 0 in
    let th = Array.make (max 1 t0) 0 in
    let ti = ref 0 in
    Array.iteri
      (fun qi q ->
        List.iter
          (fun (sym, ts) ->
            match (sym, ts) with
            | Sym.L l, [ t ] ->
                tt.(!ti) <- qi;
                tl.(!ti) <- Hashtbl.find col l;
                th.(!ti) <- dense_of t;
                incr ti
            | _ -> assert false (* deterministic, ε-free *))
          (Afsa.out_rows d q))
      state_ids;
    (* Reachability from the start and co-reachability from the finals
       over the real edges; only their intersection (the live core)
       takes part in refinement. Any path from the start to a live
       state runs through live states, so the quotient stays connected. *)
    let csr key =
      let off = Array.make (n + 1) 0 in
      for t = 0 to t0 - 1 do
        off.(key.(t) + 1) <- off.(key.(t) + 1) + 1
      done;
      for q = 0 to n - 1 do
        off.(q + 1) <- off.(q + 1) + off.(q)
      done;
      let data = Array.make (max 1 t0) 0 in
      let cur = Array.copy off in
      for t = 0 to t0 - 1 do
        data.(cur.(key.(t))) <- t;
        cur.(key.(t)) <- cur.(key.(t)) + 1
      done;
      (off, data)
    in
    let aoff, adata = csr tt in
    let ioff, idata = csr th in
    let queue = Array.make n 0 in
    let bfs roots ends_of off data =
      let seen = Array.make n false in
      let qe = ref 0 in
      let enq v =
        if not seen.(v) then begin
          seen.(v) <- true;
          queue.(!qe) <- v;
          incr qe
        end
      in
      List.iter enq roots;
      let qh = ref 0 in
      while !qh < !qe do
        let s = queue.(!qh) in
        incr qh;
        for j = off.(s) to off.(s + 1) - 1 do
          enq (ends_of data.(j))
        done
      done;
      seen
    in
    let start_d = dense_of (Afsa.start d) in
    let reach = bfs [ start_d ] (fun t -> th.(t)) aoff adata in
    let final_roots =
      List.filter_map
        (fun q -> if Afsa.is_final d q then Some (dense_of q) else None)
        (Afsa.finals d)
    in
    let coreach = bfs final_roots (fun t -> tt.(t)) ioff idata in
    if not (reach.(start_d) && coreach.(start_d)) then
      minimize_completed budget d state_ids n alpha k dense_of
    else begin
      let live q = reach.(q) && coreach.(q) in
      let lid = Array.make n (-1) in
      let nl = ref 0 in
      for q = 0 to n - 1 do
        if live q then begin
          lid.(q) <- !nl;
          incr nl
        end
      done;
      let nl = !nl in
      let lstate = Array.make nl 0 in
      for q = 0 to n - 1 do
        if lid.(q) >= 0 then lstate.(lid.(q)) <- q
      done;
      (* Live transitions in ascending label order (counting sort);
         edges into dead states disappear — a dead successor is
         indistinguishable from a missing one. *)
      let lcnt = Array.make (k + 1) 0 in
      for t = 0 to t0 - 1 do
        lcnt.(tl.(t) + 1) <- lcnt.(tl.(t) + 1) + 1
      done;
      for c = 0 to k - 1 do
        lcnt.(c + 1) <- lcnt.(c + 1) + lcnt.(c)
      done;
      let ord = Array.make (max 1 t0) 0 in
      let cur = Array.copy lcnt in
      for t = 0 to t0 - 1 do
        ord.(cur.(tl.(t))) <- t;
        cur.(tl.(t)) <- cur.(tl.(t)) + 1
      done;
      let ft = Array.make (max 1 t0) 0 in
      let fl = Array.make (max 1 t0) 0 in
      let fh = Array.make (max 1 t0) 0 in
      let tn = ref 0 in
      for i = 0 to t0 - 1 do
        let t = ord.(i) in
        if live tt.(t) && live th.(t) then begin
          ft.(!tn) <- lid.(tt.(t));
          fl.(!tn) <- tl.(t);
          fh.(!tn) <- lid.(th.(t));
          incr tn
        end
      done;
      let tn = !tn in
      (* Out-CSR by tail: stable over the label order, so each state's
         transitions come out label-ascending — the order the canonical
         BFS needs. In-CSR by head drives cord marking. *)
      let lcsr key =
        let off = Array.make (nl + 1) 0 in
        for t = 0 to tn - 1 do
          off.(key.(t) + 1) <- off.(key.(t) + 1) + 1
        done;
        for q = 0 to nl - 1 do
          off.(q + 1) <- off.(q + 1) + off.(q)
        done;
        let data = Array.make (max 1 tn) 0 in
        let cur = Array.copy off in
        for t = 0 to tn - 1 do
          data.(cur.(key.(t))) <- t;
          cur.(key.(t)) <- cur.(key.(t)) + 1
        done;
        (off, data)
      in
      let ooff, oidx = lcsr ft in
      let inoff, inidx = lcsr fh in
      let final_l = Array.make (max 1 nl) false in
      let ann_l = Array.make (max 1 nl) F.True in
      for li = 0 to nl - 1 do
        let q = state_ids.(lstate.(li)) in
        final_l.(li) <- Afsa.is_final d q;
        ann_l.(li) <- Chorev_formula.Simplify.simplify (Afsa.annotation d q)
      done;
      let cls, ncls = initial_classes nl (Array.get final_l) (Array.get ann_l) in
      let pb = partition_make ~cap:nl nl cls ncls in
      (* Cords: one initial set per label in use (fl is label-sorted,
         so classes appear contiguously). *)
      let ccls = Array.make (max 1 tn) 0 in
      let ncc = ref 0 in
      let last_lab = ref (-1) in
      for t = 0 to tn - 1 do
        if fl.(t) <> !last_lab then begin
          last_lab := fl.(t);
          incr ncc
        end;
        ccls.(t) <- !ncc - 1
      done;
      let pc = partition_make ~cap:(max 1 tn) tn ccls !ncc in
      (* Valmari & Lehtinen's loop: each cord set splits state blocks
         by its tails, each state block (except the first) splits cords
         by its members' incoming transitions; every set created is
         processed exactly once, in creation order. *)
      let no_new = fun (_ : int) -> () in
      let bi = ref 1 and ci = ref 0 in
      while !ci < pc.nblocks do
        Budget.tick budget;
        for i = pc.first.(!ci) to pc.past.(!ci) - 1 do
          mark pb ft.(pc.elems.(i))
        done;
        split_touched pb no_new;
        incr ci;
        while !bi < pb.nblocks do
          Budget.tick budget;
          for i = pb.first.(!bi) to pb.past.(!bi) - 1 do
            let s = pb.elems.(i) in
            for j = inoff.(s) to inoff.(s + 1) - 1 do
              mark pc inidx.(j)
            done
          done;
          split_touched pc no_new;
          incr bi
        done
      done;
      (* Quotient + canonical BFS renumbering in one pass: every block
         is live and reachable from the start block, and each rep's
         out-transitions are already label-ascending. *)
      let nb = pb.nblocks in
      let rep b = pb.elems.(pb.first.(b)) in
      let sb = pb.blk.(lid.(start_d)) in
      let newid = Array.make nb (-1) in
      let bqueue = Queue.create () in
      newid.(sb) <- 0;
      let next = ref 1 in
      Queue.add sb bqueue;
      let edges = ref [] in
      let finals = ref [] in
      let ann = ref [] in
      while not (Queue.is_empty bqueue) do
        let b = Queue.pop bqueue in
        let id = newid.(b) in
        let r = rep b in
        if final_l.(r) then finals := id :: !finals;
        let f = ann_l.(r) in
        if not (F.equal f F.True) then ann := (id, f) :: !ann;
        for j = ooff.(r) to ooff.(r + 1) - 1 do
          let t = oidx.(j) in
          let tb = pb.blk.(fh.(t)) in
          if newid.(tb) < 0 then begin
            newid.(tb) <- !next;
            incr next;
            Queue.add tb bqueue
          end;
          edges := (id, Sym.L alpha.(fl.(t)), newid.(tb)) :: !edges
        done
      done;
      Afsa.make ~alphabet:(Array.to_list alpha) ~start:0 ~finals:!finals
        ~edges:!edges ~ann:!ann ()
    end
  end
