(** Canonical structural fingerprints of aFSAs.

    The fingerprint is an MD5 digest of an unambiguous serialization of
    exactly the components {!Afsa.structurally_equal} compares: states,
    alphabet, start, finals, transitions and annotations. Two automata
    have equal fingerprints iff they serialize identically, i.e. (up to
    MD5 collisions) iff they are structurally equal — equal {e as
    written}, not up to language equivalence. Callers that want a
    language-canonical key therefore fingerprint {e minimized} automata:
    {!Minimize.minimize} numbers states canonically, so equal annotated
    languages collapse to one fingerprint (this is why the cache layer
    computes fingerprints post-minimize).

    The digest is cached in the automaton's [fp] field. Every structural
    modifier in {!Afsa} resets the field; {!Afsa.copy} keeps it. The
    cached value is an immutable string, so reading it from several
    domains is safe; {e computing} it mutates the record and must follow
    the same single-domain discipline as the lazy index (compute in the
    coordinator before fan-out, or on a private {!Afsa.copy}). *)

module F = Chorev_formula.Syntax

(* Unambiguous: every variable-length piece is length-prefixed, every
   construct starts with a distinct tag character. *)
let add_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let add_int buf i =
  Buffer.add_string buf (string_of_int i);
  Buffer.add_char buf ';'

let rec add_formula buf = function
  | F.True -> Buffer.add_char buf 'T'
  | F.False -> Buffer.add_char buf 'F'
  | F.Var v ->
      Buffer.add_char buf 'v';
      add_str buf v
  | F.Not f ->
      Buffer.add_char buf '!';
      add_formula buf f
  | F.And (l, r) ->
      Buffer.add_char buf '&';
      add_formula buf l;
      add_formula buf r
  | F.Or (l, r) ->
      Buffer.add_char buf '|';
      add_formula buf l;
      add_formula buf r

let add_sym buf = function
  | Sym.Eps -> Buffer.add_char buf 'e'
  | Sym.L l ->
      Buffer.add_char buf 'l';
      add_str buf (Label.to_string l)

(* Packed fast path: when the CSR form is already compiled (never built
   just for a digest), render straight from the flat arrays. The CSR
   rows are sorted exactly like the ordered-map iteration below — ε
   before proper symbols, targets ascending — so the byte stream, and
   therefore the digest, is identical. *)
let serialize_packed (a : Afsa.t) p =
  let module P = Afsa.Packed in
  let buf = Buffer.create 512 in
  let lbls =
    Array.map
      (function Sym.L l -> Label.to_string l | Sym.Eps -> "")
      p.P.syms
  in
  Buffer.add_char buf 'q';
  add_int buf a.Afsa.start;
  Buffer.add_char buf 'Q';
  Array.iter (fun q -> add_int buf q) p.P.state_ids;
  Buffer.add_char buf 'A';
  Label.Set.iter (fun l -> add_str buf (Label.to_string l)) a.Afsa.alphabet;
  Buffer.add_char buf 'D';
  for i = 0 to p.P.n - 1 do
    let s = p.P.state_ids.(i) in
    for e = p.P.eps_off.(i) to p.P.eps_off.(i + 1) - 1 do
      add_int buf s;
      Buffer.add_char buf 'e';
      add_int buf p.P.state_ids.(p.P.eps_tgt.(e))
    done;
    for e = p.P.row_off.(i) to p.P.row_off.(i + 1) - 1 do
      add_int buf s;
      Buffer.add_char buf 'l';
      add_str buf lbls.(p.P.row_sym.(e));
      add_int buf p.P.state_ids.(p.P.row_tgt.(e))
    done
  done;
  Buffer.add_char buf 'F';
  Bitset.iter (fun i -> add_int buf p.P.state_ids.(i)) p.P.finals;
  Buffer.add_char buf 'N';
  Afsa.IMap.iter
    (fun q f ->
      add_int buf q;
      add_formula buf f)
    a.Afsa.ann;
  Buffer.contents buf

(* All iterations below are over ordered maps/sets, so the rendering is
   deterministic with no sorting pass. *)
let serialize_map (a : Afsa.t) =
  let buf = Buffer.create 512 in
  Buffer.add_char buf 'q';
  add_int buf a.Afsa.start;
  Buffer.add_char buf 'Q';
  Afsa.ISet.iter (fun q -> add_int buf q) a.Afsa.states;
  Buffer.add_char buf 'A';
  Label.Set.iter (fun l -> add_str buf (Label.to_string l)) a.Afsa.alphabet;
  Buffer.add_char buf 'D';
  Afsa.IMap.iter
    (fun s row ->
      Sym.Map.iter
        (fun sym tgts ->
          Afsa.ISet.iter
            (fun t ->
              add_int buf s;
              add_sym buf sym;
              add_int buf t)
            tgts)
        row)
    a.Afsa.delta;
  Buffer.add_char buf 'F';
  Afsa.ISet.iter (fun q -> add_int buf q) a.Afsa.finals;
  Buffer.add_char buf 'N';
  Afsa.IMap.iter
    (fun q f ->
      add_int buf q;
      add_formula buf f)
    a.Afsa.ann;
  Buffer.contents buf

let serialize (a : Afsa.t) =
  match if Afsa.Packed.enabled () then Afsa.Packed.peek a else None with
  | Some p -> serialize_packed a p
  | None -> serialize_map a

let compute a = Digest.string (serialize a)

let digest (a : Afsa.t) =
  match a.Afsa.fp with
  | Some d -> d
  | None ->
      let d = compute a in
      a.Afsa.fp <- Some d;
      d

let peek (a : Afsa.t) = a.Afsa.fp
let hex a = Digest.to_hex (digest a)
let equal a b = a == b || String.equal (digest a) (digest b)

(* Equality decidable from already-cached digests only — never computes.
   [None] = at least one side has no cached digest and the automata are
   not physically equal. *)
let cached_equal a b =
  if a == b then Some true
  else
    match (a.Afsa.fp, b.Afsa.fp) with
    | Some da, Some db -> Some (String.equal da db)
    | _ -> None
