(** Total (non-raising) entry points into the algebra: each wraps an
    operation in {!Chorev_guard.Budget.run} so callers get a typed
    [`Done]/[`Exceeded] instead of having to catch
    {!Chorev_guard.Budget.Expired} themselves. *)

module Budget = Chorev_guard.Budget

type 'a outcome = [ `Done of 'a | `Exceeded of Budget.info ]

val intersect : budget:Budget.t -> Afsa.t -> Afsa.t -> Afsa.t outcome
val difference : budget:Budget.t -> Afsa.t -> Afsa.t -> Afsa.t outcome
val union : budget:Budget.t -> Afsa.t -> Afsa.t -> Afsa.t outcome
val determinize : budget:Budget.t -> Afsa.t -> Afsa.t outcome
val minimize : budget:Budget.t -> Afsa.t -> Afsa.t outcome
val emptiness : budget:Budget.t -> Afsa.t -> Emptiness.result outcome

val minimize_or_self : budget:Budget.t -> Afsa.t -> Afsa.t * Budget.info option
(** Graceful degradation: the minimized automaton, or the input
    unchanged (language-equal, just larger) with the trip info when the
    budget ran out. *)
