(** Annotated Finite State Automata — Definition 2 of the paper:
    [(Q, Σ, Δ, q0, F, QA)]. A state's annotation constrains which
    outgoing messages are mandatory; states without an entry carry
    [true]. The representation is exposed for the algebra modules; use
    the constructors and accessors below rather than building records
    by hand. *)

module F = Chorev_formula.Syntax
module ISet : Set.S with type elt = int
module IMap : Map.S with type key = int

type index
(** Derived lookup structures over [delta] — see {!index}. Opaque:
    access goes through {!out_rows}, {!succ_list}, {!eps_succs} and
    {!preds}. *)

type t = {
  states : ISet.t;
  alphabet : Label.Set.t;
  delta : ISet.t Sym.Map.t IMap.t;  (** state → symbol → targets *)
  start : int;
  finals : ISet.t;
  ann : F.t IMap.t;  (** absent entry = [True] *)
  mutable idx : index option;
      (** lazily-built index cache; derived data only — never set by
          hand, always invalidated by the modifiers below *)
  mutable fp : string option;
      (** cached structural fingerprint; derived data only — computed
          and read through {!Fingerprint}, invalidated by the modifiers
          below, preserved by {!copy} (the structure is shared) *)
}

(** {1 Construction} *)

val make :
  ?alphabet:Label.t list ->
  start:int ->
  finals:int list ->
  edges:(int * Sym.t * int) list ->
  ?ann:(int * F.t) list ->
  unit ->
  t
(** States are inferred from the arguments; the alphabet from the edge
    labels unioned with [alphabet]; annotations are simplified and
    [True] entries dropped. *)

val of_strings :
  ?alphabet:string list ->
  start:int ->
  finals:int list ->
  edges:(int * string * int) list ->
  ?ann:(int * F.t) list ->
  unit ->
  t
(** Edges as [(s, "A#B#msg", t)], with [""] for ε. *)

(** {1 Queries} *)

val states : t -> int list
val num_states : t -> int
val alphabet : t -> Label.t list
val start : t -> int
val finals : t -> int list
val is_final : t -> int -> bool

val annotation : t -> int -> F.t
(** [True] when the state has no entry. *)

val annotations : t -> (int * F.t) list
val has_annotations : t -> bool

val step : t -> int -> Sym.t -> ISet.t
(** Successors on one symbol. *)

val out_edges : t -> int -> (Sym.t * int) list
val out_symbols : t -> int -> Label.Set.t
val edges : t -> (int * Sym.t * int) list
val num_edges : t -> int
val has_eps : t -> bool

val is_deterministic : t -> bool
(** No ε-transition and at most one target per (state, symbol). *)

(** {1 Derived indexes}

    Lazily-built lookup structures over [delta], cached inside the
    automaton; every constructor and modifier invalidates the cache, so
    the indexes are always consistent with the transition relation.
    Laziness is per component: grouped rows materialize per state on
    demand (a product over a huge completed automaton only pays for the
    states it actually reaches), and the predecessor table is one
    O(|Δ|) pass on first backward traversal. The algebra's hot paths
    (product, emptiness, ε-elimination, minimization) use these instead
    of re-deriving edge lists. *)

val index : t -> index
(** The cached (initially empty) index. *)

val out_rows : t -> int -> (Sym.t * int list) list
(** Outgoing edges grouped by symbol; each symbol appears once.
    Computed once per state, then O(1). *)

val succ_list : t -> int -> Sym.t -> int list
(** Successor list on one symbol; [[]] when none. *)

val eps_succs : t -> int -> int list
(** ε-successors. *)

val preds : t -> int -> int list
(** Distinct predecessor states over any symbol; the reverse table is
    built once per automaton on first call. *)

(** {1 Reachability and trimming} *)

val reachable_from : t -> int -> ISet.t
val coreachable : t -> ISet.t

val trim_unreachable : t -> t
(** Drop states unreachable from the start. *)

val trim : t -> t
(** Drop unreachable and dead states (start always kept); preserves the
    plain language. *)

val renumber : ?start_zero:bool -> t -> t * int IMap.t
(** Dense renumbering; returns the old→new map. *)

(** {1 Modification} *)

val copy : t -> t
(** Same automaton, private (empty) index cache. The persistent fields
    are shared. Use one copy per parallel task when several domains
    read the same automaton: the index Hashtbls are not thread-safe,
    and a private handle keeps each domain's lazy index builds local.
    An already-computed fingerprint is kept (it is an immutable string
    describing the shared structure). *)

val add_edge : t -> int * Sym.t * int -> t

val add_edges : t -> (int * Sym.t * int) list -> t
(** Bulk {!add_edge}: one new record for the whole batch. *)
val set_annotation : t -> int -> F.t -> t
val clear_annotations : t -> t
val set_finals : t -> int list -> t
val widen_alphabet : t -> Label.t list -> t

val structurally_equal : t -> t -> bool
(** Same states, alphabet, start, finals, edges and annotations. *)
