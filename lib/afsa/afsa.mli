(** Annotated Finite State Automata — Definition 2 of the paper:
    [(Q, Σ, Δ, q0, F, QA)]. A state's annotation constrains which
    outgoing messages are mandatory; states without an entry carry
    [true]. The representation is exposed for the algebra modules; use
    the constructors and accessors below rather than building records
    by hand. *)

module F = Chorev_formula.Syntax
module ISet : Set.S with type elt = int
module IMap : Map.S with type key = int

type index
(** Derived lookup structures over [delta] — see {!index}. Opaque:
    access goes through {!out_rows}, {!succ_list}, {!eps_succs} and
    {!preds}. *)

type t = {
  states : ISet.t;
  alphabet : Label.Set.t;
  delta : ISet.t Sym.Map.t IMap.t;  (** state → symbol → targets *)
  start : int;
  finals : ISet.t;
  ann : F.t IMap.t;  (** absent entry = [True] *)
  mutable idx : index option;
      (** lazily-built index cache; derived data only — never set by
          hand, always invalidated by the modifiers below *)
  mutable fp : string option;
      (** cached structural fingerprint; derived data only — computed
          and read through {!Fingerprint}, invalidated by the modifiers
          below, preserved by {!copy} (the structure is shared) *)
}

(** {1 Construction} *)

val make :
  ?alphabet:Label.t list ->
  start:int ->
  finals:int list ->
  edges:(int * Sym.t * int) list ->
  ?ann:(int * F.t) list ->
  unit ->
  t
(** States are inferred from the arguments; the alphabet from the edge
    labels unioned with [alphabet]; annotations are simplified and
    [True] entries dropped. *)

val of_strings :
  ?alphabet:string list ->
  start:int ->
  finals:int list ->
  edges:(int * string * int) list ->
  ?ann:(int * F.t) list ->
  unit ->
  t
(** Edges as [(s, "A#B#msg", t)], with [""] for ε. *)

(** {1 Queries} *)

val states : t -> int list
val num_states : t -> int
val alphabet : t -> Label.t list
val start : t -> int
val finals : t -> int list
val is_final : t -> int -> bool

val annotation : t -> int -> F.t
(** [True] when the state has no entry. *)

val annotations : t -> (int * F.t) list
val has_annotations : t -> bool

val step : t -> int -> Sym.t -> ISet.t
(** Successors on one symbol. *)

val out_edges : t -> int -> (Sym.t * int) list
val out_symbols : t -> int -> Label.Set.t
val edges : t -> (int * Sym.t * int) list
val num_edges : t -> int
val has_eps : t -> bool

val is_deterministic : t -> bool
(** No ε-transition and at most one target per (state, symbol). *)

(** {1 Derived indexes}

    Lazily-built lookup structures over [delta], cached inside the
    automaton; every constructor and modifier invalidates the cache, so
    the indexes are always consistent with the transition relation.
    Laziness is per component: grouped rows materialize per state on
    demand (a product over a huge completed automaton only pays for the
    states it actually reaches), and the predecessor table is one
    O(|Δ|) pass on first backward traversal. The algebra's hot paths
    (product, emptiness, ε-elimination, minimization) use these instead
    of re-deriving edge lists. *)

val index : t -> index
(** The cached (initially empty) index. *)

val out_rows : t -> int -> (Sym.t * int list) list
(** Outgoing edges grouped by symbol; each symbol appears once.
    Computed once per state, then O(1). *)

val succ_list : t -> int -> Sym.t -> int list
(** Successor list on one symbol; [[]] when none. *)

val eps_succs : t -> int -> int list
(** ε-successors. *)

val preds : t -> int -> int list
(** Distinct predecessor states over any symbol; the reverse table is
    built once per automaton on first call. *)

(** {1 Packed (CSR) form}

    The flat compilation of an automaton the hot kernels run over:
    dense state numbering, proper out-edges as one CSR sorted by
    (symbol id, target) per row, a separate ε-adjacency CSR, finals and
    annotation-nontrivial flags as bitsets. Compiled once per automaton
    and cached on the lazy index slot, so every structural modifier
    already invalidates it. *)
module Packed : sig
  type afsa
  (** := the automaton type [t] of the enclosing module. *)

  type t = {
    n : int;  (** dense state count *)
    state_ids : int array;  (** dense → original id, strictly ascending *)
    start : int;  (** dense index of the start state *)
    finals : Bitset.t;  (** over dense indexes *)
    syms : Sym.t array;  (** proper symbols, ascending ([Sym.Map] order) *)
    row_off : int array;  (** n+1: proper out-row extents per dense state *)
    row_sym : int array;  (** per edge: symbol id; rows sorted by (sym, tgt) *)
    row_tgt : int array;  (** per edge: dense target *)
    eps_off : int array;  (** n+1: ε out-row extents *)
    eps_tgt : int array;  (** per ε-edge: dense target, sorted within row *)
    ann : F.t array;  (** per dense state; [True] when absent *)
    ann_nontrivial : Bitset.t;  (** states with a non-[True] annotation *)
    mutable preds : (int array * int array) option;
    mutable eps_cl_csr : (int array * int array) option;
  }

  val enabled : unit -> bool
  (** Whether the packed kernels are in use. Defaults to [true]; the
      [CHOREV_NO_PACK] environment variable (set to anything but [""] or
      ["0"]) flips every kernel back to the original map-shaped
      implementation as a debug/oracle mode. *)

  val set_enabled : bool -> unit
  val with_enabled : bool -> (unit -> 'a) -> 'a

  val dense_of : t -> int -> int
  (** Original state id → dense index; [-1] when not a state. *)

  val get : afsa -> t
  (** The packed form, compiled on first use and cached on the index. *)

  val peek : afsa -> t option
  (** The cached packed form, if any — never triggers a build. *)

  val worth : afsa -> bool
  (** Whether a packed kernel should run on [a]: true when a pack is
      already cached, or when the automaton is large enough that the
      flat kernels repay the O(E log E) build. Both kernel families
      are observationally identical, so dispatch is per-call. *)

  val with_cutoff : int -> (unit -> 'a) -> 'a
  (** Run [f] with the small-automaton cutoff of {!worth} set to [c]
      (default 32); [0] forces the packed kernels on every input —
      the differential suite uses this to exercise them on automata
      of every size. *)

  val preds_csr : t -> int array * int array
  (** Distinct-predecessor CSR [(off, src)] over proper and ε edges,
      built once per packed form on first call. *)

  val eps_closure_csr : t -> int array * int array
  (** Per-state ε-closure CSR [(off, tgt)] over dense indexes — row [q]
      is the sorted ε-closure of [q], including [q]. One int-only
      SCC-collapsed Tarjan pass, built once per packed form. *)
end
with type afsa := t

val eps_closures : t -> (int, ISet.t) Hashtbl.t
(** All ε-closures at once, keyed by original state id; states in the
    same ε-SCC share one physically-equal set. Computed once per
    automaton (O(V+E), SCC-memoized) and cached on the index slot.
    {!Epsilon.closure_of} routes through this. *)

(** {1 Reachability and trimming} *)

val reachable_from : t -> int -> ISet.t
val coreachable : t -> ISet.t

val trim_unreachable : t -> t
(** Drop states unreachable from the start. *)

val trim : t -> t
(** Drop unreachable and dead states (start always kept); preserves the
    plain language. *)

val renumber : ?start_zero:bool -> t -> t * int IMap.t
(** Dense renumbering; returns the old→new map. *)

(** {1 Modification} *)

val copy : t -> t
(** Same automaton, private (empty) index cache. The persistent fields
    are shared. Use one copy per parallel task when several domains
    read the same automaton: the index Hashtbls are not thread-safe,
    and a private handle keeps each domain's lazy index builds local.
    An already-computed fingerprint is kept (it is an immutable string
    describing the shared structure). *)

val add_edge : t -> int * Sym.t * int -> t

val add_edges : t -> (int * Sym.t * int) list -> t
(** Bulk {!add_edge}: one new record for the whole batch. *)
val set_annotation : t -> int -> F.t -> t
val clear_annotations : t -> t
val set_finals : t -> int list -> t
val widen_alphabet : t -> Label.t list -> t

val structurally_equal : t -> t -> bool
(** Same states, alphabet, start, finals, edges and annotations. *)
