(** Canonical structural fingerprints of aFSAs: an MD5 digest over an
    unambiguous serialization of exactly the components
    {!Afsa.structurally_equal} compares. Equal fingerprints ⟺
    structural equality (up to MD5 collisions); fingerprint {e
    minimized} automata to get a language-canonical key, since
    {!Minimize.minimize} numbers states canonically. The digest is
    cached in the automaton ([fp] field): computing it mutates the
    record, so follow the same single-domain discipline as the lazy
    index; reading a cached digest is safe from any domain. *)

val digest : Afsa.t -> string
(** The 16-byte raw digest, computed on first call and cached. *)

val hex : Afsa.t -> string
(** {!digest} in hexadecimal (for display, registries, JSON). *)

val peek : Afsa.t -> string option
(** The cached digest, without computing. *)

val equal : Afsa.t -> Afsa.t -> bool
(** Digest equality (physical fast path); computes as needed. *)

val cached_equal : Afsa.t -> Afsa.t -> bool option
(** Equality decided from cached digests alone: [None] when undecided
    (some side not yet fingerprinted and not physically equal). Never
    computes a digest. *)

val serialize : Afsa.t -> string
(** The canonical serialization the digest is taken over (exposed for
    tests and debugging). *)

val compute : Afsa.t -> string
(** Digest without consulting or filling the cache. *)
