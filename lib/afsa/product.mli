(** Generic ε-tolerant product over pair states — the common core of
    intersection (Def. 3) and difference (Def. 4): synchronize on
    shared labels, interleave ε-moves, combine annotations with the
    given operator. *)

module PMap : Map.S with type key = int * int

(** All constructions tick their [?budget] (default: the ambient
    {!Chorev_guard.Budget}) once per explored pair state and unwind
    with [Chorev_guard.Budget.Expired] when it trips. *)

type spec = {
  alphabet : Label.t list;
  final : int * int -> bool;
  combine_ann :
    Chorev_formula.Syntax.t ->
    Chorev_formula.Syntax.t ->
    Chorev_formula.Syntax.t;
}

val run :
  ?budget:Chorev_guard.Budget.t -> spec -> Afsa.t -> Afsa.t -> Afsa.t * int PMap.t
(** Reachable part only; returns the pair ↦ product-state map. *)

val sink_of : Afsa.t -> int
(** A state id guaranteed outside the automaton's state space, for use
    as a virtual completion sink below. *)

val run_right_total :
  ?budget:Chorev_guard.Budget.t ->
  spec ->
  sink:int ->
  Afsa.t ->
  Afsa.t ->
  Afsa.t * int PMap.t
(** Like {!run}, but the right automaton is implicitly completed over
    [spec.alphabet]: a missing (state, proper symbol) pair moves to
    [sink], which traps and carries annotation [True]. The right
    automaton must be ε-free. Avoids materializing the |Q|·|Σ| sink
    edges of {!Complete.complete} — this is what makes difference on
    large alphabets cheap. *)

val run_both_total :
  ?budget:Chorev_guard.Budget.t ->
  spec ->
  sink_a:int ->
  sink_b:int ->
  Afsa.t ->
  Afsa.t ->
  Afsa.t * int PMap.t
(** Both sides implicitly completed over [spec.alphabet]; both must be
    ε-free. Edges where both sides fall into their sink are pruned —
    such pairs can never reach a final state, so this is exactly what a
    subsequent {!Afsa.trim} would remove. *)
