(** Ablation variants of the semantic decisions documented in
    DESIGN.md. Each function here is a *deliberately naive* alternative
    kept so tests and benchmarks can demonstrate why the main
    implementation makes the choice it makes. None of these are part of
    the recommended API. *)

module F = Chorev_formula.Syntax
module ISet = Afsa.ISet

(** Least-fixpoint annotated emptiness: [sat] grows from ∅ instead of
    shrinking from Q. Sound for acyclic protocols but wrongly rejects
    loops whose annotations support each other mutually (the buyer's
    tracking loop of Fig. 6): with this semantics, buyer ↔ accounting
    of the paper's scenario comes out INCONSISTENT. *)
let analyze_least_fixpoint a =
  let holds sat q =
    let assign v =
      List.exists
        (fun (sym, t) ->
          match sym with
          | Sym.Eps -> false
          | Sym.L l -> String.equal (Label.to_string l) v && ISet.mem t sat)
        (Afsa.out_edges a q)
    in
    let ann_ok = Chorev_formula.Eval.eval ~assign (Afsa.annotation a q) in
    let continues =
      Afsa.is_final a q
      || List.exists (fun (_, t) -> ISet.mem t sat) (Afsa.out_edges a q)
    in
    ann_ok && continues
  in
  let rec fix sat =
    let sat' =
      List.fold_left
        (fun acc q -> if holds sat q then ISet.add q acc else acc)
        ISet.empty (Afsa.states a)
    in
    if ISet.equal sat' sat then sat else fix sat'
  in
  let sat = fix ISet.empty in
  ISet.mem (Afsa.start a) sat

let is_empty_least_fixpoint a = not (analyze_least_fixpoint a)

(** Minimization that ignores annotations in the initial partition.
    Merges states with different mandatory obligations, silently
    weakening or strengthening the protocol: with this variant the
    minimized buyer public process of Fig. 6 can lose the distinction
    that makes Fig. 16's subtractive verdict come out empty. *)
let minimize_ignoring_annotations a =
  Minimize.minimize (Afsa.clear_annotations a)

(** Views that substitute hidden message variables with [false] instead
    of [true]: hidden obligations would then be unsatisfiable from the
    observer's standpoint, and every view containing a multi-party
    obligation would be empty. *)
let tau_hidden_false ~observer a =
  let keep l = Label.involves observer l in
  let edges =
    List.map
      (fun (s, sym, t) ->
        match sym with
        | Sym.Eps -> (s, Sym.Eps, t)
        | Sym.L l -> if keep l then (s, sym, t) else (s, Sym.Eps, t))
      (Afsa.edges a)
  in
  let visible v =
    match Label.of_string v with Ok l -> keep l | Error _ -> false
  in
  let ann =
    List.map
      (fun (q, f) ->
        ( q,
          Chorev_formula.Simplify.simplify
            (Chorev_formula.Eval.restrict_to ~keep:visible ~default:false f) ))
      (Afsa.annotations a)
  in
  Afsa.make
    ~alphabet:(List.filter keep (Afsa.alphabet a))
    ~start:(Afsa.start a) ~finals:(Afsa.finals a) ~edges ~ann ()
  |> Epsilon.eliminate

(* ------------------------------------------------------------------ *)
(* Seed reference implementations                                      *)
(* ------------------------------------------------------------------ *)

(* The algebra was rewritten over indexed worklist products and a
   shared predecessor index; the functions below are the original
   recursive, Map-based implementations kept verbatim so property
   tests (test_perf_equiv) can check that the optimized operations
   compute the same annotated languages and the emptiness fixpoint
   converges in the same number of iterations. *)

(* The seed's product: recursive pair-space exploration, sweeping the
   whole product alphabet at every state. Overflows the stack on very
   deep products — which is why the main implementation is a worklist. *)
let product_ref (spec : Product.spec) a b =
  let next = ref 0 in
  let ids = ref Product.PMap.empty in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let alpha = Label.Set.of_list spec.alphabet in
  let rec visit ((q1, q2) as p) =
    match Product.PMap.find_opt p !ids with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        ids := Product.PMap.add p id !ids;
        if spec.final p then finals := id :: !finals;
        let ann =
          Chorev_formula.Simplify.simplify
            (spec.combine_ann (Afsa.annotation a q1) (Afsa.annotation b q2))
        in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        Label.Set.iter
          (fun l ->
            let t1s = Afsa.step a q1 (Sym.L l) in
            let t2s = Afsa.step b q2 (Sym.L l) in
            ISet.iter
              (fun t1 ->
                ISet.iter
                  (fun t2 ->
                    let tid = visit (t1, t2) in
                    edges := (id, Sym.L l, tid) :: !edges)
                  t2s)
              t1s)
          alpha;
        ISet.iter
          (fun t1 ->
            let tid = visit (t1, q2) in
            edges := (id, Sym.Eps, tid) :: !edges)
          (Afsa.step a q1 Sym.Eps);
        ISet.iter
          (fun t2 ->
            let tid = visit (q1, t2) in
            edges := (id, Sym.Eps, tid) :: !edges)
          (Afsa.step b q2 Sym.Eps);
        id
  in
  let s0 = visit (Afsa.start a, Afsa.start b) in
  Afsa.make ~alphabet:spec.alphabet ~start:s0 ~finals:!finals ~edges:!edges
    ~ann:!anns ()

let intersect_ref a b =
  let spec =
    {
      Product.alphabet = Ops.inter_alphabet a b;
      final = (fun (q1, q2) -> Afsa.is_final a q1 && Afsa.is_final b q2);
      combine_ann = F.and_;
    }
  in
  product_ref spec a b

(* The seed's difference: materialize the complement of [b] (completed
   over the union alphabet, |Q|·|Σ| sink edges) and intersect. *)
let difference_ref a b =
  let over = Ops.union_alphabet a b in
  let cb = Ops.complement ~over b in
  let spec =
    {
      Product.alphabet = over;
      final = (fun (q1, q2) -> Afsa.is_final a q1 && Afsa.is_final cb q2);
      combine_ann = (fun ann_a _ -> ann_a);
    }
  in
  product_ref spec a cb |> Afsa.trim

(* The seed's union: materialize both completions, full total product,
   trim afterwards. *)
let union_ref a b =
  let over = Ops.union_alphabet a b in
  let da = Complete.complete ~over (Determinize.determinize a) in
  let db = Complete.complete ~over (Determinize.determinize b) in
  let spec =
    {
      Product.alphabet = over;
      final = (fun (q1, q2) -> Afsa.is_final da q1 || Afsa.is_final db q2);
      combine_ann = F.and_;
    }
  in
  product_ref spec da db |> Afsa.trim

(* The seed's emptiness fixpoint: rebuilds the reverse-edge table from
   the full edge list on every iteration. Returns the sat set, whether
   the automaton is non-empty, and the number of fixpoint iterations
   (same convention as {!Emptiness.analyze}: ≥ 1, counting the final
   stable evaluation). *)
let analyze_ref a =
  let reach_final_through sat =
    let rev = Hashtbl.create 16 in
    List.iter
      (fun (s, _, t) ->
        if ISet.mem s sat && ISet.mem t sat then
          Hashtbl.replace rev t
            (s :: Option.value ~default:[] (Hashtbl.find_opt rev t)))
      (Afsa.edges a);
    let seeds = List.filter (fun f -> ISet.mem f sat) (Afsa.finals a) in
    let rec go seen = function
      | [] -> seen
      | q :: rest ->
          if ISet.mem q seen then go seen rest
          else
            let preds = Option.value ~default:[] (Hashtbl.find_opt rev q) in
            go (ISet.add q seen) (preds @ rest)
    in
    go ISet.empty seeds
  in
  let holds sat q =
    let assign v =
      List.exists
        (fun (sym, t) ->
          match sym with
          | Sym.Eps -> false
          | Sym.L l -> String.equal (Label.to_string l) v && ISet.mem t sat)
        (Afsa.out_edges a q)
    in
    Chorev_formula.Eval.eval ~assign (Afsa.annotation a q)
  in
  let rec fix n sat =
    let reach = reach_final_through sat in
    let sat' = ISet.filter (fun q -> ISet.mem q reach && holds sat q) sat in
    if ISet.equal sat' sat then (sat, n) else fix (n + 1) sat'
  in
  let sat, iterations = fix 1 a.Afsa.states in
  (sat, ISet.mem (Afsa.start a) sat, iterations)

let is_empty_ref a =
  let _, nonempty, _ = analyze_ref a in
  not nonempty

(* The pre-PR3 minimization: list/Hashtbl Hopcroft (linked-list
   predecessor arrays, List.filter splits, string class keys), the
   unconditional determinize-and-renumber front end, and the separate
   trim + canonical-renumber back end. Kept verbatim (minus metrics) as
   the differential oracle for the refinable-partition rewrite. *)

let hopcroft_ref ~n ~k ~succ ~init_class =
  (* predecessor lists per symbol *)
  let pred = Array.init k (fun _ -> Array.make n []) in
  for c = 0 to k - 1 do
    for q = 0 to n - 1 do
      let t = succ.(c).(q) in
      pred.(c).(t) <- q :: pred.(c).(t)
    done
  done;
  (* blocks *)
  let block = Array.make n 0 in
  let members : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let next_block = ref 0 in
  let by_class = Hashtbl.create 16 in
  for q = 0 to n - 1 do
    let id =
      match Hashtbl.find_opt by_class init_class.(q) with
      | Some id -> id
      | None ->
          let id = !next_block in
          incr next_block;
          Hashtbl.add by_class init_class.(q) id;
          id
    in
    block.(q) <- id;
    Hashtbl.replace members id
      (q :: Option.value ~default:[] (Hashtbl.find_opt members id))
  done;
  (* worklist of (block, symbol) *)
  let w = Queue.create () in
  let in_w = Hashtbl.create 64 in
  let push b c =
    if not (Hashtbl.mem in_w (b, c)) then begin
      Hashtbl.add in_w (b, c) ();
      Queue.add (b, c) w
    end
  in
  Hashtbl.iter (fun b _ -> for c = 0 to k - 1 do push b c done) members;
  while not (Queue.is_empty w) do
    let a, c = Queue.pop w in
    Hashtbl.remove in_w (a, c);
    (* X = c-preimage of block a *)
    let x =
      List.concat_map
        (fun t -> pred.(c).(t))
        (Option.value ~default:[] (Hashtbl.find_opt members a))
    in
    (* group X by current block *)
    let touched = Hashtbl.create 8 in
    List.iter
      (fun q ->
        Hashtbl.replace touched block.(q)
          (q :: Option.value ~default:[] (Hashtbl.find_opt touched block.(q))))
      x;
    Hashtbl.iter
      (fun y xs ->
        let xs = List.sort_uniq compare xs in
        let y_members = Hashtbl.find members y in
        let y_size = List.length y_members in
        let x_size = List.length xs in
        if x_size > 0 && x_size < y_size then begin
          (* split y into z (= xs) and the rest *)
          let z = !next_block in
          incr next_block;
          let in_xs = Hashtbl.create x_size in
          List.iter (fun q -> Hashtbl.replace in_xs q ()) xs;
          let rest =
            List.filter (fun q -> not (Hashtbl.mem in_xs q)) y_members
          in
          Hashtbl.replace members y rest;
          Hashtbl.replace members z xs;
          List.iter (fun q -> block.(q) <- z) xs;
          let smaller = if x_size <= y_size - x_size then z else y in
          for c' = 0 to k - 1 do
            if Hashtbl.mem in_w (y, c') then push z c' else push smaller c'
          done
        end)
      touched
  done;
  block

let minimize_ref a =
  let d, _ = Afsa.renumber (Determinize.determinize a) in
  let n = Afsa.num_states d in
  if n = 0 then d
  else begin
    let alpha = Array.of_list (Afsa.alphabet d) in
    let k = Array.length alpha in
    let col = Hashtbl.create (max 1 k) in
    Array.iteri (fun c l -> Hashtbl.replace col l c) alpha;
    let sink = n in
    let m = n + 1 in
    let succ = Array.make_matrix k m sink in
    List.iter
      (fun q ->
        List.iter
          (fun (sym, ts) ->
            match (sym, ts) with
            | Sym.L l, t :: _ -> succ.(Hashtbl.find col l).(q) <- t
            | _ -> assert false (* deterministic, ε-free *))
          (Afsa.out_rows d q))
      (Afsa.states d);
    let init_class =
      Array.init m (fun q ->
          if q = sink then (false, Chorev_formula.Pp.to_string F.True)
          else
            ( Afsa.is_final d q,
              Chorev_formula.Pp.to_string
                (Chorev_formula.Simplify.simplify (Afsa.annotation d q)) ))
    in
    let block = hopcroft_ref ~n:m ~k ~succ ~init_class in
    let edges = ref [] in
    let seen = Hashtbl.create 16 in
    for q = 0 to n - 1 do
      for c = 0 to k - 1 do
        let t = succ.(c).(q) in
        if t <> sink then begin
          let e = (block.(q), Sym.L alpha.(c), block.(t)) in
          if not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            edges := e :: !edges
          end
        end
      done
    done;
    let finals =
      List.filter_map
        (fun q -> if Afsa.is_final d q then Some block.(q) else None)
        (Afsa.states d)
      |> List.sort_uniq compare
    in
    let ann =
      List.map (fun q -> (block.(q), Afsa.annotation d q)) (Afsa.states d)
      |> List.sort_uniq compare
    in
    Afsa.make
      ~alphabet:(Array.to_list alpha)
      ~start:block.(Afsa.start d) ~finals ~edges:!edges ~ann ()
    |> Afsa.trim |> Minimize.canonical_renumber
  end
