(** Filesystem plumbing shared by the journal, the CLI and the serving
    layer — re-exported from {!Chorev_wal.Dir}, its actual home (the
    generic WAL layers carry no choreography dependency, so journals
    below the choreography layer can share them). *)

include module type of Chorev_wal.Dir
