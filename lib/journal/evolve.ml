(** The resumable evolution driver: [Evolution.run]'s loop with a
    [Journal.Round] record committed after every round. See evolve.mli
    for the recovery invariants. *)

module Model = Chorev_choreography.Model
module Evolution = Chorev_choreography.Evolution
module Consistency = Chorev_choreography.Consistency
module Sexp = Chorev_bpel.Sexp
module Pool = Chorev_parallel.Pool

exception Simulated_crash of int

type outcome = {
  round_logs : string list;
  consistent : bool;
  digest : string;
  choreography : Model.t;
  replayed : int;
}

(* Mirrors of [Evolution.run]'s private helpers: the journaled loop must
   use the same pool and sink policy so it computes the same rounds. *)
let round_pool (config : Evolution.config) =
  Pool.sized (if config.jobs > 0 then config.jobs else Pool.default_size ())

let with_config_sink (config : Evolution.config) f =
  match config.obs with
  | None -> f ()
  | Some sink -> Chorev_obs.Obs.with_sink sink f

let summary_of_round r = Fmt.str "%a" Evolution.pp_round r

(* The live tail of the loop, identical to [Evolution.run]'s [go]
   except that every round is journaled before the loop advances
   (write-ahead: the record is durable before its effects are built
   upon) and [Done] seals the run. *)
let live w (config : Evolution.config) ?crash_after ~replayed t logs remaining
    pending k =
  let finish t logs =
    let consistent = Consistency.consistent ~pool:(round_pool config) t in
    let digest = Journal.model_digest t in
    Journal.append w (Journal.Done { consistent; digest });
    Journal.close w;
    {
      round_logs = List.rev logs;
      consistent;
      digest;
      choreography = t;
      replayed;
    }
  in
  let rec go t logs remaining pending k =
    match pending with
    | [] -> finish t logs
    | _ when remaining <= 0 -> finish t logs
    | (owner, proc) :: rest ->
        let round, t', adapted = Evolution.run_round config t owner proc in
        let summary = summary_of_round round in
        Journal.append w
          (Journal.Round
             {
               index = k;
               originator = owner;
               changed = Sexp.process_to_string proc;
               adapted =
                 List.map
                   (fun (p, pr) -> (p, Sexp.process_to_string pr))
                   adapted;
               summary;
             });
        (match crash_after with
        | Some c when k + 1 >= c ->
            Journal.close w;
            raise (Simulated_crash (k + 1))
        | _ -> ());
        (* pending reconstruction against the pre-round model [t] — the
           exact filter [Evolution.run] applies *)
        let new_pending = Evolution.surviving_pending t adapted in
        go t' (summary :: logs) (remaining - 1) (rest @ new_pending) (k + 1)
  in
  go t logs remaining pending k

let run ?(config = Evolution.default) ?crash_after ~dir t ~owner ~changed =
  match Model.find_party t owner with
  | Error (`Unknown_party p) -> Error (Printf.sprintf "unknown party %s" p)
  | Ok _ ->
      if Dir.has_journal dir then
        Error
          (Printf.sprintf "%s already holds a journal; use resume instead" dir)
      else (
        Journal.write_snapshot ~dir t ~changed;
        let w = Journal.create ~dir in
        Journal.append w
          (Journal.Start
             {
               owner;
               parties = Model.parties t;
               digest = Journal.model_digest t;
             });
        Ok
          ( with_config_sink config @@ fun () ->
            live w config ?crash_after ~replayed:0 t [] config.max_rounds
              [ (owner, changed) ]
              0 ))

let decode_adapted pairs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (p, s) :: rest -> (
        match Sexp.process_of_string s with
        | Ok proc -> go ((p, proc) :: acc) rest
        | Error e -> Error (Printf.sprintf "adapted process of %s: %s" p e))
  in
  go [] pairs

let resume ?(config = Evolution.default) ~dir () =
  match Journal.read ~dir with
  | Error e -> Error e
  | Ok { records = []; _ } ->
      Error (Printf.sprintf "journal in %s holds no complete record" dir)
  | Ok { records = Journal.Start { owner; digest = start_digest; _ } :: rest;
         valid_bytes;
         torn = _;
       } -> (
      match Journal.read_snapshot ~dir with
      | Error e -> Error e
      | Ok (t, changed) ->
          if Journal.model_digest t <> start_digest then
            Error "snapshot does not match the journal's start record"
          else
            (* Replay committed rounds from the journal — no algebra is
               re-run; the model advances by the recorded processes and
               pending work is rebuilt with the live loop's own
               pre-round filter. *)
            let rec replay t logs remaining pending k = function
              | Journal.Round { index; originator; changed; adapted; summary }
                :: more -> (
                  if index <> k then
                    Error
                      (Printf.sprintf
                         "journal out of order: expected round %d, found %d" k
                         index)
                  else
                    match pending with
                    | (p, _) :: rest_pending when String.equal p originator -> (
                        match
                          (Sexp.process_of_string changed, decode_adapted adapted)
                        with
                        | Error e, _ -> Error ("changed process: " ^ e)
                        | _, Error e -> Error e
                        | Ok proc, Ok adapted ->
                            let pre = t in
                            let t = Model.update t proc in
                            let t =
                              List.fold_left
                                (fun m (_, pr) -> Model.update m pr)
                                t adapted
                            in
                            let pending =
                              rest_pending
                              @ Evolution.surviving_pending pre adapted
                            in
                            replay t (summary :: logs) (remaining - 1) pending
                              (k + 1) more)
                    | _ ->
                        Error
                          (Printf.sprintf
                             "journal does not match replay state: round %d \
                              originated by %s but %s was pending"
                             k originator
                             (match pending with
                             | (p, _) :: _ -> p
                             | [] -> "nothing")) )
              | [ Journal.Done { consistent; digest } ] ->
                  Ok
                    (`Complete
                      {
                        round_logs = List.rev logs;
                        consistent;
                        digest;
                        choreography = t;
                        replayed = k;
                      })
              | [] -> Ok (`Partial (t, logs, remaining, pending, k))
              | Journal.Start _ :: _ -> Error "unexpected second start record"
              | Journal.Done _ :: _ -> Error "records found after done"
            in
            (match replay t [] config.max_rounds [ (owner, changed) ] 0 rest with
            | Error e -> Error e
            | Ok (`Complete o) -> Ok o
            | Ok (`Partial (t, logs, remaining, pending, k)) ->
                let w = Journal.reopen ~dir ~valid_bytes in
                Ok
                  ( with_config_sink config @@ fun () ->
                    live w config ~replayed:k t logs remaining pending k )))
  | Ok _ -> Error "journal does not begin with a start record"

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v>%a@,choreography consistent: %b@,model digest: %s@]"
    (Fmt.list ~sep:Fmt.cut Fmt.string)
    o.round_logs o.consistent o.digest
