(** Checksummed append-only journal + atomic snapshots for evolution
    runs. See journal.mli for the on-disk layout and durability
    contract. *)

module Model = Chorev_choreography.Model
module Sexp = Chorev_bpel.Sexp
module Process = Chorev_bpel.Process

(* The generic layers — minimal JSON, the checksummed-line WAL and the
   filesystem helpers — live in [Chorev_wal] (they carry no
   choreography dependency, so lower layers like the repair rollback
   journal can share them); this module re-exports them under their
   historical names and builds the evolution-journal record layer on
   top. *)

module Json = Chorev_wal.Json
module Wal = Chorev_wal.Wal

(* ------------------------------------------------------------------ *)
(* Records                                                             *)
(* ------------------------------------------------------------------ *)

type record =
  | Start of { owner : string; parties : string list; digest : string }
  | Round of {
      index : int;
      originator : string;
      changed : string;
      adapted : (string * string) list;
      summary : string;
    }
  | Done of { consistent : bool; digest : string }

let record_to_json = function
  | Start { owner; parties; digest } ->
      Json.Obj
        [
          ("rec", Json.Str "start");
          ("owner", Json.Str owner);
          ("parties", Json.Arr (List.map (fun p -> Json.Str p) parties));
          ("digest", Json.Str digest);
        ]
  | Round { index; originator; changed; adapted; summary } ->
      Json.Obj
        [
          ("rec", Json.Str "round");
          ("index", Json.Int index);
          ("originator", Json.Str originator);
          ("changed", Json.Str changed);
          ( "adapted",
            Json.Arr
              (List.map
                 (fun (p, s) -> Json.Arr [ Json.Str p; Json.Str s ])
                 adapted) );
          ("summary", Json.Str summary);
        ]
  | Done { consistent; digest } ->
      Json.Obj
        [
          ("rec", Json.Str "done");
          ("consistent", Json.Bool consistent);
          ("digest", Json.Str digest);
        ]

let record_of_json j =
  let str = function Some (Json.Str s) -> Some s | _ -> None in
  let field k = Json.member k j in
  match str (field "rec") with
  | Some "start" -> (
      match (str (field "owner"), field "parties", str (field "digest")) with
      | Some owner, Some (Json.Arr ps), Some digest -> (
          let parties =
            List.filter_map (function Json.Str p -> Some p | _ -> None) ps
          in
          match List.length parties = List.length ps with
          | true -> Ok (Start { owner; parties; digest })
          | false -> Error "start: non-string party")
      | _ -> Error "start: missing field")
  | Some "round" -> (
      match
        ( field "index",
          str (field "originator"),
          str (field "changed"),
          field "adapted",
          str (field "summary") )
      with
      | Some (Json.Int index), Some originator, Some changed,
        Some (Json.Arr pairs), Some summary -> (
          let adapted =
            List.filter_map
              (function
                | Json.Arr [ Json.Str p; Json.Str s ] -> Some (p, s)
                | _ -> None)
              pairs
          in
          match List.length adapted = List.length pairs with
          | true -> Ok (Round { index; originator; changed; adapted; summary })
          | false -> Error "round: malformed adapted entry")
      | _ -> Error "round: missing field")
  | Some "done" -> (
      match (field "consistent", str (field "digest")) with
      | Some (Json.Bool consistent), Some digest ->
          Ok (Done { consistent; digest })
      | _ -> Error "done: missing field")
  | _ -> Error "unknown record type"

(* ------------------------------------------------------------------ *)
(* Filesystem helpers                                                  *)
(* ------------------------------------------------------------------ *)

let journal_file dir = Filename.concat dir "journal.jsonl"
let snapshot_dir dir = Filename.concat dir "snapshot"
let changed_file dir = Filename.concat dir "changed.sexp"

(* All filesystem invariants (atomic writes, mkdir -p, dir fsync) live
   in [Dir], shared with the CLI and the serving layer. *)
let mkdir_p = Dir.mkdir_p
let write_atomic = Dir.write_atomic
let read_file = Dir.read_file

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = Wal.writer

let create ~dir =
  mkdir_p dir;
  mkdir_p (snapshot_dir dir);
  Wal.open_append ~path:(journal_file dir)

let reopen ~dir ~valid_bytes =
  Wal.reopen ~path:(journal_file dir) ~valid_bytes

let append w r = Wal.append w (record_to_json r)
let close = Wal.close

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type read_result = { records : record list; torn : bool; valid_bytes : int }

let read ~dir =
  match Wal.read ~path:(journal_file dir) ~decode:record_of_json with
  | Error e -> Error e
  | Ok { Chorev_wal.Wal.records; torn; valid_bytes } ->
      Ok { records; torn; valid_bytes }

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

(* Party names become file names; see [Dir.sanitize]. *)
let sanitize = Dir.sanitize

let write_snapshot ~dir (t : Model.t) ~changed =
  mkdir_p dir;
  mkdir_p (snapshot_dir dir);
  List.iter
    (fun p ->
      write_atomic
        (Filename.concat (snapshot_dir dir) (sanitize p ^ ".sexp"))
        (Sexp.process_to_string (Model.private_ t p)))
    (Model.parties t);
  write_atomic (changed_file dir) (Sexp.process_to_string changed)

let read_snapshot ~dir =
  let sdir = snapshot_dir dir in
  if not (Sys.file_exists sdir) then
    Error (Printf.sprintf "no snapshot directory at %s" sdir)
  else
    let files =
      Sys.readdir sdir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".sexp")
      |> List.sort String.compare
    in
    let rec load acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest -> (
          match Sexp.process_of_string (read_file (Filename.concat sdir f)) with
          | Ok p -> load (p :: acc) rest
          | Error e -> Error (Printf.sprintf "snapshot %s: %s" f e))
    in
    match load [] files with
    | Error e -> Error e
    | Ok [] -> Error (Printf.sprintf "empty snapshot directory %s" sdir)
    | Ok procs -> (
        match Sexp.process_of_string (read_file (changed_file dir)) with
        | Error e -> Error (Printf.sprintf "changed.sexp: %s" e)
        | Ok changed -> (
            match Model.of_processes procs with
            | t -> Ok (t, changed)
            | exception Invalid_argument e -> Error e))

let model_digest (t : Model.t) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun p ->
      Buffer.add_string buf p;
      Buffer.add_char buf '\000';
      Buffer.add_string buf (Sexp.process_to_string (Model.private_ t p));
      Buffer.add_char buf '\000')
    (Model.parties t);
  Digest.to_hex (Digest.string (Buffer.contents buf))
