(** Checksummed append-only journal + atomic snapshots for evolution
    runs. See journal.mli for the on-disk layout and durability
    contract. *)

module Model = Chorev_choreography.Model
module Sexp = Chorev_bpel.Sexp
module Process = Chorev_bpel.Process

(* ------------------------------------------------------------------ *)
(* Minimal JSON                                                        *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape_to buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Str s ->
        Buffer.add_char buf '"';
        escape_to buf s;
        Buffer.add_char buf '"'
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_to buf k;
            Buffer.add_string buf "\":";
            emit buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    emit buf j;
    Buffer.contents buf

  exception Bad of string

  (* Recursive-descent parser over a cursor. Integers only (the journal
     never writes floats); [\uXXXX] escapes decode to UTF-8. *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then (
        pos := !pos + String.length word;
        v)
      else fail ("expected " ^ word)
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = int_of_string ("0x" ^ String.sub s !pos 4) in
      pos := !pos + 4;
      v
    in
    let add_utf8 buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then (
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
      else (
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 32 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | None -> fail "unterminated escape"
            | Some c ->
                advance ();
                (match c with
                | '"' -> Buffer.add_char buf '"'
                | '\\' -> Buffer.add_char buf '\\'
                | '/' -> Buffer.add_char buf '/'
                | 'b' -> Buffer.add_char buf '\b'
                | 'f' -> Buffer.add_char buf '\012'
                | 'n' -> Buffer.add_char buf '\n'
                | 'r' -> Buffer.add_char buf '\r'
                | 't' -> Buffer.add_char buf '\t'
                | 'u' -> add_utf8 buf (hex4 ())
                | _ -> fail "bad escape");
                go ())
        | Some c ->
            advance ();
            Buffer.add_char buf c;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (
            advance ();
            Arr [])
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (items [])
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (
            advance ();
            Obj [])
          else
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let rec fields acc =
              let kv = field () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields (kv :: acc)
              | Some '}' ->
                  advance ();
                  List.rev (kv :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
      | Some ('-' | '0' .. '9') ->
          let start = !pos in
          if peek () = Some '-' then advance ();
          while
            !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
          do
            advance ()
          done;
          if !pos = start then fail "bad number";
          Int (int_of_string (String.sub s start (!pos - start)))
      | Some _ -> fail "unexpected character"
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg
    | exception Failure msg -> Error msg

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Generic checksummed-line WAL                                        *)
(* ------------------------------------------------------------------ *)

(** The line format and durability discipline, independent of what the
    records mean: every line is [{"crc":"<md5-hex>","body":<json>}\n],
    fsynced per append; a reader verifies every checksum and treats a
    broken {e final} line as the torn tail of a crashed writer. The
    evolution journal below and the migration checkpoint log are both
    built on this layer. *)
module Wal = struct
  type writer = { oc : out_channel }

  let open_append ~path =
    {
      oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path;
    }

  let reopen ~path ~valid_bytes =
    Unix.truncate path valid_bytes;
    Dir.fsync_dir (Filename.dirname path);
    { oc = open_out_gen [ Open_append; Open_binary ] 0o644 path }

  let append w body_json =
    let body = Json.to_string body_json in
    let crc = Digest.to_hex (Digest.string body) in
    output_string w.oc {|{"crc":"|};
    output_string w.oc crc;
    output_string w.oc {|","body":|};
    output_string w.oc body;
    output_string w.oc "}\n";
    flush w.oc;
    Unix.fsync (Unix.descr_of_out_channel w.oc)

  let close w = close_out w.oc

  type 'a read_result = { records : 'a list; torn : bool; valid_bytes : int }

  (* Writer lines have the exact shape {"crc":"<32 hex>","body":...}\n —
     the prefix is fixed, so the body text the checksum covers is
     recovered by stripping prefix and the final '}'. *)
  let parse_line ~decode line =
    let prefix = {|{"crc":"|} in
    let plen = String.length prefix in
    let ll = String.length line in
    if ll < plen + 32 + String.length {|","body":|} + 1 then Error "short line"
    else if String.sub line 0 plen <> prefix then Error "bad line prefix"
    else
      let crc = String.sub line plen 32 in
      let mid = String.sub line (plen + 32) (String.length {|","body":|}) in
      if mid <> {|","body":|} then Error "bad line shape"
      else if line.[ll - 1] <> '}' then Error "unterminated line"
      else
        let body_off = plen + 32 + String.length mid in
        let body = String.sub line body_off (ll - 1 - body_off) in
        if Digest.to_hex (Digest.string body) <> crc then
          Error "checksum mismatch"
        else
          match Json.of_string body with
          | Error e -> Error ("bad body: " ^ e)
          | Ok j -> decode j

  let read ~path ~decode =
    if not (Sys.file_exists path) then
      Error (Printf.sprintf "no journal at %s" path)
    else
      let contents = Dir.read_file path in
      (* split into (line, end-offset-including-newline) *)
      let lines = ref [] in
      let start = ref 0 in
      String.iteri
        (fun i c ->
          if c = '\n' then (
            lines := (String.sub contents !start (i - !start), i + 1) :: !lines;
            start := i + 1))
        contents;
      (* a final chunk without '\n' is by construction torn *)
      let tail_torn = !start < String.length contents in
      let lines = List.rev !lines in
      let total = List.length lines in
      let rec go acc valid idx = function
        | [] ->
            Ok { records = List.rev acc; torn = tail_torn; valid_bytes = valid }
        | (line, endoff) :: rest -> (
            match parse_line ~decode line with
            | Ok r -> go (r :: acc) endoff (idx + 1) rest
            | Error e ->
                if idx = total - 1 && rest = [] then
                  (* torn tail: the crashed writer's partial last line *)
                  Ok { records = List.rev acc; torn = true; valid_bytes = valid }
                else
                  Error
                    (Printf.sprintf "%s: corrupt record on line %d: %s" path
                       (idx + 1) e))
      in
      go [] 0 0 lines
end

(* ------------------------------------------------------------------ *)
(* Records                                                             *)
(* ------------------------------------------------------------------ *)

type record =
  | Start of { owner : string; parties : string list; digest : string }
  | Round of {
      index : int;
      originator : string;
      changed : string;
      adapted : (string * string) list;
      summary : string;
    }
  | Done of { consistent : bool; digest : string }

let record_to_json = function
  | Start { owner; parties; digest } ->
      Json.Obj
        [
          ("rec", Json.Str "start");
          ("owner", Json.Str owner);
          ("parties", Json.Arr (List.map (fun p -> Json.Str p) parties));
          ("digest", Json.Str digest);
        ]
  | Round { index; originator; changed; adapted; summary } ->
      Json.Obj
        [
          ("rec", Json.Str "round");
          ("index", Json.Int index);
          ("originator", Json.Str originator);
          ("changed", Json.Str changed);
          ( "adapted",
            Json.Arr
              (List.map
                 (fun (p, s) -> Json.Arr [ Json.Str p; Json.Str s ])
                 adapted) );
          ("summary", Json.Str summary);
        ]
  | Done { consistent; digest } ->
      Json.Obj
        [
          ("rec", Json.Str "done");
          ("consistent", Json.Bool consistent);
          ("digest", Json.Str digest);
        ]

let record_of_json j =
  let str = function Some (Json.Str s) -> Some s | _ -> None in
  let field k = Json.member k j in
  match str (field "rec") with
  | Some "start" -> (
      match (str (field "owner"), field "parties", str (field "digest")) with
      | Some owner, Some (Json.Arr ps), Some digest -> (
          let parties =
            List.filter_map (function Json.Str p -> Some p | _ -> None) ps
          in
          match List.length parties = List.length ps with
          | true -> Ok (Start { owner; parties; digest })
          | false -> Error "start: non-string party")
      | _ -> Error "start: missing field")
  | Some "round" -> (
      match
        ( field "index",
          str (field "originator"),
          str (field "changed"),
          field "adapted",
          str (field "summary") )
      with
      | Some (Json.Int index), Some originator, Some changed,
        Some (Json.Arr pairs), Some summary -> (
          let adapted =
            List.filter_map
              (function
                | Json.Arr [ Json.Str p; Json.Str s ] -> Some (p, s)
                | _ -> None)
              pairs
          in
          match List.length adapted = List.length pairs with
          | true -> Ok (Round { index; originator; changed; adapted; summary })
          | false -> Error "round: malformed adapted entry")
      | _ -> Error "round: missing field")
  | Some "done" -> (
      match (field "consistent", str (field "digest")) with
      | Some (Json.Bool consistent), Some digest ->
          Ok (Done { consistent; digest })
      | _ -> Error "done: missing field")
  | _ -> Error "unknown record type"

(* ------------------------------------------------------------------ *)
(* Filesystem helpers                                                  *)
(* ------------------------------------------------------------------ *)

let journal_file dir = Filename.concat dir "journal.jsonl"
let snapshot_dir dir = Filename.concat dir "snapshot"
let changed_file dir = Filename.concat dir "changed.sexp"

(* All filesystem invariants (atomic writes, mkdir -p, dir fsync) live
   in [Dir], shared with the CLI and the serving layer. *)
let mkdir_p = Dir.mkdir_p
let write_atomic = Dir.write_atomic
let read_file = Dir.read_file

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = Wal.writer

let create ~dir =
  mkdir_p dir;
  mkdir_p (snapshot_dir dir);
  Wal.open_append ~path:(journal_file dir)

let reopen ~dir ~valid_bytes =
  Wal.reopen ~path:(journal_file dir) ~valid_bytes

let append w r = Wal.append w (record_to_json r)
let close = Wal.close

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type read_result = { records : record list; torn : bool; valid_bytes : int }

let read ~dir =
  match Wal.read ~path:(journal_file dir) ~decode:record_of_json with
  | Error e -> Error e
  | Ok { Wal.records; torn; valid_bytes } -> Ok { records; torn; valid_bytes }

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

(* Party names become file names; see [Dir.sanitize]. *)
let sanitize = Dir.sanitize

let write_snapshot ~dir (t : Model.t) ~changed =
  mkdir_p dir;
  mkdir_p (snapshot_dir dir);
  List.iter
    (fun p ->
      write_atomic
        (Filename.concat (snapshot_dir dir) (sanitize p ^ ".sexp"))
        (Sexp.process_to_string (Model.private_ t p)))
    (Model.parties t);
  write_atomic (changed_file dir) (Sexp.process_to_string changed)

let read_snapshot ~dir =
  let sdir = snapshot_dir dir in
  if not (Sys.file_exists sdir) then
    Error (Printf.sprintf "no snapshot directory at %s" sdir)
  else
    let files =
      Sys.readdir sdir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".sexp")
      |> List.sort String.compare
    in
    let rec load acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest -> (
          match Sexp.process_of_string (read_file (Filename.concat sdir f)) with
          | Ok p -> load (p :: acc) rest
          | Error e -> Error (Printf.sprintf "snapshot %s: %s" f e))
    in
    match load [] files with
    | Error e -> Error e
    | Ok [] -> Error (Printf.sprintf "empty snapshot directory %s" sdir)
    | Ok procs -> (
        match Sexp.process_of_string (read_file (changed_file dir)) with
        | Error e -> Error (Printf.sprintf "changed.sexp: %s" e)
        | Ok changed -> (
            match Model.of_processes procs with
            | t -> Ok (t, changed)
            | exception Invalid_argument e -> Error e))

let model_digest (t : Model.t) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun p ->
      Buffer.add_string buf p;
      Buffer.add_char buf '\000';
      Buffer.add_string buf (Sexp.process_to_string (Model.private_ t p));
      Buffer.add_char buf '\000')
    (Model.parties t);
  Digest.to_hex (Digest.string (Buffer.contents buf))
