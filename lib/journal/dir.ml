(* Historical home of the shared filesystem plumbing; the
   implementation moved to [Chorev_wal.Dir] (no choreography
   dependency), this shim keeps [Chorev_journal.Dir] working. *)

include Chorev_wal.Dir
