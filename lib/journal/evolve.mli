(** Crash-safe evolution: {!Chorev_choreography.Evolution.run}'s loop,
    journaled round-by-round so a killed run can {!resume} to the exact
    round where the process died and finish with a byte-identical
    outcome.

    Recovery invariants (DESIGN.md §9):

    - a [Round] record is the commit point of its round: it is appended
      (and fsynced) {e before} the loop moves on, so on restart every
      journaled round is replayed from the record and every
      non-journaled round is recomputed live;
    - replay never re-runs the algebra: the journal stores the
      originator's changed process and each adapted partner's new
      private process as exact-round-tripping sexps, and pending work
      is reconstructed with [Evolution.surviving_pending] against the
      same pre-round model the live loop used;
    - a torn final line (the partial write of the crash) is dropped and
      truncated away before the resumed writer appends. *)

exception Simulated_crash of int
(** Raised by {!run} after committing round [k] when
    [crash_after = Some k] — the test hook for kill-and-resume
    round-trips. The journal is left exactly as a hard kill at that
    point would leave it (minus the torn tail, which {!resume} also
    tolerates). *)

type outcome = {
  round_logs : string list;
      (** rendered [Evolution.pp_round], one per executed round *)
  consistent : bool;
  digest : string;  (** {!Journal.model_digest} of the final model *)
  choreography : Chorev_choreography.Model.t;
  replayed : int;  (** rounds restored from the journal (0 = fresh run) *)
}

val run :
  ?config:Chorev_choreography.Evolution.config ->
  ?crash_after:int ->
  dir:string ->
  Chorev_choreography.Model.t ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  (outcome, string) result
(** Journaled evolution into [dir] (which must not already hold a
    journal). Snapshot first, then one [Round] record per round, then
    [Done]. *)

val resume :
  ?config:Chorev_choreography.Evolution.config ->
  dir:string ->
  unit ->
  (outcome, string) result
(** Finish a (possibly interrupted) journaled run. Completed rounds are
    replayed from the journal; remaining rounds run live and are
    journaled; a run whose [Done] record is present just reports it.
    [config] must match the original run's ([max_rounds], budgets,
    [jobs] do not affect results but [auto_apply] and budgets do). *)

val pp_outcome : Format.formatter -> outcome -> unit
(** The stable textual form both [chorev evolve --journal] and
    [chorev resume] print — byte-identical between an uninterrupted run
    and a kill + resume. *)
