(** A durable write-ahead journal for evolution runs (DESIGN.md §9).

    Layout of a journal directory:

    {v
    DIR/
      snapshot/<party>.sexp   -- the pre-change private processes
      changed.sexp            -- the owner's changed private process
      journal.jsonl           -- one checksummed JSON record per line
    v}

    Every line of [journal.jsonl] is
    [{"crc":"<md5-hex-of-body>","body":<record>}], appended with an
    [fsync] before the writer returns, so a record that {!append}
    returned for is durable. The snapshot files are written atomically
    (tmp + fsync + rename) before the first record. A reader verifies
    every checksum and drops a torn final line (the partial write of a
    crashed process); corruption anywhere {e before} the tail is an
    error, not a truncation.

    Record semantics (see {!Evolve} for the driver): [Start] opens a
    run, one [Round] per completed evolution round is the commit point
    for that round, and [Done] seals the run. *)

(** The generic layers live in [Chorev_wal] — shared with the
    migration checkpoint log of [Chorev_migrate] and the repair
    rollback journal of [Chorev_repair] — and are re-exported here
    under their historical names. *)

module Json = Chorev_wal.Json
module Wal = Chorev_wal.Wal

type record =
  | Start of { owner : string; parties : string list; digest : string }
      (** [digest] is {!model_digest} of the pre-change model *)
  | Round of {
      index : int;
      originator : string;
      changed : string;  (** the originator's new private process, sexp *)
      adapted : (string * string) list;
          (** auto-adapted partners, [(party, process sexp)], in exactly
              the order [Evolution.run_round] returned them — replay
              feeds this list to [Evolution.surviving_pending], whose
              output order must match the live loop's *)
      summary : string;  (** rendered [Evolution.pp_round] *)
    }
  | Done of { consistent : bool; digest : string }

val record_to_json : record -> Json.t
val record_of_json : Json.t -> (record, string) result

(** {2 Writing} *)

type writer

val create : dir:string -> writer
(** Create [DIR] (and [DIR/snapshot]) if needed and open
    [DIR/journal.jsonl] for append. Raises [Sys_error]/[Unix_error] on
    filesystem failure. *)

val append : writer -> record -> unit
(** Serialize, checksum, append one line and [fsync]. When [append]
    returns, the record is durable. *)

val close : writer -> unit

(** {2 Reading} *)

type read_result = {
  records : record list;
  torn : bool;  (** a partial/corrupt final line was dropped *)
  valid_bytes : int;
      (** byte offset of the end of the last valid record; a resuming
          writer truncates the file here before appending *)
}

val read : dir:string -> (read_result, string) result
(** [Error] if the journal file is missing, or if a line {e before} the
    final one fails its checksum or does not parse. *)

val reopen : dir:string -> valid_bytes:int -> writer
(** Truncate [DIR/journal.jsonl] to [valid_bytes] (discarding a torn
    tail) and open it for append. *)

(** {2 Snapshots} *)

val write_snapshot :
  dir:string -> Chorev_choreography.Model.t -> changed:Chorev_bpel.Process.t -> unit
(** Write every party's private process to [DIR/snapshot/<party>.sexp]
    and the changed process to [DIR/changed.sexp], each atomically
    (tmp + fsync + rename). *)

val read_snapshot :
  dir:string ->
  (Chorev_choreography.Model.t * Chorev_bpel.Process.t, string) result
(** Rebuild the pre-change model ({!Chorev_choreography.Model.of_processes}
    over the snapshot files; publics and tables re-derived) and the
    changed process. *)

val model_digest : Chorev_choreography.Model.t -> string
(** Hex digest over every party's name and private-process sexp, in
    party order — two models with equal digests evolve identically. *)
