(** The serve wire protocol: versioned, newline-delimited JSON.

    One request per line in, one response per line out, correlated by
    [id]; the [v] field is the protocol version ({!version}) and is
    checked on decode so a future v2 can evolve the schema without
    guessing. Processes travel as the exact-round-tripping sexps of
    {!Chorev_bpel.Sexp}, and the JSON syntax is the journal's own
    {!Chorev_journal.Journal.Json} — no external JSON dependency.

    Responses carry no wall-clock data except for [Stats], so a
    response stream is a pure function of the request stream and the
    server options — the property the golden tests and the CI smoke
    diff lean on. *)

module Json = Chorev_journal.Journal.Json

val version : int
(** Currently [1]. *)

(** {1 Request classes}

    Each request names a class; the server mints the request's
    {!Chorev_guard.Budget} from it. Fuel bounds are deterministic
    (identical trips at every pool size); the deadlines are generous
    backstops. [Bulk] — the default when the field is absent — is
    unlimited, making the verdict exactly {!Evolution.run}'s under the
    default config. *)

type request_class = Interactive | Standard | Bulk

val class_to_string : request_class -> string
val class_of_string : string -> (request_class, string) result

val class_budgets :
  request_class -> Chorev_guard.Budget.spec * Chorev_guard.Budget.spec
(** [(op_budget, round_budget)] for the class. *)

val class_has_deadline : request_class -> bool
(** Does the class declare a deadline? (Deadline-bearing requests are
    shed earlier under load: their headroom shrinks as the queue
    grows.) *)

(** {1 Requests} *)

type op =
  | Register of { tenant : string; processes : string list }
      (** private processes as sexps, one per party *)
  | Evolve of {
      tenant : string;
      owner : string;
      changed : string;  (** the owner's new private process, sexp *)
      klass : request_class;
    }
  | Query of { tenant : string }
  | Migrate_status of { tenant : string }
  | Publish of { tenant : string; party : string; instances : int; seed : int }
      (** start [instances] seeded instances on [party]'s current
          schema version, then batch-migrate every running instance of
          that party onto the model's current public *)
  | Stats

type request = { id : int; op : op }

val tenant_of : op -> string option
(** [None] for [Stats] (the only tenant-less op). *)

val request_to_string : request -> string
(** One line, no trailing newline. *)

val request_of_string : string -> (request, int * string) result
(** [Error (id, msg)]: [id] is the request id when one could still be
    recovered from the malformed line (0 otherwise), so the error
    response stays correlated. *)

(** {1 Responses} *)

type party_status = {
  party : string;
  service : string;  (** stable {!Chorev_discovery.Registry} id *)
  version : int;  (** public-process version, bumped per evolution *)
  running : int;  (** live instances across the party's schema versions *)
  schemas : int;  (** live (un-retired) schema versions *)
}

type body =
  | Registered of {
      tenant : string;
      parties : string list;
      versions : int list;  (** one per party, same order *)
      digest : string;  (** {!Chorev_journal.Journal.model_digest} *)
    }
  | Evolved of {
      consistent : bool;
      rounds : int;
      digest : string;
      degraded : bool;  (** some step hit its budget — verdict is
                            conservative, not full-fidelity *)
    }
  | Queried of {
      parties : string list;
      consistent : bool;
      digest : string;
      evolutions : int;
    }
  | Migration of party_status list
  | Published of {
      party : string;
      to_version : int;
      migrated : int;
      finishing : int;
      stuck : int;  (** left on their old version, unable to finish *)
      total : int;
    }
  | Stats_snapshot of (string * Json.t) list

type error =
  [ `Bad_request of string
  | `Unknown_tenant of string
  | `Duplicate_tenant of string
  | `Unknown_party of string
  | `Invalid_model of string
  | `Overloaded
  | `Failed of string ]

val error_code : error -> string
(** The stable machine-readable code ("overloaded", "unknown-tenant",
    …) carried on the wire. *)

type response = { id : int; result : (body, error) result }

val response_to_string : response -> string
val response_of_string : string -> (response, string) result

(** {1 Body builders}

    Shared by the server and the independent oracle in {!Driver}, so
    "byte-identical responses" compares the two schedulers, not two
    hand-rolled encoders. *)

val evolved_of_report : Chorev_choreography.Evolution.report -> body
val report_degraded : Chorev_choreography.Evolution.report -> bool
