(** Per-party instance populations behind the serve layer's
    migrate-status and publish ops: one {!Chorev_migration.Versions}
    store per party, created at registration with the party's initial
    public as v1.

    [publish] is the bridge into the batched migrator: it starts a
    seeded population on the party's current schema version, then
    pushes {e every} running instance of that party onto the model's
    current public with {!Chorev_migrate.Migrate.run} and retires the
    versions that drained. Everything is deterministic — seeded
    sampling, sequential pool, no budgets — so the server and the
    scheduler-free oracle produce byte-identical [Published] bodies,
    and replaying the publish log after a restart rebuilds the exact
    store. *)

module Model = Chorev_choreography.Model
module Versions = Chorev_migration.Versions
module Population = Chorev_migrate.Population
module Engine = Chorev_migrate.Migrate
module Pool = Chorev_parallel.Pool

type t = {
  stores : (string, Versions.t) Hashtbl.t;
  pubs : (string, int) Hashtbl.t;  (** per-party publish count, for ids *)
}

let create model =
  let stores = Hashtbl.create 8 in
  List.iter
    (fun party ->
      Hashtbl.replace stores party (Versions.create (Model.public model party)))
    (Model.parties model);
  { stores; pubs = Hashtbl.create 8 }

let known t party = Hashtbl.mem t.stores party
let find t party = Hashtbl.find_opt t.stores party

let running t party =
  match find t party with Some vs -> Versions.instance_count vs | None -> 0

let schemas t party =
  match find t party with
  | Some vs -> List.length (Versions.version_numbers vs)
  | None -> 0

(* Publishes run on the sequential pool: they already execute inside a
   per-tenant pool task on the server, and the oracle runs them on the
   coordinator — the report is pool-invariant either way, but keeping
   the fan-out depth at one makes the two executions structurally
   identical. *)
let options =
  {
    Engine.batch_size = 1024;
    batch_fuel = None;
    memo_capacity = 4096;
    pool = Some Pool.sequential;
  }

let publish t model ~party ~instances ~seed =
  match find t party with
  | None -> Error (`Unknown_party party)
  | Some vs ->
      let k = Option.value ~default:0 (Hashtbl.find_opt t.pubs party) in
      Hashtbl.replace t.pubs party (k + 1);
      let spec =
        {
          Population.version = Versions.version_number (Versions.current vs);
          count = max 0 instances;
          seed;
          max_len = 12;
          prefix = Printf.sprintf "p%d-" k;
        }
      in
      Population.populate vs spec;
      let report = Engine.run ~options vs (Model.public model party) in
      ignore (Versions.retire_drained vs);
      let migrated, finishing, stuck, _, _, _ = Engine.totals report in
      Ok
        (Wire.Published
           {
             party;
             to_version = report.Engine.to_version;
             migrated;
             finishing;
             stuck;
             total = report.Engine.total;
           })
