(* The cycle scheduler — see server.mli for the determinism contract. *)

module Pool = Chorev_parallel.Pool
module Config = Chorev_config.Config
module Metrics = Chorev_obs.Metrics
module Sexp = Chorev_bpel.Sexp
module Json = Chorev_journal.Journal.Json

type options = {
  shards : int;
  queue_capacity : int;
  batch : int;
  headroom : int option;
  jobs : int;
  journal_root : string option;
  config : Config.t;
}

let default_options =
  {
    shards = 8;
    queue_capacity = 256;
    batch = 256;
    headroom = None;
    jobs = 0;
    journal_root = None;
    config = Config.default;
  }

(* Metrics (DESIGN.md §7: layer.module.what). *)
let m_requests = Metrics.counter "serve.requests"
let m_shed = Metrics.counter "serve.shed"
let m_errors = Metrics.counter "serve.errors"
let m_cycles = Metrics.counter "serve.cycles"
let m_queue = Metrics.histogram "serve.queue.depth"

type t = {
  opts : options;
  store : Tenant.t;
  recovered : int;
  mutable served : int;
  mutable shed : int;
  mutable errors : int;
  mutable cycles : int;
  mutable max_queue : int;
  lat_mu : Mutex.t;
  lat : (string, float list ref) Hashtbl.t;
      (** per-op latency samples, microseconds (newest first) *)
}

let create ?(options = default_options) () =
  let store, recovered =
    match options.journal_root with
    | Some root when Sys.file_exists root ->
        Tenant.recover ~shards:options.shards ~config:options.config
          ~journal_root:root ()
    | Some root -> (Tenant.create ~shards:options.shards ~journal_root:root (), 0)
    | None -> (Tenant.create ~shards:options.shards (), 0)
  in
  {
    opts = options;
    store;
    recovered;
    served = 0;
    shed = 0;
    errors = 0;
    cycles = 0;
    max_queue = 0;
    lat_mu = Mutex.create ();
    lat = Hashtbl.create 8;
  }

let recovered t = t.recovered
let store t = t.store

let op_kind : Wire.op -> string = function
  | Wire.Register _ -> "register"
  | Wire.Evolve _ -> "evolve"
  | Wire.Query _ -> "query"
  | Wire.Migrate_status _ -> "migrate-status"
  | Wire.Publish _ -> "publish"
  | Wire.Stats -> "stats"

let record_latency t kind us =
  Mutex.protect t.lat_mu (fun () ->
      match Hashtbl.find_opt t.lat kind with
      | Some samples -> samples := us :: !samples
      | None -> Hashtbl.add t.lat kind (ref [ us ]))

let percentile samples p =
  let n = Array.length samples in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

let latencies_us t =
  Mutex.protect t.lat_mu (fun () ->
      Hashtbl.fold
        (fun kind samples acc -> (kind, Array.of_list !samples) :: acc)
        t.lat [])
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let parse_process s =
  match Sexp.process_of_string s with
  | Ok p -> Ok p
  | Error e -> Error (`Bad_request ("process: " ^ e))

let rec parse_processes = function
  | [] -> Ok []
  | s :: rest -> (
      match parse_process s with
      | Error _ as e -> e
      | Ok p -> (
          match parse_processes rest with
          | Ok ps -> Ok (p :: ps)
          | Error _ as e -> e))

let stats_fields t =
  let lat_fields =
    List.concat_map
      (fun (kind, samples) ->
        List.map
          (fun (tag, p) ->
            ( Printf.sprintf "lat.%s.%s_us" kind tag,
              Json.Int (int_of_float (percentile samples p)) ))
          [ ("p50", 0.5); ("p95", 0.95); ("p99", 0.99) ])
      (latencies_us t)
  in
  [
    ("tenants", Json.Int (Tenant.count t.store));
    ( "registry",
      Json.Int (Chorev_discovery.Registry.size (Tenant.registry t.store)) );
    ("recovered", Json.Int t.recovered);
    ("requests", Json.Int t.served);
    ("shed", Json.Int t.shed);
    ("errors", Json.Int t.errors);
    ("cycles", Json.Int t.cycles);
    ("max_queue", Json.Int t.max_queue);
  ]
  @ lat_fields
  @ List.map
      (fun (k, v) -> ("cache." ^ k, Json.Int v))
      (Tenant.cache_totals t.store)

let exec t (r : Wire.request) : Wire.response =
  let t0 = Unix.gettimeofday () in
  let result =
    match r.op with
    | Wire.Register { tenant; processes } -> (
        match parse_processes processes with
        | Error _ as e -> e
        | Ok ps -> Tenant.register t.store tenant ~processes:ps)
    | Wire.Evolve { tenant; owner; changed; klass } -> (
        match parse_process changed with
        | Error _ as e -> e
        | Ok changed ->
            let op_budget, round_budget = Wire.class_budgets klass in
            let config =
              Config.with_budgets ~op_budget ~round_budget t.opts.config
            in
            Tenant.evolve t.store ~config tenant ~owner ~changed)
    | Wire.Query { tenant } -> Tenant.query t.store tenant
    | Wire.Migrate_status { tenant } -> Tenant.migrate_status t.store tenant
    | Wire.Publish { tenant; party; instances; seed } ->
        Tenant.publish t.store tenant ~party ~instances ~seed
    | Wire.Stats -> Ok (Wire.Stats_snapshot (stats_fields t))
  in
  record_latency t (op_kind r.op) ((Unix.gettimeofday () -. t0) *. 1e6);
  { Wire.id = r.id; result }

(* ------------------------------------------------------------------ *)
(* The cycle                                                           *)
(* ------------------------------------------------------------------ *)

let cycle t reqs =
  t.cycles <- t.cycles + 1;
  Metrics.incr m_cycles;
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  t.max_queue <- max t.max_queue n;
  Metrics.observe m_queue (float_of_int n);
  let out : Wire.response option array = Array.make n None in
  let cap = t.opts.queue_capacity in
  let headroom = min cap (Option.value ~default:cap t.opts.headroom) in
  (* Admission, in arrival order. Deadline-bearing classes get the
     smaller [headroom] bound: past it, their declared deadline has no
     chance against the queue ahead of them, so they are shed up front
     rather than admitted to fail. Purely positional — no clocks — so
     shedding is deterministic under a seeded arrival order. *)
  let admitted = ref 0 in
  Array.iteri
    (fun i (r : Wire.request) ->
      let bound =
        match r.op with
        | Wire.Evolve { klass; _ } when Wire.class_has_deadline klass -> headroom
        | _ -> cap
      in
      if !admitted >= bound then
        out.(i) <- Some { Wire.id = r.id; result = Error `Overloaded }
      else incr admitted)
    reqs;
  (* Pass 1 (coordinator, arrival order): registrations and Stats run
     here — registry ids are minted in stream order — and tenant ops
     are grouped; a tenant unknown at this point in the stream is
     refused exactly as the sequential server would refuse it. *)
  let groups : (string, (int * Wire.request) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let group_order = ref [] in
  Array.iteri
    (fun i (r : Wire.request) ->
      if out.(i) = None then
        match Wire.tenant_of r.op with
        | None -> out.(i) <- Some (exec t r)
        | Some tenant -> (
            match r.op with
            | Wire.Register _ -> out.(i) <- Some (exec t r)
            | _ when not (Tenant.exists t.store tenant) ->
                out.(i) <-
                  Some { Wire.id = r.id; result = Error (`Unknown_tenant tenant) }
            | _ -> (
                match Hashtbl.find_opt groups tenant with
                | Some g -> g := (i, r) :: !g
                | None ->
                    Hashtbl.add groups tenant (ref [ (i, r) ]);
                    group_order := tenant :: !group_order)))
    reqs;
  (* Pass 2: one pool task per tenant, each group in arrival order. *)
  let pool =
    if t.opts.jobs = 0 then Pool.default () else Pool.sized t.opts.jobs
  in
  let work =
    List.rev_map
      (fun tenant -> List.rev !(Hashtbl.find groups tenant))
      !group_order
  in
  Pool.map ~pool (List.map (fun (i, r) -> (i, exec t r))) work
  |> List.iter (List.iter (fun (i, resp) -> out.(i) <- Some resp));
  let responses =
    Array.to_list out
    |> List.mapi (fun i -> function
         | Some resp -> resp
         | None -> { Wire.id = reqs.(i).Wire.id; result = Error (`Failed "lost") })
  in
  (* Book-keeping on the coordinator only: no racy increments. *)
  List.iter
    (fun (resp : Wire.response) ->
      match resp.result with
      | Ok _ -> t.served <- t.served + 1
      | Error `Overloaded ->
          t.shed <- t.shed + 1;
          t.served <- t.served + 1
      | Error _ ->
          t.errors <- t.errors + 1;
          Metrics.incr m_errors;
          t.served <- t.served + 1)
    responses;
  Metrics.add m_requests n;
  Metrics.add m_shed (n - !admitted);
  responses

let handle t r = match cycle t [ r ] with [ resp ] -> resp | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Pipe mode                                                           *)
(* ------------------------------------------------------------------ *)

type item = R of Wire.request | B of int * string

let run_pipe t ic oc =
  let served = ref 0 in
  let rec read_cycle k acc =
    if k = 0 then (List.rev acc, false)
    else
      match input_line ic with
      | exception End_of_file -> (List.rev acc, true)
      | line when String.trim line = "" -> read_cycle k acc
      | line -> (
          match Wire.request_of_string line with
          | Ok r -> read_cycle (k - 1) (R r :: acc)
          | Error (id, msg) -> read_cycle (k - 1) (B (id, msg) :: acc))
  in
  let rec loop () =
    let items, eof = read_cycle t.opts.batch [] in
    if items <> [] then begin
      let resps =
        ref (cycle t (List.filter_map (function R r -> Some r | B _ -> None) items))
      in
      List.iter
        (fun item ->
          let resp =
            match item with
            | B (id, msg) ->
                t.errors <- t.errors + 1;
                { Wire.id; result = Error (`Bad_request msg) }
            | R _ -> (
                match !resps with
                | resp :: rest ->
                    resps := rest;
                    resp
                | [] -> assert false)
          in
          output_string oc (Wire.response_to_string resp);
          output_char oc '\n')
        items;
      flush oc;
      served := !served + List.length items
    end;
    if eof then !served else loop ()
  in
  loop ()
