(** The multi-tenant choreography store behind [chorev serve].

    Tenants (one evolving choreography each, keyed by name) are spread
    over [shards] hash shards; each shard's mutex guards the models and
    per-tenant {!Chorev_choreography.Evolution.Cache} sessions inside
    it, so requests for different tenants proceed concurrently while a
    tenant's own history stays strictly ordered. A single
    {!Chorev_discovery.Registry} (behind its own lock) spans all
    shards: every party's public process is registered under
    ["tenant/party"], interned and fingerprint-deduped across tenants,
    and its registry {e version} counts the structural changes the
    party's public went through — which is what [migrate-status]
    reports.

    With a [journal_root], registration atomically publishes a
    populated tenant directory ({!Chorev_journal.Dir.create_fresh}, so
    a concurrent request or a recovery scan can never observe a
    half-created tenant), and every evolution runs through the
    crash-safe {!Chorev_journal.Evolve} driver in its own
    [evolve-NNNNNN] subdirectory. {!recover} rebuilds the whole store
    from such a root, byte-identically: snapshots are reloaded and each
    evolution — including one interrupted mid-run — is replayed or
    finished through {!Chorev_journal.Evolve.resume}.

    Determinism contract (what the serve golden tests check): every
    result is a pure function of the per-tenant request history and the
    request configs — independent of shard count, pool size and
    cross-tenant interleaving. The registry's per-name version
    sequences depend only on that name's history; version numbers never
    race. *)

type t

val create : ?shards:int -> ?journal_root:string -> unit -> t
(** Default 8 shards. With [journal_root] (created if missing — the
    root must pass {!Chorev_journal.Dir.validate_root}) the store is
    durable. @raise Invalid_argument if the root is unusable. *)

val recover :
  ?shards:int ->
  ?config:Chorev_config.Config.t ->
  journal_root:string ->
  unit ->
  t * int
(** Rebuild a durable store from its journal root; returns the store
    and the number of tenants recovered. Unfinished evolutions are
    completed (under [config], default {!Chorev_config.Config.default})
    exactly as {!Chorev_journal.Evolve.resume} would. In-flight
    [".tmp-"] directories from a crashed registration are ignored. *)

val count : t -> int
val exists : t -> string -> bool

val registry : t -> Chorev_discovery.Registry.t
(** The shared registry (callers must treat it as read-only; writes
    race the store's own lock discipline). *)

val register :
  t ->
  string ->
  processes:Chorev_bpel.Process.t list ->
  (Wire.body, Wire.error) result
(** Admit a tenant: validate the model ([`Invalid_model] carries the
    rendered issues), publish its journal directory (durable stores),
    and advertise every party's public in the registry (version 1 for
    fresh names). *)

val evolve :
  t ->
  config:Chorev_config.Config.t ->
  ?crash_after:int ->
  string ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  (Wire.body, Wire.error) result
(** Run one controlled evolution of the tenant under [config] (the
    per-request budgets live in it). Durable stores journal the run
    round-by-round; [crash_after] is the kill-and-restart test hook
    and raises {!Chorev_journal.Evolve.Simulated_crash} after that
    round's commit. On success the tenant's model, consistency verdict
    and registry versions advance; the returned [Evolved] body is
    byte-identical to what {!Chorev_choreography.Evolution.run} yields
    under the same config. *)

val query : t -> string -> (Wire.body, Wire.error) result
(** Current parties, consistency verdict, model digest and evolution
    count — no algebra, just a shard-locked read. *)

val migrate_status : t -> string -> (Wire.body, Wire.error) result
(** Per-party registry status: stable service id, public-process
    version (Sec. 8 version coexistence — the version a migrating
    instance would be pinned to), plus the real population counters
    ([running] instances, live [schemas]) from the {!Parties} stores. *)

val publish :
  t ->
  string ->
  party:string ->
  instances:int ->
  seed:int ->
  (Wire.body, Wire.error) result
(** Start a seeded instance population on [party]'s current schema
    version and batch-migrate every running instance onto the model's
    current public ({!Parties.publish}). Durable stores append the
    publish to [publishes.jsonl] {e before} applying it, so recovery
    replays it at the same point of the evolution history (the [after]
    cursor) and rebuilds the identical population. *)

val cache_totals : t -> (string * int) list
(** Aggregated hit/miss counters of all tenant evolution caches,
    summed across shards (for stats/bench reporting). *)
