(* Script generation, the sequential oracle, and the replay driver. *)

module Model = Chorev_choreography.Model
module Evolution = Chorev_choreography.Evolution
module Consistency = Chorev_choreography.Consistency
module Registry = Chorev_discovery.Registry
module Journal = Chorev_journal.Journal
module Sexp = Chorev_bpel.Sexp
module Gen_process = Chorev_workload.Gen_process
module Config = Chorev_config.Config

(* ------------------------------------------------------------------ *)
(* Script generation                                                   *)
(* ------------------------------------------------------------------ *)

let gen_script ?(tenants = 16) ?(requests = 128) ?(seed = 42) () =
  let rng = Random.State.make [| seed; tenants; requests |] in
  let tenant_name i = Printf.sprintf "t%04d" i in
  let lines = ref [] in
  let id = ref 0 in
  let push op =
    incr id;
    lines := Wire.request_to_string { Wire.id = !id; op } :: !lines
  in
  let party_names = Array.make tenants [||] in
  for i = 0 to tenants - 1 do
    let a, b = Gen_process.pair ~seed:(seed + i) () in
    party_names.(i) <-
      [| Chorev_bpel.Process.party a; Chorev_bpel.Process.party b |];
    push
      (Wire.Register
         {
           tenant = tenant_name i;
           processes = [ Sexp.process_to_string a; Sexp.process_to_string b ];
         })
  done;
  for j = 0 to requests - 1 do
    let ti = Random.State.int rng tenants in
    let tenant = tenant_name ti in
    match Random.State.int rng 10 with
    | 0 | 1 ->
        (* 20% evolutions, spread over the request classes *)
        let klass =
          match Random.State.int rng 4 with
          | 0 -> Wire.Interactive
          | 1 -> Wire.Standard
          | _ -> Wire.Bulk
        in
        let a, _ = Gen_process.pair ~seed:(seed + (7919 * (j + 1))) () in
        push
          (Wire.Evolve
             {
               tenant;
               owner = Chorev_bpel.Process.party a;
               changed = Sexp.process_to_string a;
               klass;
             })
    | 2 | 3 -> push (Wire.Migrate_status { tenant })
    | 4 ->
        (* 10% publishes: seed a small population and migrate it *)
        let names = party_names.(ti) in
        let party = names.(Random.State.int rng (Array.length names)) in
        push
          (Wire.Publish
             { tenant; party; instances = 1 + Random.State.int rng 50; seed = j })
    | _ -> push (Wire.Query { tenant })
  done;
  List.rev !lines

(* ------------------------------------------------------------------ *)
(* The sequential oracle                                               *)
(* ------------------------------------------------------------------ *)

(* A from-scratch interpretation of the protocol over [Evolution.run]:
   no store, no shards, no pool, no cycles. The server must reproduce
   these lines byte-for-byte (when nothing is shed); sharing only the
   [Wire] encoders keeps the comparison about scheduling, not about
   two copies of one encoder. *)

type otenant = {
  mutable model : Model.t;
  mutable evolutions : int;
  mutable consistent : bool;
  migrate : Parties.t;
      (* the same deterministic population engine the server uses —
         the oracle stays independent in its *scheduling*, not by
         re-implementing the migrator *)
}

let oracle lines =
  let registry = Registry.create () in
  let tenants : (string, otenant) Hashtbl.t = Hashtbl.create 64 in
  let advertise name (tn : otenant) =
    List.map
      (fun party ->
        Registry.register registry ~name:(name ^ "/" ^ party) ~party
          (Model.public tn.model party))
      (Model.parties tn.model)
  in
  let statuses name (tn : otenant) =
    List.filter_map
      (fun party ->
        Option.map
          (fun (e : Registry.entry) ->
            {
              Wire.party;
              service = e.Registry.id;
              version = e.Registry.version;
              running = Parties.running tn.migrate party;
              schemas = Parties.schemas tn.migrate party;
            })
          (Registry.find_by_name registry (name ^ "/" ^ party)))
      (Model.parties tn.model)
  in
  let exec : Wire.op -> (Wire.body, Wire.error) result = function
    | Wire.Register { tenant; processes } -> (
        if Hashtbl.mem tenants tenant then Error (`Duplicate_tenant tenant)
        else
          let rec parse = function
            | [] -> Ok []
            | s :: rest -> (
                match Sexp.process_of_string s with
                | Error e -> Error (`Bad_request ("process: " ^ e))
                | Ok p -> Result.map (fun ps -> p :: ps) (parse rest))
          in
          match parse processes with
          | Error _ as e -> e
          | Ok ps -> (
              match Model.of_processes ps with
              | exception Invalid_argument e | exception Failure e ->
                  Error (`Invalid_model e)
              | model ->
                  let issues =
                    match Model.validate model with
                    | Ok () -> []
                    | Error issues -> issues
                  in
                  if
                    List.exists
                      (fun i -> Model.issue_severity i = `Error)
                      issues
                  then
                    Error
                      (`Invalid_model
                         (Fmt.str "%a"
                            (Fmt.list ~sep:(Fmt.any "; ") Model.pp_issue)
                            issues))
                  else begin
                    let tn =
                      {
                        model;
                        evolutions = 0;
                        consistent = Consistency.consistent ~cache:true model;
                        migrate = Parties.create model;
                      }
                    in
                    Hashtbl.add tenants tenant tn;
                    let entries = advertise tenant tn in
                    Ok
                      (Wire.Registered
                         {
                           tenant;
                           parties = Model.parties model;
                           versions =
                             List.map (fun e -> e.Registry.version) entries;
                           digest = Journal.model_digest model;
                         })
                  end))
    | Wire.Evolve { tenant; owner; changed; klass } -> (
        match Hashtbl.find_opt tenants tenant with
        | None -> Error (`Unknown_tenant tenant)
        | Some tn -> (
            match Sexp.process_of_string changed with
            | Error e -> Error (`Bad_request ("process: " ^ e))
            | Ok changed -> (
                let op_budget, round_budget = Wire.class_budgets klass in
                let config =
                  Config.with_budgets ~op_budget ~round_budget Config.default
                in
                match Evolution.run ~config tn.model ~owner ~changed with
                | Ok report ->
                    tn.model <- report.Evolution.choreography;
                    tn.consistent <- report.Evolution.consistent;
                    tn.evolutions <- tn.evolutions + 1;
                    ignore (advertise tenant tn);
                    Ok (Wire.evolved_of_report report)
                | Error (`Unknown_party p) -> Error (`Unknown_party p))))
    | Wire.Query { tenant } -> (
        match Hashtbl.find_opt tenants tenant with
        | None -> Error (`Unknown_tenant tenant)
        | Some tn ->
            Ok
              (Wire.Queried
                 {
                   parties = Model.parties tn.model;
                   consistent = tn.consistent;
                   digest = Journal.model_digest tn.model;
                   evolutions = tn.evolutions;
                 }))
    | Wire.Migrate_status { tenant } -> (
        match Hashtbl.find_opt tenants tenant with
        | None -> Error (`Unknown_tenant tenant)
        | Some tn -> Ok (Wire.Migration (statuses tenant tn)))
    | Wire.Publish { tenant; party; instances; seed } -> (
        match Hashtbl.find_opt tenants tenant with
        | None -> Error (`Unknown_tenant tenant)
        | Some tn -> Parties.publish tn.migrate tn.model ~party ~instances ~seed)
    | Wire.Stats -> Ok (Wire.Stats_snapshot [])
  in
  List.map
    (fun line ->
      let resp =
        match Wire.request_of_string line with
        | Error (id, msg) -> { Wire.id; result = Error (`Bad_request msg) }
        | Ok { Wire.id; op } -> { Wire.id; result = exec op }
      in
      Wire.response_to_string resp)
    lines

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type report = {
  requests : int;
  tenants : int;
  shed : int;
  errors : int;
  elapsed_s : float;
  throughput : float;
  percentiles : (string * (float * float * float)) list;
}

let replay ?(options = Server.default_options) lines =
  let server = Server.create ~options () in
  let t0 = Unix.gettimeofday () in
  let shed = ref 0 and errors = ref 0 and total = ref 0 in
  let rec batches = function
    | [] -> ()
    | lines ->
        let rec split k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | l :: rest -> split (k - 1) (l :: acc) rest
        in
        let chunk, rest = split options.Server.batch [] lines in
        let reqs =
          List.filter_map
            (fun l ->
              match Wire.request_of_string l with
              | Ok r -> Some r
              | Error _ ->
                  incr errors;
                  None)
            chunk
        in
        total := !total + List.length reqs;
        List.iter
          (fun (resp : Wire.response) ->
            match resp.Wire.result with
            | Error `Overloaded -> incr shed
            | Error _ -> incr errors
            | Ok _ -> ())
          (Server.cycle server reqs);
        batches rest
  in
  batches lines;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  {
    requests = !total;
    tenants = Tenant.count (Server.store server);
    shed = !shed;
    errors = !errors;
    elapsed_s;
    throughput = (if elapsed_s > 0. then float_of_int !total /. elapsed_s else 0.);
    percentiles =
      List.map
        (fun (kind, samples) ->
          ( kind,
            ( Server.percentile samples 0.5,
              Server.percentile samples 0.95,
              Server.percentile samples 0.99 ) ))
        (Server.latencies_us server);
  }

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>%d requests over %d tenants in %.3fs (%.0f req/s), %d shed, %d \
     errors@,%a@]"
    r.requests r.tenants r.elapsed_s r.throughput r.shed r.errors
    (Fmt.list ~sep:Fmt.cut (fun ppf (kind, (p50, p95, p99)) ->
         Fmt.pf ppf "  %-14s p50 %8.0fus  p95 %8.0fus  p99 %8.0fus" kind p50
           p95 p99))
    r.percentiles

let report_counters r =
  [
    ("serve.requests", r.requests);
    ("serve.tenants", r.tenants);
    ("serve.shed", r.shed);
    ("serve.errors", r.errors);
    ("serve.throughput_rps", int_of_float r.throughput);
  ]
  @ List.concat_map
      (fun (kind, (p50, p95, p99)) ->
        [
          (Printf.sprintf "serve.lat.%s.p50_us" kind, int_of_float p50);
          (Printf.sprintf "serve.lat.%s.p95_us" kind, int_of_float p95);
          (Printf.sprintf "serve.lat.%s.p99_us" kind, int_of_float p99);
        ])
      r.percentiles
