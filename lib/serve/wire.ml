(* Wire protocol v1 — see wire.mli. *)

module Json = Chorev_journal.Journal.Json
module Budget = Chorev_guard.Budget
module Evolution = Chorev_choreography.Evolution

let version = 1

(* ------------------------------------------------------------------ *)
(* Request classes                                                     *)
(* ------------------------------------------------------------------ *)

type request_class = Interactive | Standard | Bulk

let class_to_string = function
  | Interactive -> "interactive"
  | Standard -> "standard"
  | Bulk -> "bulk"

let class_of_string = function
  | "interactive" -> Ok Interactive
  | "standard" -> Ok Standard
  | "bulk" -> Ok Bulk
  | s -> Error (Printf.sprintf "unknown request class %S" s)

(* Fuel bounds are the deterministic part (identical at every pool
   size); deadlines are loose wall-clock backstops. Bulk is unlimited
   so its verdicts coincide with [Evolution.run]'s default config. *)
let class_budgets = function
  | Interactive ->
      ( { Budget.fuel = Some 1_000_000; timeout_s = Some 5. },
        { Budget.fuel = Some 8_000_000; timeout_s = Some 10. } )
  | Standard ->
      ( { Budget.fuel = Some 10_000_000; timeout_s = Some 60. },
        { Budget.fuel = Some 80_000_000; timeout_s = Some 120. } )
  | Bulk -> (Budget.spec_unlimited, Budget.spec_unlimited)

let class_has_deadline c =
  let op, round = class_budgets c in
  op.Budget.timeout_s <> None || round.Budget.timeout_s <> None

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type op =
  | Register of { tenant : string; processes : string list }
  | Evolve of {
      tenant : string;
      owner : string;
      changed : string;
      klass : request_class;
    }
  | Query of { tenant : string }
  | Migrate_status of { tenant : string }
  | Publish of { tenant : string; party : string; instances : int; seed : int }
  | Stats

type request = { id : int; op : op }

let tenant_of = function
  | Register { tenant; _ }
  | Evolve { tenant; _ }
  | Query { tenant }
  | Migrate_status { tenant }
  | Publish { tenant; _ } ->
      Some tenant
  | Stats -> None

let request_to_string { id; op } =
  let base = [ ("v", Json.Int version); ("id", Json.Int id) ] in
  let fields =
    match op with
    | Register { tenant; processes } ->
        [
          ("op", Json.Str "register");
          ("tenant", Json.Str tenant);
          ("processes", Json.Arr (List.map (fun s -> Json.Str s) processes));
        ]
    | Evolve { tenant; owner; changed; klass } ->
        [
          ("op", Json.Str "evolve");
          ("tenant", Json.Str tenant);
          ("owner", Json.Str owner);
          ("changed", Json.Str changed);
          ("class", Json.Str (class_to_string klass));
        ]
    | Query { tenant } ->
        [ ("op", Json.Str "query"); ("tenant", Json.Str tenant) ]
    | Migrate_status { tenant } ->
        [ ("op", Json.Str "migrate-status"); ("tenant", Json.Str tenant) ]
    | Publish { tenant; party; instances; seed } ->
        [
          ("op", Json.Str "publish");
          ("tenant", Json.Str tenant);
          ("party", Json.Str party);
          ("instances", Json.Int instances);
          ("seed", Json.Int seed);
        ]
    | Stats -> [ ("op", Json.Str "stats") ]
  in
  Json.to_string (Json.Obj (base @ fields))

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string field %S" name)

let int_field name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing or non-integer field %S" name)

let request_of_string line =
  match Json.of_string line with
  | Error e -> Error (0, "malformed JSON: " ^ e)
  | Ok j -> (
      let id =
        match Json.member "id" j with Some (Json.Int i) -> i | _ -> 0
      in
      let fail msg = Error (id, msg) in
      match Json.member "v" j with
      | Some (Json.Int v) when v = version -> (
          if id = 0 then fail "missing or zero id"
          else
            let ( let* ) r f = match r with Ok x -> f x | Error e -> fail e in
            match Json.member "op" j with
            | Some (Json.Str "register") -> (
                let* tenant = str_field "tenant" j in
                match Json.member "processes" j with
                | Some (Json.Arr ps) -> (
                    let strs =
                      List.filter_map
                        (function Json.Str s -> Some s | _ -> None)
                        ps
                    in
                    match List.length strs = List.length ps with
                    | true -> Ok { id; op = Register { tenant; processes = strs } }
                    | false -> fail "processes: non-string element")
                | _ -> fail "missing field \"processes\"")
            | Some (Json.Str "evolve") ->
                let* tenant = str_field "tenant" j in
                let* owner = str_field "owner" j in
                let* changed = str_field "changed" j in
                let* klass =
                  match Json.member "class" j with
                  | None -> Ok Bulk
                  | Some (Json.Str s) -> class_of_string s
                  | Some _ -> Error "non-string field \"class\""
                in
                Ok { id; op = Evolve { tenant; owner; changed; klass } }
            | Some (Json.Str "query") ->
                let* tenant = str_field "tenant" j in
                Ok { id; op = Query { tenant } }
            | Some (Json.Str "migrate-status") ->
                let* tenant = str_field "tenant" j in
                Ok { id; op = Migrate_status { tenant } }
            | Some (Json.Str "publish") ->
                let* tenant = str_field "tenant" j in
                let* party = str_field "party" j in
                let* instances = int_field "instances" j in
                let* seed = int_field "seed" j in
                Ok { id; op = Publish { tenant; party; instances; seed } }
            | Some (Json.Str "stats") -> Ok { id; op = Stats }
            | Some (Json.Str op) -> fail (Printf.sprintf "unknown op %S" op)
            | _ -> fail "missing field \"op\"")
      | Some (Json.Int v) ->
          fail (Printf.sprintf "unsupported protocol version %d" v)
      | _ -> fail "missing field \"v\"")

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type party_status = {
  party : string;
  service : string;
  version : int;
  running : int;
  schemas : int;
}

type body =
  | Registered of {
      tenant : string;
      parties : string list;
      versions : int list;
      digest : string;
    }
  | Evolved of { consistent : bool; rounds : int; digest : string; degraded : bool }
  | Queried of {
      parties : string list;
      consistent : bool;
      digest : string;
      evolutions : int;
    }
  | Migration of party_status list
  | Published of {
      party : string;
      to_version : int;
      migrated : int;
      finishing : int;
      stuck : int;
      total : int;
    }
  | Stats_snapshot of (string * Json.t) list

type error =
  [ `Bad_request of string
  | `Unknown_tenant of string
  | `Duplicate_tenant of string
  | `Unknown_party of string
  | `Invalid_model of string
  | `Overloaded
  | `Failed of string ]

let error_code : error -> string = function
  | `Bad_request _ -> "bad-request"
  | `Unknown_tenant _ -> "unknown-tenant"
  | `Duplicate_tenant _ -> "duplicate-tenant"
  | `Unknown_party _ -> "unknown-party"
  | `Invalid_model _ -> "invalid-model"
  | `Overloaded -> "overloaded"
  | `Failed _ -> "failed"

let error_detail : error -> string option = function
  | `Bad_request d | `Unknown_tenant d | `Duplicate_tenant d
  | `Unknown_party d | `Invalid_model d | `Failed d ->
      Some d
  | `Overloaded -> None

type response = { id : int; result : (body, error) result }

let strs ss = Json.Arr (List.map (fun s -> Json.Str s) ss)

let body_to_json = function
  | Registered { tenant; parties; versions; digest } ->
      Json.Obj
        [
          ("tenant", Json.Str tenant);
          ("parties", strs parties);
          ("versions", Json.Arr (List.map (fun v -> Json.Int v) versions));
          ("digest", Json.Str digest);
        ]
  | Evolved { consistent; rounds; digest; degraded } ->
      Json.Obj
        [
          ("consistent", Json.Bool consistent);
          ("rounds", Json.Int rounds);
          ("digest", Json.Str digest);
          ("degraded", Json.Bool degraded);
        ]
  | Queried { parties; consistent; digest; evolutions } ->
      Json.Obj
        [
          ("parties", strs parties);
          ("consistent", Json.Bool consistent);
          ("digest", Json.Str digest);
          ("evolutions", Json.Int evolutions);
        ]
  | Migration ps ->
      Json.Obj
        [
          ( "parties",
            Json.Arr
              (List.map
                 (fun { party; service; version; running; schemas } ->
                   Json.Obj
                     [
                       ("party", Json.Str party);
                       ("service", Json.Str service);
                       ("version", Json.Int version);
                       ("running", Json.Int running);
                       ("schemas", Json.Int schemas);
                     ])
                 ps) );
        ]
  | Published { party; to_version; migrated; finishing; stuck; total } ->
      Json.Obj
        [
          ("party", Json.Str party);
          ("to_version", Json.Int to_version);
          ("migrated", Json.Int migrated);
          ("finishing", Json.Int finishing);
          ("stuck", Json.Int stuck);
          ("total", Json.Int total);
        ]
  | Stats_snapshot kvs -> Json.Obj kvs

let response_to_string { id; result } =
  let base = [ ("v", Json.Int version); ("id", Json.Int id) ] in
  let rest =
    match result with
    | Ok body -> [ ("ok", Json.Bool true); ("result", body_to_json body) ]
    | Error e ->
        [ ("ok", Json.Bool false); ("error", Json.Str (error_code e)) ]
        @ (match error_detail e with
          | Some d -> [ ("detail", Json.Str d) ]
          | None -> [])
  in
  Json.to_string (Json.Obj (base @ rest))

(* Decoding of responses is structural, not exhaustive: it recovers
   enough for clients and tests (round-trip of every body the server
   emits); unknown result shapes come back as [Stats_snapshot] of the
   raw fields. *)
let body_of_json j =
  let field = Json.member in
  match j with
  | Json.Obj kvs -> (
      let strings name =
        match field name j with
        | Some (Json.Arr xs) ->
            Some
              (List.filter_map (function Json.Str s -> Some s | _ -> None) xs)
        | _ -> None
      in
      let int name =
        match field name j with Some (Json.Int i) -> Some i | _ -> None
      in
      match
        (field "tenant" j, field "consistent" j, field "rounds" j,
         field "evolutions" j, field "parties" j)
      with
      | _ when int "to_version" <> None -> (
          match
            (field "party" j, int "to_version", int "migrated",
             int "finishing", int "stuck", int "total")
          with
          | Some (Json.Str party), Some to_version, Some migrated,
            Some finishing, Some stuck, Some total ->
              Published { party; to_version; migrated; finishing; stuck; total }
          | _ -> Stats_snapshot kvs)
      | Some (Json.Str tenant), _, _, _, _ ->
          let versions =
            match field "versions" j with
            | Some (Json.Arr xs) ->
                List.filter_map (function Json.Int i -> Some i | _ -> None) xs
            | _ -> []
          in
          let digest =
            match field "digest" j with Some (Json.Str d) -> d | _ -> ""
          in
          Registered
            {
              tenant;
              parties = Option.value ~default:[] (strings "parties");
              versions;
              digest;
            }
      | _, Some (Json.Bool consistent), Some (Json.Int rounds), _, _ ->
          let digest =
            match field "digest" j with Some (Json.Str d) -> d | _ -> ""
          in
          let degraded =
            match field "degraded" j with Some (Json.Bool b) -> b | _ -> false
          in
          Evolved { consistent; rounds; digest; degraded }
      | _, Some (Json.Bool consistent), _, Some (Json.Int evolutions), _ ->
          let digest =
            match field "digest" j with Some (Json.Str d) -> d | _ -> ""
          in
          Queried
            {
              parties = Option.value ~default:[] (strings "parties");
              consistent;
              digest;
              evolutions;
            }
      | _, _, _, _, Some (Json.Arr ps)
        when List.for_all (function Json.Obj _ -> true | _ -> false) ps ->
          Migration
            (List.filter_map
               (fun p ->
                 let pint name =
                   match Json.member name p with
                   | Some (Json.Int i) -> Some i
                   | _ -> None
                 in
                 match
                   (Json.member "party" p, Json.member "service" p,
                    pint "version")
                 with
                 | Some (Json.Str party), Some (Json.Str service), Some version
                   ->
                     Some
                       {
                         party;
                         service;
                         version;
                         running = Option.value ~default:0 (pint "running");
                         schemas = Option.value ~default:0 (pint "schemas");
                       }
                 | _ -> None)
               ps)
      | _ -> Stats_snapshot kvs)
  | _ -> Stats_snapshot []

let response_of_string line =
  match Json.of_string line with
  | Error e -> Error ("malformed JSON: " ^ e)
  | Ok j -> (
      match (Json.member "v" j, Json.member "id" j, Json.member "ok" j) with
      | Some (Json.Int v), Some (Json.Int id), Some (Json.Bool ok) ->
          if v <> version then
            Error (Printf.sprintf "unsupported protocol version %d" v)
          else if ok then
            match Json.member "result" j with
            | Some body -> Ok { id; result = Ok (body_of_json body) }
            | None -> Error "ok response without result"
          else
            let detail =
              match Json.member "detail" j with
              | Some (Json.Str d) -> d
              | _ -> ""
            in
            let err : error =
              match Json.member "error" j with
              | Some (Json.Str "bad-request") -> `Bad_request detail
              | Some (Json.Str "unknown-tenant") -> `Unknown_tenant detail
              | Some (Json.Str "duplicate-tenant") -> `Duplicate_tenant detail
              | Some (Json.Str "unknown-party") -> `Unknown_party detail
              | Some (Json.Str "invalid-model") -> `Invalid_model detail
              | Some (Json.Str "overloaded") -> `Overloaded
              | _ -> `Failed detail
            in
            Ok { id; result = Error err }
      | _ -> Error "missing v/id/ok field")

(* ------------------------------------------------------------------ *)
(* Body builders shared with the oracle                                *)
(* ------------------------------------------------------------------ *)

let report_degraded (r : Evolution.report) =
  List.exists
    (fun (round : Evolution.round) ->
      List.exists
        (fun (p : Evolution.partner_report) ->
          p.degraded <> []
          || match p.outcome with
             | Some o -> o.Chorev_propagate.Engine.degraded <> []
             | None -> false)
        round.partners)
    r.rounds

let evolved_of_report (r : Evolution.report) =
  Evolved
    {
      consistent = r.consistent;
      rounds = List.length r.rounds;
      digest = Chorev_journal.Journal.model_digest r.choreography;
      degraded = report_degraded r;
    }
