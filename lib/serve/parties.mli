(** Per-party instance populations for the serve layer: one
    {!Chorev_migration.Versions} store per party (v1 = the public at
    registration), fed by the [publish] op and read back by
    [migrate-status]. Fully deterministic — the server and the
    scheduler-free oracle share this module and produce byte-identical
    bodies. *)

module Model = Chorev_choreography.Model

type t

val create : Model.t -> t
(** One empty store per party of the model, v1 = its current public. *)

val known : t -> string -> bool

val running : t -> string -> int
(** Live instances across the party's schema versions (0 if unknown). *)

val schemas : t -> string -> int
(** Live (un-retired) schema versions (0 if unknown). *)

val publish :
  t ->
  Model.t ->
  party:string ->
  instances:int ->
  seed:int ->
  (Wire.body, [> `Unknown_party of string ]) result
(** Start [instances] seeded instances on [party]'s current schema
    version, batch-migrate every running instance onto the model's
    current public, retire drained versions, and return the
    {!Wire.Published} body. The [k]-th publish for a party mints ids
    [pk-000000...], so repeated publishes never collide. *)
