(** The request scheduler of [chorev serve].

    Requests are processed in {e cycles}: each cycle drains up to
    [batch] requests from the input, admits at most [queue_capacity]
    of them and sheds the rest with an explicit [`Overloaded] response
    — deadline-bearing request classes are shed earlier (at the
    [headroom] mark) because a request that would blow its declared
    deadline waiting in the queue is better rejected up front. Within
    a cycle:

    + registrations, [Stats] and requests naming unknown tenants are
      handled on the coordinator, in arrival order (registry ids are
      minted deterministically);
    + the remaining requests are grouped by tenant and the groups fan
      out over a {!Chorev_parallel.Pool} — one task per tenant, each
      group processed in arrival order;
    + responses are stitched back into arrival order.

    Because tenants are independent (see {!Tenant}) and per-request
    budgets are fuel-based, the full response stream is a pure function
    of the request stream and the options: identical at every pool
    size, which is what the serve golden tests and the CI smoke diff
    assert. Wall-clock only surfaces through [Stats] responses and
    {!stats}. *)

type options = {
  shards : int;  (** tenant-store shards (default 8) *)
  queue_capacity : int;  (** admissions per cycle (default 256) *)
  batch : int;  (** reads per cycle (default 256) *)
  headroom : int option;
      (** admission bound for deadline-bearing classes; [None]
          (default) means [queue_capacity] — no early shedding *)
  jobs : int;  (** pool size; [0] defers to
                   {!Chorev_parallel.Pool.default_size} *)
  journal_root : string option;  (** durable store root (default none) *)
  config : Chorev_config.Config.t;
      (** base per-request config; each request's class budgets are
          layered on top via {!Chorev_config.Config.with_budgets} *)
}

val default_options : options

type t

val create : ?options:options -> unit -> t
(** Fresh server (empty store, or recovered from
    [options.journal_root] when that root already holds tenants). *)

val recovered : t -> int
(** Tenants recovered from the journal root at startup (0 for a fresh
    or non-durable server). *)

val store : t -> Tenant.t

val cycle : t -> Wire.request list -> Wire.response list
(** One scheduler cycle over at most [batch] requests; responses in
    arrival order, one per request ([`Overloaded] for shed ones). *)

val handle : t -> Wire.request -> Wire.response
(** Single-request cycle (convenience for tests and embedding). *)

val run_pipe : t -> in_channel -> out_channel -> int
(** Pipe mode: read newline-delimited requests, cycle, write one
    response line per request (flushed per cycle) until EOF. Malformed
    lines get a [`Bad_request] response and don't kill the server.
    Returns the number of requests served. *)

val stats_fields : t -> (string * Wire.Json.t) list
(** The [Stats] response body: tenants, registry size, request and
    shed counters, cycle count, queue-depth high-water mark, per-op
    latency percentiles (p50/p95/p99, microseconds) and the
    aggregated evolution-cache counters. *)

val percentile : float array -> float -> float
(** [percentile samples p] with [p] in [0,1] — nearest-rank on a
    sorted copy; 0 for an empty array. Exposed for the bench report. *)

val latencies_us : t -> (string * float array) list
(** Raw per-op latency samples (microseconds), for the bench report. *)
