(* Sharded multi-tenant store — see tenant.mli for the contract. *)

module Model = Chorev_choreography.Model
module Evolution = Chorev_choreography.Evolution
module Consistency = Chorev_choreography.Consistency
module Registry = Chorev_discovery.Registry
module Journal = Chorev_journal.Journal
module Evolve = Chorev_journal.Evolve
module Dir = Chorev_journal.Dir
module Sexp = Chorev_bpel.Sexp
module Process = Chorev_bpel.Process
module Config = Chorev_config.Config

type tenant = {
  name : string;
  mutable model : Model.t;
  cache : Evolution.Cache.t;
  mutable evolutions : int;
  mutable consistent : bool;
  dir : string option;  (** journal directory (durable stores) *)
  migrate : Parties.t;  (** per-party instance populations *)
}

type shard = { mu : Mutex.t; tenants : (string, tenant) Hashtbl.t }

type t = {
  shards : shard array;
  registry : Registry.t;
  reg_mu : Mutex.t;
  root : string option;
  seq_mu : Mutex.t;
  mutable seq : int;  (** global registration sequence, persisted so
                          recovery replays registrations in stream
                          order (registry ids are minted in order) *)
}

let registry t = t.registry

let make ?(shards = 8) root =
  let shards = max 1 shards in
  {
    shards =
      Array.init shards (fun _ ->
          { mu = Mutex.create (); tenants = Hashtbl.create 64 });
    registry = Registry.create ();
    reg_mu = Mutex.create ();
    root;
    seq_mu = Mutex.create ();
    seq = 0;
  }

let create ?shards ?journal_root () =
  (match journal_root with
  | None -> ()
  | Some root -> (
      match Dir.validate_root root with
      | Ok () -> ()
      | Error e -> invalid_arg ("Tenant.create: " ^ e)));
  make ?shards journal_root

let shard t name = t.shards.(Hashtbl.hash name mod Array.length t.shards)
let with_shard t name f = Mutex.protect (shard t name).mu f

let count t =
  Array.fold_left (fun n s -> n + Hashtbl.length s.tenants) 0 t.shards

let exists t name =
  with_shard t name (fun () -> Hashtbl.mem (shard t name).tenants name)

let find t name = Hashtbl.find_opt (shard t name).tenants name

(* ------------------------------------------------------------------ *)
(* Registry integration                                                *)
(* ------------------------------------------------------------------ *)

let service_name tenant party = tenant ^ "/" ^ party

(* (Re-)advertise every party's current public. Idempotent for
   unchanged publics, a version bump for changed ones — per-name
   sequences depend only on this tenant's history, so cross-tenant
   interleaving cannot skew versions. *)
let advertise_publics t tn =
  Mutex.protect t.reg_mu (fun () ->
      List.map
        (fun party ->
          let e =
            Registry.register t.registry
              ~name:(service_name tn.name party)
              ~party
              (Model.public tn.model party)
          in
          (party, e))
        (Model.parties tn.model))

let party_statuses t tn =
  Mutex.protect t.reg_mu (fun () ->
      List.filter_map
        (fun party ->
          match Registry.find_by_name t.registry (service_name tn.name party) with
          | Some e ->
              Some
                {
                  Wire.party;
                  service = e.Registry.id;
                  version = e.Registry.version;
                  running = Parties.running tn.migrate party;
                  schemas = Parties.schemas tn.migrate party;
                }
          | None -> None)
        (Model.parties tn.model))

(* ------------------------------------------------------------------ *)
(* Durable layout                                                      *)
(* ------------------------------------------------------------------ *)

(* <root>/<tenant>/meta        "seq\nname"
   <root>/<tenant>/parties/party-NNN.sexp
   <root>/<tenant>/evolve-NNNNNN/   one Journal.Evolve dir per evolution *)

let meta_file dir = Filename.concat dir "meta"
let parties_dir dir = Filename.concat dir "parties"
let evolve_dir dir k = Filename.concat dir (Printf.sprintf "evolve-%06d" k)

let populate_tenant_dir ~seq ~name processes tmp =
  Dir.write_atomic (meta_file tmp) (Printf.sprintf "%d\n%s\n" seq name);
  Dir.mkdir_p (parties_dir tmp);
  List.iteri
    (fun i p ->
      Dir.write_atomic
        (Filename.concat (parties_dir tmp) (Printf.sprintf "party-%03d.sexp" i))
        (Sexp.process_to_string p))
    processes

let read_meta dir =
  match String.split_on_char '\n' (Dir.read_file (meta_file dir)) with
  | seq :: name :: _ -> (int_of_string seq, name)
  | _ -> failwith (meta_file dir ^ ": malformed")

let read_parties dir =
  let pdir = parties_dir dir in
  Sys.readdir pdir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sexp")
  |> List.sort String.compare
  |> List.map (fun f ->
         match Sexp.process_of_string (Dir.read_file (Filename.concat pdir f)) with
         | Ok p -> p
         | Error e -> failwith (Filename.concat pdir f ^ ": " ^ e))

(* ------------------------------------------------------------------ *)
(* Register                                                            *)
(* ------------------------------------------------------------------ *)

let registered_body tn versions =
  Wire.Registered
    {
      tenant = tn.name;
      parties = Model.parties tn.model;
      versions;
      digest = Journal.model_digest tn.model;
    }

let validate_model processes =
  match Model.of_processes processes with
  | exception Invalid_argument e -> Error (`Invalid_model e)
  | exception Failure e -> Error (`Invalid_model e)
  | model -> (
      match Model.validate model with
      | Ok () -> Ok model
      | Error issues ->
          if
            List.exists
              (fun i -> Model.issue_severity i = `Error)
              issues
          then
            Error
              (`Invalid_model
                 (Fmt.str "%a"
                    (Fmt.list ~sep:(Fmt.any "; ") Model.pp_issue)
                    issues))
          else Ok model)

let next_seq t =
  Mutex.protect t.seq_mu (fun () ->
      let s = t.seq in
      t.seq <- s + 1;
      s)

let admit t name model ~dir =
  let tn =
    {
      name;
      model;
      cache = Evolution.Cache.create ();
      evolutions = 0;
      consistent = Consistency.consistent ~cache:true model;
      dir;
      migrate = Parties.create model;
    }
  in
  Hashtbl.replace (shard t name).tenants name tn;
  tn

let register t name ~processes =
  with_shard t name (fun () ->
      if Hashtbl.mem (shard t name).tenants name then
        Error (`Duplicate_tenant name)
      else
        match validate_model processes with
        | Error _ as e -> e
        | Ok model -> (
            let publish () =
              match t.root with
              | None -> Ok None
              | Some root -> (
                  let seq = next_seq t in
                  match
                    Dir.create_fresh
                      ~populate:(populate_tenant_dir ~seq ~name processes)
                      ~root name
                  with
                  | Ok dir -> Ok (Some dir)
                  | Error e -> Error (`Failed e))
            in
            match publish () with
            | Error _ as e -> e
            | Ok dir ->
                let tn = admit t name model ~dir in
                let entries = advertise_publics t tn in
                Ok
                  (registered_body tn
                     (List.map (fun (_, e) -> e.Registry.version) entries))))

(* ------------------------------------------------------------------ *)
(* Evolve / query / migrate-status                                     *)
(* ------------------------------------------------------------------ *)

let with_tenant t name f =
  with_shard t name (fun () ->
      match find t name with
      | None -> Error (`Unknown_tenant name)
      | Some tn -> f tn)

let evolve t ~config ?crash_after name ~owner ~changed =
  with_tenant t name (fun tn ->
      match tn.dir with
      | Some tdir -> (
          let dir = evolve_dir tdir tn.evolutions in
          match Evolve.run ~config ?crash_after ~dir tn.model ~owner ~changed with
          | Ok o ->
              tn.model <- o.Evolve.choreography;
              tn.consistent <- o.Evolve.consistent;
              tn.evolutions <- tn.evolutions + 1;
              ignore (advertise_publics t tn);
              Ok
                (Wire.Evolved
                   {
                     consistent = o.Evolve.consistent;
                     rounds = List.length o.Evolve.round_logs;
                     digest = o.Evolve.digest;
                     degraded = false;
                   })
          | Error e -> Error (`Failed e))
      | None -> (
          match Evolution.run ~config ~cache:tn.cache tn.model ~owner ~changed with
          | Ok report ->
              tn.model <- report.Evolution.choreography;
              tn.consistent <- report.Evolution.consistent;
              tn.evolutions <- tn.evolutions + 1;
              ignore (advertise_publics t tn);
              Ok (Wire.evolved_of_report report)
          | Error (`Unknown_party p) -> Error (`Unknown_party p)))

let query t name =
  with_tenant t name (fun tn ->
      Ok
        (Wire.Queried
           {
             parties = Model.parties tn.model;
             consistent = tn.consistent;
             digest = Journal.model_digest tn.model;
             evolutions = tn.evolutions;
           }))

let migrate_status t name =
  with_tenant t name (fun tn -> Ok (Wire.Migration (party_statuses t tn)))

(* ------------------------------------------------------------------ *)
(* Publish                                                             *)
(* ------------------------------------------------------------------ *)

(* <tenant dir>/publishes.jsonl — one Wal record per publish; [after]
   is the tenant's evolution count at publish time, the cursor that
   lets recovery interleave publish replays with evolve replays in the
   original order. *)

let publishes_file dir = Filename.concat dir "publishes.jsonl"

let publish_record ~party ~instances ~seed ~after =
  Journal.Json.Obj
    [
      ("rec", Journal.Json.Str "publish");
      ("party", Journal.Json.Str party);
      ("instances", Journal.Json.Int instances);
      ("seed", Journal.Json.Int seed);
      ("after", Journal.Json.Int after);
    ]

let publish_of_json j =
  let int k =
    match Journal.Json.member k j with
    | Some (Journal.Json.Int i) -> Some i
    | _ -> None
  in
  match
    (Journal.Json.member "party" j, int "instances", int "seed", int "after")
  with
  | Some (Journal.Json.Str party), Some instances, Some seed, Some after ->
      Ok (after, party, instances, seed)
  | _ -> Error "publish: missing field"

let read_publishes dir =
  let path = publishes_file dir in
  if not (Sys.file_exists path) then []
  else
    match Journal.Wal.read ~path ~decode:publish_of_json with
    | Ok { Journal.Wal.records; _ } -> records
    | Error e -> failwith (path ^ ": " ^ e)

let publish t name ~party ~instances ~seed =
  with_tenant t name (fun tn ->
      if not (Parties.known tn.migrate party) then Error (`Unknown_party party)
      else begin
        (* durable intent first: a crash after the append replays the
           publish on recovery; a crash before it never happened *)
        (match tn.dir with
        | Some tdir ->
            let w = Journal.Wal.open_append ~path:(publishes_file tdir) in
            Fun.protect
              ~finally:(fun () -> Journal.Wal.close w)
              (fun () ->
                Journal.Wal.append w
                  (publish_record ~party ~instances ~seed
                     ~after:tn.evolutions))
        | None -> ());
        Parties.publish tn.migrate tn.model ~party ~instances ~seed
      end)

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let recover ?shards ?(config = Config.default) ~journal_root () =
  let t = create ?shards ~journal_root () in
  let dirs =
    Dir.list_subdirs journal_root
    |> List.filter_map (fun d ->
           let dir = Filename.concat journal_root d in
           if Sys.file_exists (meta_file dir) then
             let seq, name = read_meta dir in
             Some (seq, name, dir)
           else None)
    (* stream order, not directory order: registry ids are minted in
       registration order and must come back identical *)
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  List.iter
    (fun (seq, name, dir) ->
      t.seq <- max t.seq (seq + 1);
      let model = Model.of_processes (read_parties dir) in
      let tn = with_shard t name (fun () -> admit t name model ~dir:(Some dir)) in
      ignore (advertise_publics t tn);
      (* Replay every journaled evolution in order — an interrupted one
         is finished live by [resume] — interleaved with the publish
         log by its [after] cursor, so instance populations are rebuilt
         against the same model each publish originally saw. *)
      let pubs = ref (read_publishes dir) in
      let apply_pubs () =
        let rec go () =
          match !pubs with
          | (after, party, instances, seed) :: rest
            when after <= tn.evolutions ->
              pubs := rest;
              ignore
                (Parties.publish tn.migrate tn.model ~party ~instances ~seed);
              go ()
          | _ -> ()
        in
        go ()
      in
      Dir.list_subdirs dir
      |> List.filter (fun d -> String.length d > 7 && String.sub d 0 7 = "evolve-")
      |> List.sort String.compare
      |> List.iter (fun ed ->
             let edir = Filename.concat dir ed in
             if Dir.has_journal edir then begin
               apply_pubs ();
               match Evolve.resume ~config ~dir:edir () with
               | Ok o ->
                   tn.model <- o.Evolve.choreography;
                   tn.consistent <- o.Evolve.consistent;
                   tn.evolutions <- tn.evolutions + 1;
                   ignore (advertise_publics t tn)
               | Error e -> failwith (edir ^ ": " ^ e)
             end);
      apply_pubs ())
    dirs;
  (t, List.length dirs)

(* ------------------------------------------------------------------ *)
(* Stats support                                                       *)
(* ------------------------------------------------------------------ *)

let cache_totals t =
  let totals = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      Mutex.protect s.mu (fun () ->
          Hashtbl.iter
            (fun _ tn ->
              List.iter
                (fun (table, (st : Chorev_cache.Lru.stats)) ->
                  let h, m =
                    Option.value ~default:(0, 0) (Hashtbl.find_opt totals table)
                  in
                  Hashtbl.replace totals table (h + st.hits, m + st.misses))
                (Evolution.Cache.stats tn.cache))
            s.tenants))
    t.shards;
  Hashtbl.fold
    (fun table (h, m) acc ->
      (table ^ ".hits", h) :: (table ^ ".misses", m) :: acc)
    totals []
  |> List.sort compare
