(** Deterministic workload scripts, the sequential oracle and the
    replay driver behind [chorev serve --gen-script/--oracle/--replay]
    and the [scale_serve] bench rows.

    A {e script} is a list of wire request lines. {!gen_script} derives
    one deterministically from a seed: [tenants] registrations of
    generated two-party choreographies followed by [requests] mixed
    operations (queries, migrate-status probes and evolutions across
    the request classes). Scripts contain no [Stats] ops, so expected
    responses carry no wall-clock data.

    {!oracle} computes the expected response lines {e without the
    server}: a direct sequential interpretation over
    {!Chorev_choreography.Evolution.run} and a private registry —
    an independent scheduler-free code path. A server at any pool
    size, shard count or batching must produce byte-identical lines
    for a shed-free configuration (the CI smoke diff and the golden
    tests); shed responses are the only permitted divergence, and
    only under an over-committed queue. *)

val gen_script :
  ?tenants:int -> ?requests:int -> ?seed:int -> unit -> string list
(** Defaults: 16 tenants, 128 requests, seed 42. Request ids are
    1-based stream positions. *)

val oracle : string list -> string list
(** Expected response lines (one per script line, order preserved),
    via the direct sequential path. Malformed lines yield the same
    [bad-request] responses the server would emit. *)

type report = {
  requests : int;
  tenants : int;
  shed : int;
  errors : int;
  elapsed_s : float;
  throughput : float;  (** requests per second *)
  percentiles : (string * (float * float * float)) list;
      (** per-op (p50, p95, p99), microseconds *)
}

val replay : ?options:Server.options -> string list -> report
(** Push a script through a fresh server in [Server.options.batch]-
    sized cycles and measure: end-to-end wall time, throughput, shed
    and error counts, per-op tail latency. *)

val pp_report : Format.formatter -> report -> unit

val report_counters : report -> (string * int) list
(** The report flattened to [(name, int)] counters (latencies in
    microseconds) for the bench JSON. *)
