(** Running choreography instances (Sec. 8 outlook): an id plus the
    conversation trace executed so far. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label

type t = { id : string; trace : Label.t list }

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string

val make : id:string -> ?trace:Label.t list -> unit -> t
val extend : t -> Label.t -> t
val length : t -> int

val replay : Afsa.t -> t -> (Afsa.ISet.t, int) result
(** States reached after the trace, or the offset of the first
    unreplayable message. *)

val completed : Afsa.t -> t -> bool
val valid : Afsa.t -> t -> bool

(** Reusable sampling state: labelled moves per state (through the
    ε-closure) flattened into arrays, built lazily and kept across
    samples. Not thread-safe — one sampler per domain. *)
module Sampler : sig
  type instance := t
  type t

  val create : Afsa.t -> t

  val sample : t -> id:string -> seed:int -> max_len:int -> instance
  (** Same distribution and seeding as {!val:sample} below. *)
end

val sample : Afsa.t -> id:string -> seed:int -> max_len:int -> t
(** A random valid prefix, deterministic per seed. One-shot
    convenience over {!Sampler.sample}. *)
