(** The compliance criterion for dynamic migration.

    Following the authors' process-schema-evolution work that the paper
    builds its outlook on (Rinderle, Reichert, Dadam: "Correctness
    criteria for dynamic changes in workflow systems", DKE 50(1),
    2004), an instance is {e compliant} with a changed schema iff the
    execution log produced so far could also have been produced on the
    new schema. For public processes this means: the conversation trace
    replays as a run prefix of the new aFSA, *and* from the reached
    states an accepting conversation satisfying the mandatory
    annotations is still possible (otherwise the instance would migrate
    straight into a dead protocol). *)

module Afsa = Chorev_afsa.Afsa
module ISet = Afsa.ISet

type verdict =
  | Migratable of { resume_states : int list }
      (** the trace replays; migration can happen now *)
  | Not_compliant of { at : int; label : Chorev_afsa.Label.t }
      (** message [at] (0-based) of the trace has no counterpart in the
          new process *)
  | Dead_end of { resume_states : int list }
      (** the trace replays but no annotated-accepting continuation
          exists from any reached state *)
[@@deriving show]

let is_migratable = function Migratable _ -> true | _ -> false

(** Check one instance against the new public process. *)
let check (new_public : Afsa.t) (inst : Instance.t) : verdict =
  match Instance.replay new_public inst with
  | Error at ->
      let label = List.nth inst.Instance.trace at in
      Not_compliant { at; label }
  | Ok set ->
      (* a continuation exists iff one reached state is [sat] in the
         annotated emptiness fixpoint *)
      let { Chorev_afsa.Emptiness.sat; _ } =
        Chorev_afsa.Emptiness.analyze new_public
      in
      let closure = Chorev_afsa.Epsilon.closure new_public set in
      let good = ISet.inter closure sat in
      if ISet.is_empty good then
        Dead_end { resume_states = ISet.elements closure }
      else Migratable { resume_states = ISet.elements good }

(** Batch check; returns (migratable, blocked) partitions. *)
let partition new_public instances =
  List.partition
    (fun i -> is_migratable (check new_public i))
    instances

(** The paper's §8 also envisions *delayed* migration: an instance
    whose trace is not compliant may still be allowed to finish on the
    old version. [disposition] decides per instance. *)
type disposition =
  | Migrate  (** move to the new version now *)
  | Finish_on_old  (** run to completion on the old version *)
  | Stuck  (** not compliant with the new version and cannot complete
               on the old one either *)
[@@deriving eq, show]

let dispose ~old_public ~new_public inst =
  match check new_public inst with
  | Migratable _ -> Migrate
  | Not_compliant _ | Dead_end _ ->
      (* can it still finish on the old version? *)
      (match Instance.replay old_public inst with
      | Error _ -> Stuck
      | Ok set ->
          let { Chorev_afsa.Emptiness.sat; _ } =
            Chorev_afsa.Emptiness.analyze old_public
          in
          let closure = Chorev_afsa.Epsilon.closure old_public set in
          if ISet.is_empty (ISet.inter closure sat) then Stuck
          else Finish_on_old)

(* ------------------------------------------------------------------ *)
(* Batch context                                                       *)
(* ------------------------------------------------------------------ *)

(** [check] pays the full emptiness fixpoint of the new public per
    instance — fine for one verdict, ruinous for a million. A {!ctx}
    precomputes everything a verdict needs (ε-closures, the annotated
    emptiness [sat] set) once per public process. After [context]
    returns the value is sealed: every later operation only reads
    immutable maps and fully-built hash tables, so one ctx can be
    shared by every pool domain without {!Afsa.copy}-per-task. *)
type ctx = {
  public : Afsa.t;
      (** private copy; only its immutable fields are read after build *)
  start_set : ISet.t;  (** ε-closed start states *)
  closures : (int, ISet.t) Hashtbl.t;  (** sealed after [context] *)
  sat : ISet.t;
}

let context public =
  let a = Afsa.copy public in
  let closures = Afsa.eps_closures a in
  let { Chorev_afsa.Emptiness.sat; _ } = Chorev_afsa.Emptiness.analyze a in
  let closure_of q =
    match Hashtbl.find_opt closures q with
    | Some s -> s
    | None -> ISet.singleton q
  in
  { public = a; start_set = closure_of (Afsa.start a); closures; sat }

let ctx_public ctx = ctx.public

let close ctx set =
  ISet.fold
    (fun q acc ->
      match Hashtbl.find_opt ctx.closures q with
      | Some s -> ISet.union s acc
      | None -> ISet.add q acc)
    set ISet.empty

(* One fuel tick per instance plus one per consumed message keeps the
   cost of a verdict deterministic — independent of pool size and of
   which domain runs it — which is what lets per-batch budgets defer
   the same batches on every run. *)
let replay_ctx ctx (inst : Instance.t) =
  let b = Chorev_guard.Budget.ambient () in
  Chorev_guard.Budget.tick b;
  let rec go set i = function
    | [] -> Ok set
    | l :: rest ->
        Chorev_guard.Budget.tick b;
        let next =
          ISet.fold
            (fun q acc ->
              ISet.union (Afsa.step ctx.public q (Chorev_afsa.Sym.L l)) acc)
            set ISet.empty
        in
        if ISet.is_empty next then Error i else go (close ctx next) (i + 1) rest
  in
  go ctx.start_set 0 inst.Instance.trace

let check_ctx ctx (inst : Instance.t) =
  match replay_ctx ctx inst with
  | Error at ->
      let label = List.nth inst.Instance.trace at in
      Not_compliant { at; label }
  | Ok closed ->
      let good = ISet.inter closed ctx.sat in
      if ISet.is_empty good then Dead_end { resume_states = ISet.elements closed }
      else Migratable { resume_states = ISet.elements good }

let dispose_ctx ~old_ctx ~new_ctx inst =
  match check_ctx new_ctx inst with
  | Migratable _ -> Migrate
  | Not_compliant _ | Dead_end _ -> (
      match replay_ctx old_ctx inst with
      | Error _ -> Stuck
      | Ok closed ->
          if ISet.is_empty (ISet.inter closed old_ctx.sat) then Stuck
          else Finish_on_old)
