(** Running choreography instances.

    The paper's Sec. 8 outlook: "Another challenging issue is the
    treatment of running process instances (participating in a
    choreography) when changing private and public process models. The
    co-existence of different versions of a process choreography is a
    must in this context. For long-running choreographies, in addition,
    change propagation to already running instances is highly
    desirable." This module (together with {!Compliance} and
    {!Versions}) implements that program for public processes, using
    the ADEPT compliance criterion of the authors' companion work
    (Rinderle et al., DKE 50(1), 2004): an instance may migrate to a
    new schema iff its execution trace so far can be replayed on it.

    An instance is identified by an id and carries the conversation
    trace executed so far. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
module ISet = Afsa.ISet

type t = {
  id : string;
  trace : Label.t list;  (** messages exchanged so far, oldest first *)
}
[@@deriving eq, show]

let make ~id ?(trace = []) () = { id; trace }

let extend t l = { t with trace = t.trace @ [ l ] }

let length t = List.length t.trace

(** Replay the instance's trace on a public process: the NFA state set
    reached after consuming the trace (with ε-closure), or [Error]
    with the offset of the first message the process cannot take. *)
let replay (a : Afsa.t) (t : t) : (ISet.t, int) result =
  let closure = Chorev_afsa.Epsilon.closure a in
  let rec go set i = function
    | [] -> Ok set
    | l :: rest ->
        let next =
          ISet.fold
            (fun q acc -> ISet.union (Afsa.step a q (Chorev_afsa.Sym.L l)) acc)
            (closure set) ISet.empty
        in
        if ISet.is_empty next then Error i else go next (i + 1) rest
  in
  go (ISet.singleton (Afsa.start a)) 0 t.trace

(** The instance has reached a final state (the conversation could stop
    here). *)
let completed (a : Afsa.t) (t : t) =
  match replay a t with
  | Error _ -> false
  | Ok set ->
      ISet.exists (Afsa.is_final a) (Chorev_afsa.Epsilon.closure a set)

(** Is the trace a valid (not necessarily accepting) run prefix? *)
let valid (a : Afsa.t) (t : t) = Result.is_ok (replay a t)

(** Seeded trace sampling. The sampler owns a per-state move table —
    the labelled out-edges reachable through the ε-closure of one
    state, flattened into an array once — so drawing a step is one
    array index instead of the [List.length]/[List.nth] walk the
    original sampler paid per message. A sampler is cheap to create
    and pays for each state at most once across all the instances it
    samples, which is what makes 100k–1M instance populations
    affordable. Not thread-safe (the move table is filled lazily);
    give each domain its own sampler. *)
module Sampler = struct
  type t = { a : Afsa.t; moves : (int, (Label.t * int) array) Hashtbl.t }

  let create a = { a; moves = Hashtbl.create 64 }

  (* Exactly the move enumeration of the original per-step rebuild —
     the ε-closure folded in ascending state order, each state's
     labelled out-edges prepended — so seeded traces are unchanged. *)
  let moves_of s q =
    match Hashtbl.find_opt s.moves q with
    | Some arr -> arr
    | None ->
        let l =
          ISet.fold
            (fun q acc ->
              List.filter_map
                (fun (sym, t) ->
                  match sym with
                  | Chorev_afsa.Sym.Eps -> None
                  | Chorev_afsa.Sym.L l -> Some (l, t))
                (Afsa.out_edges s.a q)
              @ acc)
            (Chorev_afsa.Epsilon.closure s.a (ISet.singleton q))
            []
        in
        let arr = Array.of_list l in
        Hashtbl.replace s.moves q arr;
        arr

  let sample s ~id ~seed ~max_len =
    let rng = Random.State.make [| seed |] in
    let rec go q acc n =
      if n = 0 then List.rev acc
      else
        let moves = moves_of s q in
        let m = Array.length moves in
        if m = 0 then List.rev acc
        else
          let l, t = moves.(Random.State.int rng m) in
          go t (l :: acc) (n - 1)
    in
    let len = if max_len = 0 then 0 else Random.State.int rng (max_len + 1) in
    { id; trace = go (Afsa.start s.a) [] len }
end

(** Sample an instance of [a]: a random valid prefix of length ≤
    [max_len] (deterministic per seed). Useful for tests and benches.
    One-shot convenience over {!Sampler}; batch callers should keep a
    sampler and reuse its move table. *)
let sample (a : Afsa.t) ~id ~seed ~max_len =
  Sampler.sample (Sampler.create a) ~id ~seed ~max_len
