(** Version coexistence (Sec. 8: "the co-existence of different
    versions of a process choreography is a must"): version history of
    one party's public process with instances pinned to versions;
    publishing migrates compliant instances, drained versions retire.

    Instances are stored in per-version hash tables keyed by id (all
    single-instance operations are O(1)); every admission stamps a
    monotone sequence number, and all enumeration orders are defined
    from those stamps — deterministic, never hash order. Ids are
    unique across the store: starting an existing id moves it. *)

module Afsa = Chorev_afsa.Afsa

type version
type t

type migration_report = {
  to_version : int;
  migrated : string list;
  finishing_on_old : (string * int) list;
  stuck : string list;
}

val create : Afsa.t -> t
val current : t -> version
val current_public : t -> Afsa.t
val version_numbers : t -> int list
val find_version : t -> int -> version option

val version_number : version -> int
val version_public : version -> Afsa.t
val version_count : version -> int

val version_instances : version -> Instance.t list
(** Hosted instances, most recently admitted first. *)

val start : t -> Instance.t -> unit
(** New instance on the current version. *)

val start_on : t -> int -> Instance.t -> unit
(** New instance on a specific live version.
    @raise Invalid_argument when the version is not live. *)

val observe : t -> id:string -> Chorev_afsa.Label.t -> unit
(** Record a message on a running instance. *)

val remove : t -> id:string -> bool
(** Drop an instance (it completed); [false] when unknown. *)

val find_instance : t -> string -> (int * Instance.t) option
(** The hosting version and current trace of an instance. *)

val instance_count : t -> int
val counts : t -> (int * int) list
(** Per live version (newest first): [(number, instance count)]. *)

val all_instances : t -> (int * Instance.t) list
(** Versions newest first, instances within each version most recently
    admitted first. *)

val in_admission_order : t -> (int * Instance.t) list
(** Every live instance with its hosting version, oldest admission
    first — the stable enumeration the batched migrator slices. *)

val add_version : t -> Afsa.t -> int
(** Open a fresh empty current version without classifying anything;
    returns its number. *)

val move_instance : t -> id:string -> to_version:int -> unit
(** Re-pin an instance to another live version (admission stamp kept).
    @raise Invalid_argument on unknown instance or version. *)

val publish : t -> Afsa.t -> migration_report
(** New version; compliant instances of all live versions migrate.
    Classification runs in admission order. *)

val retire_drained : t -> int list
(** Retire versions with no instances (never the current); returns the
    retired numbers. *)

val pp_report : Format.formatter -> migration_report -> unit
