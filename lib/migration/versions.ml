(** Version coexistence for evolving public processes.

    "The co-existence of different versions of a process choreography
    is a must in this context" (Sec. 8). A {!t} holds the version
    history of one party's public process and the running instances
    pinned to each version. Publishing a new version migrates every
    compliant instance (the ADEPT strategy) and leaves the others to
    finish on their version; fully drained old versions can be
    retired.

    Instances live in per-version hash tables keyed by id, with one
    global id → version index, so [start]/[observe]/[move_instance]
    are O(1) and a 1M-instance population never pays the linear scans
    of the original list representation. Every admission stamps a
    monotone sequence number; enumeration orders ([version_instances],
    [all_instances], [in_admission_order]) are defined from those
    stamps, never from hash-table iteration, so they are deterministic
    and survive re-building the same population in the same order. *)

module Afsa = Chorev_afsa.Afsa

type version = {
  number : int;
  public : Afsa.t;
  tbl : (string, int * Instance.t) Hashtbl.t;
      (** id → (admission seq, instance) *)
}

type t = {
  mutable versions : version list;  (** newest first *)
  mutable retired : int list;
  mutable next_seq : int;
  index : (string, int) Hashtbl.t;  (** instance id → hosting version *)
}

type migration_report = {
  to_version : int;
  migrated : string list;  (** instance ids *)
  finishing_on_old : (string * int) list;  (** id, version *)
  stuck : string list;
}

let mk_version number public = { number; public; tbl = Hashtbl.create 64 }

let create public =
  {
    versions = [ mk_version 1 public ];
    retired = [];
    next_seq = 0;
    index = Hashtbl.create 256;
  }

let version_number v = v.number
let version_public v = v.public
let version_count v = Hashtbl.length v.tbl

(* Most recently admitted first — the order the old list representation
   (which prepended on [start]) exposed. *)
let version_instances v =
  Hashtbl.fold (fun _ entry acc -> entry :: acc) v.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (b : int) a)
  |> List.map snd

let current t = List.hd t.versions
let current_public t = (current t).public
let version_numbers t = List.map (fun v -> v.number) t.versions
let find_version t n = List.find_opt (fun v -> v.number = n) t.versions

let remove t ~id =
  match Hashtbl.find_opt t.index id with
  | None -> false
  | Some n ->
      (match find_version t n with
      | Some v -> Hashtbl.remove v.tbl id
      | None -> ());
      Hashtbl.remove t.index id;
      true

(** Start a new instance on a specific live version. Ids are unique
    across the whole store: re-starting an existing id moves it. *)
let start_on t n inst =
  match find_version t n with
  | None ->
      invalid_arg (Printf.sprintf "Versions.start_on: no live version %d" n)
  | Some v ->
      ignore (remove t ~id:inst.Instance.id);
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Hashtbl.replace v.tbl inst.Instance.id (seq, inst);
      Hashtbl.replace t.index inst.Instance.id n

(** Start a new instance on the current version. *)
let start t inst = start_on t (current t).number inst

(** Record a message on a running instance (wherever it lives). *)
let observe t ~id label =
  match Hashtbl.find_opt t.index id with
  | None -> ()
  | Some n -> (
      match find_version t n with
      | None -> ()
      | Some v -> (
          match Hashtbl.find_opt v.tbl id with
          | None -> ()
          | Some (seq, i) ->
              Hashtbl.replace v.tbl id (seq, Instance.extend i label)))

let find_instance t id =
  match Hashtbl.find_opt t.index id with
  | None -> None
  | Some n ->
      Option.bind (find_version t n) (fun v ->
          Option.map (fun (_, i) -> (n, i)) (Hashtbl.find_opt v.tbl id))

let instance_count t =
  List.fold_left (fun acc v -> acc + Hashtbl.length v.tbl) 0 t.versions

let counts t = List.map (fun v -> (v.number, Hashtbl.length v.tbl)) t.versions

let all_instances t =
  List.concat_map
    (fun v -> List.map (fun i -> (v.number, i)) (version_instances v))
    t.versions

let in_admission_order t =
  List.concat_map
    (fun v ->
      Hashtbl.fold (fun _ (seq, i) acc -> (v.number, seq, i) :: acc) v.tbl [])
    t.versions
  |> List.sort (fun (_, a, _) (_, b, _) -> compare (a : int) b)
  |> List.map (fun (n, _, i) -> (n, i))

(** Open a fresh (empty) current version without classifying anything —
    the batched migrator publishes first and then moves instances batch
    by batch. *)
let add_version t public =
  let number = (current t).number + 1 in
  t.versions <- mk_version number public :: t.versions;
  number

(** Re-pin an instance to another live version, keeping its admission
    stamp (enumeration order is stable under migration). *)
let move_instance t ~id ~to_version =
  match Hashtbl.find_opt t.index id with
  | None -> invalid_arg ("Versions.move_instance: unknown instance " ^ id)
  | Some n ->
      if n <> to_version then (
        match (find_version t n, find_version t to_version) with
        | Some src, Some dst ->
            let entry = Hashtbl.find src.tbl id in
            Hashtbl.remove src.tbl id;
            Hashtbl.replace dst.tbl id entry;
            Hashtbl.replace t.index id to_version
        | _ ->
            invalid_arg
              (Printf.sprintf "Versions.move_instance: no live version %d"
                 to_version))

(** Publish a new public process: compliant instances of *all* live
    versions migrate to it; the rest stay where they are (or are
    reported stuck). Instances are classified in admission order, so
    the report lists are deterministic. *)
let publish t new_public =
  let items = in_admission_order t in
  let number = add_version t new_public in
  let migrated = ref [] in
  let finishing = ref [] in
  let stuck = ref [] in
  List.iter
    (fun (vnum, (inst : Instance.t)) ->
      let v = Option.get (find_version t vnum) in
      match Compliance.dispose ~old_public:v.public ~new_public inst with
      | Compliance.Migrate ->
          move_instance t ~id:inst.Instance.id ~to_version:number;
          migrated := inst.Instance.id :: !migrated
      | Compliance.Finish_on_old ->
          finishing := (inst.Instance.id, vnum) :: !finishing
      | Compliance.Stuck -> stuck := inst.Instance.id :: !stuck)
    items;
  {
    to_version = number;
    migrated = List.rev !migrated;
    finishing_on_old = List.rev !finishing;
    stuck = List.rev !stuck;
  }

(** Retire versions with no remaining instances (never the current). *)
let retire_drained t =
  let cur = (current t).number in
  let keep, drop =
    List.partition
      (fun v -> v.number = cur || Hashtbl.length v.tbl > 0)
      t.versions
  in
  t.versions <- keep;
  t.retired <- List.map (fun v -> v.number) drop @ t.retired;
  List.map (fun v -> v.number) drop

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>migration to v%d: %d migrated (%a)@,%d finishing on old versions@,%d stuck@]"
    r.to_version
    (List.length r.migrated)
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    r.migrated
    (List.length r.finishing_on_old)
    (List.length r.stuck)
