(** The ADEPT compliance criterion (Rinderle et al., DKE 2004) applied
    to public processes: an instance migrates iff its trace replays on
    the new process and an annotated-accepting continuation remains. *)

module Afsa = Chorev_afsa.Afsa

type verdict =
  | Migratable of { resume_states : int list }
  | Not_compliant of { at : int; label : Chorev_afsa.Label.t }
  | Dead_end of { resume_states : int list }

val pp_verdict : Format.formatter -> verdict -> unit
val show_verdict : verdict -> string

val is_migratable : verdict -> bool
val check : Afsa.t -> Instance.t -> verdict

val partition :
  Afsa.t -> Instance.t list -> Instance.t list * Instance.t list
(** (migratable, blocked). *)

type disposition = Migrate | Finish_on_old | Stuck

val equal_disposition : disposition -> disposition -> bool
val pp_disposition : Format.formatter -> disposition -> unit
val show_disposition : disposition -> string

val dispose :
  old_public:Afsa.t -> new_public:Afsa.t -> Instance.t -> disposition
(** Delayed migration: non-compliant instances may finish on the old
    version when still able to. *)

(** {2 Batch checking}

    {!check} recomputes the emptiness fixpoint of the public process
    per instance; a {!ctx} pays for ε-closures and the annotated
    emptiness analysis once. A ctx is sealed after {!context} returns
    (only immutable maps and fully-built tables are read afterwards),
    so a single ctx is safe to share across pool domains. *)

type ctx

val context : Afsa.t -> ctx
(** Build the shared verdict context for one public process (takes a
    private {!Afsa.copy}; the argument is not retained). *)

val ctx_public : ctx -> Afsa.t
(** The context's private copy of the public process (read-only). *)

val check_ctx : ctx -> Instance.t -> verdict
(** Same verdict as [check (ctx's public)]. Ticks the ambient
    {!Chorev_guard.Budget} once per instance plus once per consumed
    message, so verdict fuel is deterministic. *)

val dispose_ctx : old_ctx:ctx -> new_ctx:ctx -> Instance.t -> disposition
(** Same disposition as {!dispose}; budget-ticked like {!check_ctx}. *)
