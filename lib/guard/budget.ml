(** Budgets: fuel + deadline + cancellation (see budget.mli). *)

module Metrics = Chorev_obs.Metrics

module Cancel = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let cancel t = Atomic.set t true
  let cancelled t = Atomic.get t
end

type reason = [ `Fuel | `Deadline | `Cancelled ]
type info = { reason : reason; spent : int; elapsed_s : float }

exception Expired of info

(* Deadline and cancellation are only polled every [poll_mask + 1]
   ticks so the hot path stays a decrement and two compares. *)
let poll_mask = 255

type t = {
  mutable fuel_left : int; (* max_int = no fuel bound *)
  mutable spent : int;
  mutable countdown : int; (* ticks until the next deadline poll *)
  mutable tripped : info option;
  deadline : float; (* absolute, infinity = none *)
  started : float;
  cancel : Cancel.t option;
}

let now () = Unix.gettimeofday ()

let unlimited =
  {
    fuel_left = max_int;
    spent = 0;
    countdown = max_int;
    tripped = None;
    deadline = infinity;
    started = 0.;
    cancel = None;
  }

let create ?fuel ?timeout_s ?cancel () =
  let started = now () in
  {
    fuel_left = (match fuel with Some f -> max 0 f | None -> max_int);
    spent = 0;
    countdown = poll_mask;
    tripped = None;
    deadline =
      (match timeout_s with Some s -> started +. s | None -> infinity);
    started;
    cancel;
  }

type spec = { fuel : int option; timeout_s : float option }

let spec_unlimited = { fuel = None; timeout_s = None }
let spec_is_unlimited s = s.fuel = None && s.timeout_s = None

let of_spec ?cancel spec =
  if spec_is_unlimited spec && cancel = None then unlimited
  else create ?fuel:spec.fuel ?timeout_s:spec.timeout_s ?cancel ()

let is_unlimited b = b == unlimited
let spent b = b.spent
let exceeded b = b.tripped

let exceeded_total = Metrics.counter "guard.exceeded_total"

let trip b reason =
  let info = { reason; spent = b.spent; elapsed_s = now () -. b.started } in
  b.tripped <- Some info;
  Metrics.incr exceeded_total;
  raise (Expired info)

let poll b =
  (match b.cancel with
  | Some c when Cancel.cancelled c -> trip b `Cancelled
  | _ -> ());
  if now () > b.deadline then trip b `Deadline

let check b = if b != unlimited then poll b

let tick_slow b =
  (* trip when a tick is {e attempted} with no fuel left, so a fuel-N
     budget admits exactly N ticks and reports [spent = N] *)
  if b.fuel_left <= 0 then trip b `Fuel;
  b.spent <- b.spent + 1;
  b.fuel_left <- b.fuel_left - 1;
  b.countdown <- b.countdown - 1;
  if b.countdown <= 0 then begin
    b.countdown <- poll_mask;
    poll b
  end

let[@inline] tick b = if b != unlimited then tick_slow b

let sub b spec =
  if b == unlimited then of_spec spec
  else
    let started = now () in
    let fuel_left =
      match spec.fuel with
      | Some f -> max 0 (min f b.fuel_left)
      | None -> b.fuel_left
    in
    let deadline =
      match spec.timeout_s with
      | Some s -> Float.min (started +. s) b.deadline
      | None -> b.deadline
    in
    {
      fuel_left;
      spent = 0;
      countdown = poll_mask;
      tripped = None;
      deadline;
      started;
      cancel = b.cancel;
    }

let charge b n =
  if b != unlimited && n > 0 then begin
    (* spending exactly down to zero is fine; only an overdraw trips *)
    if n > b.fuel_left then trip b `Fuel;
    b.spent <- b.spent + n;
    b.fuel_left <- b.fuel_left - n;
    poll b
  end

(* ------------------------------ ambient ----------------------------- *)

let ambient_key = Domain.DLS.new_key (fun () -> unlimited)
let ambient () = Domain.DLS.get ambient_key

let with_ambient b f =
  let prev = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key b;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f

let fuel_spent = Metrics.counter "guard.fuel_spent"

(* Only convert an [Expired] that belongs to [b]; a trip of an
   enclosing budget keeps unwinding so the outer [run] sees it. *)
let owns b info =
  match b.tripped with Some i -> i == info | None -> false

let run b f =
  let before = b.spent in
  let record () = Metrics.add fuel_spent (b.spent - before) in
  match with_ambient b f with
  | v ->
      record ();
      `Done v
  | exception Expired info when owns b info ->
      record ();
      `Exceeded info
  | exception e ->
      record ();
      raise e

(* ----------------------------- printing ----------------------------- *)

let pp_reason ppf = function
  | `Fuel -> Fmt.string ppf "fuel"
  | `Deadline -> Fmt.string ppf "deadline"
  | `Cancelled -> Fmt.string ppf "cancelled"

let pp_info ppf i =
  Fmt.pf ppf "%a after %d units (%.3fs)" pp_reason i.reason i.spent
    i.elapsed_s
