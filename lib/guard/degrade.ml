(** Degradation markers (see degrade.mli). *)

type t =
  | Skipped_minimization of Budget.info
  | Unknown_verdict of { step : string; info : Budget.info }
  | Aborted_step of { step : string; info : Budget.info }

let pp ppf = function
  | Skipped_minimization info ->
      Fmt.pf ppf "skipped minimization (%a)" Budget.pp_info info
  | Unknown_verdict { step; info } ->
      Fmt.pf ppf "unknown verdict at %s (%a)" step Budget.pp_info info
  | Aborted_step { step; info } ->
      Fmt.pf ppf "aborted %s (%a)" step Budget.pp_info info

let pp_list ppf = function
  | [] -> Fmt.string ppf "none"
  | ds -> Fmt.(list ~sep:(any "; ") pp) ppf ds
