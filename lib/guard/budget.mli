(** Resource budgets for the aFSA algebra and the evolution pipeline.

    A budget bounds a computation three ways at once: a {e fuel} counter
    (deterministic — one unit per worklist iteration), a wall-clock
    {e deadline}, and a cooperative {e cancellation} token. Hot loops
    call {!tick} once per iteration; when any bound trips, the loop is
    unwound with {!Expired} and {!run} converts that into a typed
    [`Exceeded] result instead of a hang or a crash.

    The {!unlimited} budget is a physical singleton and {!tick} on it is
    a single pointer comparison, so un-budgeted callers pay nothing. *)

(** Cooperative cancellation token, safe to trip from any domain. *)
module Cancel : sig
  type t

  val create : unit -> t
  val cancel : t -> unit
  val cancelled : t -> bool
end

type reason = [ `Fuel | `Deadline | `Cancelled ]

type info = {
  reason : reason;  (** which bound tripped *)
  spent : int;  (** fuel consumed up to the trip point *)
  elapsed_s : float;  (** wall time since the budget was created *)
}

exception Expired of info
(** Raised by {!tick} when a bound trips. Caught by {!run}; algebra ops
    let it propagate so the whole worklist unwinds at once. *)

type t

val unlimited : t
(** The no-op budget (physical singleton — never mutated). *)

val create : ?fuel:int -> ?timeout_s:float -> ?cancel:Cancel.t -> unit -> t
(** Fresh budget; omitted bounds are unbounded. [timeout_s] is measured
    from creation. *)

type spec = { fuel : int option; timeout_s : float option }
(** Declarative form carried in configs (a [spec] is immutable and
    reusable; a {!t} is single-use). *)

val spec_unlimited : spec
val spec_is_unlimited : spec -> bool

val of_spec : ?cancel:Cancel.t -> spec -> t
(** Mint a fresh budget from a spec. Returns {!unlimited} (the
    singleton) when the spec has no bounds and no cancel token. *)

val is_unlimited : t -> bool
val tick : t -> unit [@@inline]
(** Consume one unit of fuel and (amortized, every ~256 ticks) poll the
    deadline and cancellation token. @raise Expired when a bound trips. *)

val check : t -> unit
(** Poll deadline/cancellation immediately without consuming fuel.
    @raise Expired when a bound trips. *)

val spent : t -> int
(** Fuel consumed so far. *)

val exceeded : t -> info option
(** [Some info] once the budget has tripped (it stays tripped). *)

val sub : t -> spec -> t
(** [sub parent spec] mints a child budget: fuel capped by both the
    spec and the parent's remaining fuel, deadline the earlier of the
    two, sharing the parent's cancellation token. The child's spend is
    not reflected in the parent automatically — account it back with
    [charge parent (spent child)] once the child step finishes. *)

val charge : t -> int -> unit
(** Consume [n] fuel units at once (how a parent absorbs a child's
    spend). @raise Expired when the parent's bounds trip. *)

val ambient : unit -> t
(** The budget installed for the current domain ({!unlimited} when none
    is installed). Algebra ops default their [?budget] argument to
    this, so governance reaches code that does not thread budgets
    explicitly. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run [f] with [t] installed as the current domain's ambient budget,
    restoring the previous one afterwards (exception-safe). *)

val run : t -> (unit -> 'a) -> [ `Done of 'a | `Exceeded of info ]
(** [run b f] installs [b] as ambient, runs [f], and converts an
    {!Expired} unwind into [`Exceeded]. Fuel spent is recorded in the
    [guard.fuel_spent] counter; trips bump [guard.exceeded_total]. *)

val pp_reason : reason Fmt.t
val pp_info : info Fmt.t
