(** Degradation markers: what the engine gave up on when a budget
    tripped, and why. Carried on analyses/outcomes so callers can tell
    a full answer from a best-effort one. *)

type t =
  | Skipped_minimization of Budget.info
      (** a view was produced without minimization (bisimilar, larger) *)
  | Unknown_verdict of { step : string; info : Budget.info }
      (** a consistency decision could not be reached in budget *)
  | Aborted_step of { step : string; info : Budget.info }
      (** a pipeline step was abandoned; conservative fallback used *)

val pp : t Fmt.t
val pp_list : t list Fmt.t
