(** The propagation pipelines of Sec. 5.2 (variant additive) and 5.3
    (variant subtractive), steps 1–5: delta computation, target public
    process, localization, suggestions, optional auto-apply with a
    re-check loop over suggestion subsets. *)

module Afsa = Chorev_afsa.Afsa
module Budget = Chorev_guard.Budget
module Degrade = Chorev_guard.Degrade

type direction = Additive | Subtractive

type analysis = {
  view_new : Afsa.t;  (** τ_partner(A′) *)
  delta : Afsa.t;  (** added or removed sequences *)
  target_public : Afsa.t;  (** computed B′ *)
  divergences : Localize.divergence list;
  suggestions : Suggest.t list;
  witness : Chorev_afsa.Label.t list option;
      (** shortest distinguishing witness trace of [delta] — a concrete
          message sequence the partner cannot follow. Filled in by
          {!run} when the pipeline ends inconsistent ([None] while it
          succeeds, or when the delta is language-empty); {!analyze}
          itself leaves it [None]. *)
  degraded : Degrade.t list;
      (** budget trips during steps 1–4 and the fallbacks taken:
          skipped minimization, abandoned delta (partner kept as-is) *)
}
(** Steps 1–4 of the pipeline for one partner, as a named record (the
    positional 5-tuple it replaces was error-prone to destructure). *)

type outcome = {
  direction : direction;
  analysis : analysis;
  adapted : Chorev_bpel.Process.t option;  (** auto-applied private process *)
  adapted_public : Afsa.t option;
  consistent_after : bool;
      (** [false] also covers an [`Unknown] re-check verdict — see
          [degraded] to distinguish "inconsistent" from "out of budget" *)
  degraded : Degrade.t list;
      (** everything in [analysis.degraded] plus re-check and
          whole-round trips; empty = full-fidelity result *)
}

type config = Chorev_config.Config.t = {
  auto_apply : bool;
      (** attempt the suggested private-process adaptations (default
          [true]); with [false] the outcome carries analysis and
          suggestions only *)
  max_rounds : int;
      (** transitive-propagation bound, used by [Evolution] (default 8;
          ignored by {!run}, which is single-partner) *)
  obs : Chorev_obs.Sink.t option;
      (** trace sink installed for the duration of the run; [None]
          (default) inherits the ambient {!Chorev_obs.Obs} sink *)
  jobs : int;
      (** domain-pool size for [Evolution]'s per-partner fan-out;
          [0] (default) defers to [Chorev_parallel.Pool.default_size]
          ([--jobs] / [CHOREV_DOMAINS]); ignored by {!run}, which is
          single-partner *)
  op_budget : Budget.spec;
      (** bound on each algebra step (view, delta, re-check, ...); a
          fresh budget is minted per step, so fuel here is deterministic
          per step regardless of pool size (default: unlimited) *)
  round_budget : Budget.spec;
      (** bound on one whole partner pipeline; op budgets draw from its
          remaining fuel and the earlier deadline wins (default:
          unlimited) *)
  cancel : Budget.Cancel.t option;
      (** cooperative cancellation token shared by every budget minted
          from this config (default: [None]) *)
  cache : bool;
      (** route algebra steps (views, differences, public regeneration,
          re-checks) through [Chorev_cache.Memo]'s fingerprint-keyed
          per-domain memo tables (default [true]). Results are
          identical with and without; the memo layer is inert under a
          limited ambient budget, so budgets tick on cache misses only
          and fuel determinism across pool sizes is preserved. *)
  repair : Chorev_config.Config.repair;
      (** self-healing policy for failed propagations, consumed by
          [Evolution] and the simulator (default:
          [Chorev_config.Config.repair_off]; ignored by {!run}) *)
}
(** Alias of {!Chorev_config.Config.t}, the one configuration record of
    the stack: [Evolution.config] and the serving layer's per-request
    configs are the same type, so one value configures the whole
    pipeline. *)

val default : config
(** [auto_apply = true], [max_rounds = 8], no sink, [jobs = 0],
    unlimited budgets, no cancellation token, [cache = true]. *)

val analyze :
  ?round:Budget.t ->
  ?op_budget:Budget.spec ->
  ?cache:bool ->
  direction:direction ->
  a':Afsa.t ->
  partner_private:Chorev_bpel.Process.t ->
  public_b:Afsa.t ->
  table_b:Chorev_mapping.Table.t ->
  unit ->
  analysis
(** Steps 1–4 under budgets: each step gets a fresh budget minted from
    [op_budget] capped by [round]'s remainder, and degrades per policy
    (view → unminimized view; delta → keep the partner unchanged;
    localize/suggest → no suggestions) instead of raising. Only a trip
    of [round] itself escapes, as [Budget.Expired]. *)

val run :
  ?config:config ->
  direction:direction ->
  a':Afsa.t ->
  partner_private:Chorev_bpel.Process.t ->
  unit ->
  outcome
(** Run the full pipeline for one partner under [config]
    (default {!default}). *)

val direction_of_framework : Chorev_change.Classify.framework -> direction
val pp_outcome : Format.formatter -> outcome -> unit
