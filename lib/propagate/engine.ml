(** The propagation pipelines of Sec. 5.2 (variant additive) and
    Sec. 5.3 (variant subtractive), steps 1–5.

    Given the change originator's new public process [A'] and one
    partner (private process [P_B], public process [B] with its mapping
    table), the engine:

    1. takes the partner's view [τ_B(A')] and computes the delta —
       added sequences [τ_B(A') \ B] for the additive case, removed
       sequences [B \ τ_B(A')] for the subtractive case (the paper's
       Sec. 5.3 writes [τ(A') \ B] for both, but its own Fig. 17a is
       the removed-sequences automaton [B \ τ(A')]; see DESIGN.md);
    2. computes the target public process — [B' = delta ∪ B] resp.
       [B' = B \ delta];
    3. localizes divergences by parallel traversal of [B] and [B']
       and maps them to private blocks through the mapping table;
    4. derives adaptation suggestions and (optionally) auto-applies
       them to the partner's private process;
    5. regenerates the partner's public process and re-checks bilateral
       consistency against [τ_B(A')].

    When the re-check fails the engine retries with the remaining
    applicable suggestion subsets (the paper's "go back to the previous
    step and repeat it with a modified set of changes").

    Every pipeline step runs inside a trace span named after the
    corresponding Fig. 4 step ([view], [delta], [localize], [suggest],
    [apply], [re-check]); see DESIGN.md §7. *)

module Afsa = Chorev_afsa.Afsa
module Obs = Chorev_obs.Obs
module Metrics = Chorev_obs.Metrics
module Budget = Chorev_guard.Budget
module Degrade = Chorev_guard.Degrade
open Chorev_bpel

type direction = Additive | Subtractive

type analysis = {
  view_new : Afsa.t;  (** τ_partner(A') *)
  delta : Afsa.t;  (** added or removed sequences *)
  target_public : Afsa.t;  (** computed B' *)
  divergences : Localize.divergence list;
  suggestions : Suggest.t list;
  witness : Chorev_afsa.Label.t list option;
      (** shortest distinguishing witness trace of [delta], filled in
          when the pipeline ends inconsistent (a concrete message
          sequence the partner cannot follow, not just a verdict) *)
  degraded : Degrade.t list;
      (** budget trips during steps 1–4 and the fallbacks taken *)
}

type outcome = {
  direction : direction;
  analysis : analysis;
  adapted : Process.t option;  (** auto-applied private process *)
  adapted_public : Afsa.t option;
  consistent_after : bool;
  degraded : Degrade.t list;
      (** everything in [analysis.degraded] plus re-check/round trips *)
}

type config = Chorev_config.Config.t = {
  auto_apply : bool;
  max_rounds : int;
  obs : Chorev_obs.Sink.t option;
  jobs : int;
  op_budget : Budget.spec;
  round_budget : Budget.spec;
  cancel : Budget.Cancel.t option;
  cache : bool;
  repair : Chorev_config.Config.repair;
}

let default = Chorev_config.Config.default

let c_runs = Metrics.counter "propagate.runs"
let c_suggestions = Metrics.counter "propagate.suggestions.generated"
let c_applied = Metrics.counter "propagate.suggestions.applied"
let c_retries = Metrics.counter "propagate.retries"
let c_resynthesized = Metrics.counter "propagate.resynthesized"

let str s = Chorev_obs.Sink.Str s
let int i = Chorev_obs.Sink.Int i

let direction_name = function
  | Additive -> "additive"
  | Subtractive -> "subtractive"

(* One algebra step under its own budget, drawn from the round budget:
   the child's spend is charged back, so round fuel bounds the sum of
   all steps. [Budget.charge] re-raises at round level when the round
   itself trips — caught by the [`Round]-level run in {!run_body}. *)
let op_run ~round ~op_spec f =
  let b = Budget.sub round op_spec in
  let r = Budget.run b f in
  Budget.charge round (Budget.spent b);
  r

let empty_like alphabet =
  Afsa.make ~alphabet ~start:0 ~finals:[] ~edges:[] ~ann:[] ()

(** Compute delta, target, divergences and suggestions for partner
    [partner_private] (whose current public process and table are
    [public_b]/[table_b]) facing the originator's new public process
    [a']. The [direction] decides additive vs subtractive treatment. *)
let analyze ?(round = Budget.unlimited) ?(op_budget = Budget.spec_unlimited)
    ?(cache = false) ~direction ~a' ~partner_private ~public_b ~table_b () =
  let op_spec = op_budget in
  let me = Process.party partner_private in
  let tau ~observer a =
    if cache then Chorev_cache.Memo.tau ~observer a
    else Chorev_afsa.View.tau ~observer a
  in
  let diff a b =
    if cache then Chorev_cache.Memo.difference a b
    else Chorev_afsa.Ops.difference a b
  and union a b =
    if cache then Chorev_cache.Memo.union a b else Chorev_afsa.Ops.union a b
  in
  let view_new, deg_view =
    Obs.span "view" ~attrs:[ ("observer", str me) ] @@ fun () ->
    match op_run ~round ~op_spec (fun () -> tau ~observer:me a') with
    | `Done v -> (v, [])
    | `Exceeded info -> (
        (* degrade: the un-minimized view is language-equal, just larger *)
        match
          op_run ~round ~op_spec (fun () ->
              Chorev_afsa.View.tau_raw ~observer:me a')
        with
        | `Done v -> (v, [ Degrade.Skipped_minimization info ])
        | `Exceeded info2 ->
            ( Chorev_afsa.View.relabel ~observer:me a',
              [
                Degrade.Skipped_minimization info;
                Degrade.Aborted_step { step = "view"; info = info2 };
              ] ))
  in
  let (delta, target), deg_delta =
    Obs.span "delta" ~attrs:[ ("direction", str (direction_name direction)) ]
    @@ fun () ->
    match
      op_run ~round ~op_spec (fun () ->
          match direction with
          | Additive ->
              let d = diff view_new public_b in
              let t = Afsa.trim (union d public_b) in
              (d, t)
          | Subtractive ->
              let d = diff public_b view_new in
              let t = Afsa.trim (diff public_b d) in
              (d, t))
    with
    | `Done dt -> (dt, [])
    | `Exceeded info ->
        (* conservative: no computable delta — keep the partner as-is *)
        ( (empty_like (Afsa.alphabet public_b), public_b),
          [ Degrade.Aborted_step { step = "delta"; info } ] )
  in
  let (divergences, suggestions), deg_local =
    match
      op_run ~round ~op_spec (fun () ->
          let divergences =
            Obs.span "localize" @@ fun () ->
            Localize.diverge ~old_public:public_b ~new_public:target
              ~table:table_b
          in
          let suggestions =
            Obs.span "suggest"
              ~attrs:[ ("divergences", int (List.length divergences)) ]
            @@ fun () ->
            match direction with
            | Additive ->
                List.concat_map
                  (fun d ->
                    Suggest.additive partner_private ~old_public:public_b
                      ~target d)
                  divergences
            | Subtractive ->
                List.concat_map
                  (fun d -> Suggest.subtractive partner_private d)
                  divergences
          in
          (divergences, suggestions))
    with
    | `Done r -> (r, [])
    | `Exceeded info ->
        (([], []), [ Degrade.Aborted_step { step = "localize"; info } ])
  in
  Metrics.add c_suggestions (List.length suggestions);
  {
    view_new;
    delta;
    target_public = target;
    divergences;
    suggestions;
    witness = None;
    degraded = deg_view @ deg_delta @ deg_local;
  }

(* Power-set-free retry order: all suggestions, then each prefix, then
   each single suggestion. Suggestion lists are short. *)
let retry_sets suggestions =
  let applicable = List.filter (fun s -> not (Suggest.is_manual s)) suggestions in
  match applicable with
  | [] -> []
  | [ s ] -> [ [ s ] ]
  | all ->
      let singles = List.map (fun s -> [ s ]) all in
      (all :: singles) |> List.sort_uniq compare

let apply_all set p =
  List.fold_left
    (fun acc s -> Result.bind acc (Suggest.apply s))
    (Ok p) set

(* The pipeline body, once a sink (if any) is installed. *)
let run_body config ~direction ~a' ~partner_private =
  Metrics.incr c_runs;
  let me = Process.party partner_private in
  Obs.span "propagate"
    ~attrs:
      [ ("partner", str me); ("direction", str (direction_name direction)) ]
  @@ fun () ->
  let public_b, table_b =
    if config.cache then Chorev_cache.Memo.generate partner_private
    else Chorev_mapping.Public_gen.generate partner_private
  in
  let round = Budget.of_spec ?cancel:config.cancel config.round_budget in
  let op_spec = config.op_budget in
  let regen p =
    if config.cache then Chorev_cache.Memo.public p
    else Chorev_mapping.Public_gen.public p
  in
  let pipeline () =
    let analysis =
      analyze ~round ~op_budget:op_spec ~cache:config.cache ~direction ~a'
        ~partner_private ~public_b ~table_b ()
    in
    (* Re-check under an op budget: `Unknown is treated as inconsistent
       — a partner is never adapted on a verdict we could not afford. *)
    let recheck_deg = ref [] in
    let consistent_with p' =
      Obs.span "re-check" @@ fun () ->
      let b = Budget.sub round op_spec in
      if config.cache && Budget.is_unlimited b then
        (* no fuel/deadline in force: the memoized verdict is exact and
           nothing needs charging back *)
        Chorev_cache.Memo.consistent p' analysis.view_new
      else
      let r = Chorev_afsa.Consistency.decide ~budget:b p' analysis.view_new in
      Budget.charge round (Budget.spent b);
      match r with
      | `Consistent -> true
      | `Inconsistent -> false
      | `Unknown info ->
          recheck_deg :=
            Degrade.Unknown_verdict { step = "re-check"; info }
            :: !recheck_deg;
          false
    in
    let finish ~adapted ~adapted_public ~consistent_after =
      (* On failure, extract the shortest distinguishing witness from
         the delta so the report carries a concrete trace. The BFS does
         not tick budgets, so fuel accounting is unchanged. *)
      let analysis =
        if consistent_after then analysis
        else
          let witness =
            Obs.span "witness" @@ fun () ->
            match Suggest.witness analysis.delta with
            | None -> None
            | Some w ->
                (* structured copy of the trace for span consumers *)
                Obs.span "witness.trace"
                  ~attrs:[ ("trace", str (Suggest.witness_to_string w)) ]
                  (fun () -> ());
                Some w
          in
          { analysis with witness }
      in
      {
        direction;
        analysis;
        adapted;
        adapted_public;
        consistent_after;
        degraded = analysis.degraded @ List.rev !recheck_deg;
      }
    in
    if not config.auto_apply then
      finish ~adapted:None ~adapted_public:None
        ~consistent_after:(consistent_with public_b)
    else
      let attempt set =
        Metrics.incr c_retries;
        match apply_all set partner_private with
        | Error _ -> None
        | Ok p' ->
            let pub' = regen p' in
            if consistent_with pub' then Some (p', pub') else None
      in
      (* last resort: re-synthesize the whole private process from the
         computed target public process (Skeleton) — guaranteed
         consistent whenever the target is synthesizable, at the price of
         discarding the private structure (hence tried only after every
         targeted edit failed) *)
      let synthesized () =
        match
          Chorev_mapping.Skeleton.synthesize
            ~name:(Process.name partner_private ^ "-resynthesized")
            ~party:me analysis.target_public
        with
        | Error _ -> None
        | Ok p' ->
            let pub' = regen p' in
            if consistent_with pub' then begin
              Metrics.incr c_resynthesized;
              Some (p', pub')
            end
            else None
      in
      let result =
        Obs.span "apply"
          ~attrs:[ ("suggestions", int (List.length analysis.suggestions)) ]
        @@ fun () ->
        match List.find_map attempt (retry_sets analysis.suggestions) with
        | Some r -> Some r
        | None -> synthesized ()
      in
      match result with
      | Some (p', pub') ->
          Metrics.incr c_applied;
          finish ~adapted:(Some p') ~adapted_public:(Some pub')
            ~consistent_after:true
      | None ->
          finish ~adapted:None ~adapted_public:None
            ~consistent_after:(consistent_with public_b)
  in
  match Budget.run round pipeline with
  | `Done outcome -> outcome
  | `Exceeded info ->
      (* The whole round ran dry: report the partner untouched, with
         enough analysis for the caller to see what was attempted. *)
      let degraded = [ Degrade.Aborted_step { step = "round"; info } ] in
      {
        direction;
        analysis =
          {
            view_new = Chorev_afsa.View.relabel ~observer:me a';
            delta = empty_like (Afsa.alphabet public_b);
            target_public = public_b;
            divergences = [];
            suggestions = [];
            witness = None;
            degraded;
          };
        adapted = None;
        adapted_public = None;
        consistent_after = false;
        degraded;
      }

(** Run the full pipeline for one partner under [config]. *)
let run ?(config = default) ~direction ~a' ~partner_private () =
  match config.obs with
  | None -> run_body config ~direction ~a' ~partner_private
  | Some sink ->
      Obs.with_sink sink (fun () ->
          run_body config ~direction ~a' ~partner_private)

(** Decide the direction from the classification verdict: a purely
    subtractive change propagates subtractively, anything that adds
    sequences propagates additively (a change that both adds and
    removes is treated additively first; the re-check loop catches the
    rest). *)
let direction_of_framework (f : Chorev_change.Classify.framework) =
  if f.additive then Additive else Subtractive

let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>%s propagation: %d divergence(s), %d suggestion(s), adapted=%b, \
     consistent_after=%b%a%a@]"
    (direction_name o.direction)
    (List.length o.analysis.divergences)
    (List.length o.analysis.suggestions)
    (Option.is_some o.adapted)
    o.consistent_after
    (fun ppf -> function
      | None -> ()
      | Some w -> Fmt.pf ppf ",@ witness: %a" Suggest.pp_witness w)
    o.analysis.witness
    (fun ppf -> function
      | [] -> ()
      | ds -> Fmt.pf ppf ", degraded: %a" Degrade.pp_list ds)
    o.degraded
