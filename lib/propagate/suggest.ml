(** Adaptation suggestions for the partner's private process.

    "Due to the autonomy of the partners … an automatic adaptation of
    private processes is generally not desired. Nevertheless the system
    should adequately assist process engineers in accomplishing this
    task by suggesting respective adaptations" (Sec. 3.1). Each
    suggestion pairs a human-readable description with a concrete
    {!Chorev_change.Ops.t} that *can* be auto-applied (our tests and the
    re-check loop of {!Engine} do so); suggestions the heuristics cannot
    mechanize are emitted as [Manual]. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
module Sym = Chorev_afsa.Sym
open Chorev_bpel

type t =
  | Apply of { description : string; op : Chorev_change.Ops.t }
  | Manual of string

let describe = function
  | Apply { description; _ } -> description
  | Manual d -> d ^ " (manual)"

let pp ppf s = Fmt.string ppf (describe s)

(* ------------------------ witness traces -------------------------- *)

(** Shortest distinguishing witness: a shortest word of the difference
    automaton, i.e. a concrete message sequence the target public
    process requires (additive) or forbids (subtractive) that the
    partner's current public process does not. [None] when the delta is
    language-empty. The repair loop anchors its candidate edits on
    these labels; failure reports print them so the engineer sees a
    trace, not a bare verdict. *)
let witness (delta : Afsa.t) : Label.t list option =
  Chorev_afsa.Trace.shortest delta

let pp_witness ppf = function
  | [] -> Fmt.string ppf "<empty word>"
  | w ->
      Fmt.(list ~sep:(any " . ") (fun ppf l -> string ppf (Label.to_string l)))
        ppf w

let witness_to_string w = Fmt.str "%a" pp_witness w

(* --------------------------- helpers ------------------------------ *)

(* The private communication activity that puts [l] on the wire first
   (receive of an incoming message / invoke-reply of an outgoing one). *)
let comm_for_label (p : Process.t) (l : Label.t) =
  Activity.communications (Process.body p)
  |> List.find_opt (fun (_, kind, c) ->
         List.exists (Label.equal l) (Process.labels_of_comm p kind c))

(* Arm body for a newly handled message: if the delta automaton reaches
   a final state with no continuation after [l], the conversation ends
   there — terminate; otherwise continue with the surrounding flow. *)
let arm_body_from_delta delta (d : Localize.divergence) l =
  let after =
    Afsa.ISet.elements (Afsa.step delta d.state_new (Sym.L l))
  in
  let ends_here q = Afsa.is_final delta q && Afsa.out_edges delta q = [] in
  if after <> [] && List.for_all ends_here after then Activity.Terminate
  else Activity.Empty

(* Sequential insertion: the new message is not an alternative to an
   existing one but an additional step woven into the conversation —
   the old labels at the divergence state reappear in the target right
   after the new label. The private-process edit is then to insert a
   receive/invoke immediately before the activity handling the first
   old label. *)
let sequential_insertion (p : Process.t) ~old_public ~target
    (d : Localize.divergence) (l : Label.t) =
  let after_l =
    Afsa.ISet.elements (Afsa.step target d.state_new (Sym.L l))
  in
  let old_labels =
    Label.Set.remove l
      (Label.Set.of_list (Localize.out_labels old_public d.state_b))
  in
  let resumes q =
    Label.Set.exists (fun o -> not (Afsa.ISet.is_empty (Afsa.step target q (Sym.L o))))
      old_labels
  in
  if after_l = [] || not (List.for_all resumes after_l) then None
  else
    (* find the private activity handling one of the old labels and
       insert before it in its parent sequence *)
    Label.Set.elements old_labels
    |> List.find_map (fun o ->
           match comm_for_label p o with
           | Some (path, _, _) when path <> [] -> (
               let parent = List.filteri (fun i _ -> i < List.length path - 1) path in
               let index = List.nth path (List.length path - 1) in
               match Activity.find_at parent (Process.body p) with
               | Some (Activity.Sequence _) -> Some (parent, index)
               | _ -> None)
           | _ -> None)

(* Insert-after-predecessor: when the sequence-position rule cannot
   anchor (the resumption is handled by a pick trigger, e.g. a loop
   head), anchor on a communication *leading into* the divergence
   state instead: the new activity goes right after it. If that
   activity is itself a whole branch body (its parent is a pick,
   switch or while), it is wrapped into a sequence. Returns the change
   operation directly. *)
let insert_after_predecessor (p : Process.t) ~old_public
    (d : Localize.divergence) (act_to_insert : Activity.t) =
  let incoming =
    List.filter_map
      (fun (s, sym, t) ->
        match sym with
        | Chorev_afsa.Sym.L l when t = d.state_b && s <> t -> Some l
        | _ -> None)
      (Afsa.edges old_public)
    |> List.sort_uniq Label.compare
  in
  incoming
  |> List.find_map (fun o ->
         match comm_for_label p o with
         | Some ([], _, _) | None -> None
         | Some (path, _, _) -> (
             let parent =
               List.filteri (fun i _ -> i < List.length path - 1) path
             in
             let index = List.nth path (List.length path - 1) in
             match Activity.find_at parent (Process.body p) with
             | Some (Activity.Sequence _) ->
                 Some
                   (Chorev_change.Ops.Insert_activity
                      { path = parent; pos = index + 1; act = act_to_insert })
             | Some (Activity.Pick _ | Activity.Switch _ | Activity.While _)
               -> (
                 match Activity.find_at path (Process.body p) with
                 | Some existing ->
                     Some
                       (Chorev_change.Ops.Replace_activity
                          {
                            path;
                            by =
                              Activity.Sequence
                                ("then:" ^ Activity.kind act_to_insert,
                                 [ existing; act_to_insert ]);
                          })
                 | None -> None)
             | _ -> None))

(* The terminating alternative inside a loop body, used as the suffix
   when unrolling (Fig. 18: both paths finish with the terminate
   exchange). *)
let terminating_branch (body : Activity.t) =
  let ends_in_terminate act =
    let rec last = function
      | Activity.Terminate -> true
      | Activity.Sequence (_, l) -> (
          match List.rev l with [] -> false | x :: _ -> last x)
      | Activity.Scope (_, b) -> last b
      | _ -> false
    in
    last act
  in
  match body with
  | Activity.Switch { branches; _ } ->
      List.find_map
        (fun (b : Activity.branch) ->
          if ends_in_terminate b.body then Some b.body else None)
        branches
  | Activity.Pick { on_messages; _ } ->
      List.find_map
        (fun (_, b) -> if ends_in_terminate b then Some b else None)
        on_messages
  | _ -> None

(* ------------------------- additive rules ------------------------- *)

(** Suggestions for one additive divergence: for each label the partner
    process must newly support, emit every plausible edit, most likely
    first. The engine's re-check loop tries them until one restores
    consistency:

    1. sequential insertion — the old conversation resumes after the
       new message, so a receive/invoke is inserted at the matching
       sequence position;
    2. alternative — the new message replaces an existing receive
       exclusively: extend the pick / turn the receive into a pick (the
       paper's Fig. 14 edit), or add a switch branch for a send;
    3. insert after the predecessor communication (wrapping branch
       bodies into sequences when needed).

    When no rule fires a [Manual] note is produced. *)
let additive (p : Process.t) ~old_public ~target (d : Localize.divergence) :
    t list =
  List.concat_map
    (fun (l : Label.t) ->
      let me = Process.party p in
      let anchor_block =
        match d.anchors with e :: _ -> e.Chorev_mapping.Table.block | [] -> "?"
      in
      let new_act =
        if String.equal l.receiver me then
          Activity.Receive { Activity.partner = l.sender; op = l.msg }
        else Activity.Invoke { Activity.partner = l.receiver; op = l.msg }
      in
      let verb = if String.equal l.receiver me then "a receive for" else "an invoke of" in
      let sequential =
        match sequential_insertion p ~old_public ~target d l with
        | Some (parent, index) ->
            [
              Apply
                {
                  description =
                    Fmt.str
                      "insert %s %s before step %d of the sequence near \
                       block %s"
                      verb (Label.to_string l) index anchor_block;
                  op =
                    Chorev_change.Ops.Insert_activity
                      { path = parent; pos = index; act = new_act };
                };
            ]
        | None -> []
      in
      let alternative =
        if String.equal l.receiver me then
          let body = arm_body_from_delta target d l in
          let alternative_comm =
            List.find_map
              (fun (alt : Label.t) ->
                if Label.equal alt l then None
                else
                  match comm_for_label p alt with
                  | Some (path, `Receive, c) -> Some (path, c)
                  | _ -> None)
              (List.filter
                 (fun (x : Label.t) -> String.equal x.receiver me)
                 (Localize.out_labels old_public d.state_b))
          in
          match alternative_comm with
          | Some (path, _) -> (
              match Activity.find_at path (Process.body p) with
              | Some (Activity.Pick _) ->
                  [
                    Apply
                      {
                        description =
                          Fmt.str
                            "add onMessage arm for %s to the pick at block %s"
                            (Label.to_string l) anchor_block;
                        op =
                          Chorev_change.Ops.Add_pick_arm
                            {
                              path;
                              arm =
                                ( { Activity.partner = l.sender; op = l.msg },
                                  body );
                            };
                      };
                  ]
              | Some (Activity.Receive _) ->
                  [
                    Apply
                      {
                        description =
                          Fmt.str
                            "turn the receive at block %s into a pick also \
                             accepting %s"
                            anchor_block (Label.to_string l);
                        op =
                          Chorev_change.Ops.Receive_to_pick
                            {
                              path;
                              name = "choice:" ^ l.msg;
                              arms =
                                [
                                  ( { Activity.partner = l.sender; op = l.msg },
                                    body );
                                ];
                            };
                      };
                  ]
              | _ -> [])
          | None -> []
        else
          match
            List.find_map
              (fun (e : Chorev_mapping.Table.entry) ->
                match Activity.find_at e.path (Process.body p) with
                | Some (Activity.Switch _) -> Some e
                | _ -> None)
              d.anchors
          with
          | Some e ->
              [
                Apply
                  {
                    description =
                      Fmt.str "add a switch branch sending %s at block %s"
                        (Label.to_string l) e.block;
                    op =
                      Chorev_change.Ops.Add_switch_branch
                        {
                          path = e.path;
                          branch =
                            Activity.branch ~cond:("may send " ^ l.msg)
                              (Activity.invoke ~partner:l.receiver ~op:l.msg);
                        };
                  };
              ]
          | None -> []
      in
      let after_pred =
        match insert_after_predecessor p ~old_public d new_act with
        | Some op ->
            [
              Apply
                {
                  description =
                    Fmt.str
                      "insert %s %s right after the preceding communication \
                       near block %s"
                      verb (Label.to_string l) anchor_block;
                  op;
                };
            ]
        | None -> []
      in
      let candidates = sequential @ alternative @ after_pred in
      if candidates = [] then
        [
          Manual
            (Fmt.str "newly %s %s near block %s"
               (if String.equal l.receiver me then "receive" else "send")
               (Label.to_string l) anchor_block);
        ]
      else candidates)
    d.missing


(* ------------------------ subtractive rules ----------------------- *)

(** Suggestions for one subtractive divergence. The signature case is
    the paper's Sec. 5.3: a loop whose iterations the partner no longer
    supports — unroll it ("the loop has to be removed and additional
    activities have to be added to enumerate the two options"). *)
let subtractive (p : Process.t) (d : Localize.divergence) : t list =
  (* is one of the anchor blocks a while loop? *)
  let loop_anchor =
    List.find_opt
      (fun (e : Chorev_mapping.Table.entry) ->
        match Activity.find_at e.path (Process.body p) with
        | Some (Activity.While _) -> true
        | _ -> false)
      d.anchors
  in
  match loop_anchor with
  | Some e ->
      let suffix =
        match Activity.find_at e.path (Process.body p) with
        | Some (Activity.While { body; _ }) ->
            Option.value ~default:Activity.Empty (terminating_branch body)
        | _ -> Activity.Empty
      in
      [
        Apply
          {
            description =
              Fmt.str
                "unroll the loop at block %s: enumerate at most one iteration \
                 (removed: %a)"
                e.block
                (Fmt.list ~sep:(Fmt.any ", ") (fun ppf l ->
                     Fmt.string ppf (Label.to_string l)))
                d.removed;
            op =
              Chorev_change.Ops.Unroll_loop_once
                { path = e.path; switch_name = "iterate once?"; suffix };
          };
      ]
  | None ->
      List.map
        (fun (l : Label.t) ->
          Manual
            (Fmt.str "stop using %s near block %s" (Label.to_string l)
               (match d.anchors with e :: _ -> e.block | [] -> "?")))
        d.removed

(** Apply a suggestion (no-op for [Manual]). *)
let apply s (p : Process.t) : (Process.t, string) result =
  match s with
  | Apply { op; _ } -> Chorev_change.Ops.apply op p
  | Manual _ -> Ok p

let is_manual = function Manual _ -> true | Apply _ -> false
