(** Adaptation suggestions for the partner's private process. The
    paper: automatic adaptation of private processes is not desired —
    the system assists the process engineer. Each suggestion pairs a
    description with a change operation that *can* be auto-applied by
    the engine's re-check loop; non-mechanizable cases are [Manual]. *)

type t =
  | Apply of { description : string; op : Chorev_change.Ops.t }
  | Manual of string

val describe : t -> string
val pp : Format.formatter -> t -> unit
val is_manual : t -> bool

val witness : Chorev_afsa.Afsa.t -> Chorev_afsa.Label.t list option
(** Shortest word of the difference automaton — a concrete message
    sequence distinguishing the target public process from the
    partner's current one ([None] when the delta is language-empty).
    Surfaced in failure reports and reused as the anchor set of the
    repair loop's amendment search. *)

val pp_witness : Format.formatter -> Chorev_afsa.Label.t list -> unit
(** [a->b:m . c->d:n] rendering; the empty word prints
    [<empty word>]. *)

val witness_to_string : Chorev_afsa.Label.t list -> string

val additive :
  Chorev_bpel.Process.t ->
  old_public:Chorev_afsa.Afsa.t ->
  target:Chorev_afsa.Afsa.t ->
  Localize.divergence ->
  t list
(** Candidate edits for newly required messages, most likely first:
    sequential insertion, alternative (pick extension / receive→pick,
    the Fig. 14 edit; switch branch for sends), insertion after the
    predecessor communication. *)

val subtractive :
  Chorev_bpel.Process.t -> Localize.divergence -> t list
(** The signature case is the paper's Sec. 5.3: unroll the loop whose
    iterations the partner no longer supports (Fig. 18). *)

val apply :
  t -> Chorev_bpel.Process.t -> (Chorev_bpel.Process.t, string) result
(** No-op for [Manual]. *)
