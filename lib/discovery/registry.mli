(** Process-annotated service discovery (Sec. 6, after the IPSI-PF
    matchmaking engine): a registry of advertised public processes
    queried by bilateral consistency — the paper's improved-precision
    alternative to keyword UDDI lookup.

    The registry is also the identity service of the serving layer:
    every advertised public process is interned (structurally equal
    publics share one physical aFSA) and keyed by its structural
    fingerprint, entries carry a {e stable id} and a {e version}, and
    {!find_by_structure} is a hash lookup — no automata algebra — so a
    tenant store holding thousands of choreographies can dedup and
    re-advertise on every evolution at O(1) cost. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label

type entry = {
  id : string;
      (** stable identifier, minted at the first registration of
          [name] and kept across re-registrations (version bumps) and
          even across [remove]/re-register cycles within one registry *)
  name : string;
  party : string;
  version : int;  (** bumped on every structural re-registration *)
  public : Afsa.t;
  description : string;
  fp : string;  (** structural fingerprint of [public] (interned) *)
}

type t

val create : unit -> t

val register :
  t -> name:string -> party:string -> ?description:string -> Afsa.t -> entry
(** The versioned entry point. A new [name] mints a fresh stable id and
    registers version 1; re-registering an existing [name] with a
    structurally different public replaces the advertised process and
    returns the same id with the version bumped; re-registering the
    {e same} structure is idempotent (the current entry is returned
    unchanged — no version bump). The advertised automaton is interned,
    so structurally equal publics share one physical aFSA across the
    whole registry. *)

val advertise :
  t -> name:string -> party:string -> ?description:string -> Afsa.t -> unit
(** {!register} restricted to first registrations: raises
    [Invalid_argument] on duplicate names (the strict UDDI-style
    publish used by the discovery scenario and tests). *)

val advertise_process :
  t -> name:string -> ?description:string -> Chorev_bpel.Process.t -> unit
(** Derives and stores only the public process — the private
    implementation never enters the registry. *)

val remove : t -> string -> unit
(** Remove [name]'s entry. The name's stable id and last version are
    retained: a later {!register} of the same name resumes its version
    sequence under the same id. *)

val size : t -> int

val entries : t -> entry list
(** All current entries, in first-registration order (re-registration
    keeps an entry's position). *)

val find_by_name : t -> string -> entry option

val fingerprint : entry -> string
(** The key an entry is stored under: the structural fingerprint of its
    (interned) public process. *)

val find_by_structure : t -> Afsa.t -> entry list
(** All services whose advertised public process is structurally equal
    to the given automaton, in first-registration order. "Structurally
    equal" is exactly [Chorev_afsa.Fingerprint]'s notion (same states,
    transitions and annotations up to the canonical serialization —
    the equivalence [structurally_equal] decides), looked up in the
    fingerprint index: O(1) plus the digest of the probe automaton
    (itself cached on the automaton), never an automata-algebra
    operation. The serving layer's tenant store keys on this to dedup
    identical publics across tenants. *)

val mem_structure : t -> Afsa.t -> bool

type match_result = {
  entry : entry;
  conversations : int;
      (** distinct deadlock-free conversations up to the ranking bound *)
  shortest : Label.t list option;
}

val query_keyword : t -> requester:Afsa.t -> entry list
(** The classical-UDDI baseline: services sharing an operation name. *)

val query :
  ?horizon:int -> t -> party:string -> requester:Afsa.t ->
  match_result list
(** Bilaterally consistent services (on the requester-party views),
    ranked by conversation richness, descending. *)

val precision :
  t -> party:string -> requester:Afsa.t -> string list * string list
(** (consistent names, keyword names) — the former is a subset. *)

val pp_match : Format.formatter -> match_result -> unit
