(** Process-annotated service discovery (Sec. 6, after the IPSI-PF
    matchmaking engine): a registry of advertised public processes
    queried by bilateral consistency — the paper's improved-precision
    alternative to keyword UDDI lookup. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label

type entry = {
  name : string;
  party : string;
  public : Afsa.t;
  description : string;
  fp : string;  (** structural fingerprint of [public] (interned) *)
}

type t

val create : unit -> t

val advertise :
  t -> name:string -> party:string -> ?description:string -> Afsa.t -> unit
(** Raises [Invalid_argument] on duplicate names. *)

val advertise_process :
  t -> name:string -> ?description:string -> Chorev_bpel.Process.t -> unit
(** Derives and stores only the public process — the private
    implementation never enters the registry. *)

val remove : t -> string -> unit
val size : t -> int
val entries : t -> entry list

val fingerprint : entry -> string
(** The key an entry is stored under: the structural fingerprint of its
    (interned) public process. *)

val find_by_structure : t -> Afsa.t -> entry list
(** All services whose advertised public process is structurally equal
    to the given automaton — an O(1)-per-entry fingerprint comparison,
    no automata algebra. *)

val mem_structure : t -> Afsa.t -> bool

type match_result = {
  entry : entry;
  conversations : int;
      (** distinct deadlock-free conversations up to the ranking bound *)
  shortest : Label.t list option;
}

val query_keyword : t -> requester:Afsa.t -> entry list
(** The classical-UDDI baseline: services sharing an operation name. *)

val query :
  ?horizon:int -> t -> party:string -> requester:Afsa.t ->
  match_result list
(** Bilaterally consistent services (on the requester-party views),
    ranked by conversation richness, descending. *)

val precision :
  t -> party:string -> requester:Afsa.t -> string list * string list
(** (consistent names, keyword names) — the former is a subset. *)

val pp_match : Format.formatter -> match_result -> unit
