(** Process-annotated service discovery.

    Sec. 6 of the paper: "The extension of classical UDDI proposed in
    this context uses BPEL specifications of public processes and
    bilateral consistency to improve the precision of service discovery
    results" (after Wombacher et al., ICWS 2004 / CEC 2004 — the
    IPSI-PF matchmaking engine). This module is that building block: a
    registry of advertised public processes, queried with a requester's
    public process; a service matches iff it is bilaterally consistent
    with the request, i.e. the two can interact without deadlock.

    Matches are ranked by conversation richness: how many distinct
    deadlock-free conversations (up to a bounded length) the pair
    supports — a keyword-style UDDI lookup would return every service
    sharing an operation name; consistency filtering is what the paper
    calls improved precision.

    Storage is hash-indexed both ways (by name and by structural
    fingerprint) so the serving layer can register/re-register
    thousands of tenant publics without list scans; see registry.mli
    for the id/version contract. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label

type entry = {
  id : string;
  name : string;
  party : string;
  version : int;
  public : Afsa.t;
  description : string;
  fp : string;  (** structural fingerprint of [public] (interned) *)
}

(* [ids] outlives entries: a removed name keeps its stable id, its
   first-registration slot (which orders [entries]) and its last
   version, so re-registration resumes the sequence. [by_fp] maps a
   fingerprint to the names advertising it (several services may
   advertise structurally identical publics). *)
type t = {
  mutable minted : int;
  by_name : (string, entry) Hashtbl.t;
  by_fp : (string, string list) Hashtbl.t;
  ids : (string, string * int * int) Hashtbl.t;
      (** name -> (stable id, slot, last version) *)
}

let create () =
  {
    minted = 0;
    by_name = Hashtbl.create 64;
    by_fp = Hashtbl.create 64;
    ids = Hashtbl.create 64;
  }

let fingerprint e = e.fp

let fp_add t fp name =
  let names = Option.value ~default:[] (Hashtbl.find_opt t.by_fp fp) in
  if not (List.mem name names) then Hashtbl.replace t.by_fp fp (name :: names)

let fp_remove t fp name =
  match Hashtbl.find_opt t.by_fp fp with
  | None -> ()
  | Some names -> (
      match List.filter (fun n -> not (String.equal n name)) names with
      | [] -> Hashtbl.remove t.by_fp fp
      | names -> Hashtbl.replace t.by_fp fp names)

let slot_of t name =
  match Hashtbl.find_opt t.ids name with
  | Some (_, slot, _) -> slot
  | None -> max_int

let register t ~name ~party ?(description = "") public =
  (* Intern the advertised automaton: structurally equal publics share
     one physical aFSA across the registry, and the entry carries the
     fingerprint they are keyed by. *)
  let public = Chorev_cache.Intern.canonical public in
  let fp = Chorev_afsa.Fingerprint.digest public in
  match Hashtbl.find_opt t.by_name name with
  | Some e when String.equal e.fp fp ->
      (* idempotent re-registration: same structure, no version bump *)
      e
  | existing ->
      let id, slot, last_version =
        match Hashtbl.find_opt t.ids name with
        | Some v -> v
        | None ->
            let slot = t.minted in
            t.minted <- t.minted + 1;
            (Printf.sprintf "svc-%06d" slot, slot, 0)
      in
      let e =
        { id; name; party; version = last_version + 1; public; description; fp }
      in
      (match existing with Some old -> fp_remove t old.fp name | None -> ());
      Hashtbl.replace t.by_name name e;
      Hashtbl.replace t.ids name (id, slot, e.version);
      fp_add t fp name;
      e

let advertise t ~name ~party ?description public =
  if Hashtbl.mem t.by_name name then
    invalid_arg ("Discovery.advertise: duplicate service name " ^ name);
  ignore (register t ~name ~party ?description public)

(** Advertise a private process: its public process is derived — the
    private implementation never enters the registry (the paper's
    privacy requirement). *)
let advertise_process t ~name ?description (p : Chorev_bpel.Process.t) =
  advertise t ~name ~party:(Chorev_bpel.Process.party p) ?description
    (Chorev_cache.Memo.public p)

let remove t name =
  match Hashtbl.find_opt t.by_name name with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.by_name name;
      fp_remove t e.fp name

let size t = Hashtbl.length t.by_name

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.by_name []
  |> List.sort (fun a b -> compare (slot_of t a.name) (slot_of t b.name))

let find_by_name t name = Hashtbl.find_opt t.by_name name

(** All services advertising a public process structurally equal to
    [public] — a fingerprint-index lookup, no automata algebra. *)
let find_by_structure t public =
  let fp = Chorev_afsa.Fingerprint.digest public in
  Option.value ~default:[] (Hashtbl.find_opt t.by_fp fp)
  |> List.filter_map (Hashtbl.find_opt t.by_name)
  |> List.sort (fun a b -> compare (slot_of t a.name) (slot_of t b.name))

let mem_structure t public =
  Hashtbl.mem t.by_fp (Chorev_afsa.Fingerprint.digest public)

type match_result = {
  entry : entry;
  conversations : int;
      (** distinct deadlock-free conversations up to the ranking bound *)
  shortest : Label.t list option;  (** a shortest successful conversation *)
}

(* Keyword-level match: do the alphabets share any operation name? This
   is the classical-UDDI baseline the paper contrasts with. *)
let keyword_match requester entry =
  let ops a =
    List.map (fun (l : Label.t) -> l.msg) (Afsa.alphabet a)
    |> List.sort_uniq String.compare
  in
  List.exists (fun m -> List.mem m (ops entry.public)) (ops requester)

(** Baseline: services sharing at least one operation name with the
    requester (no behavioral check). *)
let query_keyword t ~requester =
  List.filter (keyword_match requester) (entries t)

(** Precise matchmaking: bilaterally-consistent services only, ranked
    by the number of distinct successful conversations of length ≤
    [horizon] (default 8), descending; ties by name. [party] is the
    requester's own party name: following Sec. 3.4 of the paper, each
    advertised public process is reduced to its bilateral view for
    that party before the consistency check. *)
let query ?(horizon = 8) t ~party ~requester =
  entries t
  |> List.filter_map (fun entry ->
         let service_view = Chorev_cache.Memo.tau ~observer:party entry.public in
         let i = Chorev_afsa.Ops.intersect requester service_view in
         if Chorev_afsa.Emptiness.is_nonempty i then
           let conversations =
             (* bounded count of annotated-accepted words *)
             Chorev_afsa.Trace.enumerate ~limit:500 ~max_len:horizon i
             |> List.filter (Chorev_afsa.Trace.accepts_annotated i)
             |> List.length
           in
           Some
             {
               entry;
               conversations;
               shortest = Chorev_afsa.Emptiness.witness i;
             }
         else None)
  |> List.sort (fun a b ->
         match compare b.conversations a.conversations with
         | 0 -> String.compare a.entry.name b.entry.name
         | c -> c)

(** Precision of the consistency filter over the keyword baseline for a
    given requester: (consistent matches, keyword matches). The paper's
    point is the first is a subset of the second. *)
let precision t ~party ~requester =
  let precise = query t ~party ~requester |> List.map (fun m -> m.entry.name) in
  let keyword = query_keyword t ~requester |> List.map (fun e -> e.name) in
  (precise, keyword)

let pp_match ppf m =
  Fmt.pf ppf "%s (%d conversations%a)" m.entry.name m.conversations
    (Fmt.option (fun ppf w ->
         Fmt.pf ppf "; e.g. %a"
           (Fmt.list ~sep:(Fmt.any " → ") (fun ppf l ->
                Fmt.string ppf (Label.to_string l)))
           w))
    m.shortest
