(** Batched instance migration at scale (DESIGN.md §13).

    Pushes every live instance of a {!Chorev_migration.Versions} store
    through a schema change in fixed-size batches: compliance verdicts
    fan out over the domain pool under per-verdict budgets, distinct
    traces are classified once through a fingerprint-keyed LRU, and a
    batch that exceeds its budget is {e deferred} — left entirely in
    place — rather than half-migrated. The whole run is deterministic:
    the same plan yields byte-identical reports at any pool size, and
    a journaled run killed between batches resumes to the same bytes. *)

module Afsa = Chorev_afsa.Afsa
module Instance = Chorev_migration.Instance
module Versions = Chorev_migration.Versions
module Compliance = Chorev_migration.Compliance
module Pool = Chorev_parallel.Pool

(** {1 Options and reports} *)

type options = {
  batch_size : int;
  batch_fuel : int option;
      (** fuel bound minted per verdict task; also the cap on a batch's
          summed fresh-verdict spend. Tripping either defers the batch.
          [None] = unbudgeted, nothing defers. *)
  memo_capacity : int;  (** verdict LRU capacity (clamped to >= 1) *)
  pool : Pool.t option;  (** [None] = the process-default pool *)
}

val default_options : options
(** batch 1024, no fuel bound, memo 65536, default pool. *)

type batch = {
  index : int;
  size : int;
  migrated : int;
  finishing : int;
  stuck : int;
  fresh : int;  (** distinct verdicts computed by this batch *)
  hits : int;  (** memo hits during the lookup pass *)
  fuel : int;  (** fuel spent on this batch's fresh verdicts *)
  deferred : bool;
}

type report = {
  to_version : int;
  total : int;
  batch_size : int;
  batches : batch list;  (** ascending by index *)
  by_version : (int * int) list;  (** final live counts, newest first *)
  digest : string;  (** over the final instance→version assignment *)
}

val totals : report -> int * int * int * int * int * int
(** (migrated, finishing, stuck, fresh, hits, fuel) summed over
    non-deferred and deferred batches alike. *)

val deferred_batches : report -> batch list

val pp_report : Format.formatter -> report -> unit
(** Stable ASCII rendering — no wall-clock, no pool size; the
    byte-identity anchor for pool-invariance and resume tests. *)

val final_digest : Versions.t -> string
(** Hex digest over every live instance's (version, id, trace) in
    admission order. *)

(** {1 In-memory runs} *)

val run : ?options:options -> Versions.t -> Afsa.t -> report
(** [run vs target] opens [target] as a new version of [vs] and
    migrates every instance that complies with it; non-compliant
    instances stay where they are ({!Compliance.Finish_on_old} /
    {!Compliance.Stuck}), and deferred batches stay whole on their old
    versions. Mutates [vs]. *)

(** {1 Plans} *)

type plan = {
  publics : Afsa.t list;  (** version history, oldest first (v1..vk) *)
  target : Afsa.t;
  pops : Population.spec list;
  batch_size : int;
  batch_fuel : int option;
  memo_capacity : int;
}

val build_plan : plan -> Versions.t
(** Rebuild the populated version store a plan describes — pure in the
    plan, which is what lets a journal persist specs instead of traces.
    @raise Invalid_argument on an empty history or a bad spec. *)

val options_of_plan : ?pool:Pool.t -> plan -> options
val plan_digest : plan -> string

(** {1 Journaled runs}

    Layout of a migration journal directory:

    {v
    DIR/
      migrate-plan.json       -- the plan (also the dispatch marker)
      public-001.afsa ...     -- serialized version history
      target.afsa
      journal.jsonl           -- Wal: start, one record per batch, done
    v} *)

exception Simulated_crash of int
(** Raised by the [crash_after] hook after that many batches have been
    committed — the kill-and-resume test hook (the batch record is
    durable before the raise). *)

type journaled = { report : report; replayed : int }

val is_journal : string -> bool
(** Does [dir] hold a migration plan? (How [chorev resume] tells a
    migration journal from an evolution journal.) *)

val write_plan : dir:string -> plan -> unit
val read_plan : dir:string -> (plan, string) result

val run_journaled :
  ?pool:Pool.t -> ?crash_after:int -> dir:string -> plan -> (report, string) result
(** Write the plan, run every batch appending one durable record per
    batch, seal with a done record. [Error] if [dir] already holds a
    journal. [crash_after k] raises {!Simulated_crash} after batch [k]
    (1-based) is committed. *)

val resume : ?pool:Pool.t -> dir:string -> unit -> (journaled, string) result
(** Replay the committed batches against the rebuilt plan state —
    verifying the journaled verdict keys and counters match what the
    plan dictates — then run the rest live. [replayed] is the number of
    batches taken from the journal. A sealed journal replays fully and
    verifies the final digest. The report is byte-identical to an
    uninterrupted run's. *)
