(** Seeded instance populations over a {!Chorev_migration.Versions}
    history: the simulated "running instances" the batched migrator
    pushes through a schema change. A spec is tiny and fully
    deterministic — (version, count, seed, max_len, prefix) regenerate
    the exact same instances in the exact same admission order — which
    is what lets the migration journal persist the {e spec} instead of
    serializing a million traces. *)

module Instance = Chorev_migration.Instance
module Versions = Chorev_migration.Versions

type spec = {
  version : int;  (** live version the instances start on *)
  count : int;
  seed : int;  (** instance [k] samples with [seed + k] *)
  max_len : int;
  prefix : string;  (** ids are [prefix ^ "%06d"] *)
}

let id spec k = Printf.sprintf "%s%06d" spec.prefix k

let populate vs spec =
  match Versions.find_version vs spec.version with
  | None ->
      invalid_arg
        (Printf.sprintf "Population.populate: no live version %d" spec.version)
  | Some v ->
      let sampler = Instance.Sampler.create (Versions.version_public v) in
      for k = 0 to spec.count - 1 do
        Versions.start_on vs spec.version
          (Instance.Sampler.sample sampler ~id:(id spec k) ~seed:(spec.seed + k)
             ~max_len:spec.max_len)
      done
