(** Seeded, fully deterministic instance populations: a {!spec}
    regenerates the same instances in the same admission order every
    time, so journals persist specs instead of traces. *)

module Versions = Chorev_migration.Versions

type spec = {
  version : int;  (** live version the instances start on *)
  count : int;
  seed : int;  (** instance [k] samples with [seed + k] *)
  max_len : int;
  prefix : string;  (** ids are [prefix ^ "%06d"] *)
}

val id : spec -> int -> string
(** The id of the [k]-th instance of the spec. *)

val populate : Versions.t -> spec -> unit
(** Sample [count] instances onto the spec's version.
    @raise Invalid_argument when the version is not live. *)
