(** The batched instance migrator (Sec. 8 at production scale): push
    100k–1M running instances through a schema change in fixed-size
    batches fanned over the domain pool, under per-batch budgets with
    explicit degrade, with verdict memoization and a journal-backed
    checkpoint/resume discipline.

    Determinism is the organizing constraint, exactly as in the rest of
    the system:

    - {b Verdicts} come from sealed {!Compliance.ctx} values shared by
      every domain; each verdict costs [1 + messages replayed] fuel,
      charged to a budget minted {e inside} the pool task, so fuel is
      identical at every pool size.
    - {b Memoization}: a verdict depends only on (source public, target
      public, trace), so distinct traces are classified once per run
      and the common-prefix bulk of a population collapses into LRU
      hits. All memo traffic happens on the coordinator in slice order
      — the table's content {e and recency} at every batch boundary are
      deterministic, even under eviction.
    - {b Degrade, never half-migrate}: a batch whose fresh verdicts
      trip or collectively exceed the batch budget is {e deferred} — it
      contributes no memo entries and moves no instances. Every
      non-deferred batch is applied atomically between two checkpoint
      records.
    - {b Checkpoint/resume}: the journal stores the population {e plan}
      (specs + serialized publics) plus one record per batch carrying
      its fresh verdicts. Replay re-runs the exact coordinator
      sequence with computed verdicts substituted from the record, so
      a killed run resumed later produces a byte-identical report. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
module Serialize = Chorev_afsa.Serialize
module Fingerprint = Chorev_afsa.Fingerprint
module Instance = Chorev_migration.Instance
module Versions = Chorev_migration.Versions
module Compliance = Chorev_migration.Compliance
module Budget = Chorev_guard.Budget
module Pool = Chorev_parallel.Pool
module Lru = Chorev_cache.Lru
module Json = Chorev_journal.Journal.Json
module Wal = Chorev_journal.Journal.Wal
module Dir = Chorev_journal.Dir

(* ------------------------------------------------------------------ *)
(* Options, batches, reports                                           *)
(* ------------------------------------------------------------------ *)

type options = {
  batch_size : int;
  batch_fuel : int option;
      (** fuel bound: minted per verdict task, and the cap on a batch's
          summed fresh-verdict spend — exceeding either defers the
          batch. [None] = unbudgeted, nothing defers. *)
  memo_capacity : int;  (** verdict LRU capacity *)
  pool : Pool.t option;  (** [None] = the process-default pool *)
}

let default_options =
  { batch_size = 1024; batch_fuel = None; memo_capacity = 65536; pool = None }

type batch = {
  index : int;
  size : int;
  migrated : int;
  finishing : int;
  stuck : int;
  fresh : int;  (** distinct verdicts computed by this batch *)
  hits : int;  (** memo hits during the lookup pass *)
  fuel : int;  (** fuel spent on this batch's fresh verdicts *)
  deferred : bool;
}

type report = {
  to_version : int;
  total : int;
  batch_size : int;
  batches : batch list;  (** ascending by index *)
  by_version : (int * int) list;  (** final live counts, newest first *)
  digest : string;  (** over the final instance→version assignment *)
}

let totals r =
  List.fold_left
    (fun (m, f, s, fr, h, fu) b ->
      (m + b.migrated, f + b.finishing, s + b.stuck, fr + b.fresh, h + b.hits,
       fu + b.fuel))
    (0, 0, 0, 0, 0, 0) r.batches

let deferred_batches r = List.filter (fun b -> b.deferred) r.batches

let pp_report ppf r =
  let migrated, finishing, stuck, fresh, hits, fuel = totals r in
  Fmt.pf ppf "@[<v>migration to v%d: %d instances in %d batches of <=%d@,"
    r.to_version r.total (List.length r.batches) r.batch_size;
  Fmt.pf ppf "  migrated %d  finishing-on-old %d  stuck %d@," migrated
    finishing stuck;
  Fmt.pf ppf "  verdicts: %d computed, %d memo hits, fuel %d@," fresh hits fuel;
  (match deferred_batches r with
  | [] -> ()
  | ds ->
      Fmt.pf ppf "  deferred batches: %a (%d instances left in place)@,"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf b -> Fmt.int ppf b.index))
        ds
        (List.fold_left (fun a b -> a + b.size) 0 ds));
  Fmt.pf ppf "  by version:%a@,"
    (Fmt.list ~sep:Fmt.nop (fun ppf (n, c) -> Fmt.pf ppf " v%d=%d" n c))
    r.by_version;
  Fmt.pf ppf "  digest %s@]" r.digest

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

type item = { id : string; key : string; from_version : int }

(* A verdict depends only on (source public, target public, trace) —
   the memo key digests exactly that. *)
let trace_key ~old_fp ~new_fp (inst : Instance.t) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf old_fp;
  Buffer.add_char buf '\000';
  Buffer.add_string buf new_fp;
  Buffer.add_char buf '\000';
  List.iter
    (fun l ->
      Buffer.add_string buf (Label.to_string l);
      Buffer.add_char buf '\001')
    inst.Instance.trace;
  Digest.to_hex (Digest.string (Buffer.contents buf))

type engine = {
  vs : Versions.t;
  to_version : int;
  new_ctx : Compliance.ctx;
  old_ctxs : (int * Compliance.ctx) list;  (** per source version *)
  items : (item * Instance.t) array;  (** admission order *)
  memo : (string, Compliance.disposition * int) Lru.t;
  opts : options;
}

let prepare vs target (opts : options) =
  if opts.batch_size < 1 then invalid_arg "Migrate: batch_size < 1";
  let sources = Versions.counts vs in
  let fps =
    List.map
      (fun (n, _) ->
        let v = Option.get (Versions.find_version vs n) in
        (n, Fingerprint.hex (Versions.version_public v)))
      sources
  in
  let old_ctxs =
    List.map
      (fun (n, _) ->
        let v = Option.get (Versions.find_version vs n) in
        (n, Compliance.context (Versions.version_public v)))
      sources
  in
  let new_fp = Fingerprint.hex target in
  let items0 = Versions.in_admission_order vs in
  let to_version = Versions.add_version vs target in
  let new_ctx = Compliance.context target in
  let items =
    items0
    |> List.map (fun (vnum, (inst : Instance.t)) ->
           ( {
               id = inst.Instance.id;
               key = trace_key ~old_fp:(List.assoc vnum fps) ~new_fp inst;
               from_version = vnum;
             },
             inst ))
    |> Array.of_list
  in
  {
    vs;
    to_version;
    new_ctx;
    old_ctxs;
    items;
    memo = Lru.create ~capacity:(max 1 opts.memo_capacity);
    opts;
  }

let num_batches engine =
  let n = Array.length engine.items in
  if n = 0 then 0 else ((n - 1) / engine.opts.batch_size) + 1

let slice engine index =
  let lo = index * engine.opts.batch_size in
  let hi = min (Array.length engine.items) (lo + engine.opts.batch_size) in
  (lo, hi)

(* Pass 1 over a slice: one memo find per item in slice order (this is
   the only place recency moves, so the table state at every batch
   boundary is a pure function of the batch history), collecting the
   first occurrence of every missing key as the batch's fresh work. *)
let lookup_phase engine lo hi =
  let found = Array.make (hi - lo) None in
  let seen = Hashtbl.create 64 in
  let work = ref [] in
  for i = lo to hi - 1 do
    let item, inst = engine.items.(i) in
    match Lru.find engine.memo item.key with
    | Some v -> found.(i - lo) <- Some v
    | None ->
        if not (Hashtbl.mem seen item.key) then (
          Hashtbl.add seen item.key ();
          work := (item, inst) :: !work)
  done;
  (found, List.rev !work)

(* Fan the fresh work over the pool. Each task mints its own budget
   from the batch spec, so fuel attribution is independent of pool
   size and scheduling. *)
let compute_live engine work =
  let pool =
    match engine.opts.pool with Some p -> p | None -> Pool.default ()
  in
  Pool.map ~pool
    (fun ((item : item), inst) ->
      let old_ctx = List.assoc item.from_version engine.old_ctxs in
      (* [create], not [of_spec]: an unbounded spec must still count
         ticks so the report's fuel column is meaningful *)
      let b = Budget.create ?fuel:engine.opts.batch_fuel () in
      match
        Budget.run b (fun () ->
            Compliance.dispose_ctx ~old_ctx ~new_ctx:engine.new_ctx inst)
      with
      | `Done d -> (item.key, Ok (d, Budget.spent b))
      | `Exceeded info -> (item.key, Error info.Budget.spent))
    work

type batch_outcome = {
  b : batch;
  fresh_entries : (string * Compliance.disposition * int) list;
      (** (key, disposition, fuel) in work order; [] when deferred *)
}

(* Pass 2: commit the batch. Fresh entries go into the memo in work
   order, then every slice item is resolved — step-1 hits from the
   saved lookup, the rest through one more find (identical recency
   traffic live and on replay; a same-batch eviction falls back to the
   batch's own entry list). Migratable instances move; a deferred
   batch commits nothing. *)
let finish_batch engine ~index ~lo ~hi ~(found : (Compliance.disposition * int) option array)
    ~entries ~deferred ~fuel =
  let hits = Array.fold_left (fun a o -> if o = None then a else a + 1) 0 found in
  if deferred then
    {
      b =
        {
          index;
          size = hi - lo;
          migrated = 0;
          finishing = 0;
          stuck = 0;
          fresh = 0;
          hits;
          fuel;
          deferred = true;
        };
      fresh_entries = [];
    }
  else begin
    List.iter (fun (k, d, fu) -> Lru.add engine.memo k (d, fu)) entries;
    let local = Hashtbl.create (List.length entries) in
    List.iter (fun (k, d, _) -> Hashtbl.replace local k d) entries;
    let migrated = ref 0 and finishing = ref 0 and stuck = ref 0 in
    for i = lo to hi - 1 do
      let item, _ = engine.items.(i) in
      let disp =
        match found.(i - lo) with
        | Some (d, _) -> d
        | None -> (
            match Lru.find engine.memo item.key with
            | Some (d, _) -> d
            | None -> Hashtbl.find local item.key)
      in
      match disp with
      | Compliance.Migrate ->
          incr migrated;
          Versions.move_instance engine.vs ~id:item.id
            ~to_version:engine.to_version
      | Compliance.Finish_on_old -> incr finishing
      | Compliance.Stuck -> incr stuck
    done;
    {
      b =
        {
          index;
          size = hi - lo;
          migrated = !migrated;
          finishing = !finishing;
          stuck = !stuck;
          fresh = List.length entries;
          hits;
          fuel;
          deferred = false;
        };
      fresh_entries = entries;
    }
  end

let run_batch_live engine index =
  let lo, hi = slice engine index in
  let found, work = lookup_phase engine lo hi in
  let results = compute_live engine work in
  let fuel =
    List.fold_left
      (fun acc (_, r) -> acc + (match r with Ok (_, f) -> f | Error s -> s))
      0 results
  in
  let exceeded = List.exists (fun (_, r) -> Result.is_error r) results in
  let deferred =
    match engine.opts.batch_fuel with
    | None -> false
    | Some cap -> exceeded || fuel > cap
  in
  let entries =
    if deferred then []
    else
      List.map
        (fun (k, r) ->
          match r with Ok (d, f) -> (k, d, f) | Error _ -> assert false)
        results
  in
  finish_batch engine ~index ~lo ~hi ~found ~entries ~deferred ~fuel

let final_digest vs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (vnum, (i : Instance.t)) ->
      Buffer.add_string buf (string_of_int vnum);
      Buffer.add_char buf ':';
      Buffer.add_string buf i.Instance.id;
      Buffer.add_char buf ':';
      List.iter
        (fun l ->
          Buffer.add_string buf (Label.to_string l);
          Buffer.add_char buf ',')
        i.Instance.trace;
      Buffer.add_char buf '\n')
    (Versions.in_admission_order vs);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let mk_report engine rev_batches =
  {
    to_version = engine.to_version;
    total = Array.length engine.items;
    batch_size = engine.opts.batch_size;
    batches = List.rev rev_batches;
    by_version = Versions.counts engine.vs;
    digest = final_digest engine.vs;
  }

(** One in-memory batched migration of every live instance of [vs] to
    [target]. Mutates [vs] (opens the new version, moves migratable
    instances) and returns the report. *)
let run ?(options = default_options) vs target =
  let engine = prepare vs target options in
  let batches = ref [] in
  for index = 0 to num_batches engine - 1 do
    batches := (run_batch_live engine index).b :: !batches
  done;
  mk_report engine !batches

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

type plan = {
  publics : Afsa.t list;  (** version history, oldest first (v1..vk) *)
  target : Afsa.t;
  pops : Population.spec list;
  batch_size : int;
  batch_fuel : int option;
  memo_capacity : int;
}

let options_of_plan ?pool plan =
  {
    batch_size = plan.batch_size;
    batch_fuel = plan.batch_fuel;
    memo_capacity = plan.memo_capacity;
    pool;
  }

(** Rebuild the populated version store a plan describes — pure in the
    plan, so a resuming process reconstructs the exact pre-migration
    state without the journal storing a single trace. *)
let build_plan plan =
  match plan.publics with
  | [] -> invalid_arg "Migrate.build_plan: empty version history"
  | first :: rest ->
      let vs = Versions.create first in
      List.iter (fun p -> ignore (Versions.add_version vs p)) rest;
      List.iter (Population.populate vs) plan.pops;
      vs

let plan_digest plan =
  let buf = Buffer.create 4096 in
  List.iter
    (fun a ->
      Buffer.add_string buf (Serialize.to_string a);
      Buffer.add_char buf '\000')
    plan.publics;
  Buffer.add_string buf (Serialize.to_string plan.target);
  List.iter
    (fun (s : Population.spec) ->
      Buffer.add_string buf
        (Printf.sprintf "\000%d:%d:%d:%d:%s" s.version s.count s.seed s.max_len
           s.prefix))
    plan.pops;
  Buffer.add_string buf
    (Printf.sprintf "\000%d:%s:%d" plan.batch_size
       (match plan.batch_fuel with None -> "-" | Some f -> string_of_int f)
       plan.memo_capacity);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Journal layout                                                      *)
(* ------------------------------------------------------------------ *)

let plan_file dir = Filename.concat dir "migrate-plan.json"
let journal_path dir = Filename.concat dir "journal.jsonl"
let public_file dir k = Filename.concat dir (Printf.sprintf "public-%03d.afsa" k)
let target_file dir = Filename.concat dir "target.afsa"

let is_journal dir = Sys.file_exists (plan_file dir)

let spec_to_json (s : Population.spec) =
  Json.Obj
    [
      ("version", Json.Int s.version);
      ("count", Json.Int s.count);
      ("seed", Json.Int s.seed);
      ("max_len", Json.Int s.max_len);
      ("prefix", Json.Str s.prefix);
    ]

let spec_of_json j =
  let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  match (int "version", int "count", int "seed", int "max_len", str "prefix") with
  | Some version, Some count, Some seed, Some max_len, Some prefix ->
      Ok { Population.version; count; seed; max_len; prefix }
  | _ -> Error "population spec: missing field"

let write_plan ~dir plan =
  Dir.mkdir_p dir;
  List.iteri
    (fun i a -> Dir.write_atomic (public_file dir (i + 1)) (Serialize.to_string a))
    plan.publics;
  Dir.write_atomic (target_file dir) (Serialize.to_string plan.target);
  let j =
    Json.Obj
      [
        ("rec", Json.Str "migrate-plan");
        ("versions", Json.Int (List.length plan.publics));
        ("batch", Json.Int plan.batch_size);
        ( "batch_fuel",
          match plan.batch_fuel with None -> Json.Null | Some f -> Json.Int f );
        ("memo", Json.Int plan.memo_capacity);
        ("pops", Json.Arr (List.map spec_to_json plan.pops));
        ("digest", Json.Str (plan_digest plan));
      ]
  in
  Dir.write_atomic (plan_file dir) (Json.to_string j)

let read_plan ~dir =
  let ( let* ) = Result.bind in
  if not (Sys.file_exists (plan_file dir)) then
    Error (Printf.sprintf "no migration plan at %s" (plan_file dir))
  else
    let* j = Json.of_string (Dir.read_file (plan_file dir)) in
    let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
    let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
    match (str "rec", int "versions", int "batch", int "memo", Json.member "pops" j, str "digest") with
    | Some "migrate-plan", Some versions, Some batch, Some memo, Some (Json.Arr pops), Some digest ->
        let batch_fuel =
          match Json.member "batch_fuel" j with
          | Some (Json.Int f) -> Some f
          | _ -> None
        in
        let* pops =
          List.fold_left
            (fun acc p ->
              let* acc = acc in
              let* s = spec_of_json p in
              Ok (s :: acc))
            (Ok []) pops
        in
        let pops = List.rev pops in
        let load path =
          if Sys.file_exists path then Serialize.of_string (Dir.read_file path)
          else Error (Printf.sprintf "missing %s" path)
        in
        let* publics =
          List.fold_left
            (fun acc k ->
              let* acc = acc in
              let* a = load (public_file dir k) in
              Ok (a :: acc))
            (Ok [])
            (List.init versions (fun i -> i + 1))
        in
        let publics = List.rev publics in
        let* target = load (target_file dir) in
        let plan =
          {
            publics;
            target;
            pops;
            batch_size = batch;
            batch_fuel;
            memo_capacity = memo;
          }
        in
        if plan_digest plan <> digest then
          Error (Printf.sprintf "%s: plan digest mismatch" (plan_file dir))
        else Ok plan
    | _ -> Error (Printf.sprintf "%s: malformed plan" (plan_file dir))

(* ------------------------------------------------------------------ *)
(* Checkpoint records                                                  *)
(* ------------------------------------------------------------------ *)

type rec_t =
  | R_start of { digest : string; total : int; batches : int }
  | R_batch of {
      index : int;
      deferred : bool;
      fuel : int;
      migrated : int;
      finishing : int;
      stuck : int;
      hits : int;
      entries : (string * Compliance.disposition * int) list;
    }
  | R_done of { digest : string }

let disp_to_int = function
  | Compliance.Migrate -> 0
  | Compliance.Finish_on_old -> 1
  | Compliance.Stuck -> 2

let disp_of_int = function
  | 0 -> Ok Compliance.Migrate
  | 1 -> Ok Compliance.Finish_on_old
  | 2 -> Ok Compliance.Stuck
  | n -> Error (Printf.sprintf "batch: bad disposition %d" n)

let rec_to_json = function
  | R_start { digest; total; batches } ->
      Json.Obj
        [
          ("rec", Json.Str "start");
          ("digest", Json.Str digest);
          ("total", Json.Int total);
          ("batches", Json.Int batches);
        ]
  | R_batch { index; deferred; fuel; migrated; finishing; stuck; hits; entries }
    ->
      Json.Obj
        [
          ("rec", Json.Str "batch");
          ("index", Json.Int index);
          ("deferred", Json.Bool deferred);
          ("fuel", Json.Int fuel);
          ("migrated", Json.Int migrated);
          ("finishing", Json.Int finishing);
          ("stuck", Json.Int stuck);
          ("hits", Json.Int hits);
          ( "entries",
            Json.Arr
              (List.map
                 (fun (k, d, f) ->
                   Json.Arr [ Json.Str k; Json.Int (disp_to_int d); Json.Int f ])
                 entries) );
        ]
  | R_done { digest } ->
      Json.Obj [ ("rec", Json.Str "done"); ("digest", Json.Str digest) ]

let rec_of_json j =
  let ( let* ) = Result.bind in
  let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  match str "rec" with
  | Some "start" -> (
      match (str "digest", int "total", int "batches") with
      | Some digest, Some total, Some batches ->
          Ok (R_start { digest; total; batches })
      | _ -> Error "start: missing field")
  | Some "batch" -> (
      match
        ( int "index",
          Json.member "deferred" j,
          int "fuel",
          int "migrated",
          int "finishing",
          int "stuck",
          int "hits",
          Json.member "entries" j )
      with
      | Some index, Some (Json.Bool deferred), Some fuel, Some migrated,
        Some finishing, Some stuck, Some hits, Some (Json.Arr es) ->
          let* entries =
            List.fold_left
              (fun acc e ->
                let* acc = acc in
                match e with
                | Json.Arr [ Json.Str k; Json.Int d; Json.Int f ] ->
                    let* d = disp_of_int d in
                    Ok ((k, d, f) :: acc)
                | _ -> Error "batch: malformed entry")
              (Ok []) es
          in
          Ok
            (R_batch
               {
                 index;
                 deferred;
                 fuel;
                 migrated;
                 finishing;
                 stuck;
                 hits;
                 entries = List.rev entries;
               })
      | _ -> Error "batch: missing field")
  | Some "done" -> (
      match str "digest" with
      | Some digest -> Ok (R_done { digest })
      | _ -> Error "done: missing field")
  | _ -> Error "unknown record type"

let rec_of_outcome index (out : batch_outcome) =
  R_batch
    {
      index;
      deferred = out.b.deferred;
      fuel = out.b.fuel;
      migrated = out.b.migrated;
      finishing = out.b.finishing;
      stuck = out.b.stuck;
      hits = out.b.hits;
      entries = out.fresh_entries;
    }

(* Replay one journaled batch: identical coordinator sequence with the
   recorded verdicts substituted for the pool fan-out. The recorded
   fresh keys must match the keys this state would compute — anything
   else means the journal does not belong to this plan. *)
let replay_batch engine index r =
  match r with
  | R_batch rb when rb.index = index ->
      let lo, hi = slice engine index in
      let found, work = lookup_phase engine lo hi in
      if rb.deferred then
        Ok (finish_batch engine ~index ~lo ~hi ~found ~entries:[] ~deferred:true
              ~fuel:rb.fuel)
      else
        let expected = List.map (fun ((it : item), _) -> it.key) work in
        let recorded = List.map (fun (k, _, _) -> k) rb.entries in
        if expected <> recorded then
          Error
            (Printf.sprintf
               "batch %d: journaled verdict keys do not match the plan" index)
        else
          let out =
            finish_batch engine ~index ~lo ~hi ~found ~entries:rb.entries
              ~deferred:false ~fuel:rb.fuel
          in
          if
            (out.b.migrated, out.b.finishing, out.b.stuck, out.b.hits)
            <> (rb.migrated, rb.finishing, rb.stuck, rb.hits)
          then
            Error
              (Printf.sprintf "batch %d: replayed counters diverge from journal"
                 index)
          else Ok out
  | R_batch rb ->
      Error (Printf.sprintf "expected batch %d, journal has %d" index rb.index)
  | _ -> Error (Printf.sprintf "expected batch %d, found another record" index)

(* ------------------------------------------------------------------ *)
(* Journaled run / resume                                              *)
(* ------------------------------------------------------------------ *)

exception Simulated_crash of int
(** Raised by the [crash_after] test hook after that many batches have
    been committed to the journal. *)

type journaled = { report : report; replayed : int }

let run_live engine w ~from_batch ~crash_after rev_batches =
  let batches = ref rev_batches in
  for index = from_batch to num_batches engine - 1 do
    let out = run_batch_live engine index in
    Wal.append w (rec_to_json (rec_of_outcome index out));
    batches := out.b :: !batches;
    match crash_after with
    | Some k when index + 1 = k -> raise (Simulated_crash k)
    | _ -> ()
  done;
  let report = mk_report engine !batches in
  Wal.append w (rec_to_json (R_done { digest = report.digest }));
  report

(** Run a plan under a journal directory. The directory must not
    already hold a migration journal. [crash_after k] raises
    {!Simulated_crash} after committing batch [k] (1-based) — the
    kill-and-resume test hook. *)
let run_journaled ?pool ?crash_after ~dir plan =
  if is_journal dir || Sys.file_exists (journal_path dir) then
    Error
      (Printf.sprintf "%s: migration journal already exists (resume instead)"
         dir)
  else begin
    write_plan ~dir plan;
    let vs = build_plan plan in
    let engine = prepare vs plan.target (options_of_plan ?pool plan) in
    let w = Wal.open_append ~path:(journal_path dir) in
    Fun.protect
      ~finally:(fun () -> Wal.close w)
      (fun () ->
        Wal.append w
          (rec_to_json
             (R_start
                {
                  digest = plan_digest plan;
                  total = Array.length engine.items;
                  batches = num_batches engine;
                }));
        Ok (run_live engine w ~from_batch:0 ~crash_after []))
  end

(** Resume (or verify) a journaled migration: replay the committed
    batches against the rebuilt plan state, then run the remaining
    ones. The final report is byte-identical to an uninterrupted
    run's. *)
let resume ?pool ~dir () =
  let ( let* ) = Result.bind in
  let* plan = read_plan ~dir in
  let* { Wal.records; torn = _; valid_bytes } =
    Wal.read ~path:(journal_path dir) ~decode:rec_of_json
  in
  let vs = build_plan plan in
  let engine = prepare vs plan.target (options_of_plan ?pool plan) in
  let expected_digest = plan_digest plan in
  let* start, rest =
    match records with
    | R_start { digest; total; batches = _ } :: rest ->
        Ok (Some (digest, total), rest)
    | [] -> Ok (None, [])
    | _ :: _ -> Error "journal does not begin with a start record"
  in
  let* () =
    match start with
    | None -> Ok ()
    | Some (digest, total) ->
        if digest <> expected_digest then
          Error "journal belongs to a different plan (start digest mismatch)"
        else if total <> Array.length engine.items then
          Error "journal belongs to a different plan (instance totals diverge)"
        else Ok ()
  in
  let rec replay acc index = function
    | [] -> Ok (acc, index, false)
    | [ R_done _ ] ->
        if index < num_batches engine then
          Error "journal sealed before every batch was committed"
        else Ok (acc, index, true)
    | R_done _ :: _ -> Error "records after the done record"
    | r :: rest ->
        let* out = replay_batch engine index r in
        replay (out.b :: acc) (index + 1) rest
  in
  let* rev_batches, replayed, sealed = replay [] 0 rest in
  if sealed then begin
    let report = mk_report engine rev_batches in
    let* () =
      match List.rev rest with
      | R_done { digest } :: _ when digest <> report.digest ->
          Error "sealed journal digest diverges from the replayed state"
      | _ -> Ok ()
    in
    Ok { report; replayed }
  end
  else begin
    let w =
      if start = None then Wal.open_append ~path:(journal_path dir)
      else Wal.reopen ~path:(journal_path dir) ~valid_bytes
    in
    Fun.protect
      ~finally:(fun () -> Wal.close w)
      (fun () ->
        if start = None then
          Wal.append w
            (rec_to_json
               (R_start
                  {
                    digest = expected_digest;
                    total = Array.length engine.items;
                    batches = num_batches engine;
                  }));
        let report =
          run_live engine w ~from_batch:replayed ~crash_after:None rev_batches
        in
        Ok { report; replayed })
  end
