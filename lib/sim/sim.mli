(** Seeded, deterministic discrete-event simulation of the
    decentralized evolution protocol (Sec. 6) over an unreliable
    asynchronous network: each party runs the
    {!Chorev_choreography.Node} state machine as an event-driven node
    over a transport with a {!Fault.profile}, hardened with epochs,
    idempotent redelivery, retransmission with exponential backoff +
    seeded jitter, and crash/restart with durable node state.

    Under {!Fault.none} the run reproduces
    {!Chorev_choreography.Protocol.run}'s verdict and message counts
    exactly; replaying any [(seed, profile)] reproduces the run and its
    JSON-lines trace byte-for-byte. *)

module Model = Chorev_choreography.Model

type stats = {
  ticks : int;  (** virtual time of the last effective event *)
  sent : int;  (** transmissions, including retries *)
  delivered : int;
  dropped : int;
  duplicated : int;
  deduplicated : int;
  retries : int;
  stale : int;  (** discarded for a superseded epoch *)
  crashes : int;
  announcements : int;
      (** first transmissions only — comparable with [Protocol.stats]
          under the zero-fault profile *)
  acks : int;
  nacks : int;
}

type result = {
  agreed : bool;
  converged : bool;  (** quiescent within [max_ticks] *)
  stats : stats;
  final : Model.t;
  trace : string;  (** deterministic JSON-lines log; [""] if disabled *)
}

val run :
  ?adapt:bool ->
  ?engine_config:Chorev_propagate.Engine.config ->
  ?profile:Fault.profile ->
  ?max_ticks:int ->
  ?trace:bool ->
  seed:int ->
  Model.t ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  result
(** Simulate a change of [owner]'s private process to [changed].
    Defaults: [adapt:true], [profile:Fault.none], [max_ticks:10_000],
    [trace:true]. [engine_config] (default
    {!Chorev_propagate.Engine.default}, unlimited) bounds each node's
    local algebra work — see {!Chorev_choreography.Node.handle}. Only
    fuel budgets keep runs deterministic; wall-clock deadlines do not. *)

val pp_stats : Format.formatter -> stats -> unit
