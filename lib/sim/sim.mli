(** Seeded, deterministic discrete-event simulation of the
    decentralized evolution protocol (Sec. 6) over an unreliable
    asynchronous network: each party runs the
    {!Chorev_choreography.Node} state machine as an event-driven node
    over a transport with a {!Fault.profile}, hardened with epochs,
    idempotent redelivery, retransmission with exponential backoff +
    seeded jitter, and crash/restart with durable node state.

    Under {!Fault.none} the run reproduces
    {!Chorev_choreography.Protocol.run}'s verdict and message counts
    exactly; replaying any [(seed, profile)] reproduces the run and its
    JSON-lines trace byte-for-byte. *)

module Model = Chorev_choreography.Model

type stats = {
  ticks : int;  (** virtual time of the last effective event *)
  sent : int;  (** transmissions, including retries *)
  delivered : int;
  dropped : int;
  duplicated : int;
  deduplicated : int;
  retries : int;
  stale : int;  (** discarded for a superseded epoch *)
  crashes : int;
  announcements : int;
      (** first transmissions only — comparable with [Protocol.stats]
          under the zero-fault profile *)
  acks : int;
  nacks : int;
  aborts : int;  (** abort-cascade transmissions (node-level withdrawal) *)
}

type result = {
  agreed : bool;
  converged : bool;  (** quiescent within [max_ticks] *)
  stats : stats;
  final : Model.t;
  trace : string;  (** deterministic JSON-lines log; [""] if disabled *)
  injected_at : int option;
      (** tick of the seeded bad change, if the profile carried one *)
  pre_change : Model.t option;
      (** model snapshot from just before the injection — what restored
          parties are byte-compared against by the soak invariant *)
  rolled_back : string list;
      (** the causal cone that was restored ([[]]: no rollback ran) *)
  repairs : int;  (** partner adaptations produced by the amendment search *)
}

val run :
  ?adapt:bool ->
  ?engine_config:Chorev_propagate.Engine.config ->
  ?profile:Fault.profile ->
  ?max_ticks:int ->
  ?trace:bool ->
  ?rollback:bool ->
  ?rollback_journal:string ->
  ?crash_during_rollback:int ->
  seed:int ->
  Model.t ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  result
(** Simulate a change of [owner]'s private process to [changed].
    Defaults: [adapt:true], [profile:Fault.none], [max_ticks:10_000],
    [trace:true]. [engine_config] (default
    {!Chorev_propagate.Engine.default}, unlimited) bounds each node's
    local algebra work — see {!Chorev_choreography.Node.handle}; its
    [repair] policy arms the nodes' amendment fallback. Only fuel
    budgets keep runs deterministic; wall-clock deadlines do not.

    When the profile carries a {!Fault.inject} entry, the owner applies
    a seeded rogue change at that tick and announces it. With
    [rollback:true], a run that drains without restoring agreement then
    rolls back exactly the causal cone of the injection to the
    pre-change snapshots — in memory, or journal-backed when
    [rollback_journal] names a directory (crash-safe; see
    {!Chorev_repair.Rollback}). [crash_during_rollback:k] raises
    {!Chorev_repair.Rollback.Simulated_crash} after the [k]-th
    committed restore — the kill-during-rollback test hook. *)

val rollback_prelude : injected_at:int -> cone:string list -> string
(** The deterministic header printed (and journalled) before a
    rollback's restores — shared by the live path and [chorev resume]
    so interrupted and uninterrupted runs render byte-identically. *)

val pp_stats : Format.formatter -> stats -> unit
