(** Multi-seed soak of the simulator against the synchronous oracle:
    seeds × fault profiles fan out over the domain pool; every run must
    converge to the oracle's [agreed] verdict and a language-equal
    final model. *)

module Model = Chorev_choreography.Model

type check = {
  seed : int;
  profile : string;
  converged : bool;
  agreed_match : bool;
  final_match : bool;
  ticks : int;
  sent : int;
  dropped : int;
  retries : int;
}

val ok : check -> bool

type summary = {
  runs : int;
  failures : check list;
  max_ticks_seen : int;
  total_sent : int;
  total_dropped : int;
  total_retries : int;
}

val run :
  ?pool:Chorev_parallel.Pool.t ->
  ?profiles:Fault.profile list ->
  ?seeds:int list ->
  ?max_ticks:int ->
  Model.t ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  check list
(** Deterministic profiles-major order for every pool size. Defaults:
    lossy/jittery/chaos profiles, seeds 0–49. *)

val summarize : check list -> summary
val all_ok : check list -> bool
val models_match : Model.t -> Model.t -> bool
val pp_check : Format.formatter -> check -> unit
val pp_summary : Format.formatter -> summary -> unit
