(** Multi-seed soak of the simulator against the synchronous oracle:
    seeds × fault profiles fan out over the domain pool; every run must
    converge to the oracle's [agreed] verdict and a language-equal
    final model. *)

module Model = Chorev_choreography.Model

type check = {
  seed : int;
  profile : string;
  converged : bool;
  agreed_match : bool;
  final_match : bool;
  ticks : int;
  sent : int;
  dropped : int;
  retries : int;
}

val ok : check -> bool

type summary = {
  runs : int;
  failures : check list;
  max_ticks_seen : int;
  total_sent : int;
  total_dropped : int;
  total_retries : int;
}

val run :
  ?pool:Chorev_parallel.Pool.t ->
  ?profiles:Fault.profile list ->
  ?seeds:int list ->
  ?max_ticks:int ->
  Model.t ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  check list
(** Deterministic profiles-major order for every pool size. Defaults:
    lossy/jittery/chaos profiles, seeds 0–49. *)

val summarize : check list -> summary
val all_ok : check list -> bool
val models_match : Model.t -> Model.t -> bool
val pp_check : Format.formatter -> check -> unit
val pp_summary : Format.formatter -> summary -> unit

(** {1 Bad-change injection soak}

    The self-healing invariant: every seeded-bad-change run ends
    {e repaired} (agreed, converged, no rollback) or {e causally
    reverted} (agreed, and every party byte-identical to its
    pre-change snapshot) — never half-applied. *)

type inject_check = {
  i_seed : int;
  i_class : string;  (** "no-adapt" | "repair" | "starved" (seed mod 3) *)
  i_converged : bool;
  i_agreed : bool;
  i_repairs : int;
  i_cone : int;  (** rolled-back cone size; 0 = no rollback ran *)
  i_ok : bool;
}

val inject_ok : inject_check -> bool

val run_inject :
  ?pool:Chorev_parallel.Pool.t ->
  ?runs:int ->
  ?inject_at:int ->
  ?profile:Fault.profile ->
  Model.t ->
  owner:string ->
  inject_check list
(** [runs] (default 60) seeded injections decorating [profile] (default
    lossy) via {!Fault.with_inject}, rollback armed; seed classes cycle
    no-adapt / generous-repair / fuel-starved. Results are in seed
    order — and identical — at every pool size. *)

val inject_all_ok : inject_check list -> bool
val pp_inject_check : Format.formatter -> inject_check -> unit
