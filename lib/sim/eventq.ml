(** The simulator's priority event queue: events ordered by virtual
    time, ties broken by insertion sequence number — so the execution
    order of a simulation is a pure function of the events pushed, and
    replaying a seed replays the exact schedule. Backed by a [Map] keyed
    on [(time, seq)]; the simulator's event counts are small enough
    (thousands) that the O(log n) operations never show up next to the
    automata algebra the nodes run per event. *)

module K = struct
  type t = int * int (* virtual time, insertion sequence *)

  let compare = compare
end

module M = Map.Make (K)

type 'a t = { mutable events : 'a M.t; mutable next_seq : int }

let create () = { events = M.empty; next_seq = 0 }

let is_empty q = M.is_empty q.events
let length q = M.cardinal q.events

(** Schedule [v] at virtual time [at] (≥ now for a sane schedule; the
    queue itself does not check). Returns the event's sequence number —
    unique per queue, usable as a deterministic event id. *)
let add q ~at v =
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  q.events <- M.add (at, seq) v q.events;
  seq

(** Earliest event: [(time, seq, v)], removed from the queue. *)
let pop q =
  match M.min_binding_opt q.events with
  | None -> None
  | Some ((at, seq), v) ->
      q.events <- M.remove (at, seq) q.events;
      Some (at, seq, v)

(** Time of the earliest pending event. *)
let next_time q =
  match M.min_binding_opt q.events with
  | None -> None
  | Some ((at, _), _) -> Some at
