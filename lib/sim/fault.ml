(** Fault profiles for the simulated transport.

    A profile describes everything unreliable about the network the
    protocol runs over: per-link loss, duplication and delay (a delay
    *range* makes reordering possible), transient partitions, and node
    crash/restart schedules. Profiles are plain data — the random draws
    happen in the simulator against its seeded RNG, so one [(seed,
    profile)] pair pins down the entire execution.

    The stock profiles keep links {e fair-loss} (drop probability < 1):
    a retried message is eventually delivered, which is what the
    convergence guarantee of the protocol needs (cf. Bravetti's dynamic
    update setting — progress under arbitrary finite message loss). *)

type link = {
  drop_p : float;  (** per-transmission loss probability, in [0, 1) *)
  dup_p : float;  (** per-transmission duplication probability *)
  delay_min : int;  (** minimum link latency, virtual ticks *)
  delay_max : int;
      (** maximum link latency; [delay_max > delay_min] lets messages
          overtake each other (reordering) *)
}

type partition = {
  from_tick : int;
  until_tick : int;  (** exclusive *)
  isolated : string list;
      (** messages to or from these parties are dropped while the
          partition lasts *)
}

type crash = {
  party : string;
  at : int;  (** crash tick: the node stops processing and loses its
                 in-flight timers; durable state survives *)
  restart_at : int;  (** the node comes back, re-announcing its state *)
}

type inject = {
  inject_at : int;
      (** virtual tick at which the owner applies a seeded bad change
          to its own private process and announces it *)
  inject_seed : int;
      (** derives the rogue message name and its insertion point *)
}

type profile = {
  name : string;
  link : link;
  partitions : partition list;
  crashes : crash list;
  injects : inject list;
      (** seeded bad-change injections (the repair soak's fault class) *)
}

let perfect_link = { drop_p = 0.0; dup_p = 0.0; delay_min = 0; delay_max = 0 }

let none =
  {
    name = "none";
    link = perfect_link;
    partitions = [];
    crashes = [];
    injects = [];
  }

(** Fair-loss links with duplication and a small reordering window. *)
let lossy ?(drop = 0.2) () =
  {
    name = Printf.sprintf "lossy(drop=%.2f)" drop;
    link = { drop_p = drop; dup_p = 0.1; delay_min = 1; delay_max = 6 };
    partitions = [];
    crashes = [];
    injects = [];
  }

(** Everything at once: loss near the acceptance bound, duplication,
    wide reordering, one transient partition of the given party early
    in the run. *)
let chaos ?(isolated = []) () =
  {
    name = "chaos";
    link = { drop_p = 0.3; dup_p = 0.2; delay_min = 1; delay_max = 12 };
    partitions =
      (match isolated with
      | [] -> []
      | ps -> [ { from_tick = 4; until_tick = 40; isolated = ps } ]);
    crashes = [];
    injects = [];
  }

(** Delay/reordering only — no loss, so no retransmission should ever
    be needed beyond timer noise. *)
let jittery =
  {
    name = "jittery";
    link = { drop_p = 0.0; dup_p = 0.15; delay_min = 1; delay_max = 10 };
    partitions = [];
    crashes = [];
    injects = [];
  }

(** One transient partition isolating [party] during [[from_tick,
    until_tick)], on otherwise lossy links. *)
let partitioned ?(from_tick = 4) ?(until_tick = 60) party =
  {
    name = Printf.sprintf "partitioned(%s)" party;
    link = { drop_p = 0.1; dup_p = 0.05; delay_min = 1; delay_max = 4 };
    partitions = [ { from_tick; until_tick; isolated = [ party ] } ];
    crashes = [];
    injects = [];
  }

(** [party] crashes at [at] and restarts at [restart_at] with its
    durable state intact, on lossy links. *)
let crashy ?(at = 3) ?(restart_at = 30) party =
  {
    name = Printf.sprintf "crashy(%s)" party;
    link = { drop_p = 0.1; dup_p = 0.05; delay_min = 1; delay_max = 4 };
    partitions = [];
    crashes = [ { party; at; restart_at } ];
    injects = [];
  }

(** Profiles by CLI name. [isolated]/[party] parameterize the
    partition and crash profiles (typically the change originator's
    busiest partner). *)
let of_name ?(party = "B") name =
  match name with
  | "none" -> Ok none
  | "lossy" -> Ok (lossy ())
  | "jittery" -> Ok jittery
  | "chaos" -> Ok (chaos ~isolated:[ party ] ())
  | "partitioned" -> Ok (partitioned party)
  | "crashy" -> Ok (crashy party)
  | s -> Error (Printf.sprintf "unknown fault profile %S" s)

let names = [ "none"; "lossy"; "jittery"; "chaos"; "partitioned"; "crashy" ]

(** [profile] plus one seeded bad-change injection at [at] — the
    repair soak decorates any stock profile with this. *)
let with_inject ?(at = 10) ~seed profile =
  {
    profile with
    name = Printf.sprintf "%s+inject(%d@%d)" profile.name seed at;
    injects = [ { inject_at = at; inject_seed = seed } ];
  }

(** Is the link between [a] and [b] cut at [tick]? *)
let partitioned_at p ~tick a b =
  List.exists
    (fun part ->
      tick >= part.from_tick && tick < part.until_tick
      && (List.mem a part.isolated || List.mem b part.isolated))
    p.partitions

let pp ppf p =
  Fmt.pf ppf
    "%s (drop=%.2f dup=%.2f delay=[%d,%d] partitions=%d crashes=%d injects=%d)"
    p.name p.link.drop_p p.link.dup_p p.link.delay_min p.link.delay_max
    (List.length p.partitions)
    (List.length p.crashes)
    (List.length p.injects)
