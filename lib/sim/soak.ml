(** Multi-seed soak: fan a seed × fault-profile sweep of {!Sim.run}
    out over the domain pool and check every run against the
    synchronous oracle ({!Chorev_choreography.Protocol.run}): same
    [agreed] verdict, and a language-equal final public process for
    every party. The oracle is computed once; each pool task works on a
    {!Chorev_choreography.Model.copy} of the choreography so the shared
    automata's lazy indexes are never built concurrently. *)

module Model = Chorev_choreography.Model
module Protocol = Chorev_choreography.Protocol
module Pool = Chorev_parallel.Pool

type check = {
  seed : int;
  profile : string;
  converged : bool;
  agreed_match : bool;  (** sim verdict equals the oracle's *)
  final_match : bool;
      (** every party's final public is language-equal to the oracle's *)
  ticks : int;
  sent : int;
  dropped : int;
  retries : int;
}

let ok c = c.converged && c.agreed_match && c.final_match

type summary = {
  runs : int;
  failures : check list;
  max_ticks_seen : int;
  total_sent : int;
  total_dropped : int;
  total_retries : int;
}

let models_match a b =
  let pa = Model.parties a and pb = Model.parties b in
  pa = pb
  && List.for_all
       (fun p ->
         Chorev_afsa.Equiv.equal_language (Model.public a p) (Model.public b p))
       pa

(** Run [seeds] × [profiles] simulations against the oracle. The runs
    fan out over [?pool] (default {!Chorev_parallel.Pool.default});
    results are in deterministic [profiles]-major order regardless of
    pool size. Traces are disabled — replay a failing [(seed, profile)]
    with {!Sim.run} to get one. *)
let run ?pool ?(profiles = [ Fault.lossy (); Fault.jittery; Fault.chaos () ])
    ?(seeds = List.init 50 Fun.id) ?max_ticks (model : Model.t) ~owner
    ~changed =
  Chorev_obs.Obs.span "sim.soak"
    ~attrs:
      [
        ("seeds", Chorev_obs.Sink.Int (List.length seeds));
        ("profiles", Chorev_obs.Sink.Int (List.length profiles));
      ]
  @@ fun () ->
  let oracle = Protocol.run model ~owner ~changed in
  let jobs =
    List.concat_map
      (fun profile -> List.map (fun seed -> (profile, seed)) seeds)
      profiles
  in
  Pool.map ?pool
    (fun (profile, seed) ->
      let m = Model.copy model in
      let r =
        Sim.run ~seed ~profile ?max_ticks ~trace:false m ~owner ~changed
      in
      {
        seed;
        profile = profile.Fault.name;
        converged = r.Sim.converged;
        agreed_match = r.Sim.agreed = oracle.Protocol.agreed;
        final_match = models_match r.Sim.final oracle.Protocol.final;
        ticks = r.Sim.stats.Sim.ticks;
        sent = r.Sim.stats.Sim.sent;
        dropped = r.Sim.stats.Sim.dropped;
        retries = r.Sim.stats.Sim.retries;
      })
    jobs

let summarize checks =
  List.fold_left
    (fun acc c ->
      {
        runs = acc.runs + 1;
        failures = (if ok c then acc.failures else c :: acc.failures);
        max_ticks_seen = max acc.max_ticks_seen c.ticks;
        total_sent = acc.total_sent + c.sent;
        total_dropped = acc.total_dropped + c.dropped;
        total_retries = acc.total_retries + c.retries;
      })
    {
      runs = 0;
      failures = [];
      max_ticks_seen = 0;
      total_sent = 0;
      total_dropped = 0;
      total_retries = 0;
    }
    checks
  |> fun s -> { s with failures = List.rev s.failures }

let all_ok checks = List.for_all ok checks

(* ----------------------- bad-change injection ---------------------- *)

type inject_check = {
  i_seed : int;
  i_class : string;  (** "no-adapt" | "repair" | "starved" *)
  i_converged : bool;
  i_agreed : bool;
  i_repairs : int;
  i_cone : int;  (** rolled-back cone size; 0 = no rollback ran *)
  i_ok : bool;  (** repaired, or causally reverted — never half-applied *)
}

let inject_ok c = c.i_ok

(** Byte-level equality against the pre-change snapshot: after a
    rollback, cone parties were restored and everyone else was never
    touched, so {e every} party must serialize identically. *)
let reverted_exactly ~pre ~final =
  let ps = Model.parties pre in
  ps = Model.parties final
  && List.for_all
       (fun p ->
         String.equal
           (Chorev_bpel.Sexp.process_to_string (Model.private_ final p))
           (Chorev_bpel.Sexp.process_to_string (Model.private_ pre p)))
       ps

(* Three seed classes bias the run toward the three repair outcomes:
   no adaptation at all (rollback is the only exit), a generous
   amendment search, and a fuel-starved one that degrades to
   unrepairable. The repair classes disable the engine's own adaptation
   ([auto_apply = false]) so the amendment search is the only healer —
   otherwise ordinary propagation fixes the partner before the search
   ever runs. The invariant below is the same for all three. *)
let inject_class seed =
  let no_engine_adapt c = { c with Chorev_config.Config.auto_apply = false } in
  match seed mod 3 with
  | 0 -> ("no-adapt", false, Chorev_config.Config.default)
  | 1 ->
      ("repair", true, no_engine_adapt Chorev_config.Config.(with_repair default))
  | _ ->
      ( "starved",
        true,
        no_engine_adapt Chorev_config.Config.(with_repair ~fuel:40 default) )

(** Soak the self-healing loop: [runs] seeded bad-change injections
    (each decorating [profile] via {!Fault.with_inject}), rollback
    armed. A run passes iff it ends {e repaired} (agreed, converged, no
    rollback) or {e causally reverted} (agreed, and every party
    byte-identical to its pre-change snapshot) — never half-applied.
    Results are in seed order regardless of pool size. *)
let run_inject ?pool ?(runs = 60) ?(inject_at = 10)
    ?(profile = Fault.lossy ()) (model : Model.t) ~owner =
  Chorev_obs.Obs.span "sim.soak.inject"
    ~attrs:[ ("runs", Chorev_obs.Sink.Int runs) ]
  @@ fun () ->
  let changed = Model.private_ model owner in
  Pool.map ?pool
    (fun seed ->
      let m = Model.copy model in
      let klass, adapt, config = inject_class seed in
      let profile = Fault.with_inject ~at:inject_at ~seed profile in
      let r =
        Sim.run ~seed ~profile ~adapt ~engine_config:config ~rollback:true
          ~trace:false m ~owner ~changed
      in
      let i_ok =
        match r.Sim.rolled_back with
        | _ :: _ -> (
            r.Sim.agreed
            &&
            match r.Sim.pre_change with
            | None -> false
            | Some pre -> reverted_exactly ~pre ~final:r.Sim.final)
        | [] -> r.Sim.agreed && r.Sim.converged
      in
      {
        i_seed = seed;
        i_class = klass;
        i_converged = r.Sim.converged;
        i_agreed = r.Sim.agreed;
        i_repairs = r.Sim.repairs;
        i_cone = List.length r.Sim.rolled_back;
        i_ok;
      })
    (List.init runs Fun.id)

let inject_all_ok checks = List.for_all inject_ok checks

let pp_inject_check ppf c =
  Fmt.pf ppf "seed=%d class=%s converged=%b agreed=%b repairs=%d cone=%d ok=%b"
    c.i_seed c.i_class c.i_converged c.i_agreed c.i_repairs c.i_cone c.i_ok

let pp_check ppf c =
  Fmt.pf ppf
    "seed=%d profile=%s converged=%b agreed_match=%b final_match=%b ticks=%d \
     sent=%d dropped=%d retries=%d"
    c.seed c.profile c.converged c.agreed_match c.final_match c.ticks c.sent
    c.dropped c.retries

let pp_summary ppf s =
  Fmt.pf ppf
    "%d runs, %d failures; max convergence %d ticks; %d sent / %d dropped / \
     %d retried"
    s.runs
    (List.length s.failures)
    s.max_ticks_seen s.total_sent s.total_dropped s.total_retries;
  List.iter (fun c -> Fmt.pf ppf "@.  FAIL %a" pp_check c) s.failures
