(** Multi-seed soak: fan a seed × fault-profile sweep of {!Sim.run}
    out over the domain pool and check every run against the
    synchronous oracle ({!Chorev_choreography.Protocol.run}): same
    [agreed] verdict, and a language-equal final public process for
    every party. The oracle is computed once; each pool task works on a
    {!Chorev_choreography.Model.copy} of the choreography so the shared
    automata's lazy indexes are never built concurrently. *)

module Model = Chorev_choreography.Model
module Protocol = Chorev_choreography.Protocol
module Pool = Chorev_parallel.Pool

type check = {
  seed : int;
  profile : string;
  converged : bool;
  agreed_match : bool;  (** sim verdict equals the oracle's *)
  final_match : bool;
      (** every party's final public is language-equal to the oracle's *)
  ticks : int;
  sent : int;
  dropped : int;
  retries : int;
}

let ok c = c.converged && c.agreed_match && c.final_match

type summary = {
  runs : int;
  failures : check list;
  max_ticks_seen : int;
  total_sent : int;
  total_dropped : int;
  total_retries : int;
}

let models_match a b =
  let pa = Model.parties a and pb = Model.parties b in
  pa = pb
  && List.for_all
       (fun p ->
         Chorev_afsa.Equiv.equal_language (Model.public a p) (Model.public b p))
       pa

(** Run [seeds] × [profiles] simulations against the oracle. The runs
    fan out over [?pool] (default {!Chorev_parallel.Pool.default});
    results are in deterministic [profiles]-major order regardless of
    pool size. Traces are disabled — replay a failing [(seed, profile)]
    with {!Sim.run} to get one. *)
let run ?pool ?(profiles = [ Fault.lossy (); Fault.jittery; Fault.chaos () ])
    ?(seeds = List.init 50 Fun.id) ?max_ticks (model : Model.t) ~owner
    ~changed =
  Chorev_obs.Obs.span "sim.soak"
    ~attrs:
      [
        ("seeds", Chorev_obs.Sink.Int (List.length seeds));
        ("profiles", Chorev_obs.Sink.Int (List.length profiles));
      ]
  @@ fun () ->
  let oracle = Protocol.run model ~owner ~changed in
  let jobs =
    List.concat_map
      (fun profile -> List.map (fun seed -> (profile, seed)) seeds)
      profiles
  in
  Pool.map ?pool
    (fun (profile, seed) ->
      let m = Model.copy model in
      let r =
        Sim.run ~seed ~profile ?max_ticks ~trace:false m ~owner ~changed
      in
      {
        seed;
        profile = profile.Fault.name;
        converged = r.Sim.converged;
        agreed_match = r.Sim.agreed = oracle.Protocol.agreed;
        final_match = models_match r.Sim.final oracle.Protocol.final;
        ticks = r.Sim.stats.Sim.ticks;
        sent = r.Sim.stats.Sim.sent;
        dropped = r.Sim.stats.Sim.dropped;
        retries = r.Sim.stats.Sim.retries;
      })
    jobs

let summarize checks =
  List.fold_left
    (fun acc c ->
      {
        runs = acc.runs + 1;
        failures = (if ok c then acc.failures else c :: acc.failures);
        max_ticks_seen = max acc.max_ticks_seen c.ticks;
        total_sent = acc.total_sent + c.sent;
        total_dropped = acc.total_dropped + c.dropped;
        total_retries = acc.total_retries + c.retries;
      })
    {
      runs = 0;
      failures = [];
      max_ticks_seen = 0;
      total_sent = 0;
      total_dropped = 0;
      total_retries = 0;
    }
    checks
  |> fun s -> { s with failures = List.rev s.failures }

let all_ok checks = List.for_all ok checks

let pp_check ppf c =
  Fmt.pf ppf
    "seed=%d profile=%s converged=%b agreed_match=%b final_match=%b ticks=%d \
     sent=%d dropped=%d retries=%d"
    c.seed c.profile c.converged c.agreed_match c.final_match c.ticks c.sent
    c.dropped c.retries

let pp_summary ppf s =
  Fmt.pf ppf
    "%d runs, %d failures; max convergence %d ticks; %d sent / %d dropped / \
     %d retried"
    s.runs
    (List.length s.failures)
    s.max_ticks_seen s.total_sent s.total_dropped s.total_retries;
  List.iter (fun c -> Fmt.pf ppf "@.  FAIL %a" pp_check c) s.failures
