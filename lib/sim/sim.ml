(** Deterministic discrete-event simulation of the decentralized
    evolution protocol over an unreliable asynchronous network.

    Each party of a {!Chorev_choreography.Model.t} runs as an
    event-driven node executing the {!Chorev_choreography.Node} state
    machine — announce new public process, check bilateral views
    locally, ack/nack, adapt — over a simulated transport with a
    configurable {!Fault.profile} (per-link drop/duplicate/delay-range,
    transient partitions, node crash+restart with durable node state).

    Production-shaped robustness machinery on top of the node logic:

    - {b epochs}: every (re-)announcement round of a node carries a
      monotonically increasing epoch; replies quote the epoch they
      answer, so stale acks for superseded publics are discarded;
    - {b idempotent redelivery}: duplicated frames are deduplicated by
      [(sender, transmission id)]; a retransmitted announce that was
      already processed is answered from a durable reply cache instead
      of being re-processed (so the reply is re-sent even if the
      original reply was lost, without re-running the adaptation);
    - {b retries}: every announce is retransmitted with exponential
      backoff and seeded jitter until some reply for its epoch arrives
      (or the attempt cap is hit), which makes the protocol live on
      fair-loss links;
    - {b crash+restart}: a crashed node loses its in-flight timers but
      keeps its durable state ({!Chorev_choreography.Node.t}, epoch,
      reply cache); on restart it re-announces its current public
      process under a fresh epoch.

    Determinism: there is no wall clock and no global [Random] state —
    a virtual clock advances through a priority queue ordered by
    [(time, insertion seq)] ({!Eventq}), and every random draw comes
    from [Random.State] values derived from the run's seed. Replaying
    [(seed, profile)] reproduces the run — and its trace —
    byte-for-byte.

    Correctness anchor: under {!Fault.none} (reliable, instantaneous,
    in-order links) the event order degenerates to the global FIFO of
    the synchronous driver, so the run reproduces
    {!Chorev_choreography.Protocol.run}'s verdict and message counts
    exactly. *)

module Model = Chorev_choreography.Model
module Node = Chorev_choreography.Node
module Consistency = Chorev_choreography.Consistency
module Metrics = Chorev_obs.Metrics
module Rollback = Chorev_repair.Rollback
module Sexp = Chorev_bpel.Sexp

(* Retransmission: first retry after [rto_base] ticks, doubling up to
   [rto_cap], at most [max_attempts] transmissions per (partner,
   epoch). The cap keeps total-partition profiles terminating; on
   fair-loss links the cap is effectively never reached. *)
let rto_base = 8
let rto_cap = 128
let max_attempts = 12

type stats = {
  ticks : int;  (** virtual time of the last effective event *)
  sent : int;  (** transmissions handed to the transport (incl. retries) *)
  delivered : int;
  dropped : int;  (** lost to links, partitions, or a crashed receiver *)
  duplicated : int;
  deduplicated : int;  (** duplicate frames discarded by receivers *)
  retries : int;  (** retransmissions (announce retries + cached re-replies) *)
  stale : int;  (** messages discarded for a superseded epoch *)
  crashes : int;
  announcements : int;  (** first-transmission counts, comparable with *)
  acks : int;  (** [Protocol.stats] under the zero-fault profile *)
  nacks : int;
  aborts : int;  (** abort-cascade transmissions (node-level withdrawal) *)
}

type result = {
  agreed : bool;  (** all interacting pairs consistent afterwards *)
  converged : bool;  (** reached quiescence within [max_ticks] *)
  stats : stats;
  final : Model.t;
  trace : string;  (** deterministic JSON-lines event log ("" unless [trace]) *)
  injected_at : int option;
      (** the tick at which the seeded bad change was applied, if any *)
  pre_change : Model.t option;
      (** the model as it was just before the injection — the rollback
          oracle the soak compares restored parties against *)
  rolled_back : string list;
      (** the causal cone that was restored (empty: no rollback ran) *)
  repairs : int;  (** partner adaptations produced by the amendment search *)
}

type envelope = {
  env_from : string;
  env_to : string;
  epoch : int;
      (** the sender's announce epoch (announces), or the epoch being
          answered (acks/nacks) *)
  mid : int;  (** per-sender transmission id; duplicated frames share it *)
  payload : Node.payload;
}

type event =
  | Deliver of envelope
  | Retry of { party : string; to_ : string; epoch : int; attempt : int }
  | Crash of string
  | Restart of string
  | Inject of Fault.inject
      (** the owner applies a seeded bad change and announces it *)

type pending = { p_to : string; p_epoch : int }

(* Per-party runtime state. [node], [epoch], [next_mid], [replies] and
   [last_epoch] are durable (they survive a crash); [pending] — the
   in-flight retransmission timers — is volatile and lost on crash. *)
type pnode = {
  node : Node.t;
  rng : Random.State.t;  (** per-node backoff jitter *)
  mutable up : bool;
  mutable epoch : int;
  mutable next_mid : int;
  seen : (string * int, unit) Hashtbl.t;  (** (sender, mid) dedup *)
  replies : (string * int, Node.payload list) Hashtbl.t;
      (** (sender, announce epoch) → replies sent, for idempotent
          re-reply to retransmitted announces *)
  last_epoch : (string, int) Hashtbl.t;  (** highest epoch seen per sender *)
  mutable pending : pending list;
}

let c_runs = Metrics.counter "sim.runs"
let c_sent = Metrics.counter "sim.messages.sent"
let c_dropped = Metrics.counter "sim.messages.dropped"
let c_retried = Metrics.counter "sim.messages.retried"
let c_delivered = Metrics.counter "sim.messages.delivered"
let h_ticks = Metrics.histogram "sim.convergence.ticks"

let kind_name = function
  | `Announce -> "announce"
  | `Ack -> "ack"
  | `Nack -> "nack"
  | `Abort -> "abort"

(* A seeded rogue change: insert an invoke of a fresh message type —
   absent from every partner's alphabet, so the partner's bilateral
   check is guaranteed to fail — at a seeded position of the first
   sequence of [owner]'s private process. This is the repair soak's
   fault class: the seed pins down partner, message name and insertion
   point, so the same seed produces the same bad change at every pool
   size. *)
let rogue_change ~inject_seed (m : Model.t) owner =
  let module A = Chorev_bpel.Activity in
  let p = Model.private_ m owner in
  let rng = Random.State.make [| inject_seed; 0xbad |] in
  let partners =
    List.filter
      (fun q -> (not (String.equal q owner)) && Model.interact m owner q)
      (Model.parties m)
    |> List.sort String.compare
  in
  match partners with
  | [] -> None
  | _ :: _ -> (
      let partner =
        List.nth partners (Random.State.int rng (List.length partners))
      in
      let act =
        A.invoke ~partner ~op:(Printf.sprintf "rogue%d" inject_seed)
      in
      let seq =
        A.all_nodes (Chorev_bpel.Process.body p)
        |> List.find_map (fun (path, a) ->
               match a with
               | A.Sequence (_, items) -> Some (path, List.length items)
               | _ -> None)
      in
      match seq with
      | None -> None
      | Some (path, n) -> (
          let pos = Random.State.int rng (n + 1) in
          match
            Chorev_change.Ops.apply
              (Chorev_change.Ops.Insert_activity { path; pos; act })
              p
          with
          | Ok p' -> Some p'
          | Error _ -> None))

(** The deterministic header a rollback-armed run prints before the
    restore starts. It is also stored in the journal's [meta.prelude],
    so a kill-during-rollback followed by [chorev resume] replays it
    byte-identically to the uninterrupted run. *)
let rollback_prelude ~injected_at ~cone =
  Printf.sprintf "injected at tick %d\nrolled back: %s\n" injected_at
    (String.concat "," cone)

let run ?(adapt = true) ?(engine_config = Chorev_propagate.Engine.default)
    ?(profile = Fault.none) ?(max_ticks = 10_000) ?(trace = true)
    ?(rollback = false) ?rollback_journal ?crash_during_rollback ~seed
    (model : Model.t) ~owner ~changed =
  Metrics.incr c_runs;
  Chorev_obs.Obs.span "sim.run"
    ~attrs:
      [
        ("seed", Chorev_obs.Sink.Int seed);
        ("profile", Chorev_obs.Sink.Str profile.Fault.name);
        ("owner", Chorev_obs.Sink.Str owner);
      ]
  @@ fun () ->
  let before = model in
  let m = ref (Model.update model changed) in
  let parties = Model.parties !m in
  let q : event Eventq.t = Eventq.create () in
  let net_rng = Random.State.make [| seed; 0x5eed |] in
  let pnodes =
    List.map
      (fun p ->
        ( p,
          {
            node = Node.of_model ~before ~current:!m p;
            rng = Random.State.make [| seed; Hashtbl.hash p; 0x90de |];
            up = true;
            epoch = 0;
            next_mid = 0;
            seen = Hashtbl.create 64;
            replies = Hashtbl.create 16;
            last_epoch = Hashtbl.create 8;
            pending = [];
          } ))
      parties
  in
  let pnode p = List.assoc p pnodes in
  (* ------------------------------ trace ----------------------------- *)
  let buf = Buffer.create (if trace then 4096 else 0) in
  let tr fmt =
    if trace then
      Printf.ksprintf
        (fun line ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        fmt
    else Printf.ksprintf ignore fmt
  in
  tr {|{"ev":"start","seed":%d,"profile":"%s","owner":"%s","adapt":%b}|} seed
    profile.Fault.name owner adapt;
  (* ------------------------------ stats ----------------------------- *)
  let sent = ref 0
  and delivered = ref 0
  and dropped = ref 0
  and duplicated = ref 0
  and deduplicated = ref 0
  and retries = ref 0
  and stale = ref 0
  and crashes = ref 0
  and announcements = ref 0
  and acks = ref 0
  and nacks = ref 0
  and aborts = ref 0
  and repairs = ref 0 in
  let last_tick = ref 0 in
  (* injection bookkeeping: the pre-change model snapshot, and the
     delivery edges recorded after the injection — the raw material of
     the causal cone should a rollback be needed *)
  let injected_at = ref None in
  let pre_change = ref None in
  let edges : Rollback.edge list ref = ref [] in
  (* ---------------------------- transport --------------------------- *)
  let link = profile.Fault.link in
  let delay () =
    link.Fault.delay_min
    +
    if link.Fault.delay_max > link.Fault.delay_min then
      Random.State.int net_rng (link.Fault.delay_max - link.Fault.delay_min + 1)
    else 0
  in
  let transmit ~now ~fresh pn ~to_ ~epoch payload =
    incr sent;
    last_tick := now;
    if fresh then (
      match Node.kind payload with
      | `Announce -> incr announcements
      | `Ack -> incr acks
      | `Nack -> incr nacks
      | `Abort -> incr aborts)
    else incr retries;
    let mid = pn.next_mid in
    pn.next_mid <- mid + 1;
    let from_ = pn.node.Node.party in
    tr {|{"t":%d,"ev":"send","from":"%s","to":"%s","kind":"%s","epoch":%d,"mid":%d,"fresh":%b}|}
      now from_ to_
      (kind_name (Node.kind payload))
      epoch mid fresh;
    if Fault.partitioned_at profile ~tick:now from_ to_ then begin
      incr dropped;
      tr {|{"t":%d,"ev":"drop","from":"%s","to":"%s","mid":%d,"cause":"partition"}|}
        now from_ to_ mid
    end
    else if Random.State.float net_rng 1.0 < link.Fault.drop_p then begin
      incr dropped;
      tr {|{"t":%d,"ev":"drop","from":"%s","to":"%s","mid":%d,"cause":"loss"}|}
        now from_ to_ mid
    end
    else begin
      let env = { env_from = from_; env_to = to_; epoch; mid; payload } in
      ignore (Eventq.add q ~at:(now + delay ()) (Deliver env));
      if Random.State.float net_rng 1.0 < link.Fault.dup_p then begin
        incr duplicated;
        tr {|{"t":%d,"ev":"dup","from":"%s","to":"%s","mid":%d}|} now from_ to_
          mid;
        ignore (Eventq.add q ~at:(now + delay ()) (Deliver env))
      end
    end
  in
  let rto attempt = min rto_cap (rto_base lsl attempt) in
  let schedule_retry ~now pn ~to_ ~attempt =
    let jitter = Random.State.int pn.rng (1 + (rto attempt / 4)) in
    ignore
      (Eventq.add q
         ~at:(now + rto attempt + jitter)
         (Retry { party = pn.node.Node.party; to_; epoch = pn.epoch; attempt }))
  in
  (* A batch of announce effects = one new epoch: transmit to every
     partner and arm a retransmission timer per link. *)
  let start_announces ~now pn targets =
    pn.epoch <- pn.epoch + 1;
    pn.pending <-
      List.map (fun to_ -> { p_to = to_; p_epoch = pn.epoch }) targets;
    List.iter
      (fun to_ ->
        transmit ~now ~fresh:true pn ~to_ ~epoch:pn.epoch
          (Node.Announce { public = pn.node.Node.public });
        schedule_retry ~now pn ~to_ ~attempt:0)
      targets
  in
  let resend_cached ~now pn ~to_ ~epoch =
    match Hashtbl.find_opt pn.replies (to_, epoch) with
    | None -> ()
    | Some payloads ->
        List.iter
          (fun payload -> transmit ~now ~fresh:false pn ~to_ ~epoch payload)
          payloads
  in
  (* --------------------------- event handlers ------------------------ *)
  let on_deliver ~now env =
    let pn = pnode env.env_to in
    if not pn.up then begin
      incr dropped;
      tr {|{"t":%d,"ev":"drop","from":"%s","to":"%s","mid":%d,"cause":"down"}|}
        now env.env_from env.env_to env.mid
    end
    else if Hashtbl.mem pn.seen (env.env_from, env.mid) then begin
      incr deduplicated;
      tr {|{"t":%d,"ev":"dedup","from":"%s","to":"%s","mid":%d}|} now
        env.env_from env.env_to env.mid
    end
    else begin
      Hashtbl.add pn.seen (env.env_from, env.mid) ();
      incr delivered;
      last_tick := now;
      Metrics.incr c_delivered;
      tr {|{"t":%d,"ev":"deliver","from":"%s","to":"%s","kind":"%s","epoch":%d,"mid":%d}|}
        now env.env_from env.env_to
        (kind_name (Node.kind env.payload))
        env.epoch env.mid;
      match Node.kind env.payload with
      | `Ack | `Nack ->
          if env.epoch <> pn.epoch then begin
            incr stale;
            tr {|{"t":%d,"ev":"stale","to":"%s","epoch":%d,"current":%d}|} now
              env.env_to env.epoch pn.epoch
          end
          else begin
            (* any reply for the current epoch settles the link's
               retransmission *)
            pn.pending <-
              List.filter
                (fun pd ->
                  not (pd.p_to = env.env_from && pd.p_epoch = env.epoch))
                pn.pending;
            ignore
              (Node.handle ~adapt ~config:engine_config pn.node
                 ~from_:env.env_from env.payload)
          end
      | `Abort ->
          (* epoch-free: an abort always applies (idempotent in the
             node — a party with no adaptation on record ignores it) *)
          let effects =
            Node.handle ~adapt ~config:engine_config pn.node
              ~from_:env.env_from env.payload
          in
          List.iter
            (function
              | Node.Adapted p' ->
                  tr {|{"t":%d,"ev":"revert","party":"%s"}|} now env.env_to;
                  m := Model.update !m p'
              | Node.Repaired _ -> incr repairs
              | Node.Send _ -> ())
            effects;
          List.iter
            (function
              | Node.Send { to_; payload } when Node.kind payload = `Abort ->
                  transmit ~now ~fresh:true pn ~to_ ~epoch:pn.epoch payload
              | _ -> ())
            effects;
          let announce_targets =
            List.filter_map
              (function
                | Node.Send { to_; payload = Node.Announce _ } -> Some to_
                | _ -> None)
              effects
          in
          if announce_targets <> [] then start_announces ~now pn announce_targets
      | `Announce ->
          let last =
            Option.value ~default:0
              (Hashtbl.find_opt pn.last_epoch env.env_from)
          in
          if env.epoch < last then begin
            (* superseded by a newer announcement we already saw *)
            incr stale;
            tr {|{"t":%d,"ev":"stale","to":"%s","epoch":%d,"current":%d}|} now
              env.env_to env.epoch last;
            resend_cached ~now pn ~to_:env.env_from ~epoch:env.epoch
          end
          else if
            env.epoch = last && Hashtbl.mem pn.replies (env.env_from, env.epoch)
          then
            (* retransmitted announce we already processed: answer from
               the durable reply cache (idempotent — the adaptation is
               not re-run) *)
            resend_cached ~now pn ~to_:env.env_from ~epoch:env.epoch
          else begin
            Hashtbl.replace pn.last_epoch env.env_from env.epoch;
            (* after an injection, processing an announcement is how the
               bad change spreads — record the delivery edge for the
               causal cone *)
            (match !injected_at with
            | Some t0 when now >= t0 ->
                edges :=
                  { Rollback.at = now; src = env.env_from; dst = env.env_to }
                  :: !edges
            | _ -> ());
            let effects =
              Node.handle ~adapt ~config:engine_config pn.node
                ~from_:env.env_from env.payload
            in
            let replies =
              List.filter_map
                (function
                  | Node.Send { to_; payload }
                    when to_ = env.env_from && Node.kind payload <> `Announce
                    ->
                      Some payload
                  | _ -> None)
                effects
            in
            Hashtbl.replace pn.replies (env.env_from, env.epoch) replies;
            List.iter
              (fun payload ->
                transmit ~now ~fresh:true pn ~to_:env.env_from ~epoch:env.epoch
                  payload)
              replies;
            List.iter
              (function
                | Node.Adapted p' ->
                    tr {|{"t":%d,"ev":"adapt","party":"%s"}|} now env.env_to;
                    m := Model.update !m p'
                | Node.Repaired d ->
                    incr repairs;
                    tr {|{"t":%d,"ev":"repair","party":"%s","fix":"%s"}|} now
                      env.env_to (String.escaped d)
                | Node.Send _ -> ())
              effects;
            let announce_targets =
              List.filter_map
                (function
                  | Node.Send { to_; payload = Node.Announce _ } -> Some to_
                  | _ -> None)
                effects
            in
            if announce_targets <> [] then
              start_announces ~now pn announce_targets
          end
    end
  in
  let on_retry ~now ~party ~to_ ~epoch ~attempt =
    let pn = pnode party in
    if
      pn.up && epoch = pn.epoch
      && List.exists
           (fun pd -> pd.p_to = to_ && pd.p_epoch = epoch)
           pn.pending
    then
      if attempt + 1 >= max_attempts then begin
        tr {|{"t":%d,"ev":"give-up","from":"%s","to":"%s","epoch":%d}|} now
          party to_ epoch;
        pn.pending <-
          List.filter
            (fun pd -> not (pd.p_to = to_ && pd.p_epoch = epoch))
            pn.pending
      end
      else begin
        transmit ~now ~fresh:false pn ~to_ ~epoch
          (Node.Announce { public = pn.node.Node.public });
        schedule_retry ~now pn ~to_ ~attempt:(attempt + 1)
      end
  in
  (* ------------------------------- run ------------------------------ *)
  List.iter
    (fun (c : Fault.crash) ->
      ignore (Eventq.add q ~at:c.Fault.at (Crash c.Fault.party));
      ignore (Eventq.add q ~at:c.Fault.restart_at (Restart c.Fault.party)))
    profile.Fault.crashes;
  List.iter
    (fun (i : Fault.inject) ->
      ignore (Eventq.add q ~at:i.Fault.inject_at (Inject i)))
    profile.Fault.injects;
  start_announces ~now:0 (pnode owner) (Node.partners (pnode owner).node);
  let converged = ref true in
  let running = ref true in
  while !running do
    match Eventq.pop q with
    | None -> running := false
    | Some (at, _seq, _) when at > max_ticks ->
        converged := false;
        running := false
    | Some (at, _seq, ev) -> (
        match ev with
        | Deliver env -> on_deliver ~now:at env
        | Retry { party; to_; epoch; attempt } ->
            on_retry ~now:at ~party ~to_ ~epoch ~attempt
        | Crash p ->
            let pn = pnode p in
            pn.up <- false;
            pn.pending <- [];
            incr crashes;
            last_tick := at;
            tr {|{"t":%d,"ev":"crash","party":"%s"}|} at p
        | Restart p ->
            let pn = pnode p in
            pn.up <- true;
            last_tick := at;
            tr {|{"t":%d,"ev":"restart","party":"%s"}|} at p;
            (* durable state survived; re-announce the current public
               under a fresh epoch to re-establish agreement *)
            start_announces ~now:at pn (Node.partners pn.node)
        | Inject i -> (
            let pn = pnode owner in
            if pn.up then
              match rogue_change ~inject_seed:i.Fault.inject_seed !m owner with
              | None ->
                  tr {|{"t":%d,"ev":"inject-skip","party":"%s"}|} at owner
              | Some p' ->
                  (* snapshot the whole model *before* the mutation:
                     this is what rolled-back parties are compared (and
                     restored) against *)
                  pre_change := Some !m;
                  injected_at := Some at;
                  last_tick := at;
                  tr {|{"t":%d,"ev":"inject","party":"%s","seed":%d}|} at owner
                    i.Fault.inject_seed;
                  m := Model.update !m p';
                  pn.node.Node.private_process <- p';
                  pn.node.Node.public <- Chorev_mapping.Public_gen.public p';
                  start_announces ~now:at pn (Node.partners pn.node)))
  done;
  let agreed = ref (Consistency.consistent !m) in
  let rolled_back = ref [] in
  (match (!injected_at, !pre_change) with
  | Some t0, Some pre when rollback && not !agreed ->
      (* the bad change could not be healed: restore exactly the parties
         it causally reached to their pre-change snapshots *)
      let cone = Rollback.cone ~origin:owner ~edges:(List.rev !edges) in
      let pre_sexps =
        List.map
          (fun p -> (p, Sexp.process_to_string (Model.private_ pre p)))
          cone
      in
      tr {|{"t":%d,"ev":"rollback","origin":"%s","cone":%d}|} !last_tick owner
        (List.length cone);
      let restore ~party ~pre =
        match Sexp.process_of_string pre with
        | Error e ->
            invalid_arg ("rollback: corrupt snapshot for " ^ party ^ ": " ^ e)
        | Ok p ->
            (match List.assoc_opt party pnodes with
            | Some pn ->
                pn.node.Node.private_process <- p;
                pn.node.Node.public <- Chorev_mapping.Public_gen.public p;
                pn.node.Node.adapt_log <- None
            | None -> ());
            m := Model.update !m p
      in
      (match rollback_journal with
      | None -> Rollback.restore_inline ~owner ~cone:pre_sexps ~restore
      | Some dir ->
          (* journal-backed: snapshots and the prelude go durable before
             the first restore, each restore is fsynced before the next
             — a kill anywhere in between resumes byte-identically *)
          let state =
            List.map
              (fun p -> (p, Sexp.process_to_string (Model.private_ !m p)))
              (Model.parties !m)
          in
          let w =
            Rollback.start ~dir ~owner ~cone
              ~prelude:(rollback_prelude ~injected_at:t0 ~cone)
              ~pre:pre_sexps ~state
          in
          Rollback.restore_all ?crash_after:crash_during_rollback w ~restore;
          Rollback.close w);
      rolled_back := cone;
      agreed := Consistency.consistent !m
  | _ -> ());
  let agreed = !agreed in
  tr {|{"ev":"end","t":%d,"agreed":%b,"converged":%b,"sent":%d,"dropped":%d,"retries":%d}|}
    !last_tick agreed !converged !sent !dropped !retries;
  Metrics.add c_sent !sent;
  Metrics.add c_dropped !dropped;
  Metrics.add c_retried !retries;
  if Metrics.is_enabled () then
    Metrics.observe h_ticks (float_of_int !last_tick);
  {
    agreed;
    converged = !converged;
    stats =
      {
        ticks = !last_tick;
        sent = !sent;
        delivered = !delivered;
        dropped = !dropped;
        duplicated = !duplicated;
        deduplicated = !deduplicated;
        retries = !retries;
        stale = !stale;
        crashes = !crashes;
        announcements = !announcements;
        acks = !acks;
        nacks = !nacks;
        aborts = !aborts;
      };
    final = !m;
    trace = Buffer.contents buf;
    injected_at = !injected_at;
    pre_change = !pre_change;
    rolled_back = !rolled_back;
    repairs = !repairs;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "ticks=%d sent=%d delivered=%d dropped=%d dup=%d dedup=%d retries=%d \
     stale=%d crashes=%d (announce=%d ack=%d nack=%d abort=%d)"
    s.ticks s.sent s.delivered s.dropped s.duplicated s.deduplicated s.retries
    s.stale s.crashes s.announcements s.acks s.nacks s.aborts
