(** Priority event queue over virtual time: events pop in [(time,
    insertion-seq)] order, so a simulation's schedule is a pure
    function of what was pushed — the backbone of replay determinism. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val add : 'a t -> at:int -> 'a -> int
(** Schedule at virtual time [at]; returns the unique insertion
    sequence number (a deterministic event id). *)

val pop : 'a t -> (int * int * 'a) option
(** Earliest [(time, seq, event)], removed. *)

val next_time : 'a t -> int option
