(** Fault profiles for the simulated transport: per-link
    drop/duplicate/delay-range (reordering), transient partitions, node
    crash+restart. Plain data — all random draws happen in the
    simulator against its seeded RNG, so [(seed, profile)] pins down
    the whole execution. Stock profiles keep links fair-loss. *)

type link = {
  drop_p : float;
  dup_p : float;
  delay_min : int;
  delay_max : int;
}

type partition = {
  from_tick : int;
  until_tick : int;
  isolated : string list;
}

type crash = { party : string; at : int; restart_at : int }

type inject = {
  inject_at : int;
      (** virtual tick at which the owner applies a seeded bad change
          to its own private process and announces it *)
  inject_seed : int;
      (** derives the rogue message name and its insertion point *)
}

type profile = {
  name : string;
  link : link;
  partitions : partition list;
  crashes : crash list;
  injects : inject list;
      (** seeded bad-change injections (the repair soak's fault class) *)
}

val perfect_link : link

val none : profile
(** Reliable, instantaneous, in-order — the oracle profile under which
    the simulator reproduces {!Chorev_choreography.Protocol.run}
    exactly. *)

val lossy : ?drop:float -> unit -> profile
val jittery : profile
val chaos : ?isolated:string list -> unit -> profile
val partitioned : ?from_tick:int -> ?until_tick:int -> string -> profile
val crashy : ?at:int -> ?restart_at:int -> string -> profile

val of_name : ?party:string -> string -> (profile, string) result
val names : string list

val with_inject : ?at:int -> seed:int -> profile -> profile
(** [profile] plus one seeded bad-change injection at [at] (default
    10) — how the repair soak decorates any stock profile. *)

val partitioned_at : profile -> tick:int -> string -> string -> bool
val pp : Format.formatter -> profile -> unit
