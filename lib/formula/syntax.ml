(** Syntax of the logical formulas used in aFSA state annotations.

    This implements Definition 1 of the paper: the constants [true] and
    [false] are formulas, variables over a finite set of messages are
    formulas, and formulas are closed under negation, conjunction and
    disjunction. Variables are message identifiers (we use the full label
    string ["B#A#orderOp"]; the paper's figures abbreviate to the bare
    operation name). *)

type t =
  | True
  | False
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
[@@deriving show]

(* ------------------------------------------------------------------ *)
(* Equality, ordering, hashing                                         *)
(* ------------------------------------------------------------------ *)

(* Equality with a physical fast path at every level: hash-consed
   formulas (below) are physically shared, so the recursion usually
   stops at the first node. *)
let rec equal a b =
  a == b
  ||
  match (a, b) with
  | True, True | False, False -> true
  | Var v, Var w -> String.equal v w
  | Not f, Not g -> equal f g
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
      equal a1 a2 && equal b1 b2
  | _ -> false

(* Constructor rank, matching the declaration order so the total order
   agrees with the one the derived comparison used to produce (sorted
   conjunctions/disjunctions in Simplify stay stable). *)
let rank = function
  | True -> 0
  | False -> 1
  | Var _ -> 2
  | Not _ -> 3
  | And _ -> 4
  | Or _ -> 5

(* Total order with the same physical fast path; never falls back to
   polymorphic compare. *)
let rec compare a b =
  if a == b then 0
  else
    match (a, b) with
    | True, True | False, False -> 0
    | Var v, Var w -> String.compare v w
    | Not f, Not g -> compare f g
    | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
        let c = compare a1 a2 in
        if c <> 0 then c else compare b1 b2
    | _ -> Stdlib.compare (rank a) (rank b)

(* Structural hash. [Hashtbl.hash] traverses a bounded number of
   meaningful nodes, so this is O(1) on large formulas while remaining
   deterministic for structurally equal values. *)
let hash (f : t) = Hashtbl.hash f

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

(* A weak set of canonical representatives: structurally equal formulas
   built through the smart constructors (or [share]) are physically
   equal, which makes [equal]/[compare] O(1) on the hot paths (product
   annotation combination, Simplify's sort/absorption, the [True]
   checks in the automata core). The table is weak, so representatives
   no longer referenced elsewhere are collected. *)
module HC = Weak.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* One table per domain: Weak.Make tables are not thread-safe, and the
   parallel pool runs formula-heavy tasks on worker domains. Losing
   physical sharing *across* domains is benign — [equal]/[compare] fall
   back to one structural step — while sharing stays maximal within
   each domain. *)
let hc_tbl_key = Domain.DLS.new_key (fun () -> HC.create 1024)
let hc f = HC.merge (Domain.DLS.get hc_tbl_key) f

(** [share f] returns the canonical (hash-consed) representative of
    [f], canonicalizing bottom-up. Structure-preserving: no rewriting
    happens, only sharing. *)
let rec share f =
  match f with
  | True | False -> f
  | Var _ -> hc f
  | Not g ->
      let g' = share g in
      hc (if g' == g then f else Not g')
  | And (a, b) ->
      let a' = share a and b' = share b in
      hc (if a' == a && b' == b then f else And (a', b'))
  | Or (a, b) ->
      let a' = share a and b' = share b in
      hc (if a' == a && b' == b then f else Or (a', b'))

(* Smart constructors perform only local, constant-level rewrites so that
   formula construction never explodes; full simplification lives in
   {!Simplify}. They hash-cons every node they build. *)

let tru = True
let fls = False
let var v = hc (Var v)

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> hc (Not f)

let and_ a b =
  match (a, b) with
  | True, f | f, True -> f
  | False, _ | _, False -> False
  | a, b -> hc (And (a, b))

let or_ a b =
  match (a, b) with
  | False, f | f, False -> f
  | True, _ | _, True -> True
  | a, b -> hc (Or (a, b))

(** [conj fs] is the conjunction of all formulas in [fs]; [True] if empty. *)
let conj fs = List.fold_left and_ True fs

(** [disj fs] is the disjunction of all formulas in [fs]; [False] if empty. *)
let disj fs = List.fold_left or_ False fs

(** Set of variable names. *)
module Vars = Set.Make (String)

let rec vars = function
  | True | False -> Vars.empty
  | Var v -> Vars.singleton v
  | Not f -> vars f
  | And (a, b) | Or (a, b) -> Vars.union (vars a) (vars b)

let vars_list f = Vars.elements (vars f)

(** Number of AST nodes. *)
let rec size = function
  | True | False | Var _ -> 1
  | Not f -> 1 + size f
  | And (a, b) | Or (a, b) -> 1 + size a + size b

(** [map_vars f phi] replaces every variable [v] by the formula [f v]. *)
let rec map_vars f = function
  | True -> True
  | False -> False
  | Var v -> f v
  | Not g -> not_ (map_vars f g)
  | And (a, b) -> and_ (map_vars f a) (map_vars f b)
  | Or (a, b) -> or_ (map_vars f a) (map_vars f b)

(** [rename f phi] renames every variable through [f]. *)
let rename f phi = map_vars (fun v -> var (f v)) phi

(** A formula is positive when it contains no negation. The annotations
    the paper uses (conjunctions of mandatory messages) are all positive;
    the emptiness fixpoint is exact only on positive formulas. *)
let rec is_positive = function
  | True | False | Var _ -> true
  | Not _ -> false
  | And (a, b) | Or (a, b) -> is_positive a && is_positive b

let rec fold ~tru ~fls ~var ~nt ~cj ~dj = function
  | True -> tru
  | False -> fls
  | Var v -> var v
  | Not f -> nt (fold ~tru ~fls ~var ~nt ~cj ~dj f)
  | And (a, b) ->
      cj (fold ~tru ~fls ~var ~nt ~cj ~dj a) (fold ~tru ~fls ~var ~nt ~cj ~dj b)
  | Or (a, b) ->
      dj (fold ~tru ~fls ~var ~nt ~cj ~dj a) (fold ~tru ~fls ~var ~nt ~cj ~dj b)
