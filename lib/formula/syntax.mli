(** Syntax of the logical formulas used in aFSA state annotations
    (Definition 1 of the paper): constants, variables over messages,
    negation, conjunction, disjunction. Variables are full label
    strings such as ["B#A#orderOp"]. *)

type t =
  | True
  | False
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t

val equal : t -> t -> bool
(** Structural equality with a physical-equality fast path at every
    level — O(1) on hash-consed (shared) formulas. *)

val compare : t -> t -> int
(** Total order (constructor rank, then lexicographic) with the same
    physical fast path; never uses polymorphic compare. *)

val hash : t -> int
(** Bounded-depth structural hash, compatible with {!equal}; suitable
    for [Hashtbl.Make]. *)

val share : t -> t
(** Canonical (hash-consed) representative: structurally equal formulas
    become physically equal. Structure-preserving. The smart
    constructors below already hash-cons everything they build. *)

val pp : Format.formatter -> t -> unit
val show : t -> string

(** {1 Smart constructors}

    Perform local constant folding only; see {!Simplify} for full
    simplification. *)

val tru : t
val fls : t
val var : string -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t

val conj : t list -> t
(** Conjunction of a list; [True] when empty. *)

val disj : t list -> t
(** Disjunction of a list; [False] when empty. *)

(** {1 Queries and transformations} *)

module Vars : Set.S with type elt = string

val vars : t -> Vars.t
val vars_list : t -> string list

val size : t -> int
(** Number of AST nodes. *)

val map_vars : (string -> t) -> t -> t
(** Replace every variable by a formula. *)

val rename : (string -> string) -> t -> t

val is_positive : t -> bool
(** No negation anywhere — the fragment on which the annotated
    emptiness fixpoint is exact. *)

val fold :
  tru:'a ->
  fls:'a ->
  var:(string -> 'a) ->
  nt:('a -> 'a) ->
  cj:('a -> 'a -> 'a) ->
  dj:('a -> 'a -> 'a) ->
  t ->
  'a
