(** Simplification and normal forms.

    [simplify] computes a canonical-ish form: negation normal form with
    flattened, sorted, duplicate-free conjunctions/disjunctions, constant
    folding, complement annihilation and absorption. It is not a full
    canonizer (no BDDs) but is idempotent and strong enough to give
    minimization a stable annotation key; exact equivalence checking is
    in {!Sat}. *)

open Syntax

(* Negation normal form. *)
let rec nnf = function
  | True -> True
  | False -> False
  | Var v -> Var v
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Not f -> nnf_neg f

and nnf_neg = function
  | True -> False
  | False -> True
  | Var v -> Not (Var v)
  | Not f -> nnf f
  | And (a, b) -> Or (nnf_neg a, nnf_neg b)
  | Or (a, b) -> And (nnf_neg a, nnf_neg b)

(* Flatten nested conjunctions (resp. disjunctions) into a list. *)
let rec flat_and acc = function
  | And (a, b) -> flat_and (flat_and acc a) b
  | f -> f :: acc

let rec flat_or acc = function
  | Or (a, b) -> flat_or (flat_or acc a) b
  | f -> f :: acc

let is_neg_of a b =
  match (a, b) with
  | Not x, y | y, Not x -> equal x y
  | _ -> false

let contains_complement fs =
  List.exists (fun a -> List.exists (fun b -> is_neg_of a b) fs) fs

(* [compare] here is {!Syntax.compare}: a proper total order with a
   physical fast path — on hash-consed operands the sort never recurses
   into shared subterms. *)
let sort_uniq fs = List.sort_uniq compare fs

let mem g fs = List.exists (equal g) fs

(* Absorption: in a conjunction, drop any disjunction that contains a
   conjunct as a member (a ∧ (a ∨ b) = a); dually for disjunction. *)
let absorb_and fs =
  List.filter
    (fun f ->
      match f with
      | Or _ ->
          let members = flat_or [] f in
          not (List.exists (fun g -> (not (equal g f)) && mem g members) fs)
      | _ -> true)
    fs

let absorb_or fs =
  List.filter
    (fun f ->
      match f with
      | And _ ->
          let members = flat_and [] f in
          not (List.exists (fun g -> (not (equal g f)) && mem g members) fs)
      | _ -> true)
    fs

let rec simp f =
  match f with
  | True | False | Var _ -> f
  | Not g -> not_ (simp g)
  | And _ ->
      let fs = flat_and [] f |> List.map simp in
      if mem False fs then False
      else
        let fs = List.filter (fun g -> not (equal g True)) fs |> sort_uniq in
        if contains_complement fs then False
        else conj (absorb_and fs)
  | Or _ ->
      let fs = flat_or [] f |> List.map simp in
      if mem True fs then True
      else
        let fs = List.filter (fun g -> not (equal g False)) fs |> sort_uniq in
        if contains_complement fs then True
        else disj (absorb_or fs)

(* Memo table for [simplify]: the algebra calls it once per product /
   subset / ε-closure state, almost always on a formula it has already
   seen (annotations are drawn from a small vocabulary). Results are
   hash-consed, and the result is memoized to itself so that
   re-simplifying an already-simplified formula is a single lookup.
   Bounded: the table is dropped wholesale if it ever grows past
   [memo_cap] (formula vocabularies in practice are tiny). *)
module Memo = Hashtbl.Make (struct
  type t = Syntax.t

  let equal = Syntax.equal
  let hash = Syntax.hash
end)

(* Per-domain, like the hash-consing table: worker domains build their
   own (equally hot) memo instead of racing on one Hashtbl. *)
let memo_key : Syntax.t Memo.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Memo.create 4096)

let memo_cap = 1 lsl 17

let c_hits = Chorev_obs.Metrics.counter "formula.simplify.hits"
let c_misses = Chorev_obs.Metrics.counter "formula.simplify.misses"

(** Simplify to a stable form: NNF, then bottom-up local simplification,
    iterated to a fixpoint (bounded). Memoized; the result is
    hash-consed (see {!Syntax.share}). *)
let simplify f =
  let memo = Domain.DLS.get memo_key in
  match Memo.find_opt memo f with
  | Some g ->
      Chorev_obs.Metrics.incr c_hits;
      g
  | None ->
      Chorev_obs.Metrics.incr c_misses;
      let rec go n f =
        if n = 0 then f
        else
          let f' = simp f in
          if equal f' f then f else go (n - 1) f'
      in
      let g = Syntax.share (go 8 (nnf f)) in
      if Memo.length memo >= memo_cap then Memo.reset memo;
      let f = Syntax.share f in
      Memo.replace memo f g;
      if not (g == f) then Memo.replace memo g g;
      g

(** Disjunctive normal form as a list of clauses, each clause a list of
    literals ([`Pos v] / [`Neg v]). Exponential in the worst case; guarded
    by [max_clauses] (default 4096, raises [Too_large] beyond). *)
exception Too_large

type literal = [ `Pos of string | `Neg of string ]

let dnf ?(max_clauses = 4096) f : literal list list =
  let rec go f : literal list list =
    match f with
    | True -> [ [] ]
    | False -> []
    | Var v -> [ [ `Pos v ] ]
    | Not (Var v) -> [ [ `Neg v ] ]
    | Not _ -> assert false (* NNF *)
    | Or (a, b) ->
        let ca = go a and cb = go b in
        let r = ca @ cb in
        if List.length r > max_clauses then raise Too_large else r
    | And (a, b) ->
        let ca = go a and cb = go b in
        if List.length ca * List.length cb > max_clauses then raise Too_large;
        List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) cb) ca
  in
  go (nnf f)

(* A DNF clause is consistent unless it contains v and ¬v. *)
let clause_consistent lits =
  not
    (List.exists
       (fun l ->
         match l with
         | `Pos v -> List.mem (`Neg v) lits
         | `Neg v -> List.mem (`Pos v) lits)
       lits)
