(** aFSA interning: structurally equal automata collapse to one
    physical representative per domain, identified by their canonical
    {!Chorev_afsa.Fingerprint}.

    Mirrors the hash-consing of [Chorev_formula.Syntax]: a [Weak.Make]
    table per domain (weak tables are not thread-safe, and a shared
    automaton's lazy index must not be built from two domains — see
    [Chorev_parallel.Pool]), accessed through [Domain.DLS]. The weak
    semantics means interning never leaks: an automaton no longer
    reachable elsewhere is collected, table entry included.

    Interned ids are small per-domain ints assigned per distinct
    fingerprint; they are stable for the lifetime of the domain (ids
    are never recycled even after collection) and are what memo tables
    key on conceptually — in practice the memo layer keys on the digest
    strings themselves, which are domain-independent. *)

module Afsa = Chorev_afsa.Afsa
module Fingerprint = Chorev_afsa.Fingerprint

module Key = struct
  type t = Afsa.t

  let equal a b = Fingerprint.equal a b
  let hash a = Hashtbl.hash (Fingerprint.digest a)
end

module W = Weak.Make (Key)

type tables = {
  weak : W.t;
  ids : (string, int) Hashtbl.t; (* digest -> interned id *)
  mutable next_id : int;
}

let dls =
  Domain.DLS.new_key (fun () ->
      { weak = W.create 512; ids = Hashtbl.create 512; next_id = 0 })

(** The canonical physical representative of [a] in this domain:
    the first automaton interned with [a]'s fingerprint still alive,
    else [a] itself (which becomes the representative). *)
let canonical a =
  let t = Domain.DLS.get dls in
  W.merge t.weak a

(** Small per-domain id of [a]'s fingerprint (assigned on first use,
    never recycled). Two automata share an id iff they are structurally
    equal. *)
let id a =
  let t = Domain.DLS.get dls in
  let d = Fingerprint.digest a in
  match Hashtbl.find_opt t.ids d with
  | Some i -> i
  | None ->
      let i = t.next_id in
      t.next_id <- i + 1;
      Hashtbl.add t.ids d i;
      i

(** Is some automaton with this structure currently interned here? *)
let mem a = W.mem (Domain.DLS.get dls).weak a

(** Live interned automata in this domain (an upper bound: weak entries
    may be collected between the count and its use). *)
let count () = W.count (Domain.DLS.get dls).weak

(* ------------------------------------------------------------------ *)
(* Identity for the process side of the dirty-region tracker.          *)
(* ------------------------------------------------------------------ *)

(** Canonical digest of a private process: MD5 of its s-expression
    rendering, which round-trips exactly (see [Chorev_bpel.Sexp]).
    Structure-sensitive the same way aFSA fingerprints are: equal
    digests ⟺ equal processes as written. *)
(* The serialization is linear in the process size and runs once per
   partner per round on the coordinator's hot path, so digests are
   memoized per physical process (processes are immutable and shared
   across rounds by the model). Weak keys: the memo never keeps a
   process alive. *)
module Proc_tbl = Ephemeron.K1.Make (struct
  type t = Chorev_bpel.Process.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let proc_digests = Domain.DLS.new_key (fun () -> Proc_tbl.create 64)

let process_digest (p : Chorev_bpel.Process.t) =
  let tbl = Domain.DLS.get proc_digests in
  match Proc_tbl.find_opt tbl p with
  | Some d -> d
  | None ->
      let d = Digest.string (Chorev_bpel.Sexp.process_to_string p) in
      Proc_tbl.add tbl p d;
      d
