(** Round-level cache of bilateral consistency verdicts, keyed by
    public-process fingerprints. Coordinator-confined (not thread-safe):
    look up before fanning out, store after the barrier. *)

type verdict = bool * Chorev_afsa.Label.t list option
(** (consistent?, witness) — plain data, safe to share. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 pairs. *)

val find_pair : t -> fp_a:string -> fp_b:string -> verdict option
val set_pair : t -> fp_a:string -> fp_b:string -> verdict -> unit
val stats : t -> Lru.stats
val clear : t -> unit
