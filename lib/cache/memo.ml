(** Memoized entry points of the aFSA algebra, keyed by canonical
    fingerprints.

    Each domain owns one set of bounded {!Lru} tables (DLS, like the
    formula hash-consing): results never cross domains, so the lazy
    index of a memoized automaton is only ever touched from the domain
    that computed it. Result automata are passed through
    {!Intern.canonical}, which both de-duplicates storage and
    pre-computes their fingerprints — results are minimized (or
    canonically numbered) automata, so fingerprints taken here are
    language-canonical keys for downstream lookups.

    {b Budget interaction.} The wrappers consult the cache only when the
    ambient {!Chorev_guard.Budget} is the unlimited singleton. Under a
    finite budget they call the raw operation unconditionally: a memo
    hit would skip the operation's fuel ticks, making fuel spend depend
    on cache history (and, with per-domain tables, on the pool size) —
    breaking the determinism invariant that a given (input, fuel) pair
    trips identically everywhere. Budgets therefore tick on cache
    misses only, trivially: there are no cache hits under a limited
    budget. *)

module Afsa = Chorev_afsa.Afsa
module Fingerprint = Chorev_afsa.Fingerprint
module Label = Chorev_afsa.Label
module Budget = Chorev_guard.Budget

let default_capacity = 512

type tables = {
  tau : (string * string, Afsa.t) Lru.t; (* observer, fp *)
  binop : (char * string * string, Afsa.t) Lru.t; (* op tag, fp, fp *)
  unop : (char * string, Afsa.t) Lru.t; (* op tag, fp *)
  gen : (string, Afsa.t * Chorev_mapping.Table.t) Lru.t; (* process digest *)
  pair : (string * string, bool * Label.t list option) Lru.t;
      (* bilateral consistency verdicts on (fp, fp) *)
}

let make_tables () =
  {
    tau = Lru.create ~capacity:default_capacity;
    binop = Lru.create ~capacity:default_capacity;
    unop = Lru.create ~capacity:default_capacity;
    gen = Lru.create ~capacity:default_capacity;
    pair = Lru.create ~capacity:default_capacity;
  }

let dls = Domain.DLS.new_key make_tables
let tables () = Domain.DLS.get dls

(** Memoize only when no fuel/deadline/cancellation is in force. *)
let active () = Budget.is_unlimited (Budget.ambient ())

let tau ~observer a =
  if not (active ()) then Chorev_afsa.View.tau ~observer a
  else
    let t = tables () in
    Lru.get t.tau (observer, Fingerprint.digest a) (fun () ->
        Intern.canonical (Chorev_afsa.View.tau ~observer a))

let binop tag raw a b =
  if not (active ()) then raw a b
  else
    let t = tables () in
    Lru.get t.binop
      (tag, Fingerprint.digest a, Fingerprint.digest b)
      (fun () -> Intern.canonical (raw a b))

let intersect a b = binop 'i' (fun a b -> Chorev_afsa.Ops.intersect a b) a b
let difference a b = binop 'd' (fun a b -> Chorev_afsa.Ops.difference a b) a b
let union a b = binop 'u' (fun a b -> Chorev_afsa.Ops.union a b) a b

let unop tag raw a =
  if not (active ()) then raw a
  else
    let t = tables () in
    Lru.get t.unop (tag, Fingerprint.digest a) (fun () ->
        Intern.canonical (raw a))

let minimize a = unop 'm' (fun a -> Chorev_afsa.Minimize.minimize a) a
let determinize a = unop 'D' (fun a -> Chorev_afsa.Determinize.determinize a) a

let generate p =
  if not (active ()) then Chorev_mapping.Public_gen.generate p
  else
    let t = tables () in
    Lru.get t.gen (Intern.process_digest p) (fun () ->
        let public, table = Chorev_mapping.Public_gen.generate p in
        (Intern.canonical public, table))

let public p = fst (generate p)

(** Bilateral consistency verdict (consistent?, witness) of two public
    processes — the intersection automaton itself is not kept. *)
let check_verdict a b =
  if not (active ()) then
    let r = Chorev_afsa.Consistency.check a b in
    (r.Chorev_afsa.Consistency.consistent, r.Chorev_afsa.Consistency.witness)
  else
    let t = tables () in
    Lru.get t.pair
      (Fingerprint.digest a, Fingerprint.digest b)
      (fun () ->
        let r = Chorev_afsa.Consistency.check a b in
        ( r.Chorev_afsa.Consistency.consistent,
          r.Chorev_afsa.Consistency.witness ))

let consistent a b = fst (check_verdict a b)

(** Hit/miss/eviction statistics of this domain's tables. *)
let stats () =
  let t = tables () in
  [
    ("tau", Lru.stats t.tau);
    ("binop", Lru.stats t.binop);
    ("unop", Lru.stats t.unop);
    ("generate", Lru.stats t.gen);
    ("pair", Lru.stats t.pair);
  ]

(** Drop every memoized result in this domain (for benchmarks that
    need a cold start; stats are kept). *)
let reset () =
  let t = tables () in
  Lru.clear t.tau;
  Lru.clear t.binop;
  Lru.clear t.unop;
  Lru.clear t.gen;
  Lru.clear t.pair
