(** Per-domain aFSA interning over canonical fingerprints: structurally
    equal automata collapse to one physical representative (weak table,
    so interning never leaks). Same DLS discipline as the formula
    hash-consing — nothing here is shared across domains. *)

val canonical : Chorev_afsa.Afsa.t -> Chorev_afsa.Afsa.t
(** The domain's physical representative for this structure (the
    argument itself on first sight). *)

val id : Chorev_afsa.Afsa.t -> int
(** Small per-domain id of the structure, assigned on first use and
    never recycled. Equal ids ⟺ structurally equal (within a domain). *)

val mem : Chorev_afsa.Afsa.t -> bool
(** Is an automaton with this structure interned in this domain? *)

val count : unit -> int
(** Live interned automata in this domain (upper bound). *)

val process_digest : Chorev_bpel.Process.t -> string
(** Canonical MD5 digest of a private process (via its exact
    s-expression round-trip). *)
