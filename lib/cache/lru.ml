(** A bounded LRU map: Hashtbl + intrusive doubly-linked recency list.
    All operations are O(1); eviction drops the least recently used
    binding. Not thread-safe — the cache layer keeps one instance per
    domain (DLS) or confines an instance to the sequential coordinator,
    mirroring the hash-consing discipline of [Chorev_formula].

    Every instance keeps its own hit/miss/eviction counts (plain ints,
    always on — the bench reports reuse rates even with metrics
    collection off) and additionally bumps the global
    [cache.{hit,miss,evict}] counters of {!Chorev_obs.Metrics}. *)

module Metrics = Chorev_obs.Metrics

let m_hit = Metrics.counter "cache.hit"
let m_miss = Metrics.counter "cache.miss"
let m_evict = Metrics.counter "cache.evict"

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* towards MRU *)
  mutable next : ('k, 'v) node option; (* towards LRU *)
}

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; size : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    capacity;
    tbl = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl

let stats (t : ('k, 'v) t) =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; size = length t }

(* Detach [n] from the recency list (it must be in it). *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      t.hits <- t.hits + 1;
      Metrics.incr m_hit;
      if
        match t.head with Some h -> h != n | None -> true
      then begin
        unlink t n;
        push_front t n
      end;
      Some n.value
  | None ->
      t.misses <- t.misses + 1;
      Metrics.incr m_miss;
      None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      t.evictions <- t.evictions + 1;
      Metrics.incr m_evict

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.value <- v;
      if match t.head with Some h -> h != n | None -> true then begin
        unlink t n;
        push_front t n
      end
  | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n;
      if Hashtbl.length t.tbl > t.capacity then evict_lru t

(** Memoizing find-or-compute. *)
let get t k compute =
  match find t k with
  | Some v -> v
  | None ->
      let v = compute () in
      add t k v;
      v

let mem t k = Hashtbl.mem t.tbl k

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

(* MRU-first keys, for tests and debugging. *)
let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
