(** The shared round-level cache of an evolution session: bilateral
    consistency verdicts keyed by the fingerprints of the two public
    processes involved. Owned by the sequential coordinator
    ([Evolution.run] / [Consistency.check_all]) — it is {e not}
    thread-safe and must never be touched from inside a pool task; the
    coordinator fingerprints inputs before fanning out and stores
    results after the barrier, which is what makes unchanged partners'
    verdicts reusable verbatim across rounds (dirty-region tracking:
    a pair is re-checked only when one of its fingerprints moved). *)

module Label = Chorev_afsa.Label

type verdict = bool * Label.t list option (* consistent?, witness *)

type t = { pairs : (string * string, verdict) Lru.t }

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  { pairs = Lru.create ~capacity }

let find_pair t ~fp_a ~fp_b = Lru.find t.pairs (fp_a, fp_b)
let set_pair t ~fp_a ~fp_b v = Lru.add t.pairs (fp_a, fp_b) v
let stats t = Lru.stats t.pairs
let clear t = Lru.clear t.pairs
