(** Bounded LRU map (Hashtbl + intrusive recency list, O(1) ops). Not
    thread-safe: keep one instance per domain or confine it to the
    sequential coordinator. Each instance counts its own hits, misses
    and evictions (always on) and bumps the global
    [cache.{hit,miss,evict}] {!Chorev_obs.Metrics} counters. *)

type ('k, 'v) t

type stats = { hits : int; misses : int; evictions : int; size : int }

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int
val stats : ('k, 'v) t -> stats

val find : ('k, 'v) t -> 'k -> 'v option
(** Counts a hit (and refreshes recency) or a miss. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite; evicts the least recently used binding when
    the capacity is exceeded. *)

val get : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Find-or-compute-and-insert. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Pure lookup: no recency or stats effect. *)

val clear : ('k, 'v) t -> unit
(** Drop every binding (stats are kept). *)

val keys : ('k, 'v) t -> 'k list
(** Keys, most recently used first. *)
