(** Memoized aFSA algebra entry points, keyed by canonical fingerprints
    in per-domain bounded {!Lru} tables. Results are interned (and so
    carry pre-computed fingerprints). Every wrapper degrades to the raw
    operation when the ambient {!Chorev_guard.Budget} is limited, so
    fuel accounting under finite budgets is byte-identical with and
    without the cache (budgets tick on misses only — and under a
    limited budget everything is a miss). *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label

val active : unit -> bool
(** Is memoization in force right now (ambient budget unlimited)? *)

val tau : observer:string -> Afsa.t -> Afsa.t
(** Memoized {!Chorev_afsa.View.tau}. *)

val intersect : Afsa.t -> Afsa.t -> Afsa.t
val difference : Afsa.t -> Afsa.t -> Afsa.t
val union : Afsa.t -> Afsa.t -> Afsa.t
(** Memoized {!Chorev_afsa.Ops}. *)

val minimize : Afsa.t -> Afsa.t
val determinize : Afsa.t -> Afsa.t

val generate : Chorev_bpel.Process.t -> Afsa.t * Chorev_mapping.Table.t
(** Memoized {!Chorev_mapping.Public_gen.generate}, keyed by
    {!Intern.process_digest}. *)

val public : Chorev_bpel.Process.t -> Afsa.t

val check_verdict : Afsa.t -> Afsa.t -> bool * Label.t list option
(** Memoized bilateral consistency verdict (consistent?, witness) —
    the intersection automaton is not retained. *)

val consistent : Afsa.t -> Afsa.t -> bool

val stats : unit -> (string * Lru.stats) list
(** This domain's per-table hit/miss/eviction statistics. *)

val reset : unit -> unit
(** Clear this domain's tables (stats kept). *)
