(** Synchronous choreography execution engine.

    The paper's aFSA model assumes synchronous communication ("since
    Web services often use synchronous communication based on the HTTP
    protocol", Sec. 3.2): a message exchange is a joint step of sender
    and receiver. This engine executes a set of public processes
    jointly: a step on label [S#R#msg] is enabled when both the
    sender's and the receiver's automata have the transition from their
    current states (parties not involved don't move). The engine is
    what lets us *validate* the framework's central claim — bilateral
    consistency ⇔ deadlock-free interaction (see {!Conformance}). *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
module Sym = Chorev_afsa.Sym
module ISet = Afsa.ISet

type party_state = { party : string; automaton : Afsa.t; state : int }

type config = party_state list

type status =
  | Completed  (** every party is in a final state *)
  | Deadlock  (** no step enabled and not completed *)
  | Running

type system = { parties : (string * Afsa.t) list }

let make parties = { parties }

let initial (s : system) : config =
  List.map
    (fun (party, automaton) ->
      { party; automaton; state = Afsa.start automaton })
    s.parties

let find_party (c : config) p = List.find_opt (fun ps -> String.equal ps.party p) c

(* ε-closure of a party's current state set is not needed: generated
   publics are ε-free; we still follow ε-edges defensively via one-step
   closure when looking for moves. *)
let targets automaton state l = Afsa.step automaton state (Sym.L l)

(** Steps enabled in a configuration: [(label, next configuration)]. A
    label both of whose endpoints are parties of the system needs both
    to move; a label with an endpoint outside the system (an external
    observer's message) is not enabled. *)
let enabled (c : config) : (Label.t * config) list =
  let labels =
    List.concat_map (fun ps -> Afsa.alphabet ps.automaton) c
    |> List.sort_uniq Label.compare
  in
  List.concat_map
    (fun (l : Label.t) ->
      match (find_party c l.sender, find_party c l.receiver) with
      | Some s, Some r ->
          let st = ISet.elements (targets s.automaton s.state l) in
          let rt = ISet.elements (targets r.automaton r.state l) in
          List.concat_map
            (fun s' ->
              List.map
                (fun r' ->
                  let c' =
                    List.map
                      (fun ps ->
                        if String.equal ps.party l.sender then
                          { ps with state = s' }
                        else if String.equal ps.party l.receiver then
                          { ps with state = r' }
                        else ps)
                      c
                  in
                  (l, c'))
                rt)
            st
      | _ -> [])
    labels

let completed (c : config) =
  List.for_all (fun ps -> Afsa.is_final ps.automaton ps.state) c

let status c =
  if completed c then Completed
  else if enabled c = [] then Deadlock
  else Running

(* ------------------------------------------------------------------ *)
(* Exhaustive exploration                                              *)
(* ------------------------------------------------------------------ *)

type exploration = {
  configurations : int;
  deadlocks : config list;
  completions : int;
  truncated : bool;  (** state-space bound hit *)
}

let key (c : config) = List.map (fun ps -> (ps.party, ps.state)) c

let c_explorations = Chorev_obs.Metrics.counter "runtime.explore.runs"
let c_configurations = Chorev_obs.Metrics.counter "runtime.explore.configurations"

(** Exhaustive BFS over the joint state space (bounded by
    [max_configs], default 100_000). Collects deadlocked
    configurations. *)
let explore ?(max_configs = 100_000) (s : system) : exploration =
  Chorev_obs.Metrics.incr c_explorations;
  Chorev_obs.Obs.span "explore"
    ~attrs:[ ("parties", Chorev_obs.Sink.Int (List.length s.parties)) ]
  @@ fun () ->
  let seen = Hashtbl.create 256 in
  let q = Queue.create () in
  let c0 = initial s in
  Hashtbl.add seen (key c0) ();
  Queue.add c0 q;
  let deadlocks = ref [] in
  let completions = ref 0 in
  let truncated = ref false in
  while not (Queue.is_empty q) do
    let c = Queue.pop q in
    (match status c with
    | Completed -> incr completions
    | Deadlock -> deadlocks := c :: !deadlocks
    | Running ->
        List.iter
          (fun (_, c') ->
            let k = key c' in
            if not (Hashtbl.mem seen k) then
              if Hashtbl.length seen >= max_configs then truncated := true
              else begin
                Hashtbl.add seen k ();
                Queue.add c' q
              end)
          (enabled c));
    (* a completed configuration may still have enabled steps (loops
       past a final state): explore them too *)
    if status c = Completed then
      List.iter
        (fun (_, c') ->
          let k = key c' in
          if not (Hashtbl.mem seen k) then
            if Hashtbl.length seen >= max_configs then truncated := true
            else begin
              Hashtbl.add seen k ();
              Queue.add c' q
            end)
        (enabled c)
  done;
  Chorev_obs.Metrics.add c_configurations (Hashtbl.length seen);
  {
    configurations = Hashtbl.length seen;
    deadlocks = List.rev !deadlocks;
    completions = !completions;
    truncated = !truncated;
  }

(** Can the system reach a configuration where every party is final? *)
let can_complete ?max_configs s =
  let e = explore ?max_configs s in
  e.completions > 0

(** Is the system deadlock-free (no reachable stuck non-final
    configuration)? *)
let deadlock_free ?max_configs s =
  let e = explore ?max_configs s in
  e.deadlocks = []

(* ------------------------------------------------------------------ *)
(* Random runs                                                         *)
(* ------------------------------------------------------------------ *)

type run = {
  trace : Label.t list;
  outcome : status;  (** [Running] when [max_steps] was hit *)
}

(** One random run with a seeded PRNG (deterministic per seed). An
    explicit [?rng] overrides the seed-derived state so composed soaks
    (e.g. sim workloads fanned over the domain pool) can thread one
    stream deterministically. *)
let random_run ?rng ?(max_steps = 1_000) ~seed (s : system) : run =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let rec go c trace steps =
    if steps >= max_steps then { trace = List.rev trace; outcome = Running }
    else
      match enabled c with
      | [] ->
          {
            trace = List.rev trace;
            outcome = (if completed c then Completed else Deadlock);
          }
      | moves ->
          (* stop at completion with probability 1/2 so finite traces
             are produced for looping protocols *)
          if completed c && Random.State.bool rng then
            { trace = List.rev trace; outcome = Completed }
          else
            let l, c' = List.nth moves (Random.State.int rng (List.length moves)) in
            go c' (l :: trace) (steps + 1)
  in
  go (initial s) [] 0

let pp_config ppf c =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any "; ") (fun ppf ps ->
         Fmt.pf ppf "%s@%d" ps.party ps.state))
    c
