(** Synchronous choreography execution: a step on [S#R#msg] is a joint
    move of sender and receiver (Sec. 3.2's communication model). Used
    to validate consistency ⇔ deadlock-freedom operationally. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label

type party_state = { party : string; automaton : Afsa.t; state : int }
type config = party_state list
type status = Completed | Deadlock | Running
type system

val make : (string * Afsa.t) list -> system
val initial : system -> config
val enabled : config -> (Label.t * config) list
val completed : config -> bool
val status : config -> status
val key : config -> (string * int) list

type exploration = {
  configurations : int;
  deadlocks : config list;
  completions : int;
  truncated : bool;
}

val explore : ?max_configs:int -> system -> exploration
(** Exhaustive BFS over the joint state space (default bound
    100_000). *)

val can_complete : ?max_configs:int -> system -> bool
val deadlock_free : ?max_configs:int -> system -> bool

type run = { trace : Label.t list; outcome : status }

val random_run :
  ?rng:Random.State.t -> ?max_steps:int -> seed:int -> system -> run
(** Deterministic per seed. [?rng] overrides the seed-derived state:
    pass a caller-owned [Random.State] to thread one stream through
    composed runs (each domain of a pool fan-out must own its own
    state). *)

val pp_config : Format.formatter -> config -> unit
