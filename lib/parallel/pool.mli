(** A fixed-size domain pool for fanning out independent work
    (per-pair consistency checks, per-partner propagation rounds,
    workload sweeps) across OCaml 5 domains.

    Design constraints, in order:

    - {b Determinism.} [map] preserves input order and [map_reduce]
      folds results in input order, so parallel runs return values
      structurally equal to sequential ones. Tasks must be pure up to
      the domain-local caches of the lower layers (formula hash-consing
      and simplification memoization are per-domain; automata handed to
      several domains should be passed through {!Chorev_afsa.Afsa.copy}
      so each domain builds its own derived index).
    - {b Zero-cost sequential path.} A pool of size 1 (the default when
      neither [CHOREV_DOMAINS] nor [--jobs] nor {!set_default_size}
      says otherwise) never spawns a domain and [map] is literally
      [List.map].
    - {b No nested parallelism.} A [map] issued from inside a pool task
      runs sequentially in that task's domain, so composed layers
      (evolution over consistency) cannot deadlock the pool.

    Observability: each executed chunk runs inside a [parallel.chunk]
    span tagged with a [domain] attribute; the caller's ambient sink is
    propagated to worker domains behind a lock (see
    {!Chorev_obs.Sink.synchronized}). Metrics:
    [parallel.pool.{tasks,items}], the occupancy histogram
    [parallel.pool.occupancy], and per-domain task counters
    [parallel.pool.domainN.tasks]. *)

type t

val sequential : t
(** The size-1 pool: no domains, [map] = [List.map]. *)

val create : int -> t
(** [create n] spawns [n - 1] worker domains (the calling domain is the
    [n]-th worker while a [map] is in flight). [n <= 1] returns
    {!sequential}. Pools are cheap to keep around and expensive to
    create; prefer {!sized}. *)

val sized : int -> t
(** Process-wide pool registry: [sized n] returns the cached pool of
    size [n], creating it on first use. All pools are shut down at
    process exit. *)

val size : t -> int

val shutdown : t -> unit
(** Terminate the worker domains (idempotent). The pool must be idle. *)

val default_size : unit -> int
(** Size used when [map] is called without [?pool]: the last
    {!set_default_size} if any, else the [CHOREV_DOMAINS] environment
    variable, else 1 (sequential). *)

val set_default_size : int -> unit
(** Set the process-wide default size (what the [--jobs N] CLI flag
    does). Clamped to at least 1. *)

val default : unit -> t
(** [sized (default_size ())]. *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. Work is split into contiguous chunks
    (several per domain, to absorb imbalance); the calling domain
    executes chunks alongside the workers. The first exception raised
    by any task is re-raised in the caller after the batch drains.
    Without [?pool], uses {!default}. *)

val map_reduce :
  ?pool:t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
(** [map_reduce ~map ~reduce init xs]: parallel {!map}, then a
    sequential in-order fold — deterministic even for non-commutative
    [reduce]. *)

val in_worker : unit -> bool
(** Is the current domain executing a pool task? (Nested [map]s check
    this to fall back to sequential execution.) *)
