(** Fixed-size domain pool (see pool.mli). *)

module Obs = Chorev_obs.Obs
module Sink = Chorev_obs.Sink
module Metrics = Chorev_obs.Metrics

let c_tasks = Metrics.counter "parallel.pool.tasks"
let c_items = Metrics.counter "parallel.pool.items"
let h_occupancy = Metrics.histogram "parallel.pool.occupancy"

type task = unit -> unit

type shared = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable stop : bool;
}

type dpool = {
  n : int;  (** total workers, including the caller during a map *)
  shared : shared;
  workers : unit Domain.t list;  (** n - 1 spawned domains *)
  mutable alive : bool;
}

type t = Sequential | Domains of dpool

let sequential = Sequential
let size = function Sequential -> 1 | Domains d -> d.n

(* Reentrancy guard: set while this domain executes a pool task. A map
   issued from inside a task must not block on the same queue (the
   workers may all be busy with the enclosing batch), so it runs
   sequentially in place. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

let run_task_guarded task =
  Domain.DLS.set in_worker_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker_key false) task

let pop_or_wait sh =
  Mutex.protect sh.lock (fun () ->
      let rec loop () =
        if sh.stop then None
        else
          match Queue.take_opt sh.queue with
          | Some t -> Some t
          | None ->
              Condition.wait sh.nonempty sh.lock;
              loop ()
      in
      loop ())

let worker_loop sh =
  let rec loop () =
    match pop_or_wait sh with
    | None -> ()
    | Some task ->
        (* Tasks capture their own exception handling; a raise here
           would kill the domain silently. *)
        (try run_task_guarded task with _ -> ());
        loop ()
  in
  loop ()

let create n =
  if n <= 1 then Sequential
  else begin
    let shared =
      {
        lock = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        stop = false;
      }
    in
    let workers =
      List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop shared))
    in
    Domains { n; shared; workers; alive = true }
  end

let shutdown = function
  | Sequential -> ()
  | Domains d ->
      if d.alive then begin
        d.alive <- false;
        Mutex.protect d.shared.lock (fun () ->
            d.shared.stop <- true;
            Condition.broadcast d.shared.nonempty);
        List.iter Domain.join d.workers
      end

(* Process-wide registry so repeated [map ~pool:(sized 4)] calls share
   one set of domains. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_lock = Mutex.create ()

let sized n =
  if n <= 1 then Sequential
  else
    Mutex.protect registry_lock (fun () ->
        match Hashtbl.find_opt registry n with
        | Some p -> p
        | None ->
            let p = create n in
            Hashtbl.add registry n p;
            p)

let () =
  at_exit (fun () ->
      let pools =
        Mutex.protect registry_lock (fun () ->
            Hashtbl.fold (fun _ p acc -> p :: acc) registry [])
      in
      List.iter shutdown pools)

let default_size_ref = ref None

let env_size () =
  match Sys.getenv_opt "CHOREV_DOMAINS" with
  | None -> None
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let default_size () =
  match !default_size_ref with
  | Some n -> n
  | None -> ( match env_size () with Some n -> n | None -> 1)

let set_default_size n = default_size_ref := Some (max 1 n)
let default () = sized (default_size ())

(* Split [arr] into [pieces] contiguous chunks of near-equal length,
   returned as (start, len) pairs. *)
let chunk_bounds len pieces =
  let pieces = max 1 (min pieces len) in
  let base = len / pieces and extra = len mod pieces in
  List.init pieces (fun i ->
      let start = (i * base) + min i extra in
      let stop = ((i + 1) * base) + min (i + 1) extra in
      (start, stop - start))

let map_domains d f xs =
  let input = Array.of_list xs in
  let len = Array.length input in
  if len = 0 then []
  else begin
    Metrics.incr c_tasks;
    Metrics.add c_items len;
    Metrics.observe h_occupancy (float_of_int (min d.n len));
    let output = Array.make len None in
    (* Several chunks per worker absorbs imbalance between items
       without giving up contiguity (cache friendliness, low queue
       traffic). *)
    let chunks = chunk_bounds len (4 * d.n) in
    let remaining = Atomic.make (List.length chunks) in
    let failure = Atomic.make None in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    let caller_sink = Obs.current_sink () in
    let shared_sink =
      if caller_sink == Sink.silent then Sink.silent
      else Sink.synchronized caller_sink
    in
    let run_chunk (start, n_items) =
      let body () =
        let domain_idx = (Domain.self () :> int) in
        let c_domain =
          Metrics.counter
            (Printf.sprintf "parallel.pool.domain%d.tasks" domain_idx)
        in
        Metrics.incr c_domain;
        Obs.span "parallel.chunk"
          ~attrs:
            [ ("domain", Sink.Int domain_idx); ("items", Sink.Int n_items) ]
          (fun () ->
            for i = start to start + n_items - 1 do
              output.(i) <- Some (f input.(i))
            done)
      in
      (try
         if shared_sink == Sink.silent then body ()
         else Obs.with_sink shared_sink body
       with exn ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set failure None (Some (exn, bt))));
      if Atomic.fetch_and_add remaining (-1) = 1 then
        Mutex.protect done_lock (fun () -> Condition.signal done_cond)
    in
    (* Enqueue every chunk, then help drain the queue from this domain;
       when the queue is empty, wait for the workers to finish theirs. *)
    Mutex.protect d.shared.lock (fun () ->
        List.iter (fun c -> Queue.add (fun () -> run_chunk c) d.shared.queue)
          chunks;
        Condition.broadcast d.shared.nonempty);
    let rec help () =
      match
        Mutex.protect d.shared.lock (fun () -> Queue.take_opt d.shared.queue)
      with
      | Some task ->
          run_task_guarded task;
          help ()
      | None -> ()
    in
    help ();
    Mutex.protect done_lock (fun () ->
        while Atomic.get remaining > 0 do
          Condition.wait done_cond done_lock
        done);
    (match Atomic.get failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.to_list output
    |> List.map (function Some v -> v | None -> assert false)
  end

let map ?pool f xs =
  let pool = match pool with Some p -> p | None -> default () in
  match pool with
  | Sequential -> List.map f xs
  | Domains _ when in_worker () -> List.map f xs
  | Domains d -> map_domains d f xs

let map_reduce ?pool ~map:fm ~reduce init xs =
  List.fold_left reduce init (map ?pool fm xs)
