(** The per-figure reproduction report: every figure and table of the
    paper re-derived by the library, with the paper's claim and our
    measured outcome side by side. Consumed by the [chorev experiments]
    CLI command and recorded in EXPERIMENTS.md; the bench harness
    regenerates the same artifacts under timing. *)

module C_afsa = Chorev_afsa
module Afsa = C_afsa.Afsa
module P = Procurement

type row = {
  id : string;  (** e.g. ["fig5"] *)
  what : string;
  paper : string;  (** what the paper reports *)
  measured : string;  (** what this implementation produces *)
  ok : bool;
}

let gen = Chorev_mapping.Public_gen.public
let tau = C_afsa.View.tau

let row id what paper measured ok = { id; what; paper; measured; ok }

let b_view p = tau ~observer:"B" (gen p)

let all () : row list =
  let pub_buyer, table_buyer =
    Chorev_mapping.Public_gen.generate P.buyer_process
  in
  let pub_acc = gen P.accounting_process in
  let pub_log = gen P.logistics_process in
  let choreo =
    Chorev_choreography.Model.of_processes (List.map snd P.parties)
  in
  [
    (let ok = Chorev_choreography.Consistency.consistent choreo in
     row "fig1" "procurement choreography (3 parties)"
       "B–A and A–L interactions, consistent conversation"
       (Printf.sprintf "%d parties, %d bilateral pairs, consistent=%b"
          (List.length (Chorev_choreography.Model.parties choreo))
          (List.length (Chorev_choreography.Model.pairs choreo))
          ok)
       ok);
    (let p = P.accounting_process in
     let ok =
       Chorev_bpel.Validate.is_valid p
       && List.length (Chorev_bpel.Process.alphabet p) = 10
     in
     row "fig2" "accounting private BPEL process"
       "receive order, forward to logistics, confirm, serve tracking loop"
       (Printf.sprintf "valid BPEL, %d activities, 10 wire labels"
          (Chorev_bpel.Process.size p))
       ok);
    (let p = P.buyer_process in
     let blocks =
       [
         "While:tracking"; "Switch:termination?"; "Sequence:cond continue";
         "Sequence:cond terminate";
       ]
     in
     let ok =
       Chorev_bpel.Validate.is_valid p
       && List.for_all
            (fun n ->
              Chorev_bpel.Edit.find_block ~name:n (Chorev_bpel.Process.body p)
              <> None)
            blocks
     in
     row "fig3" "buyer private BPEL process + block structure"
       "order, delivery, tracking loop with termination switch"
       "valid BPEL; all four blocks of the Fig. 3 inset present" ok);
    (let rep =
       match
         Chorev_choreography.Evolution.run choreo ~owner:"A"
           ~changed:P.accounting_cancel
       with
       | Ok r -> r
       | Error (`Unknown_party p) -> failwith ("unknown party " ^ p)
     in
     let ok = rep.Chorev_choreography.Evolution.consistent in
     row "fig4" "controlled-evolution pipeline (cancel change, end-to-end)"
       "change → regenerate public → classify → propagate → consistent"
       (Printf.sprintf "pipeline converges, consistent=%b" ok)
       ok);
    (let i = Fig5.intersection () in
     let empty = C_afsa.Emptiness.is_empty i in
     row "fig5" "aFSA intersection of the two toy automata"
       "intersection is empty (mandatory B#A#msg1 unsupported)"
       (Printf.sprintf "annotated emptiness = %b" empty)
       empty);
    (let ok =
       Afsa.num_states pub_buyer = 5
       && Chorev_formula.Sat.equivalent
            (Afsa.annotation pub_buyer 2)
            (Chorev_formula.Syntax.and_
               (Chorev_formula.Syntax.var "B#A#get_statusOp")
               (Chorev_formula.Syntax.var "B#A#terminateOp"))
     in
     row "fig6" "buyer public process"
       "5 states; loop head annotated terminateOp AND get_statusOp"
       (Printf.sprintf "%d states; ann(2) = %s" (Afsa.num_states pub_buyer)
          (Chorev_formula.Pp.to_string (Afsa.annotation pub_buyer 2)))
       ok);
    (let rows = List.length (Chorev_mapping.Table.states table_buyer) in
     let ok = rows = 5 in
     row "table1" "buyer mapping table"
       "5 states ↔ block names (depth-first)"
       (Printf.sprintf "%d rows; state 2 ↦ %s" rows
          (String.concat ", "
             (List.map
                (fun (e : Chorev_mapping.Table.entry) -> e.block)
                (Chorev_mapping.Table.entries table_buyer 2))))
       ok);
    (let ok = Afsa.num_states pub_acc = 10 && not (Afsa.has_annotations pub_acc) in
     row "fig7" "accounting public process"
       "10 states incl. sync get_statusL in both directions; no annotations"
       (Printf.sprintf "%d states, annotations=%b" (Afsa.num_states pub_acc)
          (Afsa.has_annotations pub_acc))
       ok);
    (let vb = tau ~observer:"B" pub_acc and vl = tau ~observer:"L" pub_acc in
     let ok = Afsa.num_states vb = 5 && Afsa.num_states vl = 5 in
     row "fig8" "buyer and logistics views of the accounting process"
       "each view keeps only bilateral labels; 5 states each"
       (Printf.sprintf "buyer view %d states, logistics view %d states"
          (Afsa.num_states vb) (Afsa.num_states vl))
       ok);
    (let v2 = b_view P.accounting_order2 in
     let changed = not (C_afsa.Equiv.equal_language v2 (b_view P.accounting_process)) in
     row "fig9" "invariant additive change: alternative order_2 format"
       "buyer view gains B#A#order_2Op"
       (Printf.sprintf "view changed=%b" changed)
       changed);
    (let consistent =
       C_afsa.Consistency.consistent (b_view P.accounting_order2) pub_buyer
     in
     row "fig10" "intersection after the order_2 change"
       "non-empty: invariant, no propagation"
       (Printf.sprintf "consistent=%b → invariant" consistent)
       consistent);
    (let v = b_view P.accounting_cancel in
     let has_ann =
       List.exists
         (fun (_, f) ->
           Chorev_formula.Sat.equivalent f
             (Chorev_formula.Syntax.and_
                (Chorev_formula.Syntax.var "A#B#cancelOp")
                (Chorev_formula.Syntax.var "A#B#deliveryOp")))
         (Afsa.annotations v)
     in
     row "fig11" "variant additive change: cancellation option"
       "buyer view: cancelOp AND deliveryOp mandatory after order"
       (Printf.sprintf "annotation present=%b" has_ann)
       has_ann);
    (let empty =
       C_afsa.Emptiness.is_empty
         (C_afsa.Ops.intersect (b_view P.accounting_cancel) pub_buyer)
     in
     row "fig12" "intersection after the cancel change"
       "EMPTY: no cancelOp transition on any accepting path → variant"
       (Printf.sprintf "annotated emptiness=%b" empty)
       empty);
    (let delta =
       C_afsa.Minimize.minimize
         (C_afsa.Ops.difference (b_view P.accounting_cancel) pub_buyer)
     in
     let b' = C_afsa.Minimize.minimize (C_afsa.Ops.union delta pub_buyer) in
     let ok = Afsa.num_states delta = 3 && Afsa.num_states b' = 5 in
     row "fig13" "difference and union for additive propagation"
       "difference = order·cancel (3 states); union = new buyer public (5 states)"
       (Printf.sprintf "difference %d states, union %d states"
          (Afsa.num_states delta) (Afsa.num_states b'))
       ok);
    (let o =
       Chorev_propagate.Engine.run
         ~direction:Chorev_propagate.Engine.Additive
         ~a':(gen P.accounting_cancel) ~partner_private:P.buyer_process ()
     in
     let ok =
       o.Chorev_propagate.Engine.consistent_after
       && Option.is_some o.Chorev_propagate.Engine.adapted
       && C_afsa.Equiv.equal_language
            (Option.get o.Chorev_propagate.Engine.adapted_public)
            (gen P.buyer_with_cancel)
     in
     row "fig14" "buyer private process after additive propagation"
       "receive delivery becomes a pick over delivery | cancel"
       (Printf.sprintf "auto-adapted, language = Fig. 14 process: %b" ok)
       ok);
    (let v = b_view P.accounting_once in
     let one_round =
       C_afsa.Trace.accepts v
         (List.map C_afsa.Label.of_string_exn
            [
              "B#A#orderOp"; "A#B#deliveryOp"; "B#A#get_statusOp";
              "A#B#statusOp"; "B#A#terminateOp";
            ])
     in
     let two_rounds =
       C_afsa.Trace.accepts v
         (List.map C_afsa.Label.of_string_exn
            [
              "B#A#orderOp"; "A#B#deliveryOp"; "B#A#get_statusOp";
              "A#B#statusOp"; "B#A#get_statusOp"; "A#B#statusOp";
              "B#A#terminateOp";
            ])
     in
     row "fig15" "variant subtractive change: at most one tracking request"
       "loop removed; ≤1 get_status round, both paths end in terminate"
       (Printf.sprintf "one round=%b, two rounds=%b" one_round two_rounds)
       (one_round && not two_rounds));
    (let i = C_afsa.Ops.intersect (b_view P.accounting_once) pub_buyer in
     let empty = C_afsa.Emptiness.is_empty i in
     let plain = C_afsa.Emptiness.is_empty_plain (Afsa.trim i) in
     row "fig16" "intersection after the subtractive change"
       "EMPTY by annotation (get_statusOp mandatory but unavailable)"
       (Printf.sprintf "annotated empty=%b (plain language empty=%b)" empty plain)
       (empty && not plain));
    (let removed = C_afsa.Ops.difference pub_buyer (b_view P.accounting_once) in
     let b' = C_afsa.Ops.difference pub_buyer removed in
     let two_removed =
       C_afsa.Trace.accepts removed
         (List.map C_afsa.Label.of_string_exn
            [
              "B#A#orderOp"; "A#B#deliveryOp"; "B#A#get_statusOp";
              "A#B#statusOp"; "B#A#get_statusOp"; "A#B#statusOp";
              "B#A#terminateOp";
            ])
     in
     let one_kept =
       C_afsa.Trace.accepts b'
         (List.map C_afsa.Label.of_string_exn
            [
              "B#A#orderOp"; "A#B#deliveryOp"; "B#A#get_statusOp";
              "A#B#statusOp"; "B#A#terminateOp";
            ])
     in
     row "fig17" "removed sequences and new buyer public (subtractive)"
       "removed = ≥2 tracking rounds; new public allows ≤1 round"
       (Printf.sprintf "≥2 rounds removed=%b, ≤1 round kept=%b" two_removed
          one_kept)
       (two_removed && one_kept));
    (let o =
       Chorev_propagate.Engine.run
         ~direction:Chorev_propagate.Engine.Subtractive
         ~a':(gen P.accounting_once) ~partner_private:P.buyer_process ()
     in
     let ok =
       o.Chorev_propagate.Engine.consistent_after
       && Option.is_some o.Chorev_propagate.Engine.adapted
       && C_afsa.Equiv.equal_language
            (Option.get o.Chorev_propagate.Engine.adapted_public)
            (gen P.buyer_once)
       && C_afsa.Consistency.consistent pub_log
            (tau ~observer:"L" (gen P.accounting_once))
     in
     row "fig18" "buyer private process after subtractive propagation"
       "loop unrolled: track at most once, then terminate; logistics invariant"
       (Printf.sprintf "auto-adapted, language = Fig. 18 process: %b" ok)
       ok);
  ]

let pp_row ppf r =
  Fmt.pf ppf "@[<v>[%s] %s@,  paper   : %s@,  measured: %s@,  status  : %s@]"
    r.id r.what r.paper r.measured
    (if r.ok then "REPRODUCED" else "MISMATCH")

let print_all () =
  let rows = all () in
  List.iter (fun r -> Fmt.pr "%a@.@." pp_row r) rows;
  let ok = List.length (List.filter (fun r -> r.ok) rows) in
  Fmt.pr "%d/%d artifacts reproduced@." ok (List.length rows);
  ok = List.length rows
