(** Random block-structured private-process generation.

    Produces *pairs* of complementary processes: a requester that
    drives a conversation and a responder that mirrors it — so the
    generated choreographies are consistent by construction, which is
    what propagation benchmarks need as a baseline. Deterministic per
    seed. *)

open Chorev_bpel

type params = {
  depth : int;  (** max nesting depth of structured blocks *)
  width : int;  (** max children per sequence *)
  ops : int;  (** vocabulary size *)
  loop_p : float;  (** probability of a while block *)
  choice_p : float;  (** probability of a switch/pick block *)
}

let default = { depth = 3; width = 4; ops = 8; loop_p = 0.2; choice_p = 0.3 }

let op_name i = Printf.sprintf "op%d" i

(* Build a conversation tree, then project it to both parties. A
   conversation step is either A→B or B→A on a fresh-ish operation. *)
type conv =
  | Msg of [ `AtoB | `BtoA ] * string
  | Seq of conv list
  | Loop of conv  (** finite loop: iterate or leave, decided by A *)
  | Choice of conv list  (** decided by A (sender side) *)

let rec gen_conv rng (p : params) ~depth ~counter =
  let fresh dir =
    incr counter;
    let suffix = match dir with `AtoB -> "B" | `BtoA -> "A" in
    (* A→B invokes an op of B's port; B→A an op of A's port *)
    Msg (dir, op_name (!counter mod p.ops) ^ suffix)
  in
  if depth = 0 then
    fresh (if Random.State.bool rng then `AtoB else `BtoA)
  else
    let r = Random.State.float rng 1.0 in
    if r < p.loop_p then Loop (gen_conv rng p ~depth:(depth - 1) ~counter)
    else if r < p.loop_p +. p.choice_p then
      let n = 2 + Random.State.int rng 2 in
      Choice
        (List.init n (fun _ -> gen_conv rng p ~depth:(depth - 1) ~counter))
    else
      let n = 1 + Random.State.int rng p.width in
      Seq (List.init n (fun _ -> gen_conv rng p ~depth:(depth - 1) ~counter))

(* Ensure every Choice / Loop is announced by a distinguished A→B
   message first so both projections stay deterministic and consistent:
   the decision maker (A) tells B which way it went. *)
let rec project ~party_a ~party_b ~side ~counter conv : Activity.t =
  let seqname () =
    incr counter;
    Printf.sprintf "s%d" !counter
  in
  match conv with
  | Msg (`AtoB, op) -> (
      match side with
      | `A -> Activity.invoke ~partner:party_b ~op
      | `B -> Activity.receive ~partner:party_a ~op)
  | Msg (`BtoA, op) -> (
      match side with
      | `A -> Activity.receive ~partner:party_b ~op
      | `B -> Activity.invoke ~partner:party_a ~op)
  | Seq convs ->
      Activity.seq (seqname ())
        (List.map (project ~party_a ~party_b ~side ~counter) convs)
  | Loop body ->
      (* A decides: continue (cont message) or stop (stop message) *)
      incr counter;
      let cont = Printf.sprintf "cont%dB" !counter
      and stop = Printf.sprintf "stop%dB" !counter in
      let inner = project ~party_a ~party_b ~side ~counter body in
      let name = Printf.sprintf "loop%d" !counter in
      (match side with
      | `A ->
          (* while: announce continue, run body; finally announce stop *)
          Activity.seq (name ^ "seq")
            [
              Activity.while_ name ~cond:"again?"
                (Activity.seq (name ^ "body")
                   [ Activity.invoke ~partner:party_b ~op:cont; inner ]);
              Activity.invoke ~partner:party_b ~op:stop;
            ]
      | `B ->
          (* mirror: iterate on cont messages (the finite while lets the
             loop be left), then consume the stop message and continue
             with the rest of the conversation *)
          Activity.seq (name ^ "seq")
            [
              Activity.while_ name ~cond:"more?"
                (Activity.pick (name ^ "pick")
                   [ Activity.on_message ~partner:party_a ~op:cont inner ]);
              Activity.receive ~partner:party_a ~op:stop;
            ])
  | Choice branches ->
      incr counter;
      let base = !counter in
      let tags =
        List.mapi (fun i _ -> Printf.sprintf "take%d_%dB" base i) branches
      in
      let name = Printf.sprintf "choice%d" base in
      (match side with
      | `A ->
          Activity.switch name
            (List.map2
               (fun tag br ->
                 Activity.branch ~cond:tag
                   (Activity.seq (name ^ "_" ^ tag)
                      [
                        Activity.invoke ~partner:party_b ~op:tag;
                        project ~party_a ~party_b ~side ~counter br;
                      ]))
               tags branches)
      | `B ->
          Activity.pick name
            (List.map2
               (fun tag br ->
                 Activity.on_message ~partner:party_a ~op:tag
                   (project ~party_a ~party_b ~side ~counter br))
               tags branches))

(* Tag operations used by projections must exist in the registry; we
   instead register permissively: every op name that appears. *)
let registry_for (acts : Activity.t list) ~party_a ~party_b =
  let collect act =
    Activity.communications act |> List.map (fun (_, _, c) -> c)
  in
  let comms = List.concat_map collect acts in
  let for_party party =
    comms
    |> List.filter_map (fun (c : Activity.comm) ->
           (* op belongs to the party being *addressed* for invokes and
              to the owner for receives; registering under both target
              parties is harmless and keeps validation happy *)
           if String.equal c.partner party then Some (Types.async c.op)
           else None)
    |> List.sort_uniq compare
  in
  (* receives register the op under the receiving party *)
  Types.registry
    [
      (party_a, { Types.pt_name = party_a ^ "Port"; ops = for_party party_a });
      (party_b, { Types.pt_name = party_b ^ "Port"; ops = for_party party_b });
    ]

(** Generate a consistent requester/responder pair of private
    processes. [size] grows with [params.depth] and [params.width].
    [?rng] overrides the seed-derived state for callers threading one
    stream through composed generators. *)
let pair ?rng ?(party_a = "A") ?(party_b = "B") ?(params = default) ~seed () =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let counter = ref 0 in
  let conv = gen_conv rng params ~depth:params.depth ~counter in
  let c1 = ref 0 and c2 = ref 0 in
  let body_a = project ~party_a ~party_b ~side:`A ~counter:c1 conv in
  let body_b = project ~party_a ~party_b ~side:`B ~counter:c2 conv in
  let body_a = Activity.seq "rootA" [ body_a ] in
  let body_b = Activity.seq "rootB" [ body_b ] in
  let reg = registry_for [ body_a; body_b ] ~party_a ~party_b in
  ( Process.make ~name:(party_a ^ "-proc") ~party:party_a ~registry:reg body_a,
    Process.make ~name:(party_b ^ "-proc") ~party:party_b ~registry:reg body_b
  )
