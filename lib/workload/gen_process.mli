(** Random block-structured process generation: complementary
    requester/responder pairs, consistent by construction,
    deterministic per seed. *)

type params = {
  depth : int;
  width : int;
  ops : int;
  loop_p : float;
  choice_p : float;
}

val default : params

val pair :
  ?rng:Random.State.t ->
  ?party_a:string ->
  ?party_b:string ->
  ?params:params ->
  seed:int ->
  unit ->
  Chorev_bpel.Process.t * Chorev_bpel.Process.t
(** [?rng] overrides the seed-derived state so a caller can thread one
    stream through composed generators; under pool fan-out give each
    domain its own state. *)
