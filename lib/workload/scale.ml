(** Parameterized scenario families for scalability benchmarks: the
    paper gives no performance evaluation, so these define the workload
    axes our benches sweep (process size, loop/choice density, number
    of parties). *)

open Chorev_bpel

(** A "ladder" conversation of [n] request/response rounds between two
    parties — public processes have Θ(n) states. Returns the consistent
    pair. *)
let ladder ?(party_a = "A") ?(party_b = "B") n =
  let reg =
    Types.registry
      [
        ( party_a,
          {
            Types.pt_name = party_a ^ "Port";
            ops = List.init n (fun i -> Types.async (Printf.sprintf "rsp%dOp" i));
          } );
        ( party_b,
          {
            Types.pt_name = party_b ^ "Port";
            ops = List.init n (fun i -> Types.async (Printf.sprintf "req%dOp" i));
          } );
      ]
  in
  let a_body =
    Activity.seq "ladderA"
      (List.concat
         (List.init n (fun i ->
              [
                Activity.invoke ~partner:party_b
                  ~op:(Printf.sprintf "req%dOp" i);
                Activity.receive ~partner:party_b
                  ~op:(Printf.sprintf "rsp%dOp" i);
              ])))
  in
  let b_body =
    Activity.seq "ladderB"
      (List.concat
         (List.init n (fun i ->
              [
                Activity.receive ~partner:party_a
                  ~op:(Printf.sprintf "req%dOp" i);
                Activity.invoke ~partner:party_a
                  ~op:(Printf.sprintf "rsp%dOp" i);
              ])))
  in
  ( Process.make ~name:"ladder-a" ~party:party_a ~registry:reg a_body,
    Process.make ~name:"ladder-b" ~party:party_b ~registry:reg b_body )

(** A "menu" of [n] alternatives: A internally chooses one of [n]
    requests (conjunctive annotation of size [n]); B picks. Stresses
    annotation handling in intersections. *)
let menu ?(party_a = "A") ?(party_b = "B") n =
  let op i = Printf.sprintf "alt%dOp" i in
  let reg =
    Types.registry
      [
        (party_a, { Types.pt_name = party_a ^ "Port"; ops = [] });
        ( party_b,
          {
            Types.pt_name = party_b ^ "Port";
            ops = List.init n (fun i -> Types.async (op i));
          } );
      ]
  in
  let a_body =
    Activity.seq "menuA"
      [
        Activity.switch "which"
          (List.init n (fun i ->
               Activity.branch
                 ~cond:(Printf.sprintf "case %d" i)
                 (Activity.invoke ~partner:party_b ~op:(op i))));
      ]
  in
  let b_body =
    Activity.seq "menuB"
      [
        Activity.pick "serve"
          (List.init n (fun i ->
               Activity.on_message ~partner:party_a ~op:(op i) Activity.Empty));
      ]
  in
  ( Process.make ~name:"menu-a" ~party:party_a ~registry:reg a_body,
    Process.make ~name:"menu-b" ~party:party_b ~registry:reg b_body )

(** A hub choreography of [k] spokes: a central party converses with
    [k] partners in sequence (generalizes the paper's
    buyer–accounting–logistics chain). Returns hub process then
    spokes. *)
let hub k =
  let spoke i = Printf.sprintf "P%d" i in
  let req i = Printf.sprintf "req%dOp" i
  and rsp i = Printf.sprintf "rsp%dOp" i in
  let reg =
    Types.registry
      (( "HUB",
         {
           Types.pt_name = "hubPort";
           ops = List.init k (fun i -> Types.async (rsp i));
         } )
      :: List.init k (fun i ->
             ( spoke i,
               {
                 Types.pt_name = spoke i ^ "Port";
                 ops = [ Types.async (req i) ];
               } )))
  in
  let hub_body =
    Activity.seq "hub"
      (List.concat
         (List.init k (fun i ->
              [
                Activity.invoke ~partner:(spoke i) ~op:(req i);
                Activity.receive ~partner:(spoke i) ~op:(rsp i);
              ])))
  in
  let spoke_body i =
    Activity.seq ("spoke" ^ string_of_int i)
      [
        Activity.receive ~partner:"HUB" ~op:(req i);
        Activity.invoke ~partner:"HUB" ~op:(rsp i);
      ]
  in
  ( Process.make ~name:"hub" ~party:"HUB" ~registry:reg hub_body,
    List.init k (fun i ->
        Process.make ~name:("spoke" ^ string_of_int i) ~party:(spoke i)
          ~registry:reg (spoke_body i)) )

(** A two-party tracking protocol with an [n]-armed service loop
    (generalized Fig. 2/3): stresses view generation and emptiness on
    loopy automata. *)
let service_loop ?(party_a = "A") ?(party_b = "B") n =
  let op i = Printf.sprintf "svc%dOp" i
  and ans i = Printf.sprintf "ans%dOp" i in
  let reg =
    Types.registry
      [
        ( party_a,
          {
            Types.pt_name = "servicePort";
            ops = Types.async "quitOp" :: List.init n (fun i -> Types.async (op i));
          } );
        ( party_b,
          {
            Types.pt_name = "clientPort";
            ops = List.init n (fun i -> Types.async (ans i));
          } );
      ]
  in
  let a_body =
    (* server: loop over pick of n services or quit *)
    Activity.seq "server"
      [
        Activity.while_ "serve" ~cond:"1 = 1"
          (Activity.pick "dispatch"
             (Activity.on_message ~partner:party_b ~op:"quitOp"
                Activity.Terminate
             :: List.init n (fun i ->
                    Activity.on_message ~partner:party_b ~op:(op i)
                      (Activity.invoke ~partner:party_b ~op:(ans i)))));
      ]
  in
  let b_body =
    (* client: internally choose services until quitting *)
    Activity.seq "client"
      [
        Activity.while_ "use" ~cond:"1 = 1"
          (Activity.switch "what"
             (Activity.branch ~cond:"quit"
                (Activity.seq "quitting"
                   [ Activity.invoke ~partner:party_a ~op:"quitOp"; Activity.Terminate ])
             :: List.init n (fun i ->
                    Activity.branch
                      ~cond:(Printf.sprintf "use %d" i)
                      (Activity.seq
                         (Printf.sprintf "call%d" i)
                         [
                           Activity.invoke ~partner:party_a ~op:(op i);
                           Activity.receive ~partner:party_a ~op:(ans i);
                         ]))));
      ]
  in
  ( Process.make ~name:"server" ~party:party_a ~registry:reg a_body,
    Process.make ~name:"client" ~party:party_b ~registry:reg b_body )

(** Public processes of a whole family at once, derived over the domain
    pool ([?pool], default {!Chorev_parallel.Pool.default}). Public
    derivation is per-process independent and is the dominant cost when
    preparing large sweeps (hub spokes, consistency services), so this
    is the natural fan-out point; the map preserves order, so the
    result pairs up with the input list. *)
let publics ?pool procs =
  Chorev_parallel.Pool.map ?pool Chorev_mapping.Public_gen.public procs
