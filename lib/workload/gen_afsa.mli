(** Random aFSA generation for benchmarks and property tests; all
    generators are deterministic per seed. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label

val vocabulary : ?party_a:string -> ?party_b:string -> int -> Label.t list
(** [n] labels between two parties, alternating directions. *)

val random :
  ?rng:Random.State.t ->
  ?party_a:string ->
  ?party_b:string ->
  seed:int ->
  states:int ->
  ?labels:int ->
  ?density:float ->
  ?final_p:float ->
  ?ann_p:float ->
  unit ->
  Afsa.t
(** Arbitrary (possibly nondeterministic, possibly annotated) automata
    — stress input for the algebra. [?rng] overrides the seed-derived
    state so callers can thread one stream through composed generators;
    under pool fan-out each domain must own its own state. *)

val random_protocol :
  ?rng:Random.State.t ->
  ?party_a:string ->
  ?party_b:string ->
  seed:int ->
  states:int ->
  ?labels:int ->
  ?extra:float ->
  unit ->
  Afsa.t
(** Connected protocol-shaped DFAs whose every state reaches the final
    state. *)

val consistent_pair :
  ?rng:Random.State.t -> seed:int -> states:int -> unit -> Afsa.t * Afsa.t
(** Two protocol automata sharing a backbone — consistent by
    construction. *)
