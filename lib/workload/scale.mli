(** Parameterized scenario families — the workload axes of the
    benchmark sweeps (the paper has no performance evaluation of its
    own). All pairs/choreographies are consistent by construction. *)

val ladder :
  ?party_a:string -> ?party_b:string -> int ->
  Chorev_bpel.Process.t * Chorev_bpel.Process.t
(** [n] request/response rounds — Θ(n) public states. *)

val menu :
  ?party_a:string -> ?party_b:string -> int ->
  Chorev_bpel.Process.t * Chorev_bpel.Process.t
(** [n]-way internal choice — a conjunctive annotation of width [n]. *)

val hub : int -> Chorev_bpel.Process.t * Chorev_bpel.Process.t list
(** A central party conversing with [k] spokes. *)

val service_loop :
  ?party_a:string -> ?party_b:string -> int ->
  Chorev_bpel.Process.t * Chorev_bpel.Process.t
(** An [n]-armed service loop — cyclic automata for view/emptiness
    stress. *)

val publics :
  ?pool:Chorev_parallel.Pool.t ->
  Chorev_bpel.Process.t list ->
  Chorev_afsa.Afsa.t list
(** Public processes of a family, derived over the domain pool
    (order-preserving; sequential by default). *)
