(** Random (valid) change operations for a given private process, used
    by propagation benchmarks and robustness tests. Deterministic per
    seed. *)

open Chorev_bpel
module Ops = Chorev_change.Ops

(* Candidate edit sites of each kind. *)
let sequences p =
  Activity.all_nodes (Process.body p)
  |> List.filter_map (fun (path, a) ->
         match a with Activity.Sequence (_, kids) -> Some (path, List.length kids) | _ -> None)

let receives p =
  Activity.all_nodes (Process.body p)
  |> List.filter_map (fun (path, a) ->
         match a with Activity.Receive c -> Some (path, c) | _ -> None)

let switches p =
  Activity.all_nodes (Process.body p)
  |> List.filter_map (fun (path, a) ->
         match a with Activity.Switch _ -> Some path | _ -> None)

let picks p =
  Activity.all_nodes (Process.body p)
  |> List.filter_map (fun (path, a) ->
         match a with Activity.Pick _ -> Some path | _ -> None)

let whiles p =
  Activity.all_nodes (Process.body p)
  |> List.filter_map (fun (path, a) ->
         match a with Activity.While _ -> Some path | _ -> None)

let pick_one rng = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

(** A random additive change: insert a fresh send, add a pick arm for a
    fresh receive, or add a switch branch with a fresh send. *)
let additive ?rng ?(fresh_op = "freshOp") ~seed (p : Process.t) : Ops.t option
    =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let partner =
    match Process.partners p with [] -> None | ps -> pick_one rng ps
  in
  Option.bind partner (fun partner ->
      let choices =
        List.filter_map Fun.id
          [
            Option.map
              (fun (path, n) ->
                Ops.Insert_activity
                  {
                    path;
                    pos = Random.State.int rng (n + 1);
                    act = Activity.invoke ~partner ~op:fresh_op;
                  })
              (pick_one rng (sequences p));
            Option.map
              (fun (path, _) ->
                Ops.Receive_to_pick
                  {
                    path;
                    name = "alt:" ^ fresh_op;
                    arms =
                      [
                        Activity.on_message ~partner ~op:fresh_op Activity.Empty;
                      ];
                  })
              (pick_one rng (receives p));
            Option.map
              (fun path ->
                Ops.Add_switch_branch
                  {
                    path;
                    branch =
                      Activity.branch ~cond:("opt " ^ fresh_op)
                        (Activity.invoke ~partner ~op:fresh_op);
                  })
              (pick_one rng (switches p));
            Option.map
              (fun path ->
                Ops.Add_pick_arm
                  {
                    path;
                    arm = Activity.on_message ~partner ~op:fresh_op Activity.Empty;
                  })
              (pick_one rng (picks p));
          ]
      in
      pick_one rng choices)

(** A random subtractive change: delete a sequence child or unroll a
    loop. *)
let subtractive ?rng ~seed (p : Process.t) : Ops.t option =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let choices =
    List.filter_map Fun.id
      [
        Option.map
          (fun path ->
            Ops.Unroll_loop_once
              { path; switch_name = "once?"; suffix = Activity.Empty })
          (pick_one rng (whiles p));
        (match
           pick_one rng (List.filter (fun (_, n) -> n > 1) (sequences p))
         with
        | Some (path, n) ->
            Some (Ops.Delete_activity { path; index = Random.State.int rng n })
        | None -> None);
      ]
  in
  pick_one rng choices
