(** Random valid change operations for a given private process,
    deterministic per seed. *)

val additive :
  ?rng:Random.State.t ->
  ?fresh_op:string -> seed:int -> Chorev_bpel.Process.t ->
  Chorev_change.Ops.t option
(** Insert a fresh send, add a pick arm, extend a switch — [None] when
    the process offers no site. [?rng] overrides the seed-derived
    state (thread one stream through composed generators; one state per
    domain under pool fan-out). *)

val subtractive :
  ?rng:Random.State.t ->
  seed:int -> Chorev_bpel.Process.t -> Chorev_change.Ops.t option
(** Unroll a loop or delete a sequence child. [?rng] as in
    {!additive}. *)
