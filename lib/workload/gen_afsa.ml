(** Random aFSA generation for benchmarks and property-based tests.

    All generators are deterministic per seed. Two families:

    - {!random}: arbitrary trimmed NFAs over a small label vocabulary,
      optionally annotated — stress tests for the automata algebra;
    - {!random_protocol}: connected "protocol-shaped" DFAs whose every
      state reaches a final state, mimicking generated public
      processes. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
module F = Chorev_formula.Syntax

(** A vocabulary of [n] labels between two parties, alternating
    directions. *)
let vocabulary ?(party_a = "A") ?(party_b = "B") n =
  List.init n (fun i ->
      if i mod 2 = 0 then
        Label.make ~sender:party_a ~receiver:party_b (Printf.sprintf "m%dOp" i)
      else
        Label.make ~sender:party_b ~receiver:party_a (Printf.sprintf "m%dOp" i))

let pick rng l = List.nth l (Random.State.int rng (List.length l))

(** Random (possibly nondeterministic) aFSA: [states] states,
    [density] × [states] random edges, each state final with
    probability [final_p], annotated with a random conjunction with
    probability [ann_p]. *)
let random ?rng ?(party_a = "A") ?(party_b = "B") ~seed ~states
    ?(labels = 6) ?(density = 2.0) ?(final_p = 0.3) ?(ann_p = 0.2) () =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let vocab = vocabulary ~party_a ~party_b labels in
  let n_edges = int_of_float (density *. float_of_int states) in
  let edges =
    List.init n_edges (fun _ ->
        ( Random.State.int rng states,
          Chorev_afsa.Sym.L (pick rng vocab),
          Random.State.int rng states ))
  in
  let finals =
    List.filter (fun _ -> Random.State.float rng 1.0 < final_p)
      (List.init states Fun.id)
  in
  let finals = match finals with [] -> [ states - 1 ] | f -> f in
  let ann =
    List.filter_map
      (fun q ->
        if Random.State.float rng 1.0 < ann_p then
          let k = 1 + Random.State.int rng 2 in
          let vars =
            List.init k (fun _ -> F.var (Label.to_string (pick rng vocab)))
          in
          Some (q, F.conj vars)
        else None)
      (List.init states Fun.id)
  in
  Afsa.make
    ~alphabet:vocab
    ~start:0 ~finals ~edges ~ann ()

(** Protocol-shaped DFA: a backbone path [0 → 1 → … → n-1] (last state
    final) with [extra] × n additional forward/backward edges on fresh
    labels where determinism allows, so every state reaches the final
    state. These resemble generated public processes. *)
let random_protocol ?rng ?(party_a = "A") ?(party_b = "B") ~seed ~states
    ?(labels = 8) ?(extra = 0.5) () =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let vocab = vocabulary ~party_a ~party_b labels in
  let backbone =
    List.init (states - 1) (fun i ->
        (i, Chorev_afsa.Sym.L (List.nth vocab (i mod labels)), i + 1))
  in
  let n_extra = int_of_float (extra *. float_of_int states) in
  let used = Hashtbl.create 16 in
  List.iter (fun (s, sym, _) -> Hashtbl.replace used (s, sym) ()) backbone;
  let extra_edges =
    List.filter_map
      (fun _ ->
        let s = Random.State.int rng states in
        let l = Chorev_afsa.Sym.L (pick rng vocab) in
        let t = Random.State.int rng states in
        if Hashtbl.mem used (s, l) then None
        else begin
          Hashtbl.replace used (s, l) ();
          Some (s, l, t)
        end)
      (List.init n_extra Fun.id)
  in
  Afsa.make ~alphabet:vocab ~start:0
    ~finals:[ states - 1 ]
    ~edges:(backbone @ extra_edges)
    ()

(** A consistent pair of protocol automata: the second is the first
    with some optional alternatives pruned — they share the backbone,
    so their intersection is non-empty. *)
let consistent_pair ?rng ~seed ~states () =
  let a = random_protocol ?rng ~seed ~states () in
  (* without a caller-supplied stream the two draws are intentionally
     replayed from the same seed so [b] prunes [a]'s own extras *)
  let b = random_protocol ?rng ~seed ~states ~extra:0.0 () in
  (a, b)
