(** The one configuration record of the evolution stack.

    Historically [Propagate.Engine] owned this record and
    [Choreography.Evolution] aliased it; the server layer needs to mint
    per-request variants of it without depending on either, so the
    record now lives here and both re-export it ([Engine.config] and
    [Evolution.config] are aliases of {!t} — one value configures the
    per-partner engine, the whole-choreography pipeline, the journaled
    driver and the serving layer alike). *)

type repair = {
  enabled : bool;
      (** attempt automatic partner amendment (and, in the simulator,
          causal rollback) when a propagation step fails (default
          [false]) *)
  max_candidates : int;
      (** bound on the amendment candidate queue per failed step
          (default 64) *)
  max_edits : int;
      (** candidates combine at most this many primitive edits
          (default 2; 1 disables pair candidates) *)
  repair_budget : Chorev_guard.Budget.spec;
      (** fuel/deadline for one whole amendment search; minted inside
          the pool task, so fuel-only budgets trip identically at every
          pool size (default: unlimited) *)
}

val repair_off : repair
(** [enabled = false], [max_candidates = 64], [max_edits = 2],
    unlimited budget — the {!default} policy. *)

type t = {
  auto_apply : bool;
      (** attempt the suggested private-process adaptations (default
          [true]); with [false] outcomes carry analysis and suggestions
          only *)
  max_rounds : int;
      (** transitive-propagation bound for the whole-choreography
          pipeline (default 8) *)
  obs : Chorev_obs.Sink.t option;
      (** trace sink installed for the duration of a run; [None]
          (default) inherits the ambient {!Chorev_obs.Obs} sink *)
  jobs : int;
      (** domain-pool size for per-partner fan-out and consistency
          sweeps; [0] (default) defers to
          [Chorev_parallel.Pool.default_size] ([--jobs] /
          [CHOREV_DOMAINS]). Results are structurally identical for
          every pool size. *)
  op_budget : Chorev_guard.Budget.spec;
      (** bound on each algebra step (classification, view, delta,
          re-check); budgets are minted per step inside pool tasks, so
          fuel-only budgets trip identically at every pool size
          (default: unlimited) *)
  round_budget : Chorev_guard.Budget.spec;
      (** bound on one whole partner pipeline; op budgets draw from its
          remaining fuel and the earlier deadline wins (default:
          unlimited) *)
  cancel : Chorev_guard.Budget.Cancel.t option;
      (** cooperative cancellation token shared by every budget minted
          from this config (default: [None]) *)
  cache : bool;
      (** route algebra operations through the fingerprint-keyed memo
          tables of [Chorev_cache] (default [true]; results are
          identical either way — [--no-cache] exists for A/B runs) *)
  repair : repair;
      (** self-healing policy for failed propagations (default
          {!repair_off}) *)
}

val default : t
(** [auto_apply = true], [max_rounds = 8], no sink, [jobs = 0],
    unlimited budgets, no cancellation token, [cache = true],
    [repair = repair_off]. *)

val with_repair :
  ?fuel:int -> ?max_candidates:int -> ?max_edits:int -> t -> t
(** Enable repair, optionally bounding the amendment search: [fuel]
    replaces the repair budget with a fuel-only spec; the other fields
    default to the current policy's values. *)

val with_budgets :
  ?op_budget:Chorev_guard.Budget.spec ->
  ?round_budget:Chorev_guard.Budget.spec ->
  ?cancel:Chorev_guard.Budget.Cancel.t ->
  t ->
  t
(** Per-request override helper (what the serving layer applies per
    request class): replaces only the given budget fields. *)

val budgeted : t -> bool
(** Is any bound configured (finite budget spec or cancellation
    token)? Layers that must not mask budget trips — the step cache,
    the serving fast path — stand down when this holds. *)
