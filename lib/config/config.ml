module Budget = Chorev_guard.Budget

type repair = {
  enabled : bool;
  max_candidates : int;
  max_edits : int;
  repair_budget : Budget.spec;
}

let repair_off =
  {
    enabled = false;
    max_candidates = 64;
    max_edits = 2;
    repair_budget = Budget.spec_unlimited;
  }

type t = {
  auto_apply : bool;
  max_rounds : int;
  obs : Chorev_obs.Sink.t option;
  jobs : int;
  op_budget : Budget.spec;
  round_budget : Budget.spec;
  cancel : Budget.Cancel.t option;
  cache : bool;
  repair : repair;
}

let default =
  {
    auto_apply = true;
    max_rounds = 8;
    obs = None;
    jobs = 0;
    op_budget = Budget.spec_unlimited;
    round_budget = Budget.spec_unlimited;
    cancel = None;
    cache = true;
    repair = repair_off;
  }

let with_repair ?fuel ?max_candidates ?max_edits t =
  {
    t with
    repair =
      {
        enabled = true;
        max_candidates =
          Option.value max_candidates ~default:t.repair.max_candidates;
        max_edits = Option.value max_edits ~default:t.repair.max_edits;
        repair_budget =
          (match fuel with
          | None -> t.repair.repair_budget
          | Some f -> { Budget.fuel = Some f; timeout_s = None });
      };
  }

let with_budgets ?op_budget ?round_budget ?cancel t =
  {
    t with
    op_budget = Option.value op_budget ~default:t.op_budget;
    round_budget = Option.value round_budget ~default:t.round_budget;
    cancel = (match cancel with Some _ as c -> c | None -> t.cancel);
  }

let budgeted t =
  (not (Budget.spec_is_unlimited t.op_budget))
  || (not (Budget.spec_is_unlimited t.round_budget))
  || t.cancel <> None
