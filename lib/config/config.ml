module Budget = Chorev_guard.Budget

type t = {
  auto_apply : bool;
  max_rounds : int;
  obs : Chorev_obs.Sink.t option;
  jobs : int;
  op_budget : Budget.spec;
  round_budget : Budget.spec;
  cancel : Budget.Cancel.t option;
  cache : bool;
}

let default =
  {
    auto_apply = true;
    max_rounds = 8;
    obs = None;
    jobs = 0;
    op_budget = Budget.spec_unlimited;
    round_budget = Budget.spec_unlimited;
    cancel = None;
    cache = true;
  }

let with_budgets ?op_budget ?round_budget ?cancel t =
  {
    t with
    op_budget = Option.value op_budget ~default:t.op_budget;
    round_budget = Option.value round_budget ~default:t.round_budget;
    cancel = (match cancel with Some _ as c -> c | None -> t.cancel);
  }

let budgeted t =
  (not (Budget.spec_is_unlimited t.op_budget))
  || (not (Budget.spec_is_unlimited t.round_budget))
  || t.cancel <> None
