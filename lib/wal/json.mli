(** Minimal JSON — hand-rolled (the toolchain has no JSON library);
    [to_string] emits no insignificant whitespace and [of_string]
    accepts exactly the JSON grammar (strings with [\uXXXX] escapes,
    integers, no floats). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val of_string : string -> (t, string) result
val member : string -> t -> t option
