(** Filesystem plumbing shared by the journal, the CLI and the serving
    layer: safe path components, durable writes, and atomic directory
    creation.

    Every on-disk layout in chorev (journal dirs, snapshot dirs, the
    server's per-tenant journal roots) goes through these helpers, so
    the invariants live in one place:

    - file writes are atomic (tmp + fsync + rename + dir fsync);
    - directories appear atomically (built under a [".tmp-"] sibling,
      then renamed), so a concurrent reader — or a recovery scan after
      a crash — never observes a half-created directory;
    - recovery scans skip in-flight [".tmp-"] leftovers. *)

val sanitize : string -> string
(** Escape a name into a safe path component: [A-Za-z0-9_-] pass
    through, everything else becomes [%XX]. Not invertible — callers
    recover names from file contents, not file names. *)

val mkdir_p : string -> unit
(** Create [path] and (recursively) its parents; existing directories
    are fine. *)

val fsync_dir : string -> unit
(** Flush a directory's metadata to disk; errors (e.g. filesystems
    without directory fsync) are ignored. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents] — all-or-nothing file replacement:
    write to [path ^ ".tmp"], fsync, rename over [path], fsync the
    parent directory. *)

val read_file : string -> string
(** Whole file, binary. Raises [Sys_error] like [open_in]. *)

val has_journal : string -> bool
(** Does [dir] already hold a journal ([journal.jsonl])? The check
    {!Evolve.run} uses to refuse to overwrite an existing run, and the
    server's recovery scan uses to tell a committed evolve dir from an
    empty one. *)

val validate_root : string -> (unit, string) result
(** [validate_root path] — [path] is usable as a journal root: it is
    an existing directory, or it does not exist yet but can be created
    (and is created, with parents). [Error] carries a printable
    message; nothing is written on error. *)

val create_fresh :
  ?populate:(string -> unit) -> root:string -> string -> (string, string) result
(** [create_fresh ~root name] atomically creates the subdirectory
    [sanitize name] under [root] and returns its path. The directory
    is built as a [".tmp-" ^ name] sibling — [populate] (default a
    no-op) runs on the tmp path to fill it — and then renamed into
    place, so the directory either exists {e complete} or not at all:
    a crashed creation leaves only a [".tmp-"] husk that
    {!list_subdirs} ignores. [Error] if the directory already exists
    or [populate] raises. *)

val list_subdirs : string -> string list
(** Immediate subdirectories of [dir], sorted by name, skipping
    in-flight [".tmp-"] leftovers. Empty list if [dir] does not
    exist. *)
