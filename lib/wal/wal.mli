(** The checksummed-line machinery shared by every journal in the
    system (the evolution journal of [Chorev_journal], the migration
    checkpoint log of [Chorev_migrate], the repair rollback journal of
    [Chorev_repair]): one [{"crc":"<md5-hex-of-body>","body":j}] line
    per record, fsync per append, torn-tail recovery on read. Generic
    over what the body means — callers pass their own decoder. *)

type writer

val open_append : path:string -> writer
(** Open (creating if needed) for append. *)

val reopen : path:string -> valid_bytes:int -> writer
(** Truncate to [valid_bytes] (discarding a torn tail), fsync the
    parent directory, and open for append. *)

val append : writer -> Json.t -> unit
(** Checksum, append one line and [fsync]; durable on return. *)

val close : writer -> unit

type 'a read_result = {
  records : 'a list;
  torn : bool;  (** a partial/corrupt final line was dropped *)
  valid_bytes : int;
      (** end offset of the last valid record — where a resuming
          writer truncates *)
}

val read :
  path:string -> decode:(Json.t -> ('a, string) result) -> ('a read_result, string) result
(** [Error] if the file is missing or a line {e before} the final one
    fails its checksum, does not parse, or is refused by [decode]; a
    broken final line only marks the result torn. *)
