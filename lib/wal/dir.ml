(* Shared filesystem plumbing: see dir.mli for the invariants. *)

let sanitize name =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> String.make 1 c
         | c -> Printf.sprintf "%%%02x" (Char.code c))
       (List.init (String.length name) (String.get name)))

let rec mkdir_p path =
  if not (Sys.file_exists path) then (
    let parent = Filename.dirname path in
    if parent <> path && not (Sys.file_exists parent) then mkdir_p parent;
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let has_journal dir = Sys.file_exists (Filename.concat dir "journal.jsonl")

let validate_root path =
  if Sys.file_exists path then
    if Sys.is_directory path then Ok ()
    else Error (Printf.sprintf "%s exists and is not a directory" path)
  else
    match mkdir_p path with
    | () when Sys.is_directory path -> Ok ()
    | () -> Error (Printf.sprintf "cannot create directory %s" path)
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "cannot create %s: %s" path (Unix.error_message e))

let tmp_prefix = ".tmp-"

let create_fresh ?(populate = fun _ -> ()) ~root name =
  let name = sanitize name in
  let final = Filename.concat root name in
  if Sys.file_exists final then Error (Printf.sprintf "%s already exists" final)
  else
    (* Build (and populate) under a tmp sibling, then rename: the final
       name appears atomically, already complete. The pid suffix keeps
       concurrent creators of the same name from colliding on the tmp
       path; only one rename wins. *)
    let tmp =
      Filename.concat root
        (Printf.sprintf "%s%s.%d" tmp_prefix name (Unix.getpid ()))
    in
    let rec rm_rf path =
      if Sys.file_exists path then
        if Sys.is_directory path then (
          Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
          try Unix.rmdir path with Unix.Unix_error _ -> ())
        else try Sys.remove path with Sys_error _ -> ()
    in
    match
      mkdir_p tmp;
      populate tmp;
      Unix.rename tmp final;
      fsync_dir root
    with
    | () -> Ok final
    | exception e ->
        rm_rf tmp;
        let msg =
          match e with
          | Unix.Unix_error (err, _, _) -> Unix.error_message err
          | e -> Printexc.to_string e
        in
        Error (Printf.sprintf "cannot create %s: %s" final msg)

let list_subdirs dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n ->
             (not (String.starts_with ~prefix:tmp_prefix n))
             && Sys.is_directory (Filename.concat dir n))
      |> List.sort String.compare
