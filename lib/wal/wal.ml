(** The checksummed-line WAL machinery shared by every journal in the
    system; see wal.mli for the line format and durability
    discipline. *)

type writer = { oc : out_channel }

let open_append ~path =
  {
    oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path;
  }

let reopen ~path ~valid_bytes =
  Unix.truncate path valid_bytes;
  Dir.fsync_dir (Filename.dirname path);
  { oc = open_out_gen [ Open_append; Open_binary ] 0o644 path }

let append w body_json =
  let body = Json.to_string body_json in
  let crc = Digest.to_hex (Digest.string body) in
  output_string w.oc {|{"crc":"|};
  output_string w.oc crc;
  output_string w.oc {|","body":|};
  output_string w.oc body;
  output_string w.oc "}\n";
  flush w.oc;
  Unix.fsync (Unix.descr_of_out_channel w.oc)

let close w = close_out w.oc

type 'a read_result = { records : 'a list; torn : bool; valid_bytes : int }

(* Writer lines have the exact shape {"crc":"<32 hex>","body":...}\n —
   the prefix is fixed, so the body text the checksum covers is
   recovered by stripping prefix and the final '}'. *)
let parse_line ~decode line =
  let prefix = {|{"crc":"|} in
  let plen = String.length prefix in
  let ll = String.length line in
  if ll < plen + 32 + String.length {|","body":|} + 1 then Error "short line"
  else if String.sub line 0 plen <> prefix then Error "bad line prefix"
  else
    let crc = String.sub line plen 32 in
    let mid = String.sub line (plen + 32) (String.length {|","body":|}) in
    if mid <> {|","body":|} then Error "bad line shape"
    else if line.[ll - 1] <> '}' then Error "unterminated line"
    else
      let body_off = plen + 32 + String.length mid in
      let body = String.sub line body_off (ll - 1 - body_off) in
      if Digest.to_hex (Digest.string body) <> crc then
        Error "checksum mismatch"
      else
        match Json.of_string body with
        | Error e -> Error ("bad body: " ^ e)
        | Ok j -> decode j

let read ~path ~decode =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no journal at %s" path)
  else
    let contents = Dir.read_file path in
    (* split into (line, end-offset-including-newline) *)
    let lines = ref [] in
    let start = ref 0 in
    String.iteri
      (fun i c ->
        if c = '\n' then (
          lines := (String.sub contents !start (i - !start), i + 1) :: !lines;
          start := i + 1))
      contents;
    (* a final chunk without '\n' is by construction torn *)
    let tail_torn = !start < String.length contents in
    let lines = List.rev !lines in
    let total = List.length lines in
    let rec go acc valid idx = function
      | [] ->
          Ok { records = List.rev acc; torn = tail_torn; valid_bytes = valid }
      | (line, endoff) :: rest -> (
          match parse_line ~decode line with
          | Ok r -> go (r :: acc) endoff (idx + 1) rest
          | Error e ->
              if idx = total - 1 && rest = [] then
                (* torn tail: the crashed writer's partial last line *)
                Ok { records = List.rev acc; torn = true; valid_bytes = valid }
              else
                Error
                  (Printf.sprintf "%s: corrupt record on line %d: %s" path
                     (idx + 1) e))
    in
    go [] 0 0 lines
