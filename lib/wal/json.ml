(** Minimal JSON — hand-rolled (the toolchain has no JSON library). See
    json.mli for the exact grammar accepted. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Str s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

exception Bad of string

(* Recursive-descent parser over a cursor. Integers only (the journal
   never writes floats); [\uXXXX] escapes decode to UTF-8. *)
let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then (
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
    else (
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' -> add_utf8 buf (hex4 ())
              | _ -> fail "bad escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then advance ();
        while
          !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
        do
          advance ()
        done;
        if !pos = start then fail "bad number";
        Int (int_of_string (String.sub s start (!pos - start)))
    | Some _ -> fail "unexpected character"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg
  | exception Failure msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None
