(** Metrics registry: named counters and histograms.

    Instrumented modules create their instruments once, at module
    initialization ([let c = Metrics.counter "afsa.product.pairs"]),
    and bump them on the hot path. Collection is off by default:
    {!incr}/{!add}/{!observe} are a single load-and-branch when
    disabled, so instrumentation can stay in release builds (the
    overhead guard in [test_obs] holds the algebra to this).

    Counter names are dot-separated, [layer.module.what]; the full
    catalogue lives in DESIGN.md §7. *)

type counter = private { cname : string; mutable count : int }

type histogram = private {
  hname : string;
  mutable n : int;
  mutable total : float;
  mutable minv : float;
  mutable maxv : float;
}

val enabled : bool ref
(** Master switch. [false] by default. *)

val is_enabled : unit -> bool
(** [!enabled], for guarding argument computation that would itself
    cost something ([if Metrics.is_enabled () then Metrics.add c (…)]). *)

val counter : string -> counter
(** Find-or-create the counter with this name (idempotent). *)

val histogram : string -> histogram
(** Find-or-create the histogram with this name (idempotent). *)

val incr : counter -> unit
val add : counter -> int -> unit
(** No-ops while disabled. *)

val observe : histogram -> float -> unit
(** Records one sample (count, total, min, max). No-op while disabled. *)

val reset : unit -> unit
(** Zero every registered instrument (registration is kept). *)

val counters : unit -> (string * int) list
(** All registered counters with their values, sorted by name. *)

val nonzero_counters : unit -> (string * int) list
(** Counters with a non-zero value, sorted by name. *)

val histograms : unit -> (string * histogram) list
(** All registered histograms with ≥ 1 sample, sorted by name. *)

val pp : Format.formatter -> unit -> unit
(** Table of non-zero counters and sampled histograms. *)
