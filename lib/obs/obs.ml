(** The ambient tracing context (see obs.mli).

    Domain safety: the installed sink and the open-span stack are
    per-domain (DLS), so spans opened on different domains nest
    independently and never contend. Span ids come from one atomic
    counter so they stay unique process-wide. A worker domain starts
    with the silent sink; the parallel pool hands it the caller's sink
    (wrapped in {!Sink.synchronized}) for the extent of each task. *)

type ctx = {
  mutable tracing : bool;
  mutable sink : Sink.t;
  mutable stack : Sink.span list;
}

let ctx_key =
  Domain.DLS.new_key (fun () ->
      { tracing = false; sink = Sink.silent; stack = [] })

let ctx () = Domain.DLS.get ctx_key
let next_id = Atomic.make 0

let enabled () = (ctx ()).tracing

let set_sink s =
  let c = ctx () in
  c.sink <- s;
  c.tracing <- not (s == Sink.silent)

let current_sink () = (ctx ()).sink

let with_sink s f =
  let c = ctx () in
  let old_sink = c.sink and old_tracing = c.tracing in
  c.sink <- s;
  c.tracing <- not (s == Sink.silent);
  Fun.protect
    ~finally:(fun () ->
      c.sink <- old_sink;
      c.tracing <- old_tracing)
    f

let span ?(attrs = []) name f =
  let c = ctx () in
  if not c.tracing then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 + 1 in
    let parent, depth =
      match c.stack with
      | [] -> (None, 0)
      | p :: _ -> (Some p.Sink.id, p.Sink.depth + 1)
    in
    let sp = { Sink.id; parent; depth; name; attrs } in
    let t0 = Unix.gettimeofday () in
    c.sink.Sink.emit (Sink.Open (sp, t0));
    c.stack <- sp :: c.stack;
    Fun.protect
      ~finally:(fun () ->
        (c.stack <- (match c.stack with _ :: rest -> rest | [] -> []));
        let t1 = Unix.gettimeofday () in
        c.sink.Sink.emit (Sink.Close (sp, t0, t1 -. t0)))
      f
  end
