(** The ambient tracing context (see obs.mli). *)

let tracing = ref false
let sink = ref Sink.silent
let next_id = ref 0
let stack : Sink.span list ref = ref []

let enabled () = !tracing

let set_sink s =
  sink := s;
  tracing := not (s == Sink.silent)

let current_sink () = !sink

let with_sink s f =
  let old_sink = !sink and old_tracing = !tracing in
  sink := s;
  tracing := not (s == Sink.silent);
  Fun.protect
    ~finally:(fun () ->
      sink := old_sink;
      tracing := old_tracing)
    f

let span ?(attrs = []) name f =
  if not !tracing then f ()
  else begin
    incr next_id;
    let parent, depth =
      match !stack with
      | [] -> (None, 0)
      | p :: _ -> (Some p.Sink.id, p.Sink.depth + 1)
    in
    let sp = { Sink.id = !next_id; parent; depth; name; attrs } in
    let t0 = Unix.gettimeofday () in
    !sink.Sink.emit (Sink.Open (sp, t0));
    stack := sp :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (stack := match !stack with _ :: rest -> rest | [] -> []);
        let t1 = Unix.gettimeofday () in
        !sink.Sink.emit (Sink.Close (sp, t0, t1 -. t0)))
      f
  end
