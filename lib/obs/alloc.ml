(** Allocation accounting over [Gc.quick_stat] deltas (see alloc.mli). *)

type snap = {
  s_minor : float;
  s_promoted : float;
  s_major : float;
  s_minor_gcs : int;
  s_major_gcs : int;
}

type delta = {
  minor_w : int;
  major_w : int;
  promoted_w : int;
  minor_gcs : int;
  major_gcs : int;
}

let snap () =
  let s = Gc.quick_stat () in
  {
    s_minor = s.Gc.minor_words;
    s_promoted = s.Gc.promoted_words;
    s_major = s.Gc.major_words;
    s_minor_gcs = s.Gc.minor_collections;
    s_major_gcs = s.Gc.major_collections;
  }

let diff before after =
  {
    minor_w = int_of_float (after.s_minor -. before.s_minor);
    (* [major_words] counts promotions too; subtract them so the two
       channels (minor alloc, direct major alloc) are disjoint *)
    major_w =
      int_of_float
        (after.s_major -. before.s_major
        -. (after.s_promoted -. before.s_promoted));
    promoted_w = int_of_float (after.s_promoted -. before.s_promoted);
    minor_gcs = after.s_minor_gcs - before.s_minor_gcs;
    major_gcs = after.s_major_gcs - before.s_major_gcs;
  }

let measure f =
  let before = snap () in
  let r = f () in
  (r, diff before (snap ()))

let counters_of d =
  [
    ("gc.minor_words", d.minor_w);
    ("gc.major_words", d.major_w);
    ("gc.promoted_words", d.promoted_w);
    ("gc.minor_collections", d.minor_gcs);
    ("gc.major_collections", d.major_gcs);
  ]

let c_minor = Metrics.counter "gc.minor_words"
let c_major = Metrics.counter "gc.major_words"
let c_promoted = Metrics.counter "gc.promoted_words"
let c_minor_gcs = Metrics.counter "gc.minor_collections"
let c_major_gcs = Metrics.counter "gc.major_collections"

let record d =
  Metrics.add c_minor d.minor_w;
  Metrics.add c_major d.major_w;
  Metrics.add c_promoted d.promoted_w;
  Metrics.add c_minor_gcs d.minor_gcs;
  Metrics.add c_major_gcs d.major_gcs

let measured f =
  let r, d = measure f in
  record d;
  r
