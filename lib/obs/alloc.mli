(** Allocation accounting over [Gc.quick_stat] deltas.

    The packed-kernel work (DESIGN.md §12) is as much about allocation
    as wall-clock: the map-shaped algebra allocates a fresh set/map node
    per explored state and the GC becomes the hot path at serve volume.
    This module makes that cost observable: snapshot the GC counters,
    run a phase, and the delta — minor/major allocated words, promotions
    and collection counts — lands in the {!Metrics} registry (counters
    [gc.minor_words], [gc.major_words], [gc.promoted_words],
    [gc.minor_collections], [gc.major_collections]), in the profiler's
    per-phase table, and in the bench harness's [--json] [counters].

    [Gc.quick_stat] does not walk the heap, so a snapshot is a few
    loads — cheap enough to take per span. Word counts are per-domain
    (the allocating domain's view). *)

type snap
(** A point-in-time reading of the GC counters. *)

type delta = {
  minor_w : int;  (** words allocated in the minor heap *)
  major_w : int;  (** words allocated directly in the major heap *)
  promoted_w : int;  (** words promoted minor → major *)
  minor_gcs : int;  (** minor collections *)
  major_gcs : int;  (** major collection cycles completed *)
}

val snap : unit -> snap

val diff : snap -> snap -> delta
(** [diff before after]. *)

val measure : (unit -> 'a) -> 'a * delta
(** Run the thunk and report what it allocated. *)

val counters_of : delta -> (string * int) list
(** The delta as [gc.*] counter pairs, in the registry's naming. *)

val record : delta -> unit
(** Accumulate the delta into the [gc.*] {!Metrics} counters (a no-op
    while metrics are disabled, like every counter bump). *)

val measured : (unit -> 'a) -> 'a
(** [measure] + [record]: account the thunk's allocations to the
    metrics registry and return its result. *)
