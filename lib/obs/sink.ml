(** Trace sinks: where span events go (see sink.mli). *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  id : int;
  parent : int option;
  depth : int;
  name : string;
  attrs : (string * value) list;
}

type event =
  | Open of span * float
  | Close of span * float * float

type t = { emit : event -> unit; flush : unit -> unit }

let silent = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let pp_value ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%.3f" f
  | Str s -> Fmt.string ppf s
  | Bool b -> Fmt.bool ppf b

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
      Fmt.pf ppf "  [%a]"
        (Fmt.list ~sep:(Fmt.any " ") (fun ppf (k, v) ->
             Fmt.pf ppf "%s=%a" k pp_value v))
        attrs

(* One line per close, indented by depth. Children print before their
   parent (they close first); the indentation shows the nesting. *)
let pretty ppf =
  {
    emit =
      (fun ev ->
        match ev with
        | Open _ -> ()
        | Close (sp, _, elapsed) ->
            Fmt.pf ppf "%s%s %.3f ms%a@."
              (String.make (2 * sp.depth) ' ')
              sp.name (1000. *. elapsed) pp_attrs sp.attrs);
    flush = (fun () -> Format.pp_print_flush ppf ());
  }

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_value = function
  | Int i -> string_of_int i
  | Float f -> if Float.is_finite f then Printf.sprintf "%.6f" f else "null"
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> string_of_bool b

let json_of_attrs attrs =
  String.concat ","
    (List.map
       (fun (k, v) ->
         Printf.sprintf "\"%s\":%s" (json_escape k) (json_of_value v))
       attrs)

let jsonl oc =
  let line sp ev t elapsed =
    let parent =
      match sp.parent with None -> "null" | Some p -> string_of_int p
    in
    let elapsed_field =
      match elapsed with
      | None -> ""
      | Some e -> Printf.sprintf ",\"elapsed_ms\":%.6f" (1000. *. e)
    in
    Printf.fprintf oc
      "{\"ev\":\"%s\",\"id\":%d,\"parent\":%s,\"depth\":%d,\"name\":\"%s\",\"t\":%.6f%s,\"attrs\":{%s}}\n"
      ev sp.id parent sp.depth (json_escape sp.name) t elapsed_field
      (json_of_attrs sp.attrs)
  in
  {
    emit =
      (fun ev ->
        match ev with
        | Open (sp, t) -> line sp "open" t None
        | Close (sp, t, elapsed) -> line sp "close" t (Some elapsed));
    flush = (fun () -> flush oc);
  }

let memory () =
  let events = ref [] in
  ( {
      emit = (fun ev -> events := ev :: !events);
      flush = (fun () -> ());
    },
    fun () -> List.rev !events )

let synchronized t =
  let m = Mutex.create () in
  let locked f x = Mutex.protect m (fun () -> f x) in
  { emit = locked t.emit; flush = locked t.flush }

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }
