(** Per-phase profiling: a sink that aggregates span timings by name.

    The CLI's [--profile] flag and the bench harness install
    [Profile.sink] (usually teed with a trace sink), run the workload,
    then print {!pp} — a per-phase table of call counts, wall-clock
    totals and allocated words — alongside the {!Metrics} counters.

    Allocation columns come from {!Alloc} snapshots taken at span open
    and close; like elapsed time, a parent span's words include its
    children's. *)

type row = {
  name : string;
  count : int;
  total_s : float;  (** summed elapsed wall-clock seconds *)
  max_s : float;
  minor_w : int;  (** summed minor-heap words allocated in the phase *)
  major_w : int;  (** summed major-heap words (direct + promoted) *)
}

type t

val create : unit -> t
val sink : t -> Sink.t
(** Aggregates every [Close] event into the table; [Open]s snapshot the
    GC counters for the allocation columns. *)

val rows : t -> row list
(** Rows sorted by total time, descending. *)

val pp : Format.formatter -> t -> unit
(** [phase / calls / total ms / mean ms / max ms / minor / major]
    table. *)
