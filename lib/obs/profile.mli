(** Per-phase profiling: a sink that aggregates span timings by name.

    The CLI's [--profile] flag and the bench harness install
    [Profile.sink] (usually teed with a trace sink), run the workload,
    then print {!pp} — a per-phase table of call counts and wall-clock
    totals — alongside the {!Metrics} counters. *)

type row = {
  name : string;
  count : int;
  total_s : float;  (** summed elapsed wall-clock seconds *)
  max_s : float;
}

type t

val create : unit -> t
val sink : t -> Sink.t
(** Aggregates every [Close] event into the table; [Open]s are free. *)

val rows : t -> row list
(** Rows sorted by total time, descending. *)

val pp : Format.formatter -> t -> unit
(** [phase / calls / total ms / mean ms / max ms] table. *)
