(** The ambient tracing context: nested spans emitted to the currently
    installed {!Sink.t}.

    Tracing is disabled by default; {!span} then calls its body
    directly (one load-and-branch of overhead), so instrumentation is
    safe on hot paths. A sink is installed globally ({!set_sink}, used
    by the CLI flags) or for the dynamic extent of one computation
    ({!with_sink}, used by [Evolution.config.obs]).

    Spans nest: the span opened most recently on this execution path is
    the parent of the next one. IDs are unique per process and the
    parent/depth fields of {!Sink.span} reconstruct the tree. *)

val enabled : unit -> bool
(** Is a non-silent sink installed? *)

val set_sink : Sink.t -> unit
(** Install [s] as the ambient sink. Installing {!Sink.silent} turns
    tracing off. *)

val current_sink : unit -> Sink.t

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s], runs [f ()], restores the previous
    sink (also on exception). *)

val span : ?attrs:(string * Sink.value) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span named [name]. When tracing is
    disabled this is just [f ()]. *)
