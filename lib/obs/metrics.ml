(** Metrics registry: named counters and histograms (see metrics.mli). *)

type counter = { cname : string; mutable count : int }

type histogram = {
  hname : string;
  mutable n : int;
  mutable total : float;
  mutable minv : float;
  mutable maxv : float;
}

let enabled = ref false
let is_enabled () = !enabled

let counter_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let histogram_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

(* Registration can happen from worker domains (a module initialized
   lazily inside a pool task); the table itself must stay consistent.
   Bumps on the instruments are deliberately unlocked — a lost count
   under contention is acceptable, a mutex on the hot path is not. *)
let registry_lock = Mutex.create ()

let counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt counter_tbl name with
      | Some c -> c
      | None ->
          let c = { cname = name; count = 0 } in
          Hashtbl.add counter_tbl name c;
          c)

let histogram name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt histogram_tbl name with
      | Some h -> h
      | None ->
          let h =
            {
              hname = name;
              n = 0;
              total = 0.;
              minv = infinity;
              maxv = neg_infinity;
            }
          in
          Hashtbl.add histogram_tbl name h;
          h)

let incr c = if !enabled then c.count <- c.count + 1
let add c n = if !enabled then c.count <- c.count + n

let observe h v =
  if !enabled then begin
    h.n <- h.n + 1;
    h.total <- h.total +. v;
    if v < h.minv then h.minv <- v;
    if v > h.maxv then h.maxv <- v
  end

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counter_tbl;
  Hashtbl.iter
    (fun _ h ->
      h.n <- 0;
      h.total <- 0.;
      h.minv <- infinity;
      h.maxv <- neg_infinity)
    histogram_tbl

let counters () =
  Hashtbl.fold (fun name c acc -> (name, c.count) :: acc) counter_tbl []
  |> List.sort compare

let nonzero_counters () =
  List.filter (fun (_, v) -> v <> 0) (counters ())

let histograms () =
  Hashtbl.fold
    (fun name h acc -> if h.n > 0 then (name, h) :: acc else acc)
    histogram_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf () =
  let cs = nonzero_counters () in
  let hs = histograms () in
  if cs = [] && hs = [] then Fmt.pf ppf "(no metrics recorded)@."
  else begin
    if cs <> [] then begin
      Fmt.pf ppf "%-42s %12s@." "counter" "value";
      Fmt.pf ppf "%s@." (String.make 55 '-');
      List.iter (fun (name, v) -> Fmt.pf ppf "%-42s %12d@." name v) cs
    end;
    if hs <> [] then begin
      Fmt.pf ppf "@.%-34s %8s %10s %10s %10s@." "histogram" "n" "mean" "min"
        "max";
      Fmt.pf ppf "%s@." (String.make 76 '-');
      List.iter
        (fun (name, h) ->
          Fmt.pf ppf "%-34s %8d %10.2f %10.2f %10.2f@." name h.n
            (h.total /. float_of_int h.n)
            h.minv h.maxv)
        hs
    end
  end
