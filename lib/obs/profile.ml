(** Per-phase profiling sink (see profile.mli). *)

type row = {
  name : string;
  count : int;
  total_s : float;
  max_s : float;
  minor_w : int;
  major_w : int;
}

type cell = {
  mutable c : int;
  mutable total : float;
  mutable max : float;
  mutable minor_w : int;
  mutable major_w : int;
}

type t = {
  cells : (string, cell) Hashtbl.t;
  open_snaps : (int, Alloc.snap) Hashtbl.t;
      (* GC snapshot taken at each span's [Open], keyed by span id;
         removed at [Close]. Nested spans double-count their children's
         allocations, exactly like their elapsed time. *)
}

let create () = { cells = Hashtbl.create 32; open_snaps = Hashtbl.create 32 }

let sink t =
  {
    Sink.emit =
      (fun ev ->
        match ev with
        | Sink.Open (sp, _) ->
            Hashtbl.replace t.open_snaps sp.Sink.id (Alloc.snap ())
        | Sink.Close (sp, _, elapsed) ->
            let cell =
              match Hashtbl.find_opt t.cells sp.Sink.name with
              | Some c -> c
              | None ->
                  let c =
                    { c = 0; total = 0.; max = 0.; minor_w = 0; major_w = 0 }
                  in
                  Hashtbl.add t.cells sp.Sink.name c;
                  c
            in
            cell.c <- cell.c + 1;
            cell.total <- cell.total +. elapsed;
            if elapsed > cell.max then cell.max <- elapsed;
            (match Hashtbl.find_opt t.open_snaps sp.Sink.id with
            | None -> ()
            | Some before ->
                Hashtbl.remove t.open_snaps sp.Sink.id;
                let d = Alloc.diff before (Alloc.snap ()) in
                cell.minor_w <- cell.minor_w + d.Alloc.minor_w;
                cell.major_w <-
                  cell.major_w + d.Alloc.major_w + d.Alloc.promoted_w));
    flush = (fun () -> ());
  }

let rows t =
  Hashtbl.fold
    (fun name cell acc ->
      {
        name;
        count = cell.c;
        total_s = cell.total;
        max_s = cell.max;
        minor_w = cell.minor_w;
        major_w = cell.major_w;
      }
      :: acc)
    t.cells []
  |> List.sort (fun a b -> compare b.total_s a.total_s)

let words w =
  if w >= 10_000_000 then Printf.sprintf "%dMw" (w / 1_000_000)
  else if w >= 10_000 then Printf.sprintf "%dkw" (w / 1_000)
  else Printf.sprintf "%dw" w

let pp ppf t =
  match rows t with
  | [] -> Fmt.pf ppf "(no spans recorded — is tracing enabled?)@."
  | rs ->
      Fmt.pf ppf "%-28s %8s %12s %12s %12s %10s %10s@." "phase" "calls"
        "total ms" "mean ms" "max ms" "minor" "major";
      Fmt.pf ppf "%s@." (String.make 98 '-');
      List.iter
        (fun r ->
          Fmt.pf ppf "%-28s %8d %12.3f %12.3f %12.3f %10s %10s@." r.name
            r.count
            (1000. *. r.total_s)
            (1000. *. r.total_s /. float_of_int r.count)
            (1000. *. r.max_s) (words r.minor_w) (words r.major_w))
        rs
