(** Per-phase profiling sink (see profile.mli). *)

type row = { name : string; count : int; total_s : float; max_s : float }

type cell = { mutable c : int; mutable total : float; mutable max : float }

type t = { cells : (string, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 32 }

let sink t =
  {
    Sink.emit =
      (fun ev ->
        match ev with
        | Sink.Open _ -> ()
        | Sink.Close (sp, _, elapsed) ->
            let cell =
              match Hashtbl.find_opt t.cells sp.Sink.name with
              | Some c -> c
              | None ->
                  let c = { c = 0; total = 0.; max = 0. } in
                  Hashtbl.add t.cells sp.Sink.name c;
                  c
            in
            cell.c <- cell.c + 1;
            cell.total <- cell.total +. elapsed;
            if elapsed > cell.max then cell.max <- elapsed);
    flush = (fun () -> ());
  }

let rows t =
  Hashtbl.fold
    (fun name cell acc ->
      { name; count = cell.c; total_s = cell.total; max_s = cell.max } :: acc)
    t.cells []
  |> List.sort (fun a b -> compare b.total_s a.total_s)

let pp ppf t =
  match rows t with
  | [] -> Fmt.pf ppf "(no spans recorded — is tracing enabled?)@."
  | rs ->
      Fmt.pf ppf "%-28s %8s %12s %12s %12s@." "phase" "calls" "total ms"
        "mean ms" "max ms";
      Fmt.pf ppf "%s@." (String.make 76 '-');
      List.iter
        (fun r ->
          Fmt.pf ppf "%-28s %8d %12.3f %12.3f %12.3f@." r.name r.count
            (1000. *. r.total_s)
            (1000. *. r.total_s /. float_of_int r.count)
            (1000. *. r.max_s))
        rs
