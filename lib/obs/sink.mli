(** Trace sinks: where span events go.

    A sink is a pair of callbacks. The observability layer ({!Obs})
    emits an [Open] event when a span starts and a [Close] event when it
    ends; sinks render, aggregate or discard them. Sinks are plain
    records, so callers can build their own (see {!Profile} for an
    aggregating one). *)

type value = Int of int | Float of float | Str of string | Bool of bool
(** Attribute values attached to spans. *)

type span = {
  id : int;  (** unique per process, 1-based *)
  parent : int option;  (** enclosing span, [None] at top level *)
  depth : int;  (** nesting depth, 0 at top level *)
  name : string;
  attrs : (string * value) list;
}

type event =
  | Open of span * float  (** span start; wall-clock seconds since epoch *)
  | Close of span * float * float  (** span end; start time and elapsed seconds *)

type t = { emit : event -> unit; flush : unit -> unit }

val silent : t
(** Discards everything. Installing [silent] keeps tracing off. *)

val pretty : Format.formatter -> t
(** Human-readable console sink: one line per span close, indented by
    nesting depth, with elapsed time and attributes. *)

val jsonl : out_channel -> t
(** JSON-lines sink: one JSON object per event
    ([{"ev":"open"|"close", "id":…, "parent":…, "depth":…, "name":…,
    "t":…, "elapsed_ms":…, "attrs":{…}}]). [flush] flushes the
    channel; the caller closes it. *)

val memory : unit -> t * (unit -> event list)
(** In-memory sink for tests: returns the sink and a function yielding
    all events recorded so far, in emission order. *)

val tee : t -> t -> t
(** Duplicates every event to both sinks. *)

val synchronized : t -> t
(** Wraps [emit]/[flush] in a mutex so several domains can share one
    underlying sink (the console, a file). Events from concurrent spans
    interleave at event granularity; the parent/id fields still
    reconstruct each domain's tree. *)

val pp_value : Format.formatter -> value -> unit
val json_of_value : value -> string
