(** A process choreography: parties with private processes; public
    processes and mapping tables are derived (Sec. 3). Interaction is
    bilateral: two parties interact when their alphabets share a
    label. *)

module Afsa = Chorev_afsa.Afsa

type member = {
  private_process : Chorev_bpel.Process.t;
  public_process : Afsa.t;
  table : Chorev_mapping.Table.t;
}

type t

val of_processes : Chorev_bpel.Process.t list -> t
(** Raises [Invalid_argument] on duplicate parties. *)

val parties : t -> string list
val member : t -> string -> member option

val find_party : t -> string -> (member, [ `Unknown_party of string ]) result
(** Total lookup: [Error (`Unknown_party p)] instead of raising.
    Callers handling user-supplied party names should prefer this over
    {!member_exn}/{!public}/{!private_}. *)

val member_exn : t -> string -> member
val public : t -> string -> Afsa.t
val private_ : t -> string -> Chorev_bpel.Process.t
val table : t -> string -> Chorev_mapping.Table.t

val update : ?cache:bool -> t -> Chorev_bpel.Process.t -> t
(** Replace one party's private process; public and table re-derived
    (through [Chorev_cache.Memo.generate] when [cache], default
    [false]). *)

val fingerprint : t -> string
(** Canonical MD5 digest of the whole choreography (party names,
    public-process fingerprints, private-process digests, in party
    order): the identity scheme shared with the cache layer and the
    discovery registry. Fills member fingerprint caches — call from
    the owning domain. *)

val copy : t -> t
(** Structurally fresh: public processes pass through
    {!Chorev_afsa.Afsa.copy} so the result is safe to hand to another
    domain (used by the simulator's multi-seed soak fan-out). *)

val interact : t -> string -> string -> bool
val pairs : t -> (string * string) list
(** All interacting unordered pairs. *)

(** {2 Pre-flight validation} *)

type issue_kind =
  | Unknown_party_ref of { label : Chorev_afsa.Label.t; missing : string }
      (** a message endpoint names a party that is not a member *)
  | Dangling_channel of {
      label : Chorev_afsa.Label.t;
      counterparty : string;
    }  (** the counterparty's public alphabet never mentions the message *)
  | Unknown_message_type of {
      label : Chorev_afsa.Label.t;
      counterparty : string;
    }
      (** the message {e type} is emitted by one party but absent from
          the partner's whole alphabet — the signature of a typo or an
          unpropagated change (stronger than {!Dangling_channel}, which
          fires when the type exists but the exact channel does not) *)
  | Foreign_label of Chorev_afsa.Label.t
      (** a public alphabet contains a label not involving its party *)
  | No_final_state
  | Empty_language  (** no final state reachable from the start *)

type issue = { party : string; kind : issue_kind }

val issue_severity : issue -> [ `Error | `Warning ]
(** Dangling channels and unknown message types are warnings (legal but
    suspicious); everything else is an error. *)

val validate : t -> (unit, issue list) result
(** Well-formedness pre-flight, run by every [chorev] subcommand before
    pipeline work. Issues come out in party order. *)

val pp_issue : Format.formatter -> issue -> unit
