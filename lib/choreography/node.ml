(** Node-local step logic of the decentralized evolution protocol
    (Sec. 6, after Wombacher et al., EEE 2005).

    One value of {!t} is the *durable* state a party keeps between
    protocol messages: its own private and public process, the last
    public process each partner announced, and which partners it has
    (n)acked. The step functions are pure in the network: they never
    send anything themselves — they return a list of {!effect_}s for
    the driver to realize. Two drivers share this module:

    - {!Protocol.run}, the synchronous round-based runner (a global
      FIFO, lock-step rounds, reliable delivery);
    - [Chorev_sim.Sim.run], the asynchronous discrete-event simulator
      (per-link faults, retries, crash/restart).

    Keeping the announce/check/adapt/ack logic here guarantees the two
    runners cannot drift: under reliable in-order delivery they produce
    exactly the same message sequence.

    Everything is computed from node-local knowledge only: a node's
    partner set is derived from its own alphabet intersected with the
    publics it has been told about — no global model is consulted. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
module Budget = Chorev_guard.Budget
module Engine = Chorev_propagate.Engine
module RPolicy = Chorev_config.Config

type payload =
  | Announce of { public : Afsa.t }
      (** the sender's new public process — the only process data that
          ever travels *)
  | Ack  (** the sender considers itself consistent with the receiver *)
  | Nack  (** the sender saw an inconsistency (it may adapt and re-ack) *)
  | Abort
      (** the sender is withdrawing the change it propagated: restore
          your pre-change state if you adapted, and cascade *)

type effect_ =
  | Send of { to_ : string; payload : payload }
  | Adapted of Chorev_bpel.Process.t
      (** this node replaced its own private process (the driver
          mirrors the update into its choreography model) *)
  | Repaired of string
      (** marker: the preceding [Adapted] came from the amendment
          search, not the engine's own retry loop; carries the chosen
          candidate's description (drivers count these) *)

type snapshot = {
  pre_private : Chorev_bpel.Process.t;
  pre_public : Afsa.t;
  announced_to : string list;
      (** parties this node announced its adapted public to — the
          abort cascade's fan-out *)
}

type t = {
  party : string;
  mutable private_process : Chorev_bpel.Process.t;
  mutable public : Afsa.t;
  mutable known_publics : (string * Afsa.t) list;
      (** last public process announced by each partner *)
  mutable acked : (string * bool) list;  (** partner -> agreed *)
  mutable adapt_log : snapshot option;
      (** state before this node's {e first} adaptation of the current
          protocol run; what an [Abort] restores *)
}

let kind = function
  | Announce _ -> `Announce
  | Ack -> `Ack
  | Nack -> `Nack
  | Abort -> `Abort

let find_known n p = List.assoc_opt p n.known_publics

let set_known n p pub =
  n.known_publics <- (p, pub) :: List.remove_assoc p n.known_publics

let set_acked n p v = n.acked <- (p, v) :: List.remove_assoc p n.acked

(** The node for [party]: private and public process from [current]
    (the owner's node is created after its change is applied), partner
    publics as known *before* the change. *)
let of_model ~(before : Model.t) ~(current : Model.t) party =
  let known =
    List.filter_map
      (fun q ->
        if Model.interact before party q then Some (q, Model.public before q)
        else None)
      (Model.parties before)
  in
  {
    party;
    private_process = Model.private_ current party;
    public = Model.public current party;
    known_publics = known;
    acked = [];
    adapt_log = None;
  }

let shares_label a b =
  let sa = Label.Set.of_list (Afsa.alphabet a) in
  let sb = Label.Set.of_list (Afsa.alphabet b) in
  not (Label.Set.is_empty (Label.Set.inter sa sb))

(** Partners by node-local knowledge: parties whose last announced
    public shares a label with my current public, in lexicographic
    order (so announce fan-out is deterministic). *)
let partners n =
  n.known_publics
  |> List.filter (fun (_, pub) -> shares_label n.public pub)
  |> List.map fst
  |> List.sort_uniq String.compare

let announce_all n =
  List.map
    (fun q -> Send { to_ = q; payload = Announce { public = n.public } })
    (partners n)

(** Has this node mutually agreed with every partner it knows of? Used
    by the simulator's timeout-driven round termination; the
    synchronous runner instead detects the drained queue. *)
let settled n =
  List.for_all (fun q -> List.assoc_opt q n.acked = Some true) (partners n)

(* Adopt [p'] as this node's private process, re-deriving the public
   exactly as [Model.update] would so both drivers see the same
   automaton. The first adoption of a protocol run snapshots the
   pre-change state (what an [Abort] restores); later ones only widen
   the recorded announce fan-out. *)
let adopt n ~from_ p' =
  let pre_private = n.private_process and pre_public = n.public in
  n.private_process <- p';
  n.public <- Chorev_mapping.Public_gen.public p';
  set_acked n from_ true;
  let announces = announce_all n in
  let targets =
    List.filter_map
      (function Send { to_; payload = Announce _ } -> Some to_ | _ -> None)
      announces
  in
  (match n.adapt_log with
  | None ->
      n.adapt_log <- Some { pre_private; pre_public; announced_to = targets }
  | Some s ->
      n.adapt_log <-
        Some
          {
            s with
            announced_to =
              List.sort_uniq String.compare (targets @ s.announced_to);
          });
  Adapted p' :: Send { to_ = from_; payload = Ack } :: announces

(** The change originator's own withdrawal: compute the abort fan-out
    under the {e changed} public, restore [pre] as this node's state,
    and re-announce the restored public. Invoked by a driver when
    neither adaptation nor amendment restored consistency — the
    protocol-level trigger of a causal rollback. *)
let withdraw n ~pre =
  let targets = partners n in
  n.private_process <- pre;
  n.public <- Chorev_mapping.Public_gen.public pre;
  n.adapt_log <- None;
  n.acked <- [];
  List.map (fun q -> Send { to_ = q; payload = Abort }) targets
  @ (Adapted pre :: announce_all n)

(** One protocol step: what [n] does on receiving [payload] from
    [from_]. [adapt:false] disables the local propagation engine, so an
    inconsistency is only nacked. [config] supplies the budgets: the
    bilateral view check runs under one op budget (a trip means the
    verdict is unknown — the node conservatively nacks and never adapts
    on an unaffordable check), and the propagation engine inherits
    [config]'s own budgets. *)
let handle ?(adapt = true) ?(config = Engine.default) n ~from_ payload :
    effect_ list =
  match payload with
  | Ack ->
      set_acked n from_ true;
      []
  | Nack ->
      set_acked n from_ false;
      []
  | Abort -> (
      (* Withdrawal of a change upstream of us: restore the pre-change
         snapshot if (and only if) we adapted, cascade the abort along
         our own announce fan-out, and re-announce the restored public.
         Idempotent — a second abort finds no snapshot and does
         nothing, so duplicated delivery is safe. *)
      match n.adapt_log with
      | None -> []
      | Some s ->
          n.adapt_log <- None;
          n.private_process <- s.pre_private;
          n.public <- s.pre_public;
          List.map (fun q -> Send { to_ = q; payload = Abort }) s.announced_to
          @ (Adapted s.pre_private :: announce_all n))
  | Announce { public } ->
      let previous = find_known n from_ in
      set_known n from_ public;
      (* local bilateral check on views, under an op budget *)
      let budget = Budget.of_spec ?cancel:config.Engine.cancel config.Engine.op_budget in
      let checked =
        Budget.run budget (fun () ->
            let my_view = Chorev_afsa.View.tau ~budget ~observer:from_ n.public in
            let their_view =
              Chorev_afsa.View.tau ~budget ~observer:n.party public
            in
            ( Chorev_afsa.Consistency.consistent ~budget my_view their_view,
              their_view ))
      in
      match checked with
      | `Exceeded _ ->
          (* unknown verdict: treat as inconsistent but do not adapt —
             an adaptation computed against an unverified view could
             diverge between runs *)
          [ Send { to_ = from_; payload = Nack } ]
      | `Done (true, _) ->
          set_acked n from_ true;
          [ Send { to_ = from_; payload = Ack } ]
      | `Done (false, their_view) -> (
          let nack = Send { to_ = from_; payload = Nack } in
          if not adapt then [ nack ]
          else
            (* run the local propagation engine; on success, adopt the
               adaptation and announce it *)
            let fb =
              Budget.of_spec ?cancel:config.Engine.cancel config.Engine.op_budget
            in
            match
              Budget.run fb (fun () ->
                  Chorev_change.Classify.framework
                    ~old_public:
                      (Chorev_afsa.View.tau ~budget:fb ~observer:n.party
                         (Option.value ~default:public previous))
                    ~new_public:their_view ())
            with
            | `Exceeded _ -> [ nack ]
            | `Done framework -> (
                let direction = Engine.direction_of_framework framework in
                let outcome =
                  Engine.run ~config ~direction ~a':public
                    ~partner_private:n.private_process ()
                in
                match outcome.Engine.adapted with
                | Some p' -> nack :: adopt n ~from_ p'
                | None ->
                    (* self-healing fallback: the engine's retry loop is
                       exhausted — search for a partner amendment on the
                       failure counterexample *)
                    let policy = config.Engine.repair in
                    if not policy.RPolicy.enabled then [ nack ]
                    else
                      let r =
                        Chorev_repair.Amend.search ~cache:config.Engine.cache
                          ?cancel:config.Engine.cancel ~policy ~direction
                          ~partner_private:n.private_process
                          ~view_new:outcome.Engine.analysis.Engine.view_new
                          ~delta:outcome.Engine.analysis.Engine.delta ()
                      in
                      (match r.Chorev_repair.Amend.repaired with
                      | None -> [ nack ]
                      | Some (p', _) ->
                          let description =
                            Option.value ~default:"amended"
                              r.Chorev_repair.Amend.chosen
                          in
                          nack :: Repaired description :: adopt n ~from_ p')))
