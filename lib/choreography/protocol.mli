(** Decentralized consistency checking (Sec. 6, after Wombacher et al.
    EEE 2005): parties exchange only announcements of their new public
    processes and ack/nack verdicts; views, checks and adaptations
    happen locally (the per-party step logic lives in {!Node}). This is
    the synchronous lock-step driver with reliable FIFO delivery; the
    asynchronous faulty-network driver is [Chorev_sim.Sim]. The
    simulation counts rounds and messages. *)

type stats = {
  rounds : int;
  messages : int;
  announcements : int;
  acks : int;
  nacks : int;
  aborts : int;
  repairs : int;  (** adaptations produced by the amendment search *)
}

type result = {
  agreed : bool;  (** all interacting pairs consistent afterwards *)
  rolled_back : bool;
      (** the change was withdrawn: the originator aborted and every
          causally affected party restored its pre-change state *)
  stats : stats;
  final : Model.t;  (** choreography after local adaptations *)
}

val run :
  ?adapt:bool ->
  ?engine_config:Chorev_propagate.Engine.config ->
  ?max_rounds:int ->
  ?rollback:bool ->
  Model.t ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  result
(** [adapt:false] disables local adaptation by nacking partners.
    [engine_config] bounds each node's local work (see {!Node.handle});
    default {!Chorev_propagate.Engine.default}, i.e. unlimited — its
    [repair] policy arms the nodes' amendment fallback. With
    [rollback:true] a drained-but-inconsistent protocol triggers the
    originator's withdrawal: an abort cascade along the announce edges
    restores exactly the causally affected parties to their pre-change
    state. *)

val pp_stats : Format.formatter -> stats -> unit
