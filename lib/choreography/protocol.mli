(** Decentralized consistency checking (Sec. 6, after Wombacher et al.
    EEE 2005): parties exchange only announcements of their new public
    processes and ack/nack verdicts; views, checks and adaptations
    happen locally (the per-party step logic lives in {!Node}). This is
    the synchronous lock-step driver with reliable FIFO delivery; the
    asynchronous faulty-network driver is [Chorev_sim.Sim]. The
    simulation counts rounds and messages. *)

type stats = {
  rounds : int;
  messages : int;
  announcements : int;
  acks : int;
  nacks : int;
}

type result = {
  agreed : bool;  (** all interacting pairs consistent afterwards *)
  stats : stats;
  final : Model.t;  (** choreography after local adaptations *)
}

val run :
  ?adapt:bool ->
  ?engine_config:Chorev_propagate.Engine.config ->
  ?max_rounds:int ->
  Model.t ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  result
(** [adapt:false] disables local adaptation by nacking partners.
    [engine_config] bounds each node's local work (see {!Node.handle});
    default {!Chorev_propagate.Engine.default}, i.e. unlimited. *)

val pp_stats : Format.formatter -> stats -> unit
