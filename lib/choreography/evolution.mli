(** The controlled-evolution pipeline of the paper's Fig. 4 across all
    partners, with transitive propagation: auto-applied partner
    adaptations are themselves changes and re-enter the pipeline until
    quiescence or [config.max_rounds]. Every Fig. 4 step runs inside a
    trace span (see DESIGN.md §7). *)

type config = Chorev_propagate.Engine.config = {
  auto_apply : bool;
      (** attempt the suggested private-process adaptations
          (default [true]) *)
  max_rounds : int;  (** transitive-propagation bound (default 8) *)
  obs : Chorev_obs.Sink.t option;
      (** trace sink installed for the duration of the run; [None]
          (default) inherits the ambient {!Chorev_obs.Obs} sink *)
  jobs : int;
      (** domain-pool size for the per-partner fan-out of each round
          and the final consistency sweep; [0] (default) defers to
          [Chorev_parallel.Pool.default_size] ([--jobs] /
          [CHOREV_DOMAINS]). Results are structurally identical for
          every pool size. *)
  op_budget : Chorev_guard.Budget.spec;
      (** bound on each algebra step (classification, view, delta,
          re-check); budgets are minted inside the pool tasks, so
          fuel-only budgets trip identically at every pool size
          (default: unlimited) *)
  round_budget : Chorev_guard.Budget.spec;
      (** bound on one whole partner pipeline (default: unlimited) *)
  cancel : Chorev_guard.Budget.Cancel.t option;
      (** cooperative cancellation token shared by every budget minted
          from this config (default: [None]) *)
  cache : bool;
      (** route algebra operations through the fingerprint-keyed memo
          tables of [Chorev_cache] and honour a coordinator {!Cache.t}
          when one is passed to {!run} (default [true]; results are
          identical either way — set [false] / [--no-cache] for A/B
          runs) *)
  repair : Chorev_config.Config.repair;
      (** self-healing policy: when enabled, a failed propagation step
          triggers an amendment search over the partner's private
          process before the failure is reported (default:
          [Chorev_config.Config.repair_off]) *)
}
(** Alias of {!Chorev_config.Config.t} (via
    {!Chorev_propagate.Engine.config}): one record configures the
    per-partner engine, the whole-choreography pipeline and the
    serving layer's per-request overrides. *)

val default : config
(** [auto_apply = true], [max_rounds = 8], no sink, [jobs = 0],
    unlimited budgets, no cancellation token, [cache = true]. *)

type partner_report = {
  partner : string;
  verdict : Chorev_change.Classify.verdict;
  outcome : Chorev_propagate.Engine.outcome option;
      (** [None] for invariant changes *)
  repair : Chorev_repair.Amend.result option;
      (** the amendment search run when the engine left this partner
          inconsistent and [config.repair.enabled]; [Some] with
          [repaired = Some _] means the partner was self-healed and
          the amended process propagated like any auto-adaptation *)
  degraded : Chorev_guard.Degrade.t list;
      (** classification-level budget trips (the partner is then
          conservatively treated as invariant); engine-level trips are
          on [outcome.degraded] *)
}

type round = {
  originator : string;
  public_changed : bool;
  partners : partner_report list;
}

type report = {
  rounds : round list;
  choreography : Model.t;  (** the evolved choreography *)
  consistent : bool;
}

(** Cross-round incremental state for {!run}: a session of bilateral
    consistency verdicts plus a cache of whole per-partner pipeline
    steps, both keyed by input fingerprints and LRU-bounded. Owned by
    the coordinator — create one per logical evolution history and pass
    it to successive {!run} calls to reuse the work of rounds whose
    inputs did not change. Ignored when [config.cache = false], and the
    step cache additionally stands down when a budget or cancellation
    token is configured (a cached step could mask a budget trip). *)
module Cache : sig
  type step = partner_report * Chorev_bpel.Process.t option

  type t = {
    session : Chorev_cache.Session.t;
    steps : (string, step) Chorev_cache.Lru.t;
  }

  val create : ?capacity:int -> unit -> t
  (** Default capacity 4096 entries per table. *)

  val stats : t -> (string * Chorev_cache.Lru.stats) list
end

val run :
  ?config:config ->
  ?cache:Cache.t ->
  Model.t ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  (report, [ `Unknown_party of string ]) result
(** Evolve the choreography by replacing [owner]'s private process with
    [changed]. Total in [owner]. With [cache] (and [config.cache], the
    default), per-partner steps and bilateral verdicts whose
    fingerprinted inputs are unchanged since an earlier run with the
    same handle are reused verbatim; the report is structurally
    identical to a cache-less run. *)

val run_round :
  ?cache:Cache.t ->
  config ->
  Model.t ->
  string ->
  Chorev_bpel.Process.t ->
  round * Model.t * (string * Chorev_bpel.Process.t) list
(** One round of {!run}: replace the originator's private process,
    classify + propagate to every interacting partner, and return the
    round report, the updated choreography, and the auto-adapted
    partners (next rounds' originators). Exposed for the journal's
    resumable driver; most callers want {!run}. *)

val surviving_pending :
  ?cache:bool ->
  Model.t ->
  (string * Chorev_bpel.Process.t) list ->
  (string * Chorev_bpel.Process.t) list
(** Which of a round's adapted partners still need their own round:
    those whose regenerated public differs from the {e pre-round} model.
    This is exactly the filter {!run}'s loop applies — replay must use
    the same one to reconstruct pending work byte-identically. *)

val dry_run :
  ?config:config ->
  Model.t ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  (partner_report list, [ `Unknown_party of string ]) result
(** Impact analysis: classification and (for variant partners)
    propagation suggestions, with nothing applied anywhere. Empty when
    the public view is unchanged. [config.auto_apply] is ignored. *)

val run_op :
  ?config:config ->
  Model.t ->
  owner:string ->
  Chorev_change.Ops.t ->
  (report, [ `Unknown_party of string | `Op of string ]) result
(** Apply a change operation to the owner's private process, then
    evolve. *)

val pp_round : Format.formatter -> round -> unit
val pp_report : Format.formatter -> report -> unit
