(** Decentralized consistency checking, in the spirit of the paper's
    Sec. 6 and its companion work (Wombacher et al., EEE 2005): "the
    only information which has to be exchanged between partners is
    about the changes applied to public processes. The difference
    calculation as well as the necessary adaptations of the own public
    and private processes can be accomplished locally."

    This module is the *synchronous* driver of the per-party state
    machine in {!Node}: all agents share one reliable FIFO network and
    advance in lock-step rounds until the queue drains (or
    [max_rounds] is hit). The asynchronous counterpart over unreliable
    links — same {!Node}, different driver — is [Chorev_sim.Sim].

    The simulation counts messages and rounds so benchmarks can report
    the decentralization cost; no party ever reads another party's
    private process — only public processes travel. *)

type stats = {
  rounds : int;
  messages : int;
  announcements : int;
  acks : int;
  nacks : int;
  aborts : int;
  repairs : int;  (** adaptations produced by the amendment search *)
}

type result = {
  agreed : bool;  (** all pairs mutually acknowledged *)
  rolled_back : bool;
      (** the change was withdrawn: the originator aborted and every
          causally affected party restored its pre-change state *)
  stats : stats;
  final : Model.t;  (** choreography after local adaptations *)
}

(** Run the protocol for a change of [owner]'s private process to
    [changed]. [adapt] controls whether nacking partners run the local
    propagation engine to adapt (default true); [engine_config]
    (default [Engine.default]) carries the per-op budgets each node
    works under (its [repair] policy arms the nodes' amendment
    fallback). [rollback] (default false) arms the causal rollback:
    when the drained protocol still leaves some pair inconsistent, the
    originator withdraws the change — abort cascade along the announce
    edges, every causally affected party restores its pre-change
    snapshot, unaffected parties are never touched. *)
let run ?(adapt = true) ?(engine_config = Chorev_propagate.Engine.default)
    ?(max_rounds = 16) ?(rollback = false) (t : Model.t) ~owner ~changed =
  let before = t in
  let t = ref (Model.update t changed) in
  let parties = Model.parties !t in
  let nodes =
    List.map (fun p -> (p, Node.of_model ~before ~current:!t p)) parties
  in
  let node p = List.assoc p nodes in
  (* the global FIFO: (recipient, sender, payload) *)
  let inbox : (string * string * Node.payload) Queue.t = Queue.create () in
  let messages = ref 0
  and announcements = ref 0
  and acks = ref 0
  and nacks = ref 0
  and aborts = ref 0
  and repairs = ref 0 in
  let apply_effects p effects =
    List.iter
      (function
        | Node.Send { to_; payload } ->
            incr messages;
            (match Node.kind payload with
            | `Announce -> incr announcements
            | `Ack -> incr acks
            | `Nack -> incr nacks
            | `Abort -> incr aborts);
            Queue.add (to_, p, payload) inbox
        | Node.Adapted p' -> t := Model.update !t p'
        | Node.Repaired _ -> incr repairs)
      effects
  in
  let drain () =
    let rounds = ref 0 in
    let continue = ref true in
    while !continue && !rounds < max_rounds do
      incr rounds;
      let batch = Queue.length inbox in
      if batch = 0 then continue := false
      else
        for _ = 1 to batch do
          let to_, from_, payload = Queue.pop inbox in
          apply_effects to_
            (Node.handle ~adapt ~config:engine_config (node to_) ~from_
               payload)
        done
    done;
    !rounds
  in
  (* originator announces its new public process *)
  apply_effects owner (Node.announce_all (node owner));
  let rounds = ref (drain ()) in
  (* agreement: every interacting pair is mutually consistent now *)
  let agreed = ref (Consistency.consistent !t) in
  let rolled_back = ref false in
  if (not !agreed) && rollback then begin
    (* the change cannot be healed: withdraw it. The abort cascade
       reaches exactly the parties that adapted because of it (the
       causal cone along the announce edges); everyone else's state is
       never touched. *)
    rolled_back := true;
    apply_effects owner
      (Node.withdraw (node owner) ~pre:(Model.private_ before owner));
    t := Model.update !t (Model.private_ before owner);
    rounds := !rounds + drain ();
    agreed := Consistency.consistent !t
  end;
  {
    agreed = !agreed;
    rolled_back = !rolled_back;
    stats =
      {
        rounds = !rounds;
        messages = !messages;
        announcements = !announcements;
        acks = !acks;
        nacks = !nacks;
        aborts = !aborts;
        repairs = !repairs;
      };
    final = !t;
  }

let pp_stats ppf s =
  Fmt.pf ppf "rounds=%d messages=%d (announce=%d ack=%d nack=%d abort=%d) repairs=%d"
    s.rounds s.messages s.announcements s.acks s.nacks s.aborts s.repairs
