(** Decentralized consistency checking, in the spirit of the paper's
    Sec. 6 and its companion work (Wombacher et al., EEE 2005): "the
    only information which has to be exchanged between partners is
    about the changes applied to public processes. The difference
    calculation as well as the necessary adaptations of the own public
    and private processes can be accomplished locally."

    This module simulates that protocol as explicit message passing
    between party agents over an in-memory network:

    - [`Announce]: the change originator sends its *new public process*
      to every partner it interacts with;
    - each partner locally takes its view, checks bilateral consistency
      against its own public process, and replies [`Ack] (invariant for
      it) or [`Nack] (variant — it must adapt before agreeing);
    - a partner that adapts announces its own new public process in
      turn (transitive propagation), and re-replies;
    - the protocol converges when every interacting pair has mutually
      acknowledged; the originator can then commit the change.

    The simulation counts messages and rounds so benchmarks can report
    the decentralization cost; no party ever reads another party's
    private process — only public processes travel. *)

module Afsa = Chorev_afsa.Afsa

type message =
  | Announce of { sender : string; public : Afsa.t }
  | Ack of { sender : string; about : string }
  | Nack of { sender : string; about : string }

type stats = {
  rounds : int;
  messages : int;
  announcements : int;
  acks : int;
  nacks : int;
}

type result = {
  agreed : bool;  (** all pairs mutually acknowledged *)
  stats : stats;
  final : Model.t;  (** choreography after local adaptations *)
}

(* Local state of one party agent. *)
type agent = {
  party : string;
  mutable known_publics : (string * Afsa.t) list;  (** last announced *)
  mutable acked : (string * bool) list;  (** partner -> agreed *)
}

let find_known a p = List.assoc_opt p a.known_publics

let set_known a p pub =
  a.known_publics <- (p, pub) :: List.remove_assoc p a.known_publics

let set_acked a p v = a.acked <- (p, v) :: List.remove_assoc p a.acked

(** Run the protocol for a change of [owner]'s private process to
    [changed]. [adapt] controls whether nacking partners run the local
    propagation engine to adapt (default true). *)
let run ?(adapt = true) ?(max_rounds = 16) (t : Model.t) ~owner ~changed =
  let before = t in
  let t = ref (Model.update t changed) in
  let parties = Model.parties !t in
  let agents =
    List.map
      (fun p ->
        (* every party knows the pre-change protocol of its partners *)
        let known =
          List.filter_map
            (fun q ->
              if Model.interact before p q then Some (q, Model.public before q)
              else None)
            (Model.parties before)
        in
        (p, { party = p; known_publics = known; acked = [] }))
      parties
  in
  let agent p = List.assoc p agents in
  let inbox : (string * message) Queue.t = Queue.create () in
  let messages = ref 0
  and announcements = ref 0
  and acks = ref 0
  and nacks = ref 0 in
  let send ~to_ msg =
    incr messages;
    (match msg with
    | Announce _ -> incr announcements
    | Ack _ -> incr acks
    | Nack _ -> incr nacks);
    Queue.add (to_, msg) inbox
  in
  let partners_of p =
    List.filter (fun q -> Model.interact !t p q) parties
  in
  let announce p =
    let pub = Model.public !t p in
    List.iter (fun q -> send ~to_:q (Announce { sender = p; public = pub }))
      (partners_of p)
  in
  (* originator announces its new public process *)
  announce owner;
  let rounds = ref 0 in
  let continue = ref true in
  while !continue && !rounds < max_rounds do
    incr rounds;
    let batch = Queue.length inbox in
    if batch = 0 then continue := false
    else
      for _ = 1 to batch do
        let to_, msg = Queue.pop inbox in
        let me = agent to_ in
        match msg with
        | Ack { sender; _ } -> set_acked me sender true
        | Nack { sender; _ } -> set_acked me sender false
        | Announce { sender; public } ->
            let previous = find_known me sender in
            set_known me sender public;
            (* local bilateral check on views *)
            let my_view =
              Chorev_afsa.View.tau ~observer:sender (Model.public !t to_)
            in
            let their_view = Chorev_afsa.View.tau ~observer:to_ public in
            if Chorev_afsa.Consistency.consistent my_view their_view then begin
              set_acked me sender true;
              send ~to_:sender (Ack { sender = to_; about = sender })
            end
            else begin
              send ~to_:sender (Nack { sender = to_; about = sender });
              if adapt then begin
                (* run the local propagation engine; on success, adopt
                   the adaptation and announce it *)
                let framework =
                  Chorev_change.Classify.framework
                    ~old_public:
                      (Chorev_afsa.View.tau ~observer:to_
                         (Option.value ~default:public previous))
                    ~new_public:their_view
                in
                let direction =
                  Chorev_propagate.Engine.direction_of_framework framework
                in
                let outcome =
                  Chorev_propagate.Engine.run ~direction ~a':public
                    ~partner_private:(Model.private_ !t to_) ()
                in
                match outcome.Chorev_propagate.Engine.adapted with
                | Some p' ->
                    t := Model.update !t p';
                    set_acked me sender true;
                    send ~to_:sender (Ack { sender = to_; about = sender });
                    announce to_
                | None -> ()
              end
            end
      done
  done;
  (* agreement: every interacting pair is mutually consistent now *)
  let agreed = Consistency.consistent !t in
  {
    agreed;
    stats =
      {
        rounds = !rounds;
        messages = !messages;
        announcements = !announcements;
        acks = !acks;
        nacks = !nacks;
      };
    final = !t;
  }

let pp_stats ppf s =
  Fmt.pf ppf "rounds=%d messages=%d (announce=%d ack=%d nack=%d)" s.rounds
    s.messages s.announcements s.acks s.nacks
