(** Choreography-wide consistency: every interacting pair, compared on
    mutual bilateral views (Sec. 3.4). Functions taking user-supplied
    party names are total: unknown parties surface as
    [`Unknown_party]. *)

type pair_verdict = {
  party_a : string;
  party_b : string;
  consistent : bool;
  witness : Chorev_afsa.Label.t list option;
}

val check_pair :
  Model.t ->
  string ->
  string ->
  (pair_verdict, [ `Unknown_party of string ]) result

val consistent_pair :
  Model.t -> string -> string -> (bool, [ `Unknown_party of string ]) result

val check_all :
  ?pool:Chorev_parallel.Pool.t ->
  ?cache:bool ->
  ?session:Chorev_cache.Session.t ->
  Model.t ->
  pair_verdict list
(** One verdict per interacting pair, in [Model.pairs] order. Total:
    broken member entries are skipped, never raised on. The per-pair
    checks fan out over the pool (default {!Chorev_parallel.Pool.default},
    which is sequential unless [--jobs]/[CHOREV_DOMAINS] say otherwise);
    the result is structurally equal to the sequential one for every
    pool size. [cache] (default [false]) memoizes views and verdicts
    per domain; [session] additionally reuses verdicts of pairs whose
    public-process fingerprints are unchanged since an earlier
    [check_all] with the same session (dirty-region tracking) — only
    dirty pairs are recomputed. Results are identical in all modes. *)

val consistent :
  ?pool:Chorev_parallel.Pool.t ->
  ?cache:bool ->
  ?session:Chorev_cache.Session.t ->
  Model.t ->
  bool

val protocol :
  Model.t ->
  string ->
  string ->
  (Chorev_afsa.Afsa.t, [ `Unknown_party of string ]) result
(** The agreed protocol of two parties — the annotated intersection of
    their mutual views ("the protocol between them", Sec. 4.2); empty
    iff inconsistent. *)

val pp_verdict : Format.formatter -> pair_verdict -> unit
