(** Choreography-wide consistency: every pair of interacting parties
    must be bilaterally consistent on their mutual views (Sec. 3.4 —
    "as a basis for bilateral consistency checking, it has to be ensured
    that the processes to be compared are representing the bilateral
    message exchanges only"). *)

module View = Chorev_afsa.View
module Metrics = Chorev_obs.Metrics

type pair_verdict = {
  party_a : string;
  party_b : string;
  consistent : bool;
  witness : Chorev_afsa.Label.t list option;
}

let c_pairs = Metrics.counter "choreography.consistency.pairs"

(* Bilateral consistency on two members whose names are already
   resolved: each side's view of the other is intersected. *)
let check_members p1 (m1 : Model.member) p2 (m2 : Model.member) =
  Metrics.incr c_pairs;
  let v1 = View.tau ~observer:p2 m1.Model.public_process in
  let v2 = View.tau ~observer:p1 m2.Model.public_process in
  let r = Chorev_afsa.Consistency.check v1 v2 in
  {
    party_a = p1;
    party_b = p2;
    consistent = r.Chorev_afsa.Consistency.consistent;
    witness = r.Chorev_afsa.Consistency.witness;
  }

(** Bilateral consistency of two parties of the choreography. Total in
    the party names: unknown names are reported, not raised. *)
let check_pair t p1 p2 =
  match (Model.find_party t p1, Model.find_party t p2) with
  | Ok m1, Ok m2 -> Ok (check_members p1 m1 p2 m2)
  | Error e, _ | _, Error e -> Error e

let consistent_pair t p1 p2 = Result.map (fun v -> v.consistent) (check_pair t p1 p2)

(** Verdicts for every interacting pair. *)
let check_all t =
  List.map
    (fun (a, b) -> check_members a (Model.member_exn t a) b (Model.member_exn t b))
    (Model.pairs t)

(** The choreography is consistent iff all interacting pairs are. *)
let consistent t =
  Chorev_obs.Obs.span "consistency.check_all" @@ fun () ->
  List.for_all (fun v -> v.consistent) (check_all t)

(** The protocol agreed between two parties — the paper's
    "A ∩ B ≠ ∅ … the protocol (choreography) between them" (Sec. 4.2):
    the annotated intersection of their mutual views. Empty iff the
    pair is inconsistent. Total in the party names. *)
let protocol t p1 p2 =
  match (Model.find_party t p1, Model.find_party t p2) with
  | Ok m1, Ok m2 ->
      let v1 = View.tau ~observer:p2 m1.Model.public_process in
      let v2 = View.tau ~observer:p1 m2.Model.public_process in
      Ok (Chorev_afsa.Ops.intersect v1 v2)
  | Error e, _ | _, Error e -> Error e

let pp_verdict ppf v =
  Fmt.pf ppf "%s ↔ %s: %s" v.party_a v.party_b
    (if v.consistent then "consistent" else "INCONSISTENT")
