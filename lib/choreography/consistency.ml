(** Choreography-wide consistency: every pair of interacting parties
    must be bilaterally consistent on their mutual views (Sec. 3.4 —
    "as a basis for bilateral consistency checking, it has to be ensured
    that the processes to be compared are representing the bilateral
    message exchanges only"). *)

module View = Chorev_afsa.View
module Metrics = Chorev_obs.Metrics
module Pool = Chorev_parallel.Pool

type pair_verdict = {
  party_a : string;
  party_b : string;
  consistent : bool;
  witness : Chorev_afsa.Label.t list option;
}

let c_pairs = Metrics.counter "choreography.consistency.pairs"

(* Bilateral consistency on two members whose names are already
   resolved: each side's view of the other is intersected. With [cache]
   the views and the verdict go through [Chorev_cache.Memo]'s
   fingerprint-keyed tables (inert under a limited ambient budget). *)
let check_members ?(cache = false) p1 (m1 : Model.member) p2
    (m2 : Model.member) =
  Metrics.incr c_pairs;
  let consistent, witness =
    if cache then
      let v1 = Chorev_cache.Memo.tau ~observer:p2 m1.Model.public_process in
      let v2 = Chorev_cache.Memo.tau ~observer:p1 m2.Model.public_process in
      Chorev_cache.Memo.check_verdict v1 v2
    else
      let v1 = View.tau ~observer:p2 m1.Model.public_process in
      let v2 = View.tau ~observer:p1 m2.Model.public_process in
      let r = Chorev_afsa.Consistency.check v1 v2 in
      (r.Chorev_afsa.Consistency.consistent, r.Chorev_afsa.Consistency.witness)
  in
  { party_a = p1; party_b = p2; consistent; witness }

(** Bilateral consistency of two parties of the choreography. Total in
    the party names: unknown names are reported, not raised. *)
let check_pair t p1 p2 =
  match (Model.find_party t p1, Model.find_party t p2) with
  | Ok m1, Ok m2 -> Ok (check_members p1 m1 p2 m2)
  | Error e, _ | _, Error e -> Error e

let consistent_pair t p1 p2 = Result.map (fun v -> v.consistent) (check_pair t p1 p2)

(** Verdicts for every interacting pair, in [Model.pairs] order. Total
    like {!check_pair}: a pair whose member entry has vanished is
    skipped rather than raising. Pairs fan out over the domain pool
    ([?pool], default {!Pool.default}); each task works on a private
    {!Chorev_afsa.Afsa.copy} of the public processes so concurrent
    index builds stay domain-local, and order preservation makes the
    result structurally equal to the sequential one. *)
let check_all ?pool ?(cache = false) ?session t =
  let tasks =
    List.filter_map
      (fun (a, b) ->
        match (Model.find_party t a, Model.find_party t b) with
        | Ok m1, Ok m2 -> Some (a, m1, b, m2)
        | Error _, _ | _, Error _ -> None)
      (Model.pairs t)
  in
  let compute tasks =
    Pool.map ?pool
      (fun (a, (m1 : Model.member), b, (m2 : Model.member)) ->
        check_members ~cache a
          { m1 with public_process = Chorev_afsa.Afsa.copy m1.public_process }
          b
          { m2 with public_process = Chorev_afsa.Afsa.copy m2.public_process })
      tasks
  in
  match session with
  | None -> compute tasks
  | Some s ->
      (* Dirty-region pre-pass, in the coordinator: fingerprint each
         pair's publics (cached digests after the first round) and
         reuse the session verdict when both fingerprints are
         unchanged; only dirty pairs fan out. The stitch preserves
         [Model.pairs] order, so the result is structurally equal to
         the uncached one. *)
      let keyed =
        List.map
          (fun ((_, (m1 : Model.member), _, (m2 : Model.member)) as task) ->
            let fp_a = Chorev_afsa.Fingerprint.digest m1.Model.public_process
            and fp_b = Chorev_afsa.Fingerprint.digest m2.Model.public_process in
            (task, fp_a, fp_b, Chorev_cache.Session.find_pair s ~fp_a ~fp_b))
          tasks
      in
      let miss_tasks =
        List.filter_map
          (fun (task, _, _, hit) ->
            if Option.is_none hit then Some task else None)
          keyed
      in
      let computed = compute miss_tasks in
      let rec stitch keyed computed acc =
        match keyed with
        | [] -> List.rev acc
        | ((a, _, b, _), _, _, Some (consistent, witness)) :: rest ->
            stitch rest computed
              ({ party_a = a; party_b = b; consistent; witness } :: acc)
        | (_, fp_a, fp_b, None) :: rest -> (
            match computed with
            | v :: more ->
                Chorev_cache.Session.set_pair s ~fp_a ~fp_b
                  (v.consistent, v.witness);
                stitch rest more (v :: acc)
            | [] -> assert false)
      in
      stitch keyed computed []

(** The choreography is consistent iff all interacting pairs are. *)
let consistent ?pool ?cache ?session t =
  Chorev_obs.Obs.span "consistency.check_all" @@ fun () ->
  List.for_all (fun v -> v.consistent) (check_all ?pool ?cache ?session t)

(** The protocol agreed between two parties — the paper's
    "A ∩ B ≠ ∅ … the protocol (choreography) between them" (Sec. 4.2):
    the annotated intersection of their mutual views. Empty iff the
    pair is inconsistent. Total in the party names. *)
let protocol t p1 p2 =
  match (Model.find_party t p1, Model.find_party t p2) with
  | Ok m1, Ok m2 ->
      let v1 = View.tau ~observer:p2 m1.Model.public_process in
      let v2 = View.tau ~observer:p1 m2.Model.public_process in
      Ok (Chorev_afsa.Ops.intersect v1 v2)
  | Error e, _ | _, Error e -> Error e

let pp_verdict ppf v =
  Fmt.pf ppf "%s ↔ %s: %s" v.party_a v.party_b
    (if v.consistent then "consistent" else "INCONSISTENT")
