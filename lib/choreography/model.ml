(** A process choreography: a set of parties, each with a private
    process; public processes and mapping tables are derived (Sec. 3).

    The paper's Fig. 1 choreography has three parties (buyer,
    accounting, logistics); this model supports any number. Interaction
    is bilateral: two parties interact when their alphabets share a
    label. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
open Chorev_bpel

module SMap = Map.Make (String)

type member = {
  private_process : Process.t;
  public_process : Afsa.t;
  table : Chorev_mapping.Table.t;
}

type t = { members : member SMap.t }

let of_processes procs =
  let members =
    List.fold_left
      (fun acc (p : Process.t) ->
        let public_process, table = Chorev_mapping.Public_gen.generate p in
        if SMap.mem (Process.party p) acc then
          invalid_arg
            (Printf.sprintf "Choreography.of_processes: duplicate party %s"
               (Process.party p));
        SMap.add (Process.party p)
          { private_process = p; public_process; table }
          acc)
      SMap.empty procs
  in
  { members }

let parties t = List.map fst (SMap.bindings t.members)
let member t party = SMap.find_opt party t.members

(** Total party lookup: callers that receive party names from the
    outside ([Evolution], [Consistency], the CLI) route through this
    instead of the raising accessors, so a typo'd owner name surfaces
    as [`Unknown_party] rather than an exception. *)
let find_party t party : (member, [ `Unknown_party of string ]) result =
  match member t party with
  | Some m -> Ok m
  | None -> Error (`Unknown_party party)

let member_exn t party =
  match member t party with
  | Some m -> m
  | None -> invalid_arg ("Choreography.member_exn: unknown party " ^ party)

let public t party = (member_exn t party).public_process
let private_ t party = (member_exn t party).private_process
let table t party = (member_exn t party).table

(** Replace one party's private process; its public process and table
    are re-derived (the "recreate public view" step of Fig. 4). With
    [cache] the derivation goes through [Chorev_cache.Memo.generate],
    so re-deriving a process already seen this session (e.g. a change
    that reverts an earlier one) is a table lookup. *)
let update ?(cache = false) t (p : Process.t) =
  let public_process, table =
    if cache then Chorev_cache.Memo.generate p
    else Chorev_mapping.Public_gen.generate p
  in
  {
    members =
      SMap.add (Process.party p)
        { private_process = p; public_process; table }
        t.members;
  }

(** Canonical fingerprint of the whole choreography: an MD5 digest over
    the party names, their public-process fingerprints and their
    private-process digests, in party order. Two models have equal
    fingerprints iff every member is structurally identical — the
    identity scheme shared by the cache layer and the discovery
    registry. Computing it fills the members' fingerprint caches, so
    call it from the owning domain only. *)
let fingerprint t =
  let buf = Buffer.create 256 in
  SMap.iter
    (fun party m ->
      Buffer.add_string buf party;
      Buffer.add_char buf '\x00';
      Buffer.add_string buf (Chorev_afsa.Fingerprint.digest m.public_process);
      Buffer.add_string buf (Chorev_cache.Intern.process_digest m.private_process))
    t.members;
  Digest.string (Buffer.contents buf)

(** A structurally fresh model: every member's public process goes
    through {!Chorev_afsa.Afsa.copy}, so the copy can be handed to
    another domain (the lazy out-row/predecessor indexes of a shared
    automaton must not be built concurrently — see
    [Chorev_parallel.Pool]). Private processes and tables are immutable
    and stay shared. *)
let copy t =
  {
    members =
      SMap.map
        (fun m -> { m with public_process = Afsa.copy m.public_process })
        t.members;
  }

(* ------------------------------------------------------------------ *)
(* Pre-flight validation                                               *)
(* ------------------------------------------------------------------ *)

type issue_kind =
  | Unknown_party_ref of { label : Label.t; missing : string }
  | Dangling_channel of { label : Label.t; counterparty : string }
  | Unknown_message_type of { label : Label.t; counterparty : string }
  | Foreign_label of Label.t
  | No_final_state
  | Empty_language

type issue = { party : string; kind : issue_kind }

let issue_severity i =
  match i.kind with
  | Dangling_channel _ | Unknown_message_type _ -> `Warning
  | _ -> `Error

let pp_issue ppf i =
  match i.kind with
  | Unknown_party_ref { label; missing } ->
      Fmt.pf ppf "%s: message %a references party %s, which is not a member"
        i.party Label.pp label missing
  | Dangling_channel { label; counterparty } ->
      Fmt.pf ppf
        "%s: message %a is never matched by %s's public process (dangling \
         channel)"
        i.party Label.pp label counterparty
  | Unknown_message_type { label; counterparty } ->
      Fmt.pf ppf
        "%s: message type %a sent to %s is absent from %s's whole alphabet \
         (likely a typo or a change that was never propagated)"
        i.party Label.pp_short label counterparty counterparty
  | Foreign_label label ->
      Fmt.pf ppf "%s: public alphabet contains %a, which does not involve %s"
        i.party Label.pp label i.party
  | No_final_state ->
      Fmt.pf ppf "%s: public process has no final state" i.party
  | Empty_language ->
      Fmt.pf ppf
        "%s: public process accepts no conversation (no final state is \
         reachable)"
        i.party

(** Well-formedness pre-flight: every message endpoint is a member,
    every channel is matched by the counterparty's public alphabet,
    every public automaton can accept something. Issues are in party
    order; dangling channels are {!issue_severity} [`Warning] (a legal
    but suspicious choreography), everything else [`Error]. *)
let validate t =
  let issues = ref [] in
  let add party kind = issues := { party; kind } :: !issues in
  SMap.iter
    (fun party m ->
      let a = m.public_process in
      List.iter
        (fun (l : Label.t) ->
          if not (Label.involves party l) then add party (Foreign_label l)
          else
            match Label.counterparty party l with
            | None -> ()
            | Some other -> (
                match SMap.find_opt other t.members with
                | None ->
                    add party (Unknown_party_ref { label = l; missing = other })
                | Some peer ->
                    let peer_alpha = Afsa.alphabet peer.public_process in
                    if not (List.exists (Label.equal l) peer_alpha) then
                      (* the exact channel is unmatched; if even the
                         message *type* appears nowhere in the peer's
                         alphabet, say so — that is the signature of a
                         typo or an unpropagated change, and exactly
                         what a rogue injection looks like *)
                      if
                        not
                          (List.exists
                             (fun (l' : Label.t) ->
                               String.equal l'.Label.msg l.Label.msg)
                             peer_alpha)
                      then
                        add party
                          (Unknown_message_type
                             { label = l; counterparty = other })
                      else
                        add party
                          (Dangling_channel { label = l; counterparty = other })))
        (Afsa.alphabet a);
      if Afsa.finals a = [] then add party No_final_state
      else if Chorev_afsa.Emptiness.is_empty_plain a then add party Empty_language)
    t.members;
  match List.rev !issues with [] -> Ok () | is -> Error is

(** Do two parties interact (share at least one label)? *)
let interact t p1 p2 =
  (not (String.equal p1 p2))
  &&
  let a1 = Label.Set.of_list (Afsa.alphabet (public t p1)) in
  let a2 = Label.Set.of_list (Afsa.alphabet (public t p2)) in
  not (Label.Set.is_empty (Label.Set.inter a1 a2))

(** All interacting (unordered) pairs. *)
let pairs t =
  let ps = parties t in
  List.concat_map
    (fun p1 ->
      List.filter_map
        (fun p2 -> if p1 < p2 && interact t p1 p2 then Some (p1, p2) else None)
        ps)
    ps
