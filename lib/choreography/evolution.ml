(** The controlled-evolution pipeline of the paper's Fig. 4, across all
    partners of a choreography.

    A party changes its private process. The pipeline

    1. regenerates the changer's public process ("producing public aFSA
       from scratch");
    2. if the public view is unchanged, stops — no propagation
       ("no propagation necessary");
    3. otherwise classifies the change per partner (Defs. 5/6) on the
       bilateral views;
    4. for variant partners, runs the propagation engine of Sec. 5
       (suggestions + optional auto-apply + re-check);
    5. returns the evolved choreography together with a full report.

    Auto-applied partner adaptations themselves count as changes of
    those partners' private processes; the pipeline re-runs for them
    (transitive propagation) until the choreography is quiescent or
    [config.max_rounds] is reached.

    Tracing: one span per Fig. 4 step — [evolve] wraps the whole run,
    each round is a [round] span containing [regenerate] (public aFSA
    re-derivation) and one [partner] span per partner, which in turn
    contains the [classify] span (from [Classify]) and, for variant
    partners, the engine spans [view]/[delta]/[localize]/[suggest]/
    [apply]/[re-check]. See DESIGN.md §7. *)

module Afsa = Chorev_afsa.Afsa
module Classify = Chorev_change.Classify
module Engine = Chorev_propagate.Engine
module Obs = Chorev_obs.Obs
module Metrics = Chorev_obs.Metrics
module Pool = Chorev_parallel.Pool
module Budget = Chorev_guard.Budget
module Degrade = Chorev_guard.Degrade
open Chorev_bpel

type config = Engine.config = {
  auto_apply : bool;
  max_rounds : int;
  obs : Chorev_obs.Sink.t option;
  jobs : int;
  op_budget : Budget.spec;
  round_budget : Budget.spec;
  cancel : Budget.Cancel.t option;
  cache : bool;
  repair : Chorev_config.Config.repair;
}

let default = Engine.default

type partner_report = {
  partner : string;
  verdict : Classify.verdict;
  outcome : Engine.outcome option;  (** [None] for invariant changes *)
  repair : Chorev_repair.Amend.result option;
      (** the amendment search run when the engine left this partner
          inconsistent and [config.repair.enabled] — [Some] with
          [repaired = Some _] means the partner was self-healed *)
  degraded : Degrade.t list;
      (** classification-level budget trips; engine-level ones are on
          [outcome.degraded] *)
}

type round = {
  originator : string;
  public_changed : bool;
  partners : partner_report list;
}

type report = {
  rounds : round list;
  choreography : Model.t;  (** the evolved choreography *)
  consistent : bool;  (** all-pairs consistency afterwards *)
}

(* Cross-round incremental state, owned by the coordinator of one
   [run] (or one journal replay): a session of bilateral consistency
   verdicts keyed by public fingerprints, plus a cache of whole
   per-partner pipeline steps keyed by everything the step reads. Both
   are LRU-bounded and confined to the coordinator domain — pool tasks
   never touch them. *)
module Cache = struct
  type step = partner_report * Process.t option
  (** Everything a per-partner pipeline step produces. *)

  type t = {
    session : Chorev_cache.Session.t;
    steps : (string, step) Chorev_cache.Lru.t;
  }

  let create ?(capacity = 4096) () =
    {
      session = Chorev_cache.Session.create ~capacity ();
      steps = Chorev_cache.Lru.create ~capacity;
    }

  let stats c =
    [
      ("session", Chorev_cache.Session.stats c.session);
      ("steps", Chorev_cache.Lru.stats c.steps);
    ]
end

let c_rounds = Metrics.counter "evolution.rounds"
let c_runs = Metrics.counter "evolution.runs"

let str s = Chorev_obs.Sink.Str s
let int i = Chorev_obs.Sink.Int i

let classify_partner ?(cache = false) ~owner ~old_public ~new_public t partner
    =
  let partner_view =
    if cache then Chorev_cache.Memo.tau ~observer:owner (Model.public t partner)
    else Chorev_afsa.View.tau ~observer:owner (Model.public t partner)
  in
  Classify.classify ~cache ~owner ~partner ~old_public ~new_public
    ~partner_public:partner_view ()

(* Per-partner step of a round: classification (which emits its own
   [classify] span) and, for variant partners, the propagation engine.
   The step reads only the partner's own public/private processes and
   the owner's old/new publics — never another partner's state — which
   is what makes the per-partner fan-out below sound. Returns the
   report and the partner's auto-adapted private process, if any. *)
let run_partner_step (config : config) ~owner ~old_public ~new_public
    ~partner_public ~partner_private partner =
  Obs.span "partner" ~attrs:[ ("partner", str partner) ] @@ fun () ->
  (* Classification runs under its own op budget, minted here — inside
     the pool task — so the same (input, fuel) pair trips identically
     at every pool size. *)
  let class_budget = Budget.of_spec ?cancel:config.cancel config.op_budget in
  match
    Budget.run class_budget (fun () ->
        (* [Memo] wrappers stand down by themselves when the ambient
           budget is limited, so routing through them here never
           perturbs fuel accounting. *)
        let partner_view =
          if config.cache then
            Chorev_cache.Memo.tau ~observer:owner partner_public
          else Chorev_afsa.View.tau ~observer:owner partner_public
        in
        Classify.classify ~cache:config.cache ~owner ~partner ~old_public
          ~new_public ~partner_public:partner_view ())
  with
  | `Exceeded info ->
      (* Unclassifiable within budget: conservatively leave the partner
         untouched and mark the report as degraded. *)
      let empty = Afsa.make ~alphabet:[] ~start:0 ~finals:[] ~edges:[] ~ann:[] () in
      let verdict =
        {
          Classify.partner;
          framework =
            {
              Classify.additive = false;
              subtractive = false;
              added = empty;
              removed = empty;
            };
          propagation = Classify.Invariant;
        }
      in
      ( {
          partner;
          verdict;
          outcome = None;
          repair = None;
          degraded = [ Degrade.Aborted_step { step = "classify"; info } ];
        },
        None )
  | `Done verdict ->
      if not (Classify.requires_propagation verdict) then
        ({ partner; verdict; outcome = None; repair = None; degraded = [] }, None)
      else
        let direction =
          Engine.direction_of_framework verdict.Classify.framework
        in
        let outcome =
          (* the evolve-level sink (if any) is already installed; the engine
             must not re-install it *)
          Engine.run
            ~config:{ config with obs = None }
            ~direction ~a':new_public ~partner_private ()
        in
        (* Self-healing: when the engine's own retry loop could not
           restore consistency, run the amendment search on the failure
           counterexample. The repair budget is minted inside
           [Amend.search], i.e. inside this pool task — fuel
           determinism across pool sizes is preserved. *)
        let repair =
          if
            config.auto_apply && config.repair.enabled
            && Option.is_none outcome.Engine.adapted
            && not outcome.Engine.consistent_after
          then
            Some
              (Chorev_repair.Amend.search ~cache:config.cache
                 ?cancel:config.cancel ~policy:config.repair ~direction
                 ~partner_private
                 ~view_new:outcome.Engine.analysis.Engine.view_new
                 ~delta:outcome.Engine.analysis.Engine.delta ())
          else None
        in
        let adapted =
          match outcome.Engine.adapted with
          | Some _ as a -> a
          | None ->
              Option.bind repair Chorev_repair.Amend.repaired_process
        in
        ({ partner; verdict; outcome = Some outcome; repair; degraded = [] },
         adapted)

(* The pool a round fans out over: [config.jobs] if positive, else the
   process default ([--jobs] / [CHOREV_DOMAINS], sequential when
   unset). *)
let round_pool (config : config) =
  Pool.sized (if config.jobs > 0 then config.jobs else Pool.default_size ())

(* One round: [changed] replaces [owner]'s private process; returns the
   round report, the updated choreography, and the list of partners
   whose private processes were auto-adapted (next round's
   originators).

   The per-partner steps are independent (see [run_partner_step]), so
   they run as an order-preserving parallel map — each task on private
   {!Afsa.copy} handles of the shared automata — followed by a
   sequential in-partner-order fold applying the model updates, making
   the result structurally identical to the old sequential loop for
   every pool size. *)
(* A whole per-partner step is reusable across rounds iff nothing it
   reads changed and nothing non-deterministic could perturb it: the
   key covers every input ([owner]'s old/new publics, the partner's
   public and private processes, [auto_apply]), and caching is armed
   only when both budget specs are unlimited and no cancellation token
   exists — a limited budget could trip mid-step, and a cached report
   would silently skip the trip. *)
let step_cacheable (config : config) =
  config.cache
  && Budget.spec_is_unlimited config.op_budget
  && Budget.spec_is_unlimited config.round_budget
  && config.cancel = None
  (* a fuel-bounded repair search could trip mid-step; a cached report
     would silently skip the trip *)
  && ((not config.repair.enabled)
     || Budget.spec_is_unlimited config.repair.repair_budget)

let step_key (config : config) ~owner ~old_fp ~new_fp ~partner ~partner_public
    ~partner_private =
  String.concat "\x00"
    [
      owner;
      old_fp;
      new_fp;
      partner;
      Chorev_afsa.Fingerprint.digest partner_public;
      Chorev_cache.Intern.process_digest partner_private;
      (if config.auto_apply then "1" else "0");
      (if config.repair.enabled then
         Fmt.str "r%d/%d" config.repair.max_candidates config.repair.max_edits
       else "r0");
    ]

let run_round ?cache (config : config) t owner (changed : Process.t) =
  Metrics.incr c_rounds;
  Obs.span "round" ~attrs:[ ("originator", str owner) ] @@ fun () ->
  let old_public = Model.public t owner in
  let t' =
    Obs.span "regenerate" ~attrs:[ ("party", str owner) ] @@ fun () ->
    Model.update ~cache:config.cache t changed
  in
  let new_public = Model.public t' owner in
  let public_changed =
    not (Classify.public_unchanged ~cache:config.cache ~old_public ~new_public ())
  in
  if not public_changed then
    ({ originator = owner; public_changed = false; partners = [] }, t', [])
  else
    let partners =
      List.filter (fun p -> Model.interact t' owner p) (Model.parties t')
    in
    let tasks =
      List.map (fun p -> (p, Model.public t' p, Model.private_ t' p)) partners
    in
    (* Dirty-region tracking: with a coordinator cache, fingerprint the
       step inputs here (the digests are cached on the shared automata,
       so this is O(1) after the first round) and fan out only the
       steps whose inputs changed. The stitch below preserves partner
       order, so the round report is structurally identical to the
       uncached one. *)
    let steps =
      match cache with
      | Some c when step_cacheable config -> Some c.Cache.steps
      | _ -> None
    in
    let keyed =
      match steps with
      | None -> List.map (fun task -> (task, None, None)) tasks
      | Some lru ->
          let old_fp = Chorev_afsa.Fingerprint.digest old_public
          and new_fp = Chorev_afsa.Fingerprint.digest new_public in
          List.map
            (fun ((partner, partner_public, partner_private) as task) ->
              let key =
                step_key config ~owner ~old_fp ~new_fp ~partner
                  ~partner_public ~partner_private
              in
              (task, Some key, Chorev_cache.Lru.find lru key))
            tasks
    in
    let miss_tasks =
      List.filter_map
        (fun (task, _, hit) -> if Option.is_none hit then Some task else None)
        keyed
    in
    let computed =
      Pool.map ~pool:(round_pool config)
        (fun (partner, partner_public, partner_private) ->
          run_partner_step config ~owner
            ~old_public:(Afsa.copy old_public)
            ~new_public:(Afsa.copy new_public)
            ~partner_public:(Afsa.copy partner_public)
            ~partner_private partner)
        miss_tasks
    in
    let rec stitch keyed computed acc =
      match keyed with
      | [] -> List.rev acc
      | (_, _, Some step) :: rest -> stitch rest computed (step :: acc)
      | (_, key, None) :: rest -> (
          match computed with
          | step :: more ->
              (match (steps, key) with
              | Some lru, Some k -> Chorev_cache.Lru.add lru k step
              | _ -> ());
              stitch rest more (step :: acc)
          | [] -> assert false)
    in
    let results = stitch keyed computed [] in
    let reports, t'', adapted =
      List.fold_left
        (fun (reports, t_acc, adapted) (report, adapted_proc) ->
          match adapted_proc with
          | Some p' ->
              ( report :: reports,
                Model.update ~cache:config.cache t_acc p',
                (report.partner, p') :: adapted )
          | None -> (report :: reports, t_acc, adapted))
        ([], t', []) results
    in
    ( { originator = owner; public_changed = true; partners = List.rev reports },
      t'',
      adapted )

let with_config_sink (config : config) f =
  match config.obs with None -> f () | Some sink -> Obs.with_sink sink f

(* Which of a round's auto-adapted partners still propagate: those
   whose regenerated public differs from what the *pre-round* model [t]
   records for them. Shared with the journal's replay, which must
   reconstruct pending work exactly as the live loop computed it. *)
let surviving_pending ?(cache = false) t adapted =
  let public p =
    if cache then Chorev_cache.Memo.public p
    else Chorev_mapping.Public_gen.public p
  in
  List.filter
    (fun (p, proc') ->
      not
        (Chorev_afsa.Equiv.equal_annotated (public proc') (Model.public t p)))
    adapted

(** Evolve the choreography by replacing [owner]'s private process with
    [changed], under [config]. Total in [owner]. *)
let run ?(config = default) ?cache t ~owner ~changed =
  match Model.find_party t owner with
  | Error e -> Error e
  | Ok _ ->
      Ok
        ( with_config_sink config @@ fun () ->
          Metrics.incr c_runs;
          Obs.span "evolve"
            ~attrs:
              [
                ("owner", str owner);
                ("max_rounds", int config.max_rounds);
              ]
          @@ fun () ->
          (* The coordinator cache is only honoured when caching is on
             in the config — [--no-cache] must behave as if no handle
             was ever created. *)
          let cache = if config.cache then cache else None in
          let session = Option.map (fun c -> c.Cache.session) cache in
          let finish t rounds =
            {
              rounds = List.rev rounds;
              choreography = t;
              consistent =
                Consistency.consistent ~pool:(round_pool config)
                  ~cache:config.cache ?session t;
            }
          in
          let rec go t rounds remaining pending =
            match pending with
            | [] -> finish t rounds
            | _ when remaining = 0 -> finish t rounds
            | (owner, proc) :: rest ->
                let round, t', adapted = run_round ?cache config t owner proc in
                (* partners adapted in this round propagate onward,
                   except back to processes already equal in the model *)
                let new_pending =
                  surviving_pending ~cache:config.cache t adapted
                in
                go t' (round :: rounds) (remaining - 1) (rest @ new_pending)
          in
          go t [] config.max_rounds [ (owner, changed) ] )

(** Impact analysis: classify a proposed change against every partner
    without touching the choreography or anyone's private process — the
    report a process engineer reviews before committing (the decision
    diamond of the paper's Fig. 4). Total in [owner]. *)
let dry_run ?(config = default) t ~owner ~changed =
  match Model.find_party t owner with
  | Error e -> Error e
  | Ok m ->
      Ok
        ( with_config_sink config @@ fun () ->
          Obs.span "dry_run" ~attrs:[ ("owner", str owner) ] @@ fun () ->
          let old_public = m.Model.public_process in
          let new_public =
            if config.cache then Chorev_cache.Memo.public changed
            else Chorev_mapping.Public_gen.public changed
          in
          if
            Classify.public_unchanged ~cache:config.cache ~old_public
              ~new_public ()
          then []
          else
            Model.parties t
            |> List.filter (fun p ->
                   (not (String.equal p owner)) && Model.interact t owner p)
            |> List.map (fun partner ->
                   Obs.span "partner" ~attrs:[ ("partner", str partner) ]
                   @@ fun () ->
                   let verdict =
                     classify_partner ~cache:config.cache ~owner ~old_public
                       ~new_public t partner
                   in
                   let outcome =
                     if Classify.requires_propagation verdict then
                       Some
                         (Engine.run
                            ~config:
                              { config with auto_apply = false; obs = None }
                            ~direction:
                              (Engine.direction_of_framework
                                 verdict.Classify.framework)
                            ~a':new_public
                            ~partner_private:(Model.private_ t partner)
                            ())
                     else None
                   in
                   { partner; verdict; outcome; repair = None; degraded = [] }) )

(** Apply a change operation to [owner]'s private process, then evolve. *)
let run_op ?config t ~owner op =
  match Model.find_party t owner with
  | Error (`Unknown_party _ as e) -> Error e
  | Ok m -> (
      match Chorev_change.Ops.apply op m.Model.private_process with
      | Error e -> Error (`Op e)
      | Ok changed -> (
          match run ?config t ~owner ~changed with
          | Ok r -> Ok r
          | Error (`Unknown_party _ as e) -> Error e))

let pp_round ppf r =
  Fmt.pf ppf "@[<v>round by %s (public %s):@,%a@]" r.originator
    (if r.public_changed then "changed" else "unchanged")
    (Fmt.list ~sep:Fmt.cut (fun ppf pr ->
         Fmt.pf ppf "  %a%a%a%a" Classify.pp_verdict pr.verdict
           (Fmt.option (fun ppf o ->
                Fmt.pf ppf " → %a" Engine.pp_outcome o))
           pr.outcome
           (Fmt.option (fun ppf r ->
                Fmt.pf ppf " → %a" Chorev_repair.Amend.pp_result r))
           pr.repair
           (fun ppf -> function
             | [] -> ()
             | ds -> Fmt.pf ppf " [degraded: %a]" Degrade.pp_list ds)
           pr.degraded))
    r.partners

let pp_report ppf rep =
  Fmt.pf ppf "@[<v>%a@,choreography consistent: %b@]"
    (Fmt.list ~sep:Fmt.cut pp_round)
    rep.rounds rep.consistent
