(** Node-local step logic of the decentralized evolution protocol
    (Sec. 6): the durable per-party state machine — announce new public
    process, check bilateral views locally, ack/nack, adapt — shared by
    the synchronous runner {!Protocol.run} and the asynchronous
    discrete-event simulator [Chorev_sim.Sim]. Step functions return
    {!effect_}s instead of touching a network, so drivers decide
    delivery semantics (lock-step FIFO vs. faulty links). *)

module Afsa = Chorev_afsa.Afsa

type payload =
  | Announce of { public : Afsa.t }
      (** only public processes ever travel *)
  | Ack
  | Nack
  | Abort
      (** the sender is withdrawing the change it propagated: restore
          your pre-change state if you adapted, and cascade *)

type effect_ =
  | Send of { to_ : string; payload : payload }
  | Adapted of Chorev_bpel.Process.t
      (** the node replaced its own private process; drivers mirror
          this into their choreography model *)
  | Repaired of string
      (** marker preceding an [Adapted] that came from the amendment
          search rather than the engine's retry loop; carries the
          chosen candidate's description (drivers count these) *)

type snapshot = {
  pre_private : Chorev_bpel.Process.t;
  pre_public : Afsa.t;
  announced_to : string list;
      (** parties this node announced its adapted public to — the
          abort cascade's fan-out *)
}

type t = {
  party : string;
  mutable private_process : Chorev_bpel.Process.t;
  mutable public : Afsa.t;
  mutable known_publics : (string * Afsa.t) list;
  mutable acked : (string * bool) list;
  mutable adapt_log : snapshot option;
      (** state before this node's first adaptation of the current
          protocol run; what an [Abort] restores *)
}

val kind : payload -> [ `Abort | `Ack | `Announce | `Nack ]

val of_model : before:Model.t -> current:Model.t -> string -> t
(** Private/public process from [current], partner publics from
    [before] (every party knows the pre-change protocol of its
    partners). *)

val partners : t -> string list
(** Parties whose last announced public shares a label with this
    node's current public — node-local knowledge only, sorted. *)

val announce_all : t -> effect_ list
(** Announce this node's current public process to every partner. *)

val withdraw : t -> pre:Chorev_bpel.Process.t -> effect_ list
(** The change originator's own withdrawal: abort messages to every
    partner of the {e changed} public, then restore [pre] as this
    node's private/public state and re-announce it. Driver-invoked
    when neither adaptation nor amendment restored consistency — the
    protocol-level trigger of a causal rollback. *)

val handle :
  ?adapt:bool ->
  ?config:Chorev_propagate.Engine.config ->
  t ->
  from_:string ->
  payload ->
  effect_ list
(** One protocol step. [adapt:false] only nacks on inconsistency.
    [config] (default {!Chorev_propagate.Engine.default}) bounds the
    work: the bilateral view check runs under one [config.op_budget]
    budget — if it trips, the verdict is unknown and the node nacks
    without adapting — and the propagation engine runs under [config]'s
    budgets with its usual degrade policies. *)

val settled : t -> bool
(** Mutually agreed with every known partner (used for timeout-driven
    termination in the simulator). *)
