(** Public-process generation: compile a private BPEL process into its
    public aFSA and the mapping table (Sec. 3.3 of the paper).

    The compilation is a depth-first traversal of the block structure.
    Each activity is compiled between an [entry] and an [exit] state;
    structured blocks record a mapping-table entry at their entry state,
    and every freshly allocated state is attributed to the innermost
    enclosing named block (this reproduces Table 1 of the paper, see
    {!Table}). Internal choices ([switch] with ≥ 2 branches) annotate
    their entry state with the conjunctive mandatory formula of
    {!Firsts.choice_annotation}. [while] loops with the paper's
    non-terminating condition ("1 = 1" or "true") have no exit edge.

    ε-transitions produced by silent activities and loop exits are
    eliminated afterwards with provenance tracking, so table entries
    survive; states are finally renumbered in BFS order from the start
    (the paper's figures number them the same way, 1-based). *)

module F = Chorev_formula.Syntax
module Afsa = Chorev_afsa.Afsa
module Sym = Chorev_afsa.Sym
module Label = Chorev_afsa.Label
module ISet = Afsa.ISet
open Chorev_bpel

type builder = {
  mutable next : int;
  mutable edges : (int * Sym.t * int) list;
  mutable finals : ISet.t;
  mutable anns : (int * F.t) list;
  mutable table : Table.t;
}

let new_builder () =
  { next = 0; edges = []; finals = ISet.empty; anns = []; table = Table.empty }

let fresh b ~ctx =
  let q = b.next in
  b.next <- q + 1;
  (match ctx with
  | Some entry -> b.table <- Table.add b.table ~state:q entry
  | None -> ());
  q

let edge b s sym t = b.edges <- (s, sym, t) :: b.edges
let lbl l = Sym.L l
let mark_final b q = b.finals <- ISet.add q b.finals
let annotate b q f = if not (F.equal f F.True) then b.anns <- (q, f) :: b.anns

let record_block b ~state ~path act =
  match Activity.block_name act with
  | Some name -> b.table <- Table.add b.table ~state { Table.block = name; path }
  | None -> ()

(** Is a while condition the paper's non-terminating idiom? *)
let nonterminating_cond cond =
  let squash s =
    String.to_seq s |> Seq.filter (fun c -> c <> ' ') |> String.of_seq
    |> String.lowercase_ascii
  in
  List.mem (squash cond) [ "1=1"; "true" ]

(* Interleaving (shuffle) product of two fragment automata, used for
   [flow]. Each side moves independently; annotations combine by
   conjunction; finals are pairs of finals. *)
let shuffle a1 a2 =
  let module PMap = Map.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let next = ref 0 in
  let ids = ref PMap.empty in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let rec visit ((q1, q2) as pr) =
    match PMap.find_opt pr !ids with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        ids := PMap.add pr id !ids;
        if Afsa.is_final a1 q1 && Afsa.is_final a2 q2 then finals := id :: !finals;
        let ann = F.and_ (Afsa.annotation a1 q1) (Afsa.annotation a2 q2) in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        List.iter
          (fun (sym, t1) ->
            let tid = visit (t1, q2) in
            edges := (id, sym, tid) :: !edges)
          (Afsa.out_edges a1 q1);
        List.iter
          (fun (sym, t2) ->
            let tid = visit (q1, t2) in
            edges := (id, sym, tid) :: !edges)
          (Afsa.out_edges a2 q2);
        id
  in
  let s0 = visit (Afsa.start a1, Afsa.start a2) in
  Afsa.make ~start:s0 ~finals:!finals ~edges:!edges ~ann:!anns ()

let rec compile (p : Process.t) b ~ctx ~path ~entry ~exit act =
  record_block b ~state:entry ~path act;
  let ctx' =
    match Activity.block_name act with
    | Some name -> Some { Table.block = name; path }
    | None -> ctx
  in
  let comm_edges kind c =
    let labels = Process.labels_of_comm p kind c in
    let rec chain s = function
      | [] -> edge b s Sym.Eps exit
      | [ l ] -> edge b s (lbl l) exit
      | l :: rest ->
          let m = fresh b ~ctx in
          edge b s (lbl l) m;
          chain m rest
    in
    chain entry labels
  in
  match (act : Activity.t) with
  | Receive c -> comm_edges `Receive c
  | Reply c -> comm_edges `Reply c
  | Invoke c -> comm_edges `Invoke c
  | Assign _ | Empty -> edge b entry Sym.Eps exit
  | Terminate -> mark_final b entry
  | Scope (_, body) ->
      compile p b ~ctx:ctx' ~path:(path @ [ 0 ]) ~entry ~exit body
  | Sequence (_, body) ->
      let n = List.length body in
      let _ =
        List.fold_left
          (fun (i, s) child ->
            let s' = if i = n - 1 then exit else fresh b ~ctx:ctx' in
            compile p b ~ctx:ctx' ~path:(path @ [ i ]) ~entry:s ~exit:s' child;
            (i + 1, s'))
          (0, entry) body
      in
      if n = 0 then edge b entry Sym.Eps exit
  | Switch { branches; _ } ->
      if List.length branches >= 2 then
        annotate b entry
          (Firsts.choice_annotation p (List.map (fun br -> br.Activity.body) branches));
      List.iteri
        (fun i br ->
          compile p b ~ctx:ctx' ~path:(path @ [ i ]) ~entry ~exit
            br.Activity.body)
        branches;
      if branches = [] then edge b entry Sym.Eps exit
  | Pick { on_messages; _ } ->
      List.iteri
        (fun i (c, body) ->
          (* the trigger is a receive; its labels chain to a fresh state
             from which the arm body continues *)
          let labels = Process.labels_of_comm p `Receive c in
          let after =
            List.fold_left
              (fun s l ->
                let m = fresh b ~ctx:ctx' in
                edge b s (lbl l) m;
                m)
              entry labels
          in
          compile p b ~ctx:ctx' ~path:(path @ [ i ]) ~entry:after ~exit body)
        on_messages;
      if on_messages = [] then edge b entry Sym.Eps exit
  | While { cond; body; _ } ->
      compile p b ~ctx:ctx' ~path:(path @ [ 0 ]) ~entry ~exit:entry body;
      if not (nonterminating_cond cond) then begin
        edge b entry Sym.Eps exit;
        annotate b entry (Firsts.choice_annotation p [ body ])
      end
  | Flow (_, branches) ->
      (* compile each branch standalone, shuffle, embed *)
      let frags =
        List.map
          (fun br ->
            let fb = new_builder () in
            let s = fresh fb ~ctx:None in
            let e = fresh fb ~ctx:None in
            compile p fb ~ctx:None ~path:[] ~entry:s ~exit:e br;
            mark_final fb e;
            Afsa.make ~start:s
              ~finals:(ISet.elements fb.finals)
              ~edges:fb.edges ~ann:fb.anns ())
          branches
      in
      let product =
        match frags with
        | [] -> None
        | f :: rest -> Some (List.fold_left shuffle f rest)
      in
      (match product with
      | None -> edge b entry Sym.Eps exit
      | Some prod ->
          (* embed with fresh states *)
          let map = Hashtbl.create 16 in
          let emb q =
            match Hashtbl.find_opt map q with
            | Some v -> v
            | None ->
                let v = fresh b ~ctx:ctx' in
                Hashtbl.add map q v;
                v
          in
          List.iter
            (fun (s, sym, t) -> edge b (emb s) sym (emb t))
            (Afsa.edges prod);
          List.iter (fun (q, f) -> annotate b (emb q) f) (Afsa.annotations prod);
          edge b entry Sym.Eps (emb (Afsa.start prod));
          List.iter (fun q -> edge b (emb q) Sym.Eps exit) (Afsa.finals prod))

(* ------------------------------------------------------------------ *)
(* ε-elimination with provenance + BFS renumbering                     *)
(* ------------------------------------------------------------------ *)

let eliminate_with_table (a : Afsa.t) (table : Table.t) =
  let epsilon = Chorev_afsa.Epsilon.closure_of a in
  let states = Afsa.states a in
  let edges =
    List.concat_map
      (fun q ->
        ISet.fold
          (fun pstate acc ->
            List.filter_map
              (fun (sym, t) ->
                match sym with Sym.Eps -> None | Sym.L _ -> Some (q, sym, t))
              (Afsa.out_edges a pstate)
            @ acc)
          (epsilon q) [])
      states
  in
  let finals =
    List.filter (fun q -> ISet.exists (Afsa.is_final a) (epsilon q)) states
  in
  let anns =
    List.filter_map
      (fun q ->
        let f =
          ISet.fold (fun s acc -> F.and_ (Afsa.annotation a s) acc) (epsilon q) F.True
        in
        let f = Chorev_formula.Simplify.simplify f in
        if F.equal f F.True then None else Some (q, f))
      states
  in
  let table =
    List.fold_left
      (fun tbl q ->
        ISet.fold
          (fun s tbl -> if s = q then tbl else Table.merge tbl ~into:q ~from:s)
          (epsilon q) tbl)
      table states
  in
  let a' =
    Afsa.make ~alphabet:(Afsa.alphabet a) ~start:(Afsa.start a) ~finals ~edges
      ~ann:anns ()
  in
  (a', table)

let bfs_order a =
  let seen = Hashtbl.create 16 in
  let q = Queue.create () in
  let order = ref [] in
  Queue.add (Afsa.start a) q;
  Hashtbl.add seen (Afsa.start a) ();
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    order := s :: !order;
    Afsa.out_edges a s
    |> List.sort (fun (y1, _) (y2, _) -> Sym.compare y1 y2)
    |> List.iter (fun (_, t) ->
           if not (Hashtbl.mem seen t) then begin
             Hashtbl.add seen t ();
             Queue.add t q
           end)
  done;
  List.rev !order

let c_runs = Chorev_obs.Metrics.counter "mapping.public_gen.runs"

(** [generate p] compiles private process [p] to its public aFSA and
    mapping table. The automaton's alphabet is the full alphabet of the
    process. *)
let generate (p : Process.t) : Afsa.t * Table.t =
  Chorev_obs.Metrics.incr c_runs;
  Chorev_obs.Obs.span "public_gen"
    ~attrs:
      [
        ("process", Chorev_obs.Sink.Str (Process.name p));
        ("party", Chorev_obs.Sink.Str (Process.party p));
      ]
  @@ fun () ->
  let b = new_builder () in
  let root_entry = fresh b ~ctx:None in
  b.table <-
    Table.add b.table ~state:root_entry { Table.block = "BPELProcess"; path = [] };
  let root_exit = fresh b ~ctx:None in
  mark_final b root_exit;
  compile p b ~ctx:None ~path:[] ~entry:root_entry ~exit:root_exit
    (Process.body p);
  let raw =
    Afsa.make
      ~alphabet:(Process.alphabet p)
      ~start:root_entry
      ~finals:(ISet.elements b.finals)
      ~edges:b.edges ~ann:b.anns ()
  in
  let elim, table = eliminate_with_table raw b.table in
  let elim = Afsa.trim_unreachable elim in
  (* BFS renumbering, composed into the table *)
  let order = bfs_order elim in
  let map = Hashtbl.create 16 in
  List.iteri (fun i q -> Hashtbl.add map q i) order;
  let f q = Hashtbl.find map q in
  let renum =
    Afsa.make
      ~alphabet:(Afsa.alphabet elim)
      ~start:(f (Afsa.start elim))
      ~finals:(List.map f (Afsa.finals elim))
      ~edges:(List.map (fun (s, y, t) -> (f s, y, f t)) (Afsa.edges elim))
      ~ann:(List.map (fun (s, e) -> (f s, e)) (Afsa.annotations elim))
      ()
  in
  let table = Table.restrict table order in
  let table = Table.renumber table ~f in
  (renum, table)

(** Just the public aFSA. *)
let public p = fst (generate p)
