(* Differential tests for the indexed algebra: the worklist products,
   virtual-completion difference/union and the shared-index emptiness
   fixpoint must agree with the seed's recursive reference
   implementations (kept verbatim in Ablation) on random automata. *)

module C = Chorev
module A = C.Afsa

let check_bool = Alcotest.(check bool)
let n_seeds = 120

let pair_of_seed s =
  ( C.Workload.Gen_afsa.random ~seed:(2 * s) ~states:5 ~ann_p:0.3 (),
    C.Workload.Gen_afsa.random ~seed:((2 * s) + 1) ~states:5 ~ann_p:0.3 () )

let agree name op reference =
  List.iter
    (fun s ->
      let a, b = pair_of_seed s in
      check_bool
        (Printf.sprintf "%s agrees with reference (seed %d)" name s)
        true
        (C.Equiv.equal_annotated (op a b) (reference a b)))
    (List.init n_seeds Fun.id)

let test_intersect_agrees () =
  agree "intersect" C.Ops.intersect C.Ablation.intersect_ref

let test_difference_agrees () =
  agree "difference" C.Ops.difference C.Ablation.difference_ref

let test_union_agrees () = agree "union" C.Ops.union C.Ablation.union_ref

(* The emptiness rewrite (shared predecessor index, per-state
   variable→targets tables) must not change the fixpoint: same sat set,
   same verdict, same number of iterations as the seed loop that
   rebuilds its reverse table every round. *)
let test_emptiness_parity () =
  List.iter
    (fun s ->
      let x = C.Workload.Gen_afsa.random ~seed:s ~states:7 ~ann_p:0.5 () in
      let r = C.Emptiness.analyze x in
      let sat_ref, nonempty_ref, iter_ref = C.Ablation.analyze_ref x in
      check_bool
        (Printf.sprintf "verdict (seed %d)" s)
        nonempty_ref r.C.Emptiness.nonempty;
      check_bool
        (Printf.sprintf "sat set (seed %d)" s)
        true
        (A.ISet.equal sat_ref r.C.Emptiness.sat);
      Alcotest.(check int)
        (Printf.sprintf "iterations (seed %d)" s)
        iter_ref r.C.Emptiness.iterations)
    (List.init n_seeds Fun.id)

(* The trim-first cords minimize must agree with the seed's
   list/Hashtbl Hopcroft kept in Ablation. The new algorithm is
   strictly more canonical — the reference can keep duplicate live
   states apart when they differ only in edges into distinct dead
   classes — so on arbitrary inputs we check annotated-language
   equality plus "never more states"; structural equality is asserted
   on the dead-state-free protocol family, where both must produce the
   identical minimal DFA. *)
let minimize_agrees name inputs =
  List.iter
    (fun (s, x) ->
      let m = C.Minimize.minimize x in
      let r = C.Ablation.minimize_ref x in
      check_bool
        (Printf.sprintf "%s: same annotated language (seed %d)" name s)
        true
        (C.Equiv.equal_annotated m r);
      check_bool
        (Printf.sprintf "%s: no more states than reference (seed %d)" name s)
        true
        (List.length (A.states m) <= List.length (A.states r));
      check_bool
        (Printf.sprintf "%s: idempotent (seed %d)" name s)
        true
        (A.structurally_equal (C.Minimize.minimize m) m))
    inputs

let test_minimize_random_agrees () =
  minimize_agrees "random"
    (List.init n_seeds (fun s ->
         (s, C.Workload.Gen_afsa.random ~seed:s ~states:6 ~ann_p:0.4 ())))

let test_minimize_protocol_structural () =
  List.iter
    (fun s ->
      let x = C.Workload.Gen_afsa.random_protocol ~seed:s ~states:8 () in
      check_bool
        (Printf.sprintf "protocol: structurally equal to reference (seed %d)" s)
        true
        (A.structurally_equal (C.Minimize.minimize x)
           (C.Ablation.minimize_ref x)))
    (List.init n_seeds Fun.id)

(* Deterministic annotated inputs exercise the det fast path together
   with annotation-keyed initial classes. *)
let test_minimize_annotated_det () =
  minimize_agrees "annotated-det"
    (List.init n_seeds (fun s ->
         let x = C.Workload.Gen_afsa.random_protocol ~seed:s ~states:7 () in
         let states = A.states x in
         let q = List.nth states (s mod List.length states) in
         (s, A.set_annotation x q (C.Formula.var "m"))))

(* Empty-language and degenerate inputs take the completed-table
   fallback; they must still agree with the reference. *)
let test_minimize_edge_cases () =
  let no_finals =
    A.make ~start:0 ~finals:[]
      ~edges:[ (0, C.Sym.L (C.Label.make ~sender:"A" ~receiver:"B" "x"), 1) ]
      ()
  in
  let single = A.make ~start:0 ~finals:[ 0 ] ~edges:[] () in
  let dead_branch =
    (* a final state plus a branch that can never reach it *)
    let l n = C.Sym.L (C.Label.make ~sender:"A" ~receiver:"B" n) in
    A.make ~start:0 ~finals:[ 1 ]
      ~edges:[ (0, l "a", 1); (0, l "b", 2); (2, l "c", 2) ]
      ()
  in
  minimize_agrees "edge-case"
    [ (0, no_finals); (1, single); (2, dead_branch) ]

(* The domain-pool fan-out must be invisible in results: check_all and
   the evolution pipeline produce identical output for every pool
   size. Verdicts are plain data, so (=) is safe; evolved models are
   compared by projection ((=) on Afsa.t would look at mutable
   indexes). *)
let test_check_all_pool_invariant () =
  let hub_p, spokes = C.Workload.Scale.hub 5 in
  let model = C.Choreography.Model.of_processes (hub_p :: spokes) in
  let seq = C.Choreography.Consistency.check_all model in
  List.iter
    (fun n ->
      let pool = C.Parallel.Pool.sized n in
      let par = C.Choreography.Consistency.check_all ~pool model in
      C.Parallel.Pool.shutdown pool;
      check_bool
        (Printf.sprintf "check_all equal for pool size %d" n)
        true (par = seq))
    [ 1; 2; 8 ]

let test_evolution_pool_invariant () =
  let model =
    C.Choreography.Model.of_processes
      (List.map snd C.Scenario.Procurement.parties)
  in
  let run jobs =
    let config = { C.Choreography.Evolution.default with jobs } in
    match
      C.Choreography.Evolution.run ~config model ~owner:"A"
        ~changed:C.Scenario.Procurement.accounting_cancel
    with
    | Ok r -> r
    | Error (`Unknown_party p) -> Alcotest.failf "unknown party %s" p
  in
  let project (r : C.Choreography.Evolution.report) =
    ( r.consistent,
      List.map
        (fun (rd : C.Choreography.Evolution.round) ->
          ( rd.originator,
            rd.public_changed,
            List.map
              (fun (p : C.Choreography.Evolution.partner_report) ->
                (p.partner, p.verdict, Option.is_some p.outcome))
              rd.partners ))
        r.rounds )
  in
  let publics_of (r : C.Choreography.Evolution.report) =
    List.map
      (fun p -> C.Choreography.Model.public r.choreography p)
      (C.Choreography.Model.parties r.choreography)
  in
  let seq = run 1 in
  List.iter
    (fun jobs ->
      let par = run jobs in
      check_bool
        (Printf.sprintf "evolution report equal for jobs=%d" jobs)
        true
        (project par = project seq);
      check_bool
        (Printf.sprintf "evolved publics equal for jobs=%d" jobs)
        true
        (List.for_all2 A.structurally_equal (publics_of par) (publics_of seq));
      check_bool
        (Printf.sprintf "evolved privates equal for jobs=%d" jobs)
        true
        (List.map
           (C.Choreography.Model.private_ par.choreography)
           (C.Choreography.Model.parties par.choreography)
        = List.map
            (C.Choreography.Model.private_ seq.choreography)
            (C.Choreography.Model.parties seq.choreography)))
    [ 2; 8 ]

(* Regression: the seed's recursive product overflowed the stack on
   deep products; the worklist must handle a 400-round ladder. *)
let test_ladder_400_no_overflow () =
  let pa, pb = C.Workload.Scale.ladder 400 in
  let a = C.Public_gen.public pa and b = C.Public_gen.public pb in
  let i = C.Ops.intersect a b in
  check_bool "ladder-400 intersection inhabited" false
    (C.Emptiness.is_empty_plain i);
  check_bool "ladder-400 pair consistent" true (C.Consistency.consistent a b);
  check_bool "ladder-400 self-difference empty" true
    (C.Emptiness.is_empty_plain (C.Ops.difference a a))

let () =
  Alcotest.run "perf_equiv"
    [
      ( "algebra vs reference",
        [
          Alcotest.test_case "intersect" `Quick test_intersect_agrees;
          Alcotest.test_case "difference" `Quick test_difference_agrees;
          Alcotest.test_case "union" `Quick test_union_agrees;
        ] );
      ( "emptiness",
        [ Alcotest.test_case "fixpoint parity" `Quick test_emptiness_parity ] );
      ( "minimize vs reference",
        [
          Alcotest.test_case "random" `Quick test_minimize_random_agrees;
          Alcotest.test_case "protocols structural" `Quick
            test_minimize_protocol_structural;
          Alcotest.test_case "annotated deterministic" `Quick
            test_minimize_annotated_det;
          Alcotest.test_case "edge cases" `Quick test_minimize_edge_cases;
        ] );
      ( "pool invariance",
        [
          Alcotest.test_case "check_all" `Quick test_check_all_pool_invariant;
          Alcotest.test_case "evolution" `Quick test_evolution_pool_invariant;
        ] );
      ( "deep products",
        [
          Alcotest.test_case "ladder 400" `Quick test_ladder_400_no_overflow;
        ] );
    ]
