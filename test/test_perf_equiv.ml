(* Differential tests for the indexed algebra: the worklist products,
   virtual-completion difference/union and the shared-index emptiness
   fixpoint must agree with the seed's recursive reference
   implementations (kept verbatim in Ablation) on random automata. *)

module C = Chorev
module A = C.Afsa

let check_bool = Alcotest.(check bool)
let n_seeds = 120

let pair_of_seed s =
  ( C.Workload.Gen_afsa.random ~seed:(2 * s) ~states:5 ~ann_p:0.3 (),
    C.Workload.Gen_afsa.random ~seed:((2 * s) + 1) ~states:5 ~ann_p:0.3 () )

let agree name op reference =
  List.iter
    (fun s ->
      let a, b = pair_of_seed s in
      check_bool
        (Printf.sprintf "%s agrees with reference (seed %d)" name s)
        true
        (C.Equiv.equal_annotated (op a b) (reference a b)))
    (List.init n_seeds Fun.id)

let test_intersect_agrees () =
  agree "intersect" C.Ops.intersect C.Ablation.intersect_ref

let test_difference_agrees () =
  agree "difference" C.Ops.difference C.Ablation.difference_ref

let test_union_agrees () = agree "union" C.Ops.union C.Ablation.union_ref

(* The emptiness rewrite (shared predecessor index, per-state
   variable→targets tables) must not change the fixpoint: same sat set,
   same verdict, same number of iterations as the seed loop that
   rebuilds its reverse table every round. *)
let test_emptiness_parity () =
  List.iter
    (fun s ->
      let x = C.Workload.Gen_afsa.random ~seed:s ~states:7 ~ann_p:0.5 () in
      let r = C.Emptiness.analyze x in
      let sat_ref, nonempty_ref, iter_ref = C.Ablation.analyze_ref x in
      check_bool
        (Printf.sprintf "verdict (seed %d)" s)
        nonempty_ref r.C.Emptiness.nonempty;
      check_bool
        (Printf.sprintf "sat set (seed %d)" s)
        true
        (A.ISet.equal sat_ref r.C.Emptiness.sat);
      Alcotest.(check int)
        (Printf.sprintf "iterations (seed %d)" s)
        iter_ref r.C.Emptiness.iterations)
    (List.init n_seeds Fun.id)

(* Regression: the seed's recursive product overflowed the stack on
   deep products; the worklist must handle a 400-round ladder. *)
let test_ladder_400_no_overflow () =
  let pa, pb = C.Workload.Scale.ladder 400 in
  let a = C.Public_gen.public pa and b = C.Public_gen.public pb in
  let i = C.Ops.intersect a b in
  check_bool "ladder-400 intersection inhabited" false
    (C.Emptiness.is_empty_plain i);
  check_bool "ladder-400 pair consistent" true (C.Consistency.consistent a b);
  check_bool "ladder-400 self-difference empty" true
    (C.Emptiness.is_empty_plain (C.Ops.difference a a))

let () =
  Alcotest.run "perf_equiv"
    [
      ( "algebra vs reference",
        [
          Alcotest.test_case "intersect" `Quick test_intersect_agrees;
          Alcotest.test_case "difference" `Quick test_difference_agrees;
          Alcotest.test_case "union" `Quick test_union_agrees;
        ] );
      ( "emptiness",
        [ Alcotest.test_case "fixpoint parity" `Quick test_emptiness_parity ] );
      ( "deep products",
        [
          Alcotest.test_case "ladder 400" `Quick test_ladder_400_no_overflow;
        ] );
    ]
