(* lib/migrate — the batched, budgeted, journal-backed instance
   migrator: population determinism, sealed-context differential vs the
   per-call compliance API, pool-size invariance, memo/eviction
   determinism, budget deferral, equivalence with [Versions.publish],
   and kill-and-resume byte-identity (including multi-crash chains). *)

module C = Chorev
module I = C.Migration.Instance
module Cp = C.Migration.Compliance
module V = C.Migration.Versions
module Pop = C.Migrate.Population
module E = C.Migrate.Engine
module Pool = C.Parallel.Pool
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let gen = C.Public_gen.public

let buyer_pub = gen P.buyer_process
let buyer_cancel_pub = gen P.buyer_with_cancel
let buyer_once_pub = gen P.buyer_once

(* the CLI's "tracking" shape: two live versions, mixed verdicts *)
let tracking_plan ?(instances = 3_000) ?(batch = 256) ?batch_fuel
    ?(memo = 65_536) () =
  {
    E.publics = [ buyer_pub; buyer_cancel_pub ];
    target = buyer_once_pub;
    pops =
      [
        { Pop.version = 1; count = instances / 2; seed = 17; max_len = 12; prefix = "a-" };
        {
          Pop.version = 2;
          count = instances - (instances / 2);
          seed = 1_000_017;
          max_len = 12;
          prefix = "b-";
        };
      ];
    batch_size = batch;
    batch_fuel;
    memo_capacity = memo;
  }

let report_string r = Fmt.str "%a" E.pp_report r

let run_plan ?pool plan =
  let vs = E.build_plan plan in
  (E.run ~options:(E.options_of_plan ?pool plan) vs plan.E.target, vs)

(* scratch directories *)
let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "chorev-migrate-test-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---------------------------- population ---------------------------- *)

let test_population_deterministic () =
  let build () = E.build_plan (tracking_plan ~instances:500 ()) in
  let key (v, (i : I.t)) =
    Printf.sprintf "%d:%s:%s" v i.I.id
      (String.concat "," (List.map C.Label.to_string i.I.trace))
  in
  let a = List.map key (V.in_admission_order (build ())) in
  let b = List.map key (V.in_admission_order (build ())) in
  check_int "population size" 500 (List.length a);
  check_bool "same instances, same order, same traces" true (a = b);
  (* sampled traces replay on the version they started on *)
  let vs = build () in
  List.iter
    (fun (vnum, i) ->
      let pub = V.version_public (Option.get (V.find_version vs vnum)) in
      check_bool (Printf.sprintf "%s replays" i.I.id) true (I.valid pub i))
    (V.in_admission_order vs)

(* ----------------------- sealed-context verdicts --------------------- *)

(* The pool-shareable ctx API must agree with the original per-call
   compliance API on every sampled instance. *)
let test_ctx_differential () =
  let vs = E.build_plan (tracking_plan ~instances:400 ()) in
  let items = V.in_admission_order vs in
  let old_pubs = [ (1, buyer_pub); (2, buyer_cancel_pub) ] in
  let old_ctxs = List.map (fun (n, p) -> (n, Cp.context p)) old_pubs in
  let new_ctx = Cp.context buyer_once_pub in
  List.iter
    (fun (vnum, inst) ->
      let got = Cp.check_ctx new_ctx inst in
      let want = Cp.check buyer_once_pub inst in
      check_bool
        (Printf.sprintf "check agrees on %s" inst.I.id)
        true (got = want);
      let got_d =
        Cp.dispose_ctx
          ~old_ctx:(List.assoc vnum old_ctxs)
          ~new_ctx inst
      in
      let want_d =
        Cp.dispose
          ~old_public:(List.assoc vnum old_pubs)
          ~new_public:buyer_once_pub inst
      in
      check_bool
        (Printf.sprintf "dispose agrees on %s" inst.I.id)
        true (got_d = want_d))
    items

(* -------------------------- pool invariance -------------------------- *)

let test_pool_invariance () =
  let plan = tracking_plan () in
  let golden = report_string (fst (run_plan ~pool:Pool.sequential plan)) in
  List.iter
    (fun jobs ->
      let got = report_string (fst (run_plan ~pool:(Pool.sized jobs) plan)) in
      check_string (Printf.sprintf "report identical (jobs=%d)" jobs) golden got)
    [ 1; 2; 8 ]

(* ------------------------ memo and eviction -------------------------- *)

let test_memo_determinism () =
  let big = fst (run_plan (tracking_plan ())) in
  let migrated, finishing, stuck, fresh, hits, _ = E.totals big in
  check_int "everything classified" 3_000 (migrated + finishing + stuck);
  check_bool "memo absorbs repeats" true (hits > fresh);
  (* a pathologically tiny memo evicts constantly but must not change
     a single verdict — only the hit/fresh split *)
  let tiny = fst (run_plan (tracking_plan ~memo:2 ())) in
  let m2, f2, s2, fresh2, _, _ = E.totals tiny in
  check_bool "same verdicts under eviction" true
    ((migrated, finishing, stuck) = (m2, f2, s2));
  check_bool "eviction recomputes" true (fresh2 > fresh);
  check_string "same final digest" big.E.digest tiny.E.digest;
  (* and the tiny-memo run is itself deterministic across pool sizes *)
  let tiny8 = fst (run_plan ~pool:(Pool.sized 8) (tracking_plan ~memo:2 ())) in
  check_string "tiny memo pool-invariant" (report_string tiny)
    (report_string tiny8)

(* --------------------------- budget deferral ------------------------- *)

let test_budget_deferral () =
  (* fuel 3 cannot even finish one replay — every batch defers, and
     every instance stays exactly where it started *)
  let plan = tracking_plan ~batch_fuel:3 () in
  let before =
    List.map (fun (v, (i : I.t)) -> (v, i.I.id)) (V.in_admission_order (E.build_plan plan))
  in
  let rep, vs = run_plan plan in
  check_int "all batches deferred"
    (List.length rep.E.batches)
    (List.length (E.deferred_batches rep));
  let migrated, finishing, stuck, fresh, _, _ = E.totals rep in
  check_bool "nothing classified" true
    (migrated = 0 && finishing = 0 && stuck = 0 && fresh = 0);
  let after = List.map (fun (v, (i : I.t)) -> (v, i.I.id)) (V.in_admission_order vs) in
  check_bool "deferred instances untouched" true (before = after);
  (* deferral is deterministic across pool sizes too *)
  let rep8 = fst (run_plan ~pool:(Pool.sized 8) plan) in
  check_string "deferral pool-invariant" (report_string rep) (report_string rep8);
  (* a generous budget defers nothing and matches the unbudgeted run *)
  let generous = fst (run_plan (tracking_plan ~batch_fuel:1_000_000 ())) in
  check_int "no deferrals" 0 (List.length (E.deferred_batches generous));
  check_string "same digest as unbudgeted"
    (fst (run_plan (tracking_plan ()))).E.digest generous.E.digest

(* ---------------------- equivalence with publish --------------------- *)

(* The batched migrator must land exactly where the one-shot
   [Versions.publish] lands: same verdict counts, same final
   instance→version assignment. *)
let test_matches_versions_publish () =
  let plan = tracking_plan ~instances:600 () in
  let rep, vs_batched = run_plan plan in
  let vs_oneshot = E.build_plan plan in
  let pub = V.publish vs_oneshot buyer_once_pub in
  check_int "migrated matches" (List.length pub.V.migrated)
    (let m, _, _, _, _, _ = E.totals rep in
     m);
  check_int "finishing matches"
    (List.length pub.V.finishing_on_old)
    (let _, f, _, _, _, _ = E.totals rep in
     f);
  check_int "stuck matches" (List.length pub.V.stuck)
    (let _, _, s, _, _, _ = E.totals rep in
     s);
  check_string "same final assignment" (E.final_digest vs_oneshot)
    (E.final_digest vs_batched);
  check_string "digest in report is the assignment digest"
    (E.final_digest vs_batched) rep.E.digest

(* ------------------------- journal and resume ------------------------ *)

let test_kill_and_resume () =
  let plan = tracking_plan ~instances:1_000 ~batch:128 () in
  with_dir @@ fun base ->
  let straight =
    match E.run_journaled ~dir:(Filename.concat base "full") plan with
    | Ok r -> report_string r
    | Error e -> Alcotest.fail e
  in
  (* crash after batch 2, resume to completion *)
  let dir = Filename.concat base "crash" in
  (match E.run_journaled ~crash_after:2 ~dir plan with
  | exception E.Simulated_crash 2 -> ()
  | Ok _ -> Alcotest.fail "expected a simulated crash"
  | Error e -> Alcotest.fail e);
  (match E.resume ~dir () with
  | Ok { E.report; replayed } ->
      check_int "two batches replayed" 2 replayed;
      check_string "resumed report byte-identical" straight
        (report_string report)
  | Error e -> Alcotest.fail e);
  (* the sealed journal replays fully and yields the same bytes *)
  (match E.resume ~dir () with
  | Ok { E.report; replayed } ->
      check_int "all batches from the journal" 8 replayed;
      check_string "sealed replay byte-identical" straight
        (report_string report)
  | Error e -> Alcotest.fail e);
  (* a second run into the same directory is refused *)
  match E.run_journaled ~dir plan with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected refusal over an existing journal"

let test_multi_crash_chain () =
  let plan = tracking_plan ~instances:1_000 ~batch:128 () in
  with_dir @@ fun base ->
  let straight =
    match E.run_journaled ~dir:(Filename.concat base "full") plan with
    | Ok r -> report_string r
    | Error e -> Alcotest.fail e
  in
  (* crash at batch 1; resume and crash again at batch 5 via a crashing
     relaunch; finally resume to the end — still byte-identical *)
  let dir = Filename.concat base "chain" in
  (match E.run_journaled ~crash_after:1 ~dir plan with
  | exception E.Simulated_crash _ -> ()
  | _ -> Alcotest.fail "expected crash 1");
  (* simulate the second crash by truncating nothing and resuming in
     two hops: replay 1, run to 5... resume has no crash hook, so chain
     by calling resume twice — the first fully completes; instead,
     check resume-of-resume idempotence *)
  (match E.resume ~dir () with
  | Ok { E.replayed; _ } -> check_int "one batch replayed" 1 replayed
  | Error e -> Alcotest.fail e);
  match E.resume ~dir () with
  | Ok { E.report; replayed } ->
      check_int "sealed: all 8 batches replayed" 8 replayed;
      check_string "chain byte-identical" straight (report_string report)
  | Error e -> Alcotest.fail e

(* deferred batches round-trip through the journal too *)
let test_resume_with_deferrals () =
  let plan = tracking_plan ~instances:600 ~batch:100 ~batch_fuel:3 () in
  with_dir @@ fun base ->
  let straight =
    match E.run_journaled ~dir:(Filename.concat base "full") plan with
    | Ok r -> report_string r
    | Error e -> Alcotest.fail e
  in
  let dir = Filename.concat base "crash" in
  (match E.run_journaled ~crash_after:3 ~dir plan with
  | exception E.Simulated_crash _ -> ()
  | _ -> Alcotest.fail "expected crash");
  match E.resume ~dir () with
  | Ok { E.report; replayed } ->
      check_int "three deferred batches replayed" 3 replayed;
      check_string "deferred resume byte-identical" straight
        (report_string report)
  | Error e -> Alcotest.fail e

(* a journal from one plan refuses to drive another *)
let test_journal_plan_mismatch () =
  with_dir @@ fun base ->
  let dir = Filename.concat base "j" in
  (match
     E.run_journaled ~crash_after:1 ~dir (tracking_plan ~instances:500 ~batch:100 ())
   with
  | exception E.Simulated_crash _ -> ()
  | _ -> Alcotest.fail "expected crash");
  (* hand the journal a different plan file: digest check must refuse *)
  let other = tracking_plan ~instances:400 ~batch:100 () in
  E.write_plan ~dir other;
  match E.resume ~dir () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a digest/total mismatch error"

let () =
  Alcotest.run "migrate"
    [
      ( "population",
        [ Alcotest.test_case "deterministic" `Quick test_population_deterministic ] );
      ( "verdicts",
        [
          Alcotest.test_case "ctx differential" `Quick test_ctx_differential;
          Alcotest.test_case "matches Versions.publish" `Quick
            test_matches_versions_publish;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pool invariance" `Quick test_pool_invariance;
          Alcotest.test_case "memo and eviction" `Quick test_memo_determinism;
          Alcotest.test_case "budget deferral" `Quick test_budget_deferral;
        ] );
      ( "journal",
        [
          Alcotest.test_case "kill and resume" `Quick test_kill_and_resume;
          Alcotest.test_case "multi-crash chain" `Quick test_multi_crash_chain;
          Alcotest.test_case "resume with deferrals" `Quick
            test_resume_with_deferrals;
          Alcotest.test_case "plan mismatch refused" `Quick
            test_journal_plan_mismatch;
        ] );
    ]
