(* Per-figure reproduction checks — one test per figure/table of the
   paper (the experiment index of DESIGN.md). Each test asserts the
   *shape* the paper reports: automaton sizes, emptiness verdicts,
   classification outcomes, localization points, adapted processes. *)

module C = Chorev
module A = C.Afsa
module F = C.Formula
module P = C.Scenario.Procurement

let evolve_ok t ~owner ~changed =
  match C.Choreography.Evolution.run t ~owner ~changed with
  | Ok r -> r
  | Error (`Unknown_party p) -> failwith ("unknown party " ^ p)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let gen = C.Public_gen.public
let l = C.Label.of_string_exn
let word = List.map l

let fig1_overview () =
  (* three parties, bilateral interactions A-B and A-L, consistent *)
  let t = C.Choreography.Model.of_processes (List.map snd P.parties) in
  Alcotest.(check (list string)) "parties" [ "A"; "B"; "L" ]
    (C.Choreography.Model.parties t);
  check_int "two bilateral relations" 2
    (List.length (C.Choreography.Model.pairs t));
  check_bool "choreography consistent" true
    (C.Choreography.Consistency.consistent t)

let fig2_accounting_private () =
  let p = P.accounting_process in
  check_bool "valid BPEL" true (C.Bpel.Validate.is_valid p);
  Alcotest.(check (list string)) "partners" [ "B"; "L" ] (C.Bpel.Process.partners p);
  (* 9 operations on the wire, the synchronous get_statusL counting in
     both directions: 10 labels *)
  check_int "alphabet" 10 (List.length (C.Bpel.Process.alphabet p))

let fig3_buyer_private () =
  let p = P.buyer_process in
  check_bool "valid BPEL" true (C.Bpel.Validate.is_valid p);
  (* the block structure of Fig. 3's inset *)
  let body = C.Bpel.Process.body p in
  check_bool "While:tracking present" true
    (C.Bpel.Edit.find_block ~name:"While:tracking" body <> None);
  check_bool "Switch:termination? present" true
    (C.Bpel.Edit.find_block ~name:"Switch:termination?" body <> None);
  check_bool "cond continue present" true
    (C.Bpel.Edit.find_block ~name:"Sequence:cond continue" body <> None);
  check_bool "cond terminate present" true
    (C.Bpel.Edit.find_block ~name:"Sequence:cond terminate" body <> None)

let fig4_pipeline () =
  (* the full controlled-evolution loop converges and re-establishes
     consistency for the cancel change *)
  let t = C.Choreography.Model.of_processes (List.map snd P.parties) in
  let rep =
    evolve_ok t ~owner:"A" ~changed:P.accounting_cancel
  in
  check_bool "consistent after evolution" true rep.C.Choreography.Evolution.consistent

let fig5_intersection () =
  check_bool "party A nonempty" true (C.Emptiness.is_nonempty C.Scenario.Fig5.party_a);
  check_bool "party B nonempty" true (C.Emptiness.is_nonempty C.Scenario.Fig5.party_b);
  let i = C.Scenario.Fig5.intersection () in
  check_bool "intersection empty (mandatory msg1 unsupported)" true
    (C.Emptiness.is_empty i);
  check_bool "plain language nonetheless nonempty" false
    (C.Emptiness.is_empty_plain (A.trim i))

let fig6_buyer_public_and_table1 () =
  let a, tbl = C.Public_gen.generate P.buyer_process in
  check_int "5 states" 5 (A.num_states a);
  check_bool "annotation at loop head" true
    (F.Sat.equivalent (A.annotation a 2)
       (F.and_ (F.var "B#A#get_statusOp") (F.var "B#A#terminateOp")));
  check_int "table rows" 5 (List.length (C.Table.states tbl))

let fig7_accounting_public () =
  let a = gen P.accounting_process in
  check_int "10 states" 10 (A.num_states a);
  check_bool "sync op appears in both directions" true
    (List.exists (fun lb -> C.Label.to_string lb = "A#L#get_statusLOp") (A.alphabet a)
    && List.exists (fun lb -> C.Label.to_string lb = "L#A#get_statusLOp") (A.alphabet a))

let fig8_views () =
  let pub = gen P.accounting_process in
  let vb = C.View.tau ~observer:"B" pub in
  let vl = C.View.tau ~observer:"L" pub in
  check_int "buyer view 5 states" 5 (A.num_states vb);
  check_int "logistics view 5 states" 5 (A.num_states vl);
  check_bool "buyer view has only B labels" true
    (List.for_all (C.Label.involves "B") (A.alphabet vb));
  check_bool "logistics view has only L labels" true
    (List.for_all (C.Label.involves "L") (A.alphabet vl))

let fig9_invariant_change () =
  (* order_2 is handled as an additional pick arm on the first receive *)
  let p = P.accounting_order2 in
  check_bool "valid" true (C.Bpel.Validate.is_valid p);
  check_bool "accepts order_2 conversation prefix" true
    (C.Trace.accepts
       (C.View.tau ~observer:"B" (gen p))
       (word
          [ "B#A#order_2Op"; "A#B#deliveryOp"; "B#A#terminateOp" ]))

let fig10_invariant_check () =
  let v2 = C.View.tau ~observer:"B" (gen P.accounting_order2) in
  let b = gen P.buyer_process in
  (* (a) the view changed — order_2 added *)
  check_bool "view changed" false
    (C.Equiv.equal_language v2 (C.View.tau ~observer:"B" (gen P.accounting_process)));
  (* (b) intersection is non-empty: invariant, no propagation *)
  check_bool "intersection non-empty" true (C.Consistency.consistent v2 b)

let fig11_variant_additive () =
  let p = P.accounting_cancel in
  check_bool "valid" true (C.Bpel.Validate.is_valid p);
  let v = C.View.tau ~observer:"B" (gen p) in
  check_bool "cancel conversation" true
    (C.Trace.accepts v (word [ "B#A#orderOp"; "A#B#cancelOp" ]));
  (* Fig 12a annotation: cancelOp AND deliveryOp *)
  let ann_states =
    List.filter
      (fun (_, f) ->
        F.Sat.equivalent f
          (F.and_ (F.var "A#B#cancelOp") (F.var "A#B#deliveryOp")))
      (A.annotations v)
  in
  check_bool "cancel∧delivery annotation present" true (ann_states <> [])

let fig12_variant_check () =
  let v = C.View.tau ~observer:"B" (gen P.accounting_cancel) in
  let b = gen P.buyer_process in
  check_bool "intersection EMPTY" true
    (C.Emptiness.is_empty (C.Ops.intersect v b))

let fig13_propagation_delta () =
  let b = gen P.buyer_process in
  let v = C.View.tau ~observer:"B" (gen P.accounting_cancel) in
  let delta = C.Minimize.minimize (C.Ops.difference v b) in
  (* Fig 13a: order then cancel, 3 states *)
  check_int "delta 3 states" 3 (A.num_states delta);
  check_bool "order,cancel" true
    (C.Trace.accepts delta (word [ "B#A#orderOp"; "A#B#cancelOp" ]));
  (* Fig 13b: union = new buyer public with both obligations *)
  let b' = C.Minimize.minimize (C.Ops.union delta b) in
  check_int "new public 5 states" 5 (A.num_states b');
  check_bool "keeps old conversations" true
    (C.Trace.accepts b'
       (word [ "B#A#orderOp"; "A#B#deliveryOp"; "B#A#terminateOp" ]));
  check_bool "adds cancel" true
    (C.Trace.accepts b' (word [ "B#A#orderOp"; "A#B#cancelOp" ]))

let fig14_private_adaptation () =
  let o =
    C.Propagate.Engine.run ~direction:C.Propagate.Engine.Additive
      ~a':(gen P.accounting_cancel) ~partner_private:P.buyer_process ()
  in
  check_bool "auto-adapted" true (Option.is_some o.C.Propagate.Engine.adapted);
  let adapted = Option.get o.C.Propagate.Engine.adapted in
  (* the receive delivery became a pick (paper's described edit) *)
  check_bool "pick introduced" true
    (List.exists
       (fun (_, a) ->
         match a with C.Bpel.Activity.Pick _ -> true | _ -> false)
       (C.Bpel.Activity.all_nodes (C.Bpel.Process.body adapted)));
  check_bool "language = fig14" true
    (C.Equiv.equal_language
       (Option.get o.C.Propagate.Engine.adapted_public)
       (gen P.buyer_with_cancel))

let fig15_variant_subtractive () =
  let p = P.accounting_once in
  check_bool "valid" true (C.Bpel.Validate.is_valid p);
  let v = C.View.tau ~observer:"B" (gen p) in
  check_bool "one round allowed" true
    (C.Trace.accepts v
       (word
          [
            "B#A#orderOp"; "A#B#deliveryOp"; "B#A#get_statusOp";
            "A#B#statusOp"; "B#A#terminateOp";
          ]));
  check_bool "two rounds impossible" false
    (C.Trace.accepts v
       (word
          [
            "B#A#orderOp"; "A#B#deliveryOp"; "B#A#get_statusOp";
            "A#B#statusOp"; "B#A#get_statusOp"; "A#B#statusOp";
            "B#A#terminateOp";
          ]))

let fig16_subtractive_check () =
  let v = C.View.tau ~observer:"B" (gen P.accounting_once) in
  let b = gen P.buyer_process in
  (* plain languages still overlap… *)
  check_bool "plain intersection nonempty" false
    (C.Emptiness.is_empty_plain (A.trim (C.Ops.intersect v b)));
  (* …but the annotated intersection is empty: get_statusOp mandatory at
     the second tracking state is unsupported *)
  check_bool "annotated intersection EMPTY" true
    (C.Emptiness.is_empty (C.Ops.intersect v b))

let fig17_subtractive_delta () =
  let b = gen P.buyer_process in
  let v = C.View.tau ~observer:"B" (gen P.accounting_once) in
  (* Fig 17a: removed sequences = ≥2 tracking rounds *)
  let removed = C.Ops.difference b v in
  check_bool "two rounds removed" true
    (C.Trace.accepts removed
       (word
          [
            "B#A#orderOp"; "A#B#deliveryOp"; "B#A#get_statusOp";
            "A#B#statusOp"; "B#A#get_statusOp"; "A#B#statusOp";
            "B#A#terminateOp";
          ]));
  check_bool "one round not removed" false
    (C.Trace.accepts removed
       (word
          [
            "B#A#orderOp"; "A#B#deliveryOp"; "B#A#get_statusOp";
            "A#B#statusOp"; "B#A#terminateOp";
          ]));
  (* Fig 17b: B' = B ∖ removed allows ≤1 round *)
  let b' = C.Ops.difference b removed in
  check_bool "zero rounds ok" true
    (C.Trace.accepts b'
       (word [ "B#A#orderOp"; "A#B#deliveryOp"; "B#A#terminateOp" ]));
  check_bool "one round ok" true
    (C.Trace.accepts b'
       (word
          [
            "B#A#orderOp"; "A#B#deliveryOp"; "B#A#get_statusOp";
            "A#B#statusOp"; "B#A#terminateOp";
          ]));
  check_bool "two rounds gone" false
    (C.Trace.accepts b'
       (word
          [
            "B#A#orderOp"; "A#B#deliveryOp"; "B#A#get_statusOp";
            "A#B#statusOp"; "B#A#get_statusOp"; "A#B#statusOp";
            "B#A#terminateOp";
          ]))

let fig18_subtractive_adaptation () =
  let o =
    C.Propagate.Engine.run ~direction:C.Propagate.Engine.Subtractive
      ~a':(gen P.accounting_once) ~partner_private:P.buyer_process ()
  in
  check_bool "auto-adapted" true (Option.is_some o.C.Propagate.Engine.adapted);
  check_bool "language = fig18" true
    (C.Equiv.equal_language
       (Option.get o.C.Propagate.Engine.adapted_public)
       (gen P.buyer_once));
  (* the paper's follow-up remark: logistics remains consistent *)
  check_bool "logistics unaffected (invariant)" true
    (C.Consistency.consistent
       (gen P.logistics_process)
       (C.View.tau ~observer:"L" (gen P.accounting_once)))

let () =
  Alcotest.run "figures"
    [
      ( "paper-figures",
        [
          Alcotest.test_case "fig1 overview" `Quick fig1_overview;
          Alcotest.test_case "fig2 accounting private" `Quick
            fig2_accounting_private;
          Alcotest.test_case "fig3 buyer private" `Quick fig3_buyer_private;
          Alcotest.test_case "fig4 pipeline" `Quick fig4_pipeline;
          Alcotest.test_case "fig5 intersection" `Quick fig5_intersection;
          Alcotest.test_case "fig6 + table1" `Quick
            fig6_buyer_public_and_table1;
          Alcotest.test_case "fig7 accounting public" `Quick
            fig7_accounting_public;
          Alcotest.test_case "fig8 views" `Quick fig8_views;
          Alcotest.test_case "fig9 invariant change" `Quick
            fig9_invariant_change;
          Alcotest.test_case "fig10 invariant check" `Quick
            fig10_invariant_check;
          Alcotest.test_case "fig11 variant additive" `Quick
            fig11_variant_additive;
          Alcotest.test_case "fig12 variant check" `Quick fig12_variant_check;
          Alcotest.test_case "fig13 propagation delta" `Quick
            fig13_propagation_delta;
          Alcotest.test_case "fig14 private adaptation" `Quick
            fig14_private_adaptation;
          Alcotest.test_case "fig15 variant subtractive" `Quick
            fig15_variant_subtractive;
          Alcotest.test_case "fig16 subtractive check" `Quick
            fig16_subtractive_check;
          Alcotest.test_case "fig17 subtractive delta" `Quick
            fig17_subtractive_delta;
          Alcotest.test_case "fig18 subtractive adaptation" `Quick
            fig18_subtractive_adaptation;
        ] );
    ]
