(* Degenerate-input hardening: the algebra must neither raise nor loop
   on empty / final-less / unreachable-annotation automata (handcrafted
   and random), and [Model.validate] must flag malformed choreographies
   before the pipeline sees them. *)

module C = Chorev
module B = C.Guard.Budget
module M = C.Choreography.Model
module W = C.Workload.Gen_afsa
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)

let lab msg = C.Label.make ~sender:"A" ~receiver:"B" msg
let sym msg = C.Sym.label (lab msg)

(* ------------------------- degenerate inputs ------------------------ *)

let empty_lang = C.Afsa.make ~start:0 ~finals:[] ~edges:[] ()
let single_final = C.Afsa.make ~start:0 ~finals:[ 0 ] ~edges:[] ()

(* edges but no final state: every run is doomed *)
let no_final =
  C.Afsa.make ~start:0 ~finals:[]
    ~edges:[ (0, sym "x", 1); (1, sym "y", 0) ]
    ()

(* a final state that is unreachable from the start *)
let unreachable_final =
  C.Afsa.make ~start:0 ~finals:[ 2 ]
    ~edges:[ (0, sym "x", 1); (3, sym "y", 2) ]
    ()

(* an annotated state nothing can reach; the annotation names a label
   the reachable part never fires *)
let unreachable_annotation =
  C.Afsa.make ~start:0 ~finals:[ 1 ]
    ~edges:[ (0, sym "x", 1); (5, sym "y", 6) ]
    ~ann:[ (6, C.Formula.var (C.Label.to_string (lab "y"))) ]
    ()

(* epsilon-only cycle *)
let eps_cycle =
  C.Afsa.make ~start:0 ~finals:[ 1 ]
    ~edges:[ (0, C.Sym.eps, 0); (0, sym "x", 1) ]
    ()

let degenerates =
  [
    ("empty", empty_lang);
    ("single final", single_final);
    ("no final", no_final);
    ("unreachable final", unreachable_final);
    ("unreachable annotation", unreachable_annotation);
    ("eps cycle", eps_cycle);
  ]

(* Every unary/binary op over the degenerate zoo: must terminate within
   a generous fuel bound (no unbounded loop) and must not raise. *)
let test_degenerate_zoo () =
  let fuel = 2_000_000 in
  let guard name f =
    let b = B.create ~fuel () in
    match B.run b f with
    | `Done _ -> ()
    | `Exceeded info ->
        Alcotest.failf "%s: fuel exhausted (%a) — unbounded loop?" name
          B.pp_info info
    | exception e ->
        Alcotest.failf "%s: raised %s" name (Printexc.to_string e)
  in
  List.iter
    (fun (na, a) ->
      guard (na ^ " determinize") (fun () ->
          C.Determinize.determinize ~budget:(B.ambient ()) a);
      guard (na ^ " minimize") (fun () ->
          C.Minimize.minimize ~budget:(B.ambient ()) a);
      guard (na ^ " emptiness") (fun () ->
          C.Emptiness.analyze ~budget:(B.ambient ()) a);
      (* [Complete.complete] documents a no-ε precondition *)
      guard (na ^ " complete") (fun () ->
          C.Complete.complete ~budget:(B.ambient ())
            (C.Epsilon.eliminate ~budget:(B.ambient ()) a));
      List.iter
        (fun (nb, b) ->
          let name = na ^ " × " ^ nb in
          guard (name ^ " intersect") (fun () ->
              C.Ops.intersect ~budget:(B.ambient ()) a b);
          guard (name ^ " difference") (fun () ->
              C.Ops.difference ~budget:(B.ambient ()) a b);
          guard (name ^ " union") (fun () ->
              C.Ops.union ~budget:(B.ambient ()) a b))
        degenerates)
    degenerates

(* Algebraic sanity on the same zoo. *)
let test_degenerate_laws () =
  List.iter
    (fun (name, a) ->
      check_bool (name ^ ": a ∩ ∅ empty") true
        (C.Emptiness.is_empty_plain (C.Ops.intersect a empty_lang));
      check_bool (name ^ ": a − a empty") true
        (C.Emptiness.is_empty_plain (C.Ops.difference a a));
      check_bool (name ^ ": a ∪ ∅ = a") true
        (C.Equiv.equal_language (C.Ops.union a empty_lang) a);
      check_bool (name ^ ": minimize preserves language") true
        (C.Equiv.equal_language (C.Minimize.minimize a) a))
    degenerates;
  check_bool "no-final is empty" true (C.Emptiness.is_empty_plain no_final);
  check_bool "unreachable final is empty" true
    (C.Emptiness.is_empty_plain unreachable_final);
  check_bool "unreachable annotation is harmless" true
    (C.Emptiness.is_nonempty unreachable_annotation)

(* Random sweep: arbitrary (dense, sparse, final-less, annotated)
   automata through every op — no exception, bounded work. *)
let test_random_degenerates () =
  let qcheck_seed = ref 0 in
  let gen_case () =
    incr qcheck_seed;
    let seed = !qcheck_seed in
    let rng = Random.State.make [| seed; 0xdead |] in
    let states = 1 + Random.State.int rng 12 in
    (* edges per state: empty, sparse, moderate, dense *)
    let density = [| 0.0; 0.3; 2.0; 8.0 |].(Random.State.int rng 4) in
    let final_p = [| 0.0; 0.2; 1.0 |].(Random.State.int rng 3) in
    W.random ~seed ~states ~labels:4 ~density ~final_p ()
  in
  for _ = 1 to 60 do
    let a = gen_case () and b = gen_case () in
    let budget = B.create ~fuel:5_000_000 () in
    match
      B.run budget (fun () ->
          let i = C.Ops.intersect ~budget a b in
          let d = C.Ops.difference ~budget a b in
          let u = C.Ops.union ~budget a b in
          let m = C.Minimize.minimize ~budget u in
          ignore (C.Emptiness.analyze ~budget i);
          ignore (C.Emptiness.analyze ~budget d);
          (* union of the parts is language-equal to the union input *)
          C.Equiv.equal_language m u)
    with
    | `Done true -> ()
    | `Done false -> Alcotest.fail "minimize changed the language"
    | `Exceeded info ->
        Alcotest.failf "random case exhausted fuel: %a" B.pp_info info
    | exception e -> Alcotest.failf "random case raised %s" (Printexc.to_string e)
  done

(* --------------------------- Model.validate ------------------------- *)

let test_validate_ok () =
  let t = M.of_processes (List.map snd P.parties) in
  match M.validate t with
  | Ok () -> ()
  | Error issues ->
      Alcotest.failf "procurement flagged:@.%a"
        (Fmt.list ~sep:Fmt.cut M.pp_issue)
        issues

let test_validate_unknown_party () =
  (* the buyer alone references accounting ("A"), which is absent *)
  let t = M.of_processes [ P.buyer_process ] in
  match M.validate t with
  | Ok () -> Alcotest.fail "missing counterparty must be flagged"
  | Error issues ->
      check_bool "unknown party ref" true
        (List.exists
           (fun (i : M.issue) ->
             match i.M.kind with
             | M.Unknown_party_ref { missing; _ } -> missing = "A"
             | _ -> false)
           issues);
      check_bool "it is an error" true
        (List.exists (fun i -> M.issue_severity i = `Error) issues)

let test_validate_dangling_channel () =
  (* buyer_with_cancel sends cancel messages the original accounting
     process never mentions — and since the cancel *type* is absent
     from accounting's whole alphabet, the stronger
     Unknown_message_type warning fires (not just Dangling_channel) *)
  let t =
    M.of_processes [ P.buyer_with_cancel; P.accounting_process; P.logistics_process ]
  in
  match M.validate t with
  | Ok () -> Alcotest.fail "dangling cancel channel must be flagged"
  | Error issues ->
      check_bool "unknown message type found" true
        (List.exists
           (fun (i : M.issue) ->
             match i.M.kind with
             | M.Unknown_message_type { label; _ } ->
                 label.Chorev.Label.msg = "cancelOp"
             | _ -> false)
           issues);
      check_bool "unmatched channels are warnings" true
        (List.for_all
           (fun (i : M.issue) ->
             match i.M.kind with
             | M.Dangling_channel _ | M.Unknown_message_type _ ->
                 M.issue_severity i = `Warning
             | _ -> true)
           issues)

let () =
  Alcotest.run "robustness"
    [
      ( "degenerate",
        [
          Alcotest.test_case "handcrafted zoo" `Quick test_degenerate_zoo;
          Alcotest.test_case "algebraic laws" `Quick test_degenerate_laws;
          Alcotest.test_case "random sweep" `Slow test_random_degenerates;
        ] );
      ( "validate",
        [
          Alcotest.test_case "procurement is clean" `Quick test_validate_ok;
          Alcotest.test_case "unknown party" `Quick test_validate_unknown_party;
          Alcotest.test_case "dangling channel" `Quick
            test_validate_dangling_channel;
        ] );
    ]
