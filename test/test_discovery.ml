(* Process-annotated service discovery (Sec. 6, after the IPSI-PF
   matchmaking engine): registry, consistency-filtered queries, ranking
   and the precision gain over keyword matching. *)

module C = Chorev
module D = C.Discovery
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let gen = C.Public_gen.public

(* The buyer as requester: who can serve its conversation? *)
let buyer_pub = gen P.buyer_process

(* A decoy "accounting" that shares operation names but speaks them in
   an incompatible order (delivery before order). *)
let decoy =
  C.Afsa.of_strings ~start:0 ~finals:[ 2 ]
    ~edges:[ (0, "A#B#deliveryOp", 1); (1, "B#A#orderOp", 2) ]
    ()

(* A rigid accounting variant that supports exactly one conversation:
   order then delivery then terminate (no tracking). *)
let rigid =
  C.Afsa.of_strings ~start:0 ~finals:[ 3 ]
    ~edges:
      [
        (0, "B#A#orderOp", 1); (1, "A#B#deliveryOp", 2);
        (2, "B#A#terminateOp", 3);
      ]
    ()

let setup () =
  let t = D.create () in
  D.advertise_process t ~name:"accounting-std"
    ~description:"the paper's accounting department" P.accounting_process;
  D.advertise_process t ~name:"accounting-cancel" P.accounting_cancel;
  D.advertise_process t ~name:"accounting-once" P.accounting_once;
  D.advertise t ~name:"decoy" ~party:"A" decoy;
  D.advertise t ~name:"rigid" ~party:"A" rigid;
  D.advertise_process t ~name:"logistics" P.logistics_process;
  t

let test_registry_basics () =
  let t = setup () in
  check_int "six services" 6 (D.size t);
  D.remove t "decoy";
  check_int "five after removal" 5 (D.size t);
  check_bool "duplicate name rejected" true
    (try
       D.advertise t ~name:"rigid" ~party:"A" rigid;
       false
     with Invalid_argument _ -> true)

let test_query_filters_by_consistency () =
  let t = setup () in
  let names =
    D.query t ~party:"B" ~requester:buyer_pub |> List.map (fun m -> m.D.entry.D.name)
  in
  check_bool "std accounting matches" true (List.mem "accounting-std" names);
  check_bool "cancel accounting rejected (buyer lacks cancelOp — Fig. 12!)"
    false
    (List.mem "accounting-cancel" names);
  check_bool "decoy rejected (wrong order)" false (List.mem "decoy" names);
  check_bool "once rejected (buyer may track twice)" false
    (List.mem "accounting-once" names);
  check_bool "logistics rejected (no shared conversation)" false
    (List.mem "logistics" names);
  (* rigid cannot serve the buyer's mandatory tracking — rejected for
     the same reason as Fig. 16 *)
  check_bool "rigid rejected (no tracking support)" false
    (List.mem "rigid" names);
  (* …but a requester who never tracks is happy with rigid *)
  let lenient =
    C.Afsa.of_strings ~start:0 ~finals:[ 3 ]
      ~edges:
        [
          (0, "B#A#orderOp", 1); (1, "A#B#deliveryOp", 2);
          (2, "B#A#terminateOp", 3);
        ]
      ()
  in
  let lenient_names =
    D.query t ~party:"B" ~requester:lenient
    |> List.map (fun m -> m.D.entry.D.name)
  in
  check_bool "lenient requester matches rigid" true
    (List.mem "rigid" lenient_names);
  (* the adapted buyer of Fig. 14 additionally matches the
     cancel-capable accounting *)
  let names' =
    D.query t ~party:"B" ~requester:(gen P.buyer_with_cancel)
    |> List.map (fun m -> m.D.entry.D.name)
  in
  check_bool "fig14 buyer matches cancel accounting" true
    (List.mem "accounting-cancel" names');
  check_bool "fig14 buyer still matches std" true
    (List.mem "accounting-std" names')

let test_ranking () =
  let t = setup () in
  (* the Fig. 14 buyer matches both the standard and the cancel-capable
     accounting; the latter supports strictly more conversations *)
  let ms = D.query t ~party:"B" ~requester:(gen P.buyer_with_cancel) in
  let conv name =
    (List.find (fun m -> String.equal m.D.entry.D.name name) ms)
      .D.conversations
  in
  check_bool "cancel-capable richer than std" true
    (conv "accounting-cancel" > conv "accounting-std");
  (* results sorted descending *)
  let sorted =
    List.for_all2
      (fun a b -> a.D.conversations >= b.D.conversations)
      (List.filteri (fun i _ -> i < List.length ms - 1) ms)
      (List.tl ms)
  in
  check_bool "descending" true sorted;
  (* every match carries an executable shortest conversation *)
  List.iter
    (fun m ->
      match m.D.shortest with
      | Some w ->
          check_bool
            (m.D.entry.D.name ^ " witness nonempty")
            true (w <> [])
      | None -> Alcotest.fail "witness expected")
    ms

let test_precision_vs_keyword () =
  let t = setup () in
  let precise, keyword = D.precision t ~party:"B" ~requester:buyer_pub in
  (* the decoy shares every operation name: keyword matching returns
     it, consistency filtering does not — the paper's precision claim *)
  check_bool "keyword finds decoy" true (List.mem "decoy" keyword);
  check_bool "precise rejects decoy" false (List.mem "decoy" precise);
  check_bool "precise ⊆ keyword" true
    (List.for_all (fun n -> List.mem n keyword) precise);
  check_bool "strictly more precise" true
    (List.length precise < List.length keyword)

(* The versioned-entry API the serving layer's tenant store keys on:
   stable ids, version bumps on structural change only, and the
   fingerprint index surviving re-registration and removal. *)
let test_versioned_registration () =
  let t = D.create () in
  let acc = gen P.accounting_process in
  let cancel = gen P.accounting_cancel in
  let e1 = D.register t ~name:"acc" ~party:"A" acc in
  check_int "first registration is v1" 1 e1.D.version;
  (* idempotent: same structure, same entry, no bump *)
  let e1' = D.register t ~name:"acc" ~party:"A" acc in
  check_int "same-structure re-register keeps version" 1 e1'.D.version;
  check_bool "same-structure re-register keeps id" true
    (String.equal e1.D.id e1'.D.id);
  (* structural change bumps the version under the same id *)
  let e2 = D.register t ~name:"acc" ~party:"A" cancel in
  check_int "structural re-register bumps version" 2 e2.D.version;
  check_bool "stable id across versions" true (String.equal e1.D.id e2.D.id);
  check_int "still one entry" 1 (D.size t);
  (* the fingerprint index follows the current structure *)
  check_bool "new structure found" true (D.mem_structure t cancel);
  check_bool "old structure gone" false (D.mem_structure t acc);
  (* a second service with the same structure shares the index bucket *)
  let e3 = D.register t ~name:"acc-2" ~party:"A" cancel in
  check_bool "distinct services, distinct ids" false
    (String.equal e2.D.id e3.D.id);
  check_int "find_by_structure sees both" 2
    (List.length (D.find_by_structure t cancel));
  (* interning: structurally equal publics share one physical aFSA *)
  check_bool "equal publics interned" true (e2.D.public == e3.D.public);
  (* remove retains the id/version lineage *)
  D.remove t "acc";
  check_int "removed" 1 (D.size t);
  let e4 = D.register t ~name:"acc" ~party:"A" acc in
  check_bool "id survives remove/re-register" true
    (String.equal e1.D.id e4.D.id);
  check_int "version sequence resumes" 3 e4.D.version;
  (* entries come out in first-registration order *)
  let names = List.map (fun e -> e.D.name) (D.entries t) in
  check_bool "first-registration order" true (names = [ "acc"; "acc-2" ])

let test_advertise_keeps_private_private () =
  (* advertising a process stores only the derived public aFSA *)
  let t = D.create () in
  D.advertise_process t ~name:"acc" P.accounting_process;
  let e = List.hd (D.entries t) in
  check_bool "public derived" true
    (C.Equiv.equal_language e.D.public (gen P.accounting_process))

let () =
  Alcotest.run "discovery"
    [
      ( "registry",
        [
          Alcotest.test_case "basics" `Quick test_registry_basics;
          Alcotest.test_case "versioned registration" `Quick
            test_versioned_registration;
        ] );
      ( "matchmaking",
        [
          Alcotest.test_case "consistency filter" `Quick
            test_query_filters_by_consistency;
          Alcotest.test_case "ranking" `Quick test_ranking;
          Alcotest.test_case "precision vs keyword" `Quick
            test_precision_vs_keyword;
          Alcotest.test_case "privacy" `Quick
            test_advertise_keeps_private_private;
        ] );
    ]
