(* The write-ahead journal (lib/journal): record/JSON round-trips, torn
   tails and corruption, and the central crash-safety property —
   kill-at-round-k + resume equals the uninterrupted run, byte for
   byte, for the paper scenarios, a hub, and 25 random workloads. *)

module C = Chorev
module M = C.Choreography.Model
module Ev = C.Choreography.Evolution
module J = C.Journal
module JE = C.Journal.Evolve
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let procurement () = M.of_processes (List.map snd P.parties)

(* fresh scratch directories under the system temp dir *)
let dir_counter = ref 0
let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "chorev-journal-test-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------ records ----------------------------- *)

let sample_records =
  [
    J.Start { owner = "A"; parties = [ "A"; "B" ]; digest = "00ff" };
    J.Round
      {
        index = 0;
        originator = "A";
        changed = "(process \"weird\nstring\" with \\ escapes\t)";
        adapted = [ ("B", "(process b)"); ("L", "(process l)") ];
        summary = "round by A (public changed):\n  B: variant";
      };
    J.Done { consistent = true; digest = "abcd" };
  ]

let test_record_roundtrip () =
  List.iter
    (fun r ->
      let j = J.record_to_json r in
      let s = J.Json.to_string j in
      match J.Json.of_string s with
      | Error e -> Alcotest.failf "reparse failed: %s" e
      | Ok j' -> (
          match J.record_of_json j' with
          | Error e -> Alcotest.failf "decode failed: %s" e
          | Ok r' -> check_bool "record round-trips" true (r = r')))
    sample_records

let test_journal_file_roundtrip () =
  with_dir @@ fun dir ->
  let w = J.create ~dir in
  List.iter (J.append w) sample_records;
  J.close w;
  match J.read ~dir with
  | Error e -> Alcotest.fail e
  | Ok { records; torn; _ } ->
      check_bool "not torn" false torn;
      check_bool "all records back" true (records = sample_records)

let test_torn_tail_dropped () =
  with_dir @@ fun dir ->
  let w = J.create ~dir in
  List.iter (J.append w) sample_records;
  J.close w;
  (* simulate a crash mid-append: a partial line with no newline *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Filename.concat dir "journal.jsonl")
  in
  output_string oc {|{"crc":"dead","body":{"rec":"rou|};
  close_out oc;
  match J.read ~dir with
  | Error e -> Alcotest.fail e
  | Ok { records; torn; _ } ->
      check_bool "torn flagged" true torn;
      check_int "tail dropped" (List.length sample_records)
        (List.length records)

let test_corrupt_middle_is_error () =
  with_dir @@ fun dir ->
  let w = J.create ~dir in
  List.iter (J.append w) sample_records;
  J.close w;
  (* flip one byte inside the first line's body *)
  let path = Filename.concat dir "journal.jsonl" in
  let s = In_channel.with_open_bin path In_channel.input_all in
  let i = 60 in
  let b = Bytes.of_string s in
  Bytes.set b i (if Bytes.get b i = 'A' then 'Z' else 'A');
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b);
  match J.read ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corruption before the tail must be an error"

let test_snapshot_roundtrip () =
  with_dir @@ fun dir ->
  let t = procurement () in
  J.write_snapshot ~dir t ~changed:P.accounting_cancel;
  match J.read_snapshot ~dir with
  | Error e -> Alcotest.fail e
  | Ok (t', changed') ->
      check_string "model digest preserved" (J.model_digest t)
        (J.model_digest t');
      check_bool "changed process preserved" true
        (C.Bpel.Sexp.process_to_string P.accounting_cancel
        = C.Bpel.Sexp.process_to_string changed')

(* ------------------------- crash-safety oracle ---------------------- *)

let outcome_text o = Fmt.str "%a" JE.pp_outcome o

(* The uninterrupted journaled run must agree with the plain
   [Evolution.run] oracle... *)
let assert_matches_evolution name t ~owner ~changed (o : JE.outcome) =
  match Ev.run t ~owner ~changed with
  | Error (`Unknown_party p) -> Alcotest.failf "unknown party %s" p
  | Ok rep ->
      check_bool (name ^ ": consistent matches oracle") rep.Ev.consistent
        o.JE.consistent;
      check_string (name ^ ": digest matches oracle")
        (J.model_digest rep.Ev.choreography)
        o.JE.digest;
      Alcotest.(check (list string))
        (name ^ ": round logs match oracle")
        (List.map (Fmt.str "%a" Ev.pp_round) rep.Ev.rounds)
        o.JE.round_logs

(* ...and a run killed right after committing round [k] must, after
   resume, produce the identical outcome. *)
let assert_crash_resume_identical name t ~owner ~changed =
  with_dir @@ fun full_dir ->
  let full =
    match JE.run ~dir:full_dir t ~owner ~changed with
    | Ok o -> o
    | Error e -> Alcotest.failf "%s: full run failed: %s" name e
  in
  assert_matches_evolution name t ~owner ~changed full;
  let n_rounds = List.length full.JE.round_logs in
  check_bool (name ^ ": at least one round") true (n_rounds >= 1);
  for k = 1 to n_rounds do
    with_dir @@ fun dir ->
    (match JE.run ~crash_after:k ~dir t ~owner ~changed with
    | exception JE.Simulated_crash k' ->
        check_int (name ^ ": crashed where asked") k k'
    | Ok _ ->
        (* crash point at/after the last round: the run completed *)
        Alcotest.failf "%s: expected simulated crash at round %d" name k
    | Error e -> Alcotest.failf "%s: %s" name e);
    match JE.resume ~dir () with
    | Error e -> Alcotest.failf "%s: resume after round %d: %s" name k e
    | Ok resumed ->
        check_int
          (Printf.sprintf "%s: replayed %d rounds" name k)
          k resumed.JE.replayed;
        check_string
          (Printf.sprintf "%s: kill@%d+resume byte-identical" name k)
          (outcome_text full) (outcome_text resumed);
        (* resuming a sealed journal just reports it, identically *)
        (match JE.resume ~dir () with
        | Error e -> Alcotest.failf "%s: double resume: %s" name e
        | Ok again ->
            check_string
              (Printf.sprintf "%s: idempotent resume" name)
              (outcome_text full) (outcome_text again))
  done

let test_crash_resume_procurement () =
  let t = procurement () in
  assert_crash_resume_identical "cancel" t ~owner:"A"
    ~changed:P.accounting_cancel;
  assert_crash_resume_identical "once" t ~owner:"A" ~changed:P.accounting_once

let test_crash_resume_hub () =
  let hub, spokes = C.Workload.Scale.hub 4 in
  let t = M.of_processes (hub :: spokes) in
  let changed =
    C.Change.Ops.apply_exn
      (C.Change.Ops.Insert_activity
         {
           path = [];
           pos = 0;
           act = C.Bpel.Activity.invoke ~partner:"P0" ~op:"noticeOp";
         })
      hub
  in
  assert_crash_resume_identical "hub-4" t ~owner:"HUB" ~changed

(* 25 random two-party workloads, killed after round 1. *)
let random_case seed =
  let pa, pb = C.Workload.Gen_process.pair ~seed () in
  let t = M.of_processes [ pa; pb ] in
  let changed =
    match C.Workload.Gen_change.additive ~seed pa with
    | Some op -> C.Change.Ops.apply_exn op pa
    | None -> pa
  in
  (t, changed)

let test_crash_resume_random_25 () =
  for seed = 0 to 24 do
    let t, changed = random_case seed in
    with_dir @@ fun full_dir ->
    let full =
      match JE.run ~dir:full_dir t ~owner:"A" ~changed with
      | Ok o -> o
      | Error e -> Alcotest.failf "seed %d: %s" seed e
    in
    assert_matches_evolution (Printf.sprintf "seed %d" seed) t ~owner:"A"
      ~changed full;
    with_dir @@ fun dir ->
    match JE.run ~crash_after:1 ~dir t ~owner:"A" ~changed with
    | exception JE.Simulated_crash _ -> (
        match JE.resume ~dir () with
        | Error e -> Alcotest.failf "seed %d resume: %s" seed e
        | Ok resumed ->
            check_string
              (Printf.sprintf "seed %d byte-identical" seed)
              (outcome_text full) (outcome_text resumed))
    | Ok _ | Error _ -> Alcotest.failf "seed %d: expected crash" seed
  done

(* torn tail after a real crash: resume still reaches the full outcome *)
let test_resume_with_torn_tail () =
  let t = procurement () in
  with_dir @@ fun full_dir ->
  let full =
    match JE.run ~dir:full_dir t ~owner:"A" ~changed:P.accounting_cancel with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  with_dir @@ fun dir ->
  (match
     JE.run ~crash_after:1 ~dir t ~owner:"A" ~changed:P.accounting_cancel
   with
  | exception JE.Simulated_crash _ -> ()
  | _ -> Alcotest.fail "expected crash");
  let oc =
    open_out_gen [ Open_append ] 0o644 (Filename.concat dir "journal.jsonl")
  in
  output_string oc {|{"crc":"0123","body":{"rec":"round","index":1,"orig|};
  close_out oc;
  match JE.resume ~dir () with
  | Error e -> Alcotest.fail e
  | Ok resumed ->
      check_string "torn tail ignored" (outcome_text full)
        (outcome_text resumed)

let test_run_refuses_existing_journal () =
  let t = procurement () in
  with_dir @@ fun dir ->
  (match JE.run ~dir t ~owner:"A" ~changed:P.accounting_cancel with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match JE.run ~dir t ~owner:"A" ~changed:P.accounting_cancel with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "second run into the same dir must be refused"

let () =
  Alcotest.run "journal"
    [
      ( "format",
        [
          Alcotest.test_case "record json round-trip" `Quick
            test_record_roundtrip;
          Alcotest.test_case "file round-trip" `Quick
            test_journal_file_roundtrip;
          Alcotest.test_case "torn tail dropped" `Quick test_torn_tail_dropped;
          Alcotest.test_case "corrupt middle rejected" `Quick
            test_corrupt_middle_is_error;
          Alcotest.test_case "snapshot round-trip" `Quick
            test_snapshot_roundtrip;
        ] );
      ( "crash-safety",
        [
          Alcotest.test_case "procurement kill@k" `Quick
            test_crash_resume_procurement;
          Alcotest.test_case "hub kill@k" `Quick test_crash_resume_hub;
          Alcotest.test_case "25 random workloads" `Slow
            test_crash_resume_random_25;
          Alcotest.test_case "resume over torn tail" `Quick
            test_resume_with_torn_tail;
          Alcotest.test_case "refuse double run" `Quick
            test_run_refuses_existing_journal;
        ] );
    ]
