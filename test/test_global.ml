(* Multi-lateral (global) analysis: conversation automaton, global
   consistency, and the bilateral-vs-global gap. *)

module C = Chorev
module M = C.Choreography.Model
module G = C.Choreography.Global
module P = C.Scenario.Procurement

let evolve_ok t ~owner ~changed =
  match C.Choreography.Evolution.run t ~owner ~changed with
  | Ok r -> r
  | Error (`Unknown_party p) -> failwith ("unknown party " ^ p)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let gen = C.Public_gen.public

let procurement () = M.of_processes (List.map snd P.parties)

let test_conversation_automaton () =
  let t = procurement () in
  let a = G.conversation_automaton t in
  (* the global conversation automaton accepts the full happy path... *)
  check_bool "happy path" true
    (C.Trace.accepts a
       (List.map C.Label.of_string_exn
          [
            "B#A#orderOp"; "A#L#deliverOp"; "L#A#deliver_confOp";
            "A#B#deliveryOp"; "B#A#terminateOp"; "A#L#terminateLOp";
          ]));
  (* ...including a tracking round with the forwarded logistics query *)
  check_bool "tracking round" true
    (C.Trace.accepts a
       (List.map C.Label.of_string_exn
          [
            "B#A#orderOp"; "A#L#deliverOp"; "L#A#deliver_confOp";
            "A#B#deliveryOp"; "B#A#get_statusOp"; "A#L#get_statusLOp";
            "L#A#get_statusLOp"; "A#B#statusOp"; "B#A#terminateOp";
            "A#L#terminateLOp";
          ]));
  (* but not out-of-order global conversations *)
  check_bool "wrong order rejected" false
    (C.Trace.accepts a
       (List.map C.Label.of_string_exn [ "A#L#deliverOp"; "B#A#orderOp" ]));
  check_bool "deterministic product" true (C.Afsa.is_deterministic a)

let test_diagnose_healthy () =
  let d = G.diagnose (procurement ()) in
  check_bool "globally consistent" true d.G.globally_consistent;
  check_bool "deadlock free" true d.G.deadlock_free;
  check_bool "bilateral too" true d.G.bilateral_consistent;
  check_int "no deadlocks" 0 (List.length d.G.deadlocks)

let test_bilateral_global_gap () =
  (* evolve with the cancel change: every pair is consistent, yet the
     cancellation path strands logistics — the gap the paper's
     bilateral criterion cannot see *)
  let rep =
    evolve_ok (procurement ()) ~owner:"A"
      ~changed:P.accounting_cancel
  in
  let t = rep.C.Choreography.Evolution.choreography in
  let d = G.diagnose t in
  check_bool "bilateral all consistent" true d.G.bilateral_consistent;
  check_bool "still globally consistent (a completing run exists)" true
    d.G.globally_consistent;
  check_bool "but not deadlock free" false d.G.deadlock_free;
  check_bool "logistics named as stuck" true
    (List.exists (fun (_, stuck) -> List.mem "L" stuck) d.G.deadlocks);
  (* the deadlock trace is the cancellation conversation *)
  check_bool "trace ends in cancel" true
    (List.exists
       (fun (trace, _) ->
         match List.rev trace with
         | last :: _ -> String.equal (C.Label.to_string last) "A#B#cancelOp"
         | [] -> false)
       d.G.deadlocks)

let test_global_inconsistency () =
  (* an uncontrolled change (no propagation) is globally inconsistent:
     the buyer blocks the cancel protocol entirely? No — order/delivery
     conversations still complete; instead make A and B incompatible
     outright *)
  let a =
    C.Afsa.of_strings ~start:0 ~finals:[ 1 ] ~edges:[ (0, "A#B#x", 1) ] ()
  in
  let b =
    C.Afsa.of_strings ~start:0 ~finals:[ 1 ] ~edges:[ (0, "A#B#y", 1) ] ()
  in
  let reg = C.Bpel.Types.registry [] in
  ignore reg;
  let sys = C.Runtime.Exec.make [ ("A", a); ("B", b) ] in
  let e = C.Runtime.Exec.explore sys in
  check_bool "no completion" true (e.C.Runtime.Exec.completions = 0);
  ignore gen

let test_hub_scales () =
  let h, spokes = C.Workload.Scale.hub 4 in
  let t = M.of_processes (h :: spokes) in
  let d = G.diagnose t in
  check_bool "hub globally fine" true
    (d.G.globally_consistent && d.G.deadlock_free)

let () =
  Alcotest.run "global"
    [
      ( "conversation automaton",
        [
          Alcotest.test_case "procurement" `Quick test_conversation_automaton;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "healthy" `Quick test_diagnose_healthy;
          Alcotest.test_case "bilateral-global gap" `Quick
            test_bilateral_global_gap;
          Alcotest.test_case "incompatible pair" `Quick
            test_global_inconsistency;
          Alcotest.test_case "hub" `Quick test_hub_scales;
        ] );
    ]
