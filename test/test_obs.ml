(* The observability layer: span nesting/ordering over a full evolve
   run, counter values on known small automata, the silent-sink golden
   diff, and the near-zero-overhead guarantee (DESIGN.md §7). *)

module C = Chorev
module M = C.Choreography.Model
module Ev = C.Choreography.Evolution
module P = C.Scenario.Procurement
module Sink = C.Obs.Sink
module Metrics = C.Obs.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let procurement () = M.of_processes (List.map snd P.parties)

(* Span-coverage assertions document the *full* Fig. 4 trace, so run
   uncached: a warm memo (per-domain, shared across tests) legitimately
   elides steps and their spans. *)
let evolve_traced () =
  let sink, events = Sink.memory () in
  let rep =
    match
      Ev.run
        ~config:{ Ev.default with Ev.obs = Some sink; cache = false }
        (procurement ()) ~owner:"A" ~changed:P.accounting_cancel
    with
    | Ok r -> r
    | Error (`Unknown_party p) -> failwith p
  in
  (rep, events ())

let opens events =
  List.filter_map (function Sink.Open (s, _) -> Some s | _ -> None) events

let count_opens name events =
  List.length (List.filter (fun (s : Sink.span) -> s.Sink.name = name) (opens events))

(* ------------------------- span structure -------------------------- *)

let test_spans_balanced_and_nested () =
  let _, events = evolve_traced () in
  check_bool "events recorded" true (events <> []);
  (* every Open has a matching Close; parent/depth follow a strict
     stack discipline *)
  let stack = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Sink.Open (s, _) ->
          let expected_parent =
            match !stack with [] -> None | (p : Sink.span) :: _ -> Some p.Sink.id
          in
          check_bool "parent is innermost open span" true
            (s.Sink.parent = expected_parent);
          check_int "depth = number of open ancestors" (List.length !stack)
            s.Sink.depth;
          stack := s :: !stack
      | Sink.Close (s, _, elapsed) ->
          check_bool "elapsed non-negative" true (elapsed >= 0.0);
          (match !stack with
          | top :: rest ->
              check_int "close matches innermost open" top.Sink.id s.Sink.id;
              stack := rest
          | [] -> Alcotest.fail "close without open"))
    events;
  check_int "all spans closed" 0 (List.length !stack);
  (* ids are unique among opens *)
  let ids = List.map (fun (s : Sink.span) -> s.Sink.id) (opens events) in
  check_int "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_spans_cover_fig4_steps () =
  let rep, events = evolve_traced () in
  (* cancel change: round 1 by A touches partners B (variant) and L
     (invariant); B's adaptation triggers round 2 by B with an
     unchanged public view *)
  check_int "two rounds in report" 2 (List.length rep.Ev.rounds);
  check_int "one evolve span" 1 (count_opens "evolve" events);
  check_int "one round span per round" 2 (count_opens "round" events);
  check_int "one regenerate span per round" 2 (count_opens "regenerate" events);
  check_int "one partner span per partner" 2 (count_opens "partner" events);
  check_int "one classify span per partner" 2 (count_opens "classify" events);
  check_int "one propagate span (B only)" 1 (count_opens "propagate" events);
  List.iter
    (fun step ->
      check_int (step ^ " span") 1 (count_opens step events))
    [ "view"; "delta"; "localize"; "suggest"; "apply" ];
  check_bool "re-check spans present" true (count_opens "re-check" events >= 1);
  check_bool "public_gen spans present" true
    (count_opens "public_gen" events >= 2);
  (* the pipeline steps appear in Fig. 4 order *)
  let order = List.map (fun (s : Sink.span) -> s.Sink.name) (opens events) in
  let index name =
    let rec go i = function
      | [] -> Alcotest.fail (name ^ " span missing")
      | n :: _ when n = name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  check_bool "regenerate before classify" true
    (index "regenerate" < index "classify");
  check_bool "classify before view" true (index "classify" < index "view");
  check_bool "view before delta" true (index "view" < index "delta");
  check_bool "delta before localize" true (index "delta" < index "localize");
  check_bool "localize before suggest" true
    (index "localize" < index "suggest");
  check_bool "suggest before apply" true (index "suggest" < index "apply");
  check_bool "apply before first re-check" true
    (index "apply" < index "re-check")

let test_span_attrs () =
  let _, events = evolve_traced () in
  let rounds =
    List.filter (fun (s : Sink.span) -> s.Sink.name = "round") (opens events)
  in
  (match rounds with
  | r1 :: r2 :: _ ->
      check_bool "round 1 originated by A" true
        (List.assoc_opt "originator" r1.Sink.attrs = Some (Sink.Str "A"));
      check_bool "round 2 originated by B" true
        (List.assoc_opt "originator" r2.Sink.attrs = Some (Sink.Str "B"))
  | _ -> Alcotest.fail "expected two round spans");
  let partners =
    List.filter_map
      (fun (s : Sink.span) ->
        if s.Sink.name = "partner" then List.assoc_opt "partner" s.Sink.attrs
        else None)
      (opens events)
  in
  check_bool "partner spans name B and L" true
    (List.sort compare partners = [ Sink.Str "B"; Sink.Str "L" ])

(* ----------------------------- counters ----------------------------- *)

let with_metrics f =
  Metrics.enabled := true;
  Metrics.reset ();
  Fun.protect ~finally:(fun () -> Metrics.enabled := false) f

let counter_value name =
  match List.assoc_opt name (Metrics.counters ()) with
  | Some v -> v
  | None -> Alcotest.fail ("counter not registered: " ^ name)

let test_counters_fig5_product () =
  with_metrics @@ fun () ->
  let i = C.Ops.intersect C.Scenario.Fig5.party_a C.Scenario.Fig5.party_b in
  check_int "one intersect" 1 (counter_value "afsa.ops.intersect");
  check_int "product pairs = states of the product" (C.Afsa.num_states i)
    (counter_value "afsa.product.pairs");
  check_bool "edges counted" true (counter_value "afsa.product.edges" >= 1);
  (* the Fig. 5 intersection is annotated-empty; deciding that is one
     emptiness fixpoint run *)
  check_bool "fig5 intersection empty" true (C.Emptiness.is_empty i);
  check_int "one emptiness run" 1 (counter_value "afsa.emptiness.runs");
  check_bool "fixpoint iterated" true
    (counter_value "afsa.emptiness.iterations" >= 1)

let test_counters_evolution_pipeline () =
  with_metrics @@ fun () ->
  (match Ev.run (procurement ()) ~owner:"A" ~changed:P.accounting_cancel with
  | Ok rep -> check_bool "consistent" true rep.Ev.consistent
  | Error _ -> Alcotest.fail "evolve failed");
  check_int "one evolution run" 1 (counter_value "evolution.runs");
  check_int "two rounds" 2 (counter_value "evolution.rounds");
  check_int "one propagation (B)" 1 (counter_value "propagate.runs");
  check_int "two classifications" 2 (counter_value "change.classify.runs");
  check_int "one variant verdict" 1 (counter_value "change.classify.variant");
  check_bool "suggestions generated" true
    (counter_value "propagate.suggestions.generated" >= 1);
  check_int "one suggestion set applied" 1
    (counter_value "propagate.suggestions.applied");
  check_bool "public processes regenerated" true
    (counter_value "mapping.public_gen.runs" >= 3);
  check_bool "formula cache hit at least once" true
    (counter_value "formula.simplify.hits" >= 1)

let test_counters_disabled_stay_zero () =
  Metrics.enabled := true;
  Metrics.reset ();
  Metrics.enabled := false;
  ignore (C.Ops.intersect C.Scenario.Fig5.party_a C.Scenario.Fig5.party_b);
  check_int "no pairs counted while disabled" 0
    (counter_value "afsa.product.pairs");
  check_int "no intersects counted while disabled" 0
    (counter_value "afsa.ops.intersect")

(* --------------------------- golden diff ---------------------------- *)

(* The silent sink and enabled metrics must not change what the user
   sees: pp_report output is byte-identical with observability on. *)
let test_silent_sink_changes_no_output () =
  let render () =
    match Ev.run (procurement ()) ~owner:"A" ~changed:P.accounting_cancel with
    | Ok rep -> Fmt.str "%a" Ev.pp_report rep
    | Error _ -> Alcotest.fail "evolve failed"
  in
  let plain = render () in
  check_bool "report non-trivial" true (String.length plain > 50);
  let observed =
    Metrics.enabled := true;
    Metrics.reset ();
    Fun.protect ~finally:(fun () -> Metrics.enabled := false) @@ fun () ->
    C.Obs.with_sink Sink.silent render
  in
  Alcotest.(check string) "silent sink: identical report" plain observed;
  (* a memory sink (tracing on) must not change the report either *)
  let sink, _ = Sink.memory () in
  let traced = C.Obs.with_sink sink render in
  Alcotest.(check string) "memory sink: identical report" plain traced

(* ------------------------- overhead guard --------------------------- *)

(* Flags off, the instrumentation on the algebra hot path must be a
   single load-and-branch. Wall-clock comparisons are noisy in CI, so
   the bound is deliberately generous: disabled-counters runtime within
   4x of itself re-measured, and enabled-silent within 4x of disabled
   (both min-of-5). A real regression (counting work per worklist item,
   or spans firing with tracing off) shows up as 10x+. *)
let test_near_zero_overhead_when_disabled () =
  let pa, pb = C.Workload.Scale.ladder 100 in
  let a = C.Public_gen.public pa and b = C.Public_gen.public pb in
  let time_once () =
    let t0 = Unix.gettimeofday () in
    ignore (C.Ops.intersect a b);
    Unix.gettimeofday () -. t0
  in
  let min_of n f =
    List.fold_left min infinity (List.init n (fun _ -> f ()))
  in
  ignore (time_once ());
  (* warm up *)
  let disabled = min_of 5 time_once in
  let enabled_silent =
    Metrics.enabled := true;
    Fun.protect ~finally:(fun () -> Metrics.enabled := false) @@ fun () ->
    C.Obs.with_sink Sink.silent (fun () -> min_of 5 time_once)
  in
  check_bool
    (Printf.sprintf
       "enabled+silent (%.3f ms) within 4x of disabled (%.3f ms)"
       (enabled_silent *. 1e3) (disabled *. 1e3))
    true
    (enabled_silent <= (4.0 *. disabled) +. 0.001)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "balanced and stack-nested" `Quick
            test_spans_balanced_and_nested;
          Alcotest.test_case "cover the Fig. 4 steps" `Quick
            test_spans_cover_fig4_steps;
          Alcotest.test_case "attributes" `Quick test_span_attrs;
        ] );
      ( "counters",
        [
          Alcotest.test_case "fig5 product" `Quick test_counters_fig5_product;
          Alcotest.test_case "evolution pipeline" `Quick
            test_counters_evolution_pipeline;
          Alcotest.test_case "disabled stays zero" `Quick
            test_counters_disabled_stay_zero;
        ] );
      ( "golden",
        [
          Alcotest.test_case "silent sink changes no output" `Quick
            test_silent_sink_changes_no_output;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "near-zero when disabled" `Slow
            test_near_zero_overhead_when_disabled;
        ] );
    ]
