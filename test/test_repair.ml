(* The self-healing repair loop (DESIGN.md §14): amendment search over
   counterexample witnesses — success / unrepairable / fuel-starved /
   deterministic — plus causal-cone computation, the rollback journal's
   crash-and-resume round trip, the synchronous protocol's withdrawal
   cascade, and pool-size invariance of the repair path through
   [Evolution.run]. *)

module C = Chorev
module A = C.Bpel.Activity
module M = C.Choreography.Model
module E = C.Propagate.Engine
module P = C.Scenario.Procurement
module Amend = C.Repair.Amend
module Rollback = C.Repair.Rollback

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -------------------------- fixtures ------------------------------- *)

let model () = M.of_processes (List.map snd P.parties)

(* Insert a rogue invoke toward [partner] at position [pos] of the
   first sequence of [owner]'s private process — the same shape of bad
   change the simulator injects. *)
let rogue ?(op = "rogueT") ~partner ~pos p =
  let act = A.invoke ~partner ~op in
  let path, _ =
    A.all_nodes (C.Bpel.Process.body p)
    |> List.find (fun (_, a) ->
           match a with A.Sequence (_, _) -> true | _ -> false)
  in
  C.Change.Ops.apply_exn (C.Change.Ops.Insert_activity { path; pos; act }) p

(* The first rogue position that actually breaks whole-choreography
   consistency (tail appends can be benign under the annotated
   non-emptiness semantics — see lib/sim). *)
let breaking_change () =
  let t = model () in
  let a = M.private_ t P.accounting in
  let n =
    match
      A.all_nodes (C.Bpel.Process.body a)
      |> List.find_map (fun (_, act) ->
             match act with A.Sequence (_, items) -> Some (List.length items) | _ -> None)
    with
    | Some n -> n
    | None -> Alcotest.fail "accounting has no sequence"
  in
  let rec go pos =
    if pos > n then Alcotest.fail "no rogue position breaks consistency"
    else
      let a' = rogue ~partner:P.buyer ~pos a in
      if C.Choreography.Consistency.consistent (M.update t a') then go (pos + 1)
      else (t, a', pos)
  in
  go 0

(* Reproduce the node's failing bilateral check for (accounting',
   buyer): classify the framework on views, run the engine with
   adaptation off, hand its analysis to the amendment search. *)
let failed_check () =
  let t, a', _ = breaking_change () in
  let old_pub = M.public t P.accounting in
  let new_pub = C.Public_gen.public a' in
  let fw =
    C.Change.Classify.framework
      ~old_public:(C.View.tau ~observer:P.buyer old_pub)
      ~new_public:(C.View.tau ~observer:P.buyer new_pub)
      ()
  in
  let direction = E.direction_of_framework fw in
  let config = { C.Config.default with C.Config.auto_apply = false } in
  let outcome =
    E.run ~config ~direction ~a':new_pub
      ~partner_private:(M.private_ t P.buyer) ()
  in
  check_bool "engine left the pair inconsistent" false
    outcome.E.consistent_after;
  check_bool "engine did not adapt (auto_apply off)" true
    (outcome.E.adapted = None);
  (t, a', direction, outcome)

(* ------------------------- witness (Suggest) ----------------------- *)

let test_witness () =
  let _, _, _, outcome = failed_check () in
  let delta = outcome.E.analysis.E.delta in
  (match C.Propagate.Suggest.witness delta with
  | None -> Alcotest.fail "non-empty delta must yield a witness"
  | Some w ->
      check_bool "witness is non-empty" true (w <> []);
      check_bool "witness renders" true
        (String.length (C.Propagate.Suggest.witness_to_string w) > 0);
      check_bool "witness mentions the rogue op" true
        (List.exists
           (fun (l : C.Label.t) ->
             String.length l.C.Label.msg >= 5
             && String.sub l.C.Label.msg 0 5 = "rogue")
           w));
  (* language-empty delta: nothing to anchor on *)
  let empty = C.Afsa.make ~start:0 ~finals:[] ~edges:[] () in
  check_bool "empty delta has no witness" true
    (C.Propagate.Suggest.witness empty = None)

(* --------------------------- Amend.search -------------------------- *)

let policy_of c = c.C.Config.repair

let test_amend_success () =
  let t, a', direction, outcome = failed_check () in
  let policy = policy_of C.Config.(with_repair default) in
  let r =
    Amend.search ~policy ~direction
      ~partner_private:(M.private_ t P.buyer)
      ~view_new:outcome.E.analysis.E.view_new ~delta:outcome.E.analysis.E.delta
      ()
  in
  check_bool "witness extracted" true (r.Amend.witness <> None);
  check_bool "attempts counted" true (r.Amend.attempts > 0);
  check_bool "no degrade" true (r.Amend.degraded = []);
  match r.Amend.repaired with
  | None -> Alcotest.fail "amendment search must heal the rogue insert"
  | Some (buyer', _) ->
      check_bool "a winning candidate is named" true (r.Amend.chosen <> None);
      check_bool "repaired_process agrees" true
        (Amend.repaired_process r = Some buyer');
      (* the amended buyer restores whole-choreography consistency
         against the changed accounting *)
      let healed = M.update (M.update t a') buyer' in
      check_bool "amended model is consistent" true
        (C.Choreography.Consistency.consistent healed)

let test_amend_unrepairable () =
  let t, _, direction, outcome = failed_check () in
  let policy = policy_of C.Config.(with_repair default) in
  (* a language-empty delta: no counterexample to anchor candidates on *)
  let empty = C.Afsa.make ~start:0 ~finals:[] ~edges:[] () in
  let r =
    Amend.search ~policy ~direction
      ~partner_private:(M.private_ t P.buyer)
      ~view_new:outcome.E.analysis.E.view_new ~delta:empty ()
  in
  check_bool "no witness" true (r.Amend.witness = None);
  check_bool "unrepairable" true (r.Amend.repaired = None);
  check_int "no candidates verified" 0 r.Amend.attempts

let test_amend_starved () =
  let t, _, direction, outcome = failed_check () in
  let policy = policy_of C.Config.(with_repair ~fuel:5 default) in
  let r =
    Amend.search ~policy ~direction
      ~partner_private:(M.private_ t P.buyer)
      ~view_new:outcome.E.analysis.E.view_new ~delta:outcome.E.analysis.E.delta
      ()
  in
  check_bool "degrades instead of hanging" true (r.Amend.degraded <> []);
  check_bool "no repair under starvation" true (r.Amend.repaired = None);
  check_bool "fuel accounted" true (r.Amend.fuel_spent > 0)

let test_amend_deterministic () =
  let t, _, direction, outcome = failed_check () in
  let policy = policy_of C.Config.(with_repair default) in
  let search () =
    Amend.search ~policy ~direction
      ~partner_private:(M.private_ t P.buyer)
      ~view_new:outcome.E.analysis.E.view_new ~delta:outcome.E.analysis.E.delta
      ()
  in
  let r1 = search () and r2 = search () in
  check_int "same attempts" r1.Amend.attempts r2.Amend.attempts;
  check_int "same fuel" r1.Amend.fuel_spent r2.Amend.fuel_spent;
  check_bool "same winner" true (r1.Amend.chosen = r2.Amend.chosen);
  check_bool "same witness" true (r1.Amend.witness = r2.Amend.witness)

let test_candidates_queue () =
  let t, _, direction, outcome = failed_check () in
  let policy = policy_of C.Config.(with_repair default) in
  let witness =
    match C.Propagate.Suggest.witness outcome.E.analysis.E.delta with
    | Some w -> w
    | None -> Alcotest.fail "no witness"
  in
  let cs = Amend.candidates ~policy ~direction (M.private_ t P.buyer) witness in
  check_bool "queue is non-empty" true (cs <> []);
  check_bool "bounded by max_candidates" true
    (List.length cs <= policy.C.Config.max_candidates);
  let costs = List.map (fun c -> c.Amend.cost) cs in
  check_bool "smallest edit first (cost monotone)" true
    (List.sort compare costs = costs);
  check_bool "costs within max_edits" true
    (List.for_all (fun k -> k >= 1 && k <= policy.C.Config.max_edits) costs);
  (* max_edits = 1 disables pair candidates *)
  let singles =
    Amend.candidates
      ~policy:(policy_of C.Config.(with_repair ~max_edits:1 default))
      ~direction (M.private_ t P.buyer) witness
  in
  check_bool "max_edits=1 keeps only singletons" true
    (List.for_all (fun c -> c.Amend.cost = 1) singles)

(* --------------------------- Rollback.cone ------------------------- *)

let edge at src dst = { Rollback.at; src; dst }

let test_cone () =
  (* chain: A touches B at t1, B touches C at t2 > t1 *)
  Alcotest.(check (list string))
    "chain" [ "A"; "B"; "C" ]
    (Rollback.cone ~origin:"A" ~edges:[ edge 1 "A" "B"; edge 2 "B" "C" ]);
  (* time order matters: B→C happened before B was contaminated *)
  Alcotest.(check (list string))
    "stale edge ignored" [ "A"; "B" ]
    (Rollback.cone ~origin:"A" ~edges:[ edge 1 "B" "C"; edge 2 "A" "B" ]);
  (* fan-out, discovery order after the origin *)
  Alcotest.(check (list string))
    "fan-out" [ "A"; "B"; "C" ]
    (Rollback.cone ~origin:"A"
       ~edges:[ edge 1 "A" "B"; edge 1 "A" "C"; edge 5 "D" "E" ]);
  (* unrelated traffic never joins the cone *)
  Alcotest.(check (list string))
    "origin only" [ "A" ]
    (Rollback.cone ~origin:"A" ~edges:[ edge 1 "B" "C"; edge 2 "C" "B" ])

(* ---------------------- rollback journal round trip ----------------- *)

let tmpdir =
  let k = ref 0 in
  fun () ->
    incr k;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "chorev_test_rb_%d_%d" (Unix.getpid ()) !k)
    in
    (match Sys.is_directory d with
    | true ->
        Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
    | false | (exception Sys_error _) -> ());
    d

let pre_snaps = [ ("B", "(pre B)"); ("C", "(pre C)") ]

let state_snaps =
  [ ("A", "(post A)"); ("B", "(post B)"); ("C", "(post C)") ]

let start_journal dir =
  Rollback.start ~dir ~owner:"A" ~cone:[ "B"; "C" ]
    ~prelude:"injected at tick 10\nrolled back: B,C\n" ~pre:pre_snaps
    ~state:state_snaps

let test_journal_roundtrip () =
  let dir = tmpdir () in
  let w = start_journal dir in
  let restored = ref [] in
  Rollback.restore_all w ~restore:(fun ~party ~pre ->
      restored := (party, pre) :: !restored);
  Rollback.close w;
  Alcotest.(check (list (pair string string)))
    "restored in cone order" pre_snaps (List.rev !restored);
  check_bool "journal_exists" true (Rollback.journal_exists ~dir);
  match Rollback.load ~dir with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok l ->
      check_bool "sealed" true l.Rollback.sealed;
      Alcotest.(check (list string)) "all committed" [ "B"; "C" ] l.Rollback.restored;
      Alcotest.(check string) "owner" "A" l.Rollback.l_meta.Rollback.owner;
      Alcotest.(check string)
        "prelude round-trips" "injected at tick 10\nrolled back: B,C\n"
        l.Rollback.l_meta.Rollback.prelude;
      Alcotest.(check (list (pair string string))) "pre snapshots" pre_snaps l.Rollback.l_pre;
      Alcotest.(check (list (pair string string)))
        "state snapshots" state_snaps l.Rollback.l_state

let test_journal_crash_resume () =
  let dir = tmpdir () in
  let w = start_journal dir in
  (match
     Rollback.restore_all ~crash_after:1 w ~restore:(fun ~party:_ ~pre:_ -> ())
   with
  | () -> Alcotest.fail "crash hook did not fire"
  | exception Rollback.Simulated_crash 1 -> ());
  (* torn run: one committed restore, not sealed *)
  (match Rollback.load ~dir with
  | Error e -> Alcotest.failf "load after crash: %s" e
  | Ok l ->
      check_bool "not sealed" false l.Rollback.sealed;
      Alcotest.(check (list string)) "one committed" [ "B" ] l.Rollback.restored);
  (* resume re-applies EVERY cone restore (pre-crash ones died with the
     process) and journals only the missing records *)
  let replayed = ref [] in
  (match
     Rollback.resume ~dir ~restore:(fun ~party ~pre ->
         replayed := (party, pre) :: !replayed)
   with
  | Error e -> Alcotest.failf "resume: %s" e
  | Ok l ->
      Alcotest.(check (list (pair string string)))
        "resume replays the whole cone" pre_snaps (List.rev !replayed);
      check_bool "meta survives" true (l.Rollback.l_meta.Rollback.parties = [ "B"; "C" ]));
  match Rollback.load ~dir with
  | Error e -> Alcotest.failf "reload: %s" e
  | Ok l ->
      check_bool "sealed after resume" true l.Rollback.sealed;
      Alcotest.(check (list string))
        "both committed exactly once" [ "B"; "C" ] l.Rollback.restored

(* --------------------- protocol: repair & withdrawal ---------------- *)

let test_protocol_repairs () =
  let t, a', _ = breaking_change () in
  (* adaptation off: the amendment search is the only healer *)
  let engine_config =
    { (C.Config.with_repair C.Config.default) with C.Config.auto_apply = false }
  in
  let r =
    C.Choreography.Protocol.run ~engine_config (M.copy t) ~owner:P.accounting
      ~changed:a'
  in
  check_bool "protocol agrees after repair" true r.C.Choreography.Protocol.agreed;
  check_bool "amendment search produced the fix" true
    (r.C.Choreography.Protocol.stats.C.Choreography.Protocol.repairs > 0);
  check_bool "no withdrawal" false r.C.Choreography.Protocol.rolled_back

let test_protocol_withdraws () =
  let t, a', _ = breaking_change () in
  let r =
    C.Choreography.Protocol.run ~adapt:false ~rollback:true (M.copy t)
      ~owner:P.accounting ~changed:a'
  in
  check_bool "withdrawn" true r.C.Choreography.Protocol.rolled_back;
  check_bool "agreed after withdrawal" true r.C.Choreography.Protocol.agreed;
  check_bool "abort cascade ran" true
    (r.C.Choreography.Protocol.stats.C.Choreography.Protocol.aborts > 0);
  (* every party is back to its pre-change public behaviour *)
  let final = r.C.Choreography.Protocol.final in
  check_bool "final equals pre-change model" true
    (List.for_all
       (fun p -> C.Equiv.equal_language (M.public final p) (M.public t p))
       (M.parties t))

(* ------------------- Evolution.run pool invariance ------------------ *)

(* In the pipeline, repair is a fallback: it fires only when the
   engine's own adaptation loop failed ([auto_apply] on, [adapted =
   None], still inconsistent). Simple rogue inserts never get there —
   the engine heals them — so the trigger is a deletion from the
   originator, whose counterexample the amendment vocabulary cannot
   fix either: the search must run, burn identical fuel at every pool
   size, and report unrepairable rather than mask the failure. *)
let deletion_change () =
  let t = model () in
  let a = M.private_ t P.accounting in
  let path, _ =
    A.all_nodes (C.Bpel.Process.body a)
    |> List.find (fun (_, act) ->
           match act with A.Sequence (_, _) -> true | _ -> false)
  in
  let a' =
    C.Change.Ops.apply_exn (C.Change.Ops.Delete_activity { path; index = 0 }) a
  in
  check_bool "deletion breaks consistency" false
    (C.Choreography.Consistency.consistent (M.update t a'));
  (t, a')

let test_evolution_repair_jobs () =
  let t, a' = deletion_change () in
  let report jobs =
    let config =
      { (C.Config.with_repair C.Config.default) with C.Config.jobs = jobs }
    in
    match
      C.Choreography.Evolution.run ~config (M.copy t) ~owner:P.accounting
        ~changed:a'
    with
    | Error (`Unknown_party p) -> Alcotest.failf "unknown party %s" p
    | Ok r -> r
  in
  let digest r =
    (* the repair-relevant shape of a report: per-partner amendment
       attempts, fuel, winner and verdict, plus the global verdict *)
    let row (p : C.Choreography.Evolution.partner_report) =
      ( p.C.Choreography.Evolution.partner,
        match p.C.Choreography.Evolution.repair with
        | None -> None
        | Some a ->
            Some
              ( a.Amend.attempts,
                a.Amend.fuel_spent,
                a.Amend.chosen,
                a.Amend.repaired <> None ) )
    in
    ( r.C.Choreography.Evolution.consistent,
      List.map
        (fun (rd : C.Choreography.Evolution.round) ->
          List.map row rd.C.Choreography.Evolution.partners)
        r.C.Choreography.Evolution.rounds )
  in
  let r1 = report 1 in
  let d1 = digest r1 and d2 = digest (report 2) and d8 = digest (report 8) in
  check_bool "jobs=1 = jobs=2" true (d1 = d2);
  check_bool "jobs=1 = jobs=8" true (d1 = d8);
  let attempted =
    List.concat_map (List.filter_map snd) (snd d1)
  in
  check_bool "the amendment search ran" true (attempted <> []);
  check_bool "it verified candidates" true
    (List.for_all (fun (attempts, _, _, _) -> attempts > 0) attempted);
  check_bool "unrepairable is reported, not masked" true
    (List.for_all (fun (_, _, _, healed) -> not healed) attempted);
  check_bool "pipeline stays honest about consistency" false (fst d1);
  (* with the policy off, the fallback never runs *)
  let off =
    match
      C.Choreography.Evolution.run ~config:C.Config.default (M.copy t)
        ~owner:P.accounting ~changed:a'
    with
    | Error (`Unknown_party p) -> Alcotest.failf "unknown party %s" p
    | Ok r -> r
  in
  check_bool "repair off ⇒ no searches" true
    (List.for_all
       (fun (rd : C.Choreography.Evolution.round) ->
         List.for_all
           (fun (p : C.Choreography.Evolution.partner_report) ->
             p.C.Choreography.Evolution.repair = None)
           rd.C.Choreography.Evolution.partners)
       off.C.Choreography.Evolution.rounds)

let () =
  Alcotest.run "repair"
    [
      ( "amend",
        [
          Alcotest.test_case "witness extraction" `Quick test_witness;
          Alcotest.test_case "search heals a rogue insert" `Quick
            test_amend_success;
          Alcotest.test_case "empty delta is unrepairable" `Quick
            test_amend_unrepairable;
          Alcotest.test_case "fuel starvation degrades" `Quick
            test_amend_starved;
          Alcotest.test_case "search is deterministic" `Quick
            test_amend_deterministic;
          Alcotest.test_case "candidate queue order" `Quick
            test_candidates_queue;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "causal cone" `Quick test_cone;
          Alcotest.test_case "journal round trip" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "crash then resume" `Quick
            test_journal_crash_resume;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "protocol self-heals" `Quick
            test_protocol_repairs;
          Alcotest.test_case "protocol withdraws" `Quick
            test_protocol_withdraws;
          Alcotest.test_case "evolution repair is pool-invariant" `Quick
            test_evolution_repair_jobs;
        ] );
    ]
