(* Propagation of variant changes (Sec. 5.2 / 5.3): localization,
   suggestions, and the full engine reproducing Figs. 13, 14, 17, 18. *)

module C = Chorev
module A = C.Afsa
module B = C.Bpel
module L = C.Propagate.Localize
module S = C.Propagate.Suggest
module E = C.Propagate.Engine
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let gen = C.Public_gen.public
let lbl = C.Label.of_string_exn

(* ---------------------------- localize ----------------------------- *)

let test_localize_additive () =
  let b, tbl = C.Public_gen.generate P.buyer_process in
  let view = C.View.tau ~observer:"B" (gen P.accounting_cancel) in
  let delta = C.Ops.difference view b in
  let target = A.trim (C.Ops.union delta b) in
  let divs = L.diverge ~old_public:b ~new_public:target ~table:tbl in
  check_int "one divergence" 1 (List.length divs);
  let d = List.hd divs in
  (* paper: the change becomes visible at state 2 (1-based) = our 1 *)
  check_int "at state 1 (paper's state 2)" 1 d.L.state_b;
  Alcotest.(check (list string))
    "missing = cancelOp" [ "A#B#cancelOp" ]
    (List.map C.Label.to_string d.L.missing);
  check_bool "anchored in buyer process block" true
    (match d.L.anchors with
    | e :: _ -> String.equal e.C.Table.block "Sequence:buyer process"
    | [] -> false)

let test_localize_subtractive () =
  let b, tbl = C.Public_gen.generate P.buyer_process in
  let view = C.View.tau ~observer:"B" (gen P.accounting_once) in
  let removed = C.Ops.difference b view in
  let target = A.trim (C.Ops.difference b removed) in
  let divs = L.diverge ~old_public:b ~new_public:target ~table:tbl in
  check_bool "has divergence" true (divs <> []);
  let d = List.hd divs in
  check_int "at loop head (paper's state 3)" 2 d.L.state_b;
  Alcotest.(check (list string))
    "removed = get_statusOp" [ "B#A#get_statusOp" ]
    (List.map C.Label.to_string d.L.removed);
  check_bool "While:tracking among anchors" true
    (List.exists
       (fun (e : C.Table.entry) -> String.equal e.block "While:tracking")
       d.L.anchors)

let test_localize_no_divergence () =
  let b, tbl = C.Public_gen.generate P.buyer_process in
  let divs = L.diverge ~old_public:b ~new_public:b ~table:tbl in
  check_int "none" 0 (List.length divs)

(* ---------------------------- suggest ------------------------------ *)

let test_suggest_additive_receive_to_pick () =
  let o =
    E.run ~config:{ E.default with E.auto_apply = false } ~direction:E.Additive
      ~a':(gen P.accounting_cancel) ~partner_private:P.buyer_process ()
  in
  check_bool "has suggestions" true (o.E.analysis.E.suggestions <> []);
  (* the preferred (first) suggestion is the paper's Fig. 14 edit *)
  match o.E.analysis.E.suggestions with
  | S.Apply { op = C.Change.Ops.Receive_to_pick { path; arms; _ }; _ } :: _ ->
      Alcotest.(check (list int)) "receive path" [ 1 ] path;
      check_int "one new arm" 1 (List.length arms);
      let (c, body) = List.hd arms in
      Alcotest.(check string) "arm op" "cancelOp" c.B.Activity.op;
      check_bool "arm terminates" true (body = B.Activity.Terminate)
  | _ -> Alcotest.fail "expected a receive→pick suggestion"

let test_suggest_subtractive_unroll () =
  let o =
    E.run ~config:{ E.default with E.auto_apply = false } ~direction:E.Subtractive
      ~a':(gen P.accounting_once) ~partner_private:P.buyer_process ()
  in
  check_bool "has applicable suggestion" true
    (List.exists (fun s -> not (S.is_manual s)) o.E.analysis.E.suggestions);
  match List.find (fun s -> not (S.is_manual s)) o.E.analysis.E.suggestions with
  | S.Apply { op = C.Change.Ops.Unroll_loop_once { path; _ }; _ } ->
      Alcotest.(check (list int)) "loop path" [ 2 ] path
  | _ -> Alcotest.fail "expected an unroll suggestion"

let test_manual_suggestions_apply_as_noop () =
  let s = S.Manual "do something" in
  check_bool "manual" true (S.is_manual s);
  (match S.apply s P.buyer_process with
  | Ok p -> check_bool "no-op" true (p == P.buyer_process)
  | Error _ -> Alcotest.fail "manual apply must not fail");
  check_bool "describe mentions manual" true
    (String.length (S.describe s) > String.length "do something")

(* ----------------------------- engine ------------------------------ *)

let test_engine_additive_end_to_end () =
  let o =
    E.run ~direction:E.Additive ~a':(gen P.accounting_cancel)
      ~partner_private:P.buyer_process ()
  in
  check_bool "adapted" true (Option.is_some o.E.adapted);
  check_bool "consistent after" true o.E.consistent_after;
  (* Fig. 14: adapted buyer equals the paper's, up to language *)
  check_bool "fig14 language" true
    (C.Equiv.equal_language
       (Option.get o.E.adapted_public)
       (gen P.buyer_with_cancel));
  (* Fig. 13a: the delta contains the cancel conversation *)
  check_bool "delta has cancel" true
    (C.Trace.accepts o.E.analysis.E.delta
       [ lbl "B#A#orderOp"; lbl "A#B#cancelOp" ])

let test_engine_subtractive_end_to_end () =
  let o =
    E.run ~direction:E.Subtractive ~a':(gen P.accounting_once)
      ~partner_private:P.buyer_process ()
  in
  check_bool "adapted" true (Option.is_some o.E.adapted);
  check_bool "consistent after" true o.E.consistent_after;
  check_bool "fig18 language" true
    (C.Equiv.equal_language (Option.get o.E.adapted_public) (gen P.buyer_once));
  (* Fig. 17a: two tracking rounds are in the removed sequences *)
  check_bool "removed contains double tracking" true
    (C.Trace.accepts o.E.analysis.E.delta
       [
         lbl "B#A#orderOp";
         lbl "A#B#deliveryOp";
         lbl "B#A#get_statusOp";
         lbl "A#B#statusOp";
         lbl "B#A#get_statusOp";
         lbl "A#B#statusOp";
         lbl "B#A#terminateOp";
       ]);
  (* Fig. 17b: the target allows at most one round *)
  check_bool "target one round ok" true
    (C.Trace.accepts o.E.analysis.E.target_public
       [
         lbl "B#A#orderOp";
         lbl "A#B#deliveryOp";
         lbl "B#A#get_statusOp";
         lbl "A#B#statusOp";
         lbl "B#A#terminateOp";
       ]);
  check_bool "target two rounds gone" false
    (C.Trace.accepts o.E.analysis.E.target_public
       [
         lbl "B#A#orderOp";
         lbl "A#B#deliveryOp";
         lbl "B#A#get_statusOp";
         lbl "A#B#statusOp";
         lbl "B#A#get_statusOp";
         lbl "A#B#statusOp";
         lbl "B#A#terminateOp";
       ])

let test_engine_no_auto_apply () =
  let o =
    E.run ~config:{ E.default with E.auto_apply = false } ~direction:E.Additive
      ~a':(gen P.accounting_cancel) ~partner_private:P.buyer_process ()
  in
  check_bool "not adapted" true (o.E.adapted = None);
  check_bool "analysis delivered" true (o.E.analysis.E.suggestions <> []);
  check_bool "inconsistent before adaptation" false o.E.consistent_after

let test_engine_invariant_change_trivial () =
  (* propagating an invariant change: no divergence that matters; the
     engine still reports consistency *)
  let o =
    E.run ~direction:E.Additive ~a':(gen P.accounting_order2)
      ~partner_private:P.buyer_process ()
  in
  check_bool "consistent (was already)" true o.E.consistent_after

let test_engine_skeleton_fallback () =
  (* the partner has no loop to unroll and no pick anchor for the
     targeted rules — only the re-synthesis fallback can adapt it *)
  let reg =
    B.Types.registry
      [
        ( "Q",
          {
            B.Types.pt_name = "q";
            ops = [ B.Types.async "xOp"; B.Types.async "yOp" ];
          } );
        ("R", { B.Types.pt_name = "r"; ops = [] });
      ]
  in
  let partner =
    B.Process.make ~name:"partner" ~party:"Q" ~registry:reg
      (B.Activity.seq "root"
         [
           B.Activity.pick "pk"
             [
               B.Activity.on_message ~partner:"R" ~op:"xOp" B.Activity.Empty;
               B.Activity.on_message ~partner:"R" ~op:"yOp" B.Activity.Empty;
             ];
         ])
  in
  (* the originator now only ever sends x — a subtractive change *)
  let a' =
    C.Afsa.of_strings ~start:0 ~finals:[ 1 ] ~edges:[ (0, "R#Q#xOp", 1) ] ()
  in
  let o =
    E.run ~direction:E.Subtractive ~a' ~partner_private:partner ()
  in
  check_bool "suggestions are manual only" true
    (List.for_all S.is_manual o.E.analysis.E.suggestions);
  check_bool "adapted via re-synthesis" true (Option.is_some o.E.adapted);
  check_bool "consistent after" true o.E.consistent_after

let test_direction_of_framework () =
  let f_add =
    C.Change.Classify.framework
      ~old_public:(C.View.tau ~observer:"B" (gen P.accounting_process))
      ~new_public:(C.View.tau ~observer:"B" (gen P.accounting_cancel))
      ()
  in
  check_bool "additive dir" true (E.direction_of_framework f_add = E.Additive);
  let f_sub =
    C.Change.Classify.framework
      ~old_public:(C.View.tau ~observer:"B" (gen P.accounting_process))
      ~new_public:(C.View.tau ~observer:"B" (gen P.accounting_once))
      ()
  in
  check_bool "subtractive dir" true
    (E.direction_of_framework f_sub = E.Subtractive)

let () =
  Alcotest.run "propagate"
    [
      ( "localize",
        [
          Alcotest.test_case "additive (Fig 13)" `Quick test_localize_additive;
          Alcotest.test_case "subtractive (Fig 17)" `Quick
            test_localize_subtractive;
          Alcotest.test_case "no divergence" `Quick test_localize_no_divergence;
        ] );
      ( "suggest",
        [
          Alcotest.test_case "additive receive→pick" `Quick
            test_suggest_additive_receive_to_pick;
          Alcotest.test_case "subtractive unroll" `Quick
            test_suggest_subtractive_unroll;
          Alcotest.test_case "manual no-op" `Quick
            test_manual_suggestions_apply_as_noop;
        ] );
      ( "engine",
        [
          Alcotest.test_case "additive end-to-end (Figs 13-14)" `Quick
            test_engine_additive_end_to_end;
          Alcotest.test_case "subtractive end-to-end (Figs 17-18)" `Quick
            test_engine_subtractive_end_to_end;
          Alcotest.test_case "no auto apply" `Quick test_engine_no_auto_apply;
          Alcotest.test_case "invariant trivial" `Quick
            test_engine_invariant_change_trivial;
          Alcotest.test_case "direction" `Quick test_direction_of_framework;
          Alcotest.test_case "skeleton fallback" `Quick
            test_engine_skeleton_fallback;
        ] );
    ]
