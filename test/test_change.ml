(* Change operations and their classification (Sec. 4, Defs. 5 & 6). *)

module C = Chorev
module A = C.Afsa
module B = C.Bpel
module Act = B.Activity
module Ops = C.Change.Ops
module Cl = C.Change.Classify
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let gen p = C.Public_gen.public p

(* ------------------------------ apply ------------------------------ *)

let test_apply_insert () =
  let op =
    Ops.Insert_activity
      { path = []; pos = 0; act = Act.invoke ~partner:"A" ~op:"get_statusOp" }
  in
  let p' = Ops.apply_exn op P.buyer_process in
  check_bool "size grew" true (B.Process.size p' > B.Process.size P.buyer_process)

let test_apply_delete () =
  let op = Ops.Delete_activity { path = []; index = 2 } in
  let p' = Ops.apply_exn op P.buyer_process in
  check_bool "size shrank" true (B.Process.size p' < B.Process.size P.buyer_process)

let test_apply_receive_to_pick () =
  let op =
    Ops.Receive_to_pick
      {
        path = [ 1 ];
        name = "alt";
        arms = [ Act.on_message ~partner:"A" ~op:"cancelOp" Act.Terminate ];
      }
  in
  let p' = Ops.apply_exn op P.buyer_process in
  check_bool "language equals hand-built fig14" true
    (C.Equiv.equal_language (gen p') (gen P.buyer_with_cancel))

let test_apply_compound () =
  let op =
    Ops.Compound
      [
        Ops.Insert_activity
          { path = []; pos = 0; act = Act.Assign "x" };
        Ops.Insert_activity
          { path = []; pos = 0; act = Act.Assign "y" };
      ]
  in
  let p' = Ops.apply_exn op P.buyer_process in
  check_bool "both applied" true
    (B.Process.size p' = B.Process.size P.buyer_process + 2)

let test_apply_compound_atomic () =
  let op =
    Ops.Compound
      [
        Ops.Insert_activity { path = []; pos = 0; act = Act.Assign "x" };
        Ops.Delete_activity { path = [ 99 ]; index = 0 };
      ]
  in
  check_bool "fails as a whole" true (Result.is_error (Ops.apply op P.buyer_process))

let test_apply_errors () =
  check_bool "bad path" true
    (Result.is_error
       (Ops.apply (Ops.Remove_loop { path = [ 0 ] }) P.buyer_process));
  check_bool "to_string total" true
    (String.length
       (Ops.to_string
          (Ops.Compound [ Ops.Remove_loop { path = [ 2 ] } ]))
    > 0)

(* ------------------------ shift / structure ops -------------------- *)

let labels p = C.Afsa.alphabet (gen p)

let test_move_activity () =
  (* moving an activity within the buyer sequence reorders the public
     process (a shift operation, Sec. 4) *)
  let op =
    Ops.Move_activity { from_path = []; from_index = 0; to_path = []; to_index = 2 }
  in
  let p' = Ops.apply_exn op P.buyer_process in
  check_bool "same size" true (B.Process.size p' = B.Process.size P.buyer_process);
  check_bool "language changed" false
    (C.Equiv.equal_language (gen p') (gen P.buyer_process));
  check_bool "same alphabet" true
    (List.equal C.Label.equal (labels p') (labels P.buyer_process));
  (* moving to the same position is the identity *)
  let id_op =
    Ops.Move_activity { from_path = []; from_index = 1; to_path = []; to_index = 1 }
  in
  check_bool "identity move" true
    (B.Activity.equal
       (B.Process.body (Ops.apply_exn id_op P.buyer_process))
       (B.Process.body P.buyer_process))

let test_swap_activities () =
  let op = Ops.Swap_activities { path = []; i = 0; j = 1 } in
  let p' = Ops.apply_exn op P.buyer_process in
  check_bool "language changed" false
    (C.Equiv.equal_language (gen p') (gen P.buyer_process));
  (* swapping back restores the original *)
  let p'' = Ops.apply_exn op p' in
  check_bool "involution" true
    (B.Activity.equal (B.Process.body p'') (B.Process.body P.buyer_process));
  check_bool "bad index" true
    (Result.is_error (Ops.apply (Ops.Swap_activities { path = []; i = 0; j = 9 }) P.buyer_process))

let test_parallelize_serialize () =
  (* parallelizing the first two steps of the accounting process lets
     order and deliver interleave *)
  let reg = B.Process.registry P.accounting_process in
  let seq2 =
    B.Process.make ~name:"t" ~party:"A" ~registry:reg
      (Act.seq "root"
         [
           Act.seq "two"
             [
               Act.receive ~partner:"B" ~op:"orderOp";
               Act.invoke ~partner:"L" ~op:"deliverOp";
             ];
         ])
  in
  let par = Ops.apply_exn (Ops.Parallelize { path = [ 0 ] }) seq2 in
  let w = List.map C.Label.of_string_exn in
  check_bool "interleaving allowed" true
    (C.Trace.accepts (gen par) (w [ "A#L#deliverOp"; "B#A#orderOp" ]));
  check_bool "original order kept" true
    (C.Trace.accepts (gen par) (w [ "B#A#orderOp"; "A#L#deliverOp" ]));
  (* round trip *)
  let back = Ops.apply_exn (Ops.Serialize { path = [ 0 ] }) par in
  check_bool "serialize restores sequence language" true
    (C.Equiv.equal_language (gen back) (gen seq2));
  check_bool "serialize non-flow fails" true
    (Result.is_error (Ops.apply (Ops.Serialize { path = [ 0 ] }) seq2))

let test_wrap_in_loop () =
  let reg = B.Process.registry P.accounting_process in
  let p =
    B.Process.make ~name:"t" ~party:"A" ~registry:reg
      (Act.seq "root" [ Act.invoke ~partner:"B" ~op:"deliveryOp" ])
  in
  let p' =
    Ops.apply_exn (Ops.Wrap_in_loop { path = [ 0 ]; name = "again"; cond = "more?" }) p
  in
  let w = List.map C.Label.of_string_exn in
  check_bool "twice" true
    (C.Trace.accepts (gen p') (w [ "A#B#deliveryOp"; "A#B#deliveryOp" ]));
  check_bool "zero times" true (C.Trace.accepts (gen p') [])

let test_rename_block () =
  let op = Ops.Rename_block { path = []; name = "renamed" } in
  let p' = Ops.apply_exn op P.buyer_process in
  check_bool "publicly invisible" true
    (Cl.public_unchanged ~old_public:(gen P.buyer_process) ~new_public:(gen p') ());
  let _, tbl = C.Public_gen.generate p' in
  check_bool "table follows the rename" true
    (List.exists
       (fun (e : C.Table.entry) -> String.equal e.block "Sequence:renamed")
       (C.Table.entries tbl 0));
  check_bool "cannot rename a basic activity" true
    (Result.is_error (Ops.apply (Ops.Rename_block { path = [ 0 ]; name = "x" }) P.buyer_process))

(* ---------------------------- framework ---------------------------- *)

let test_framework_additive () =
  let old_public = C.View.tau ~observer:"B" (gen P.accounting_process) in
  let new_public = C.View.tau ~observer:"B" (gen P.accounting_cancel) in
  let f = Cl.framework ~old_public ~new_public () in
  check_bool "additive" true f.Cl.additive;
  check_bool "not subtractive" false f.Cl.subtractive;
  check_bool "added automaton nonempty" false
    (C.Emptiness.is_empty_plain f.Cl.added)

let test_framework_subtractive () =
  let old_public = C.View.tau ~observer:"B" (gen P.accounting_process) in
  let new_public = C.View.tau ~observer:"B" (gen P.accounting_once) in
  let f = Cl.framework ~old_public ~new_public () in
  check_bool "subtractive" true f.Cl.subtractive;
  check_bool "not additive" false f.Cl.additive

let test_framework_neutral () =
  let pub = C.View.tau ~observer:"B" (gen P.accounting_process) in
  let f = Cl.framework ~old_public:pub ~new_public:pub () in
  check_bool "neither" true ((not f.Cl.additive) && not f.Cl.subtractive)

let test_framework_both () =
  (* replace one message by another: adds and removes *)
  let a = A.of_strings ~start:0 ~finals:[ 1 ] ~edges:[ (0, "A#B#x", 1) ] () in
  let b = A.of_strings ~start:0 ~finals:[ 1 ] ~edges:[ (0, "A#B#y", 1) ] () in
  let f = Cl.framework ~old_public:a ~new_public:b () in
  check_bool "additive" true f.Cl.additive;
  check_bool "subtractive" true f.Cl.subtractive

(* --------------------------- propagation --------------------------- *)

let test_invariant_additive_fig10 () =
  let v =
    Cl.classify ~owner:"A" ~partner:"B"
      ~old_public:(gen P.accounting_process)
      ~new_public:(gen P.accounting_order2)
      ~partner_public:(gen P.buyer_process)
      ()
  in
  check_bool "additive" true v.Cl.framework.Cl.additive;
  check_bool "invariant" true (v.Cl.propagation = Cl.Invariant);
  check_bool "no propagation" false (Cl.requires_propagation v)

let test_variant_additive_fig12 () =
  let v =
    Cl.classify ~owner:"A" ~partner:"B"
      ~old_public:(gen P.accounting_process)
      ~new_public:(gen P.accounting_cancel)
      ~partner_public:(gen P.buyer_process)
      ()
  in
  check_bool "additive" true v.Cl.framework.Cl.additive;
  check_bool "variant" true (v.Cl.propagation = Cl.Variant);
  check_bool "propagation required" true (Cl.requires_propagation v)

let test_variant_subtractive_fig16 () =
  let v =
    Cl.classify ~owner:"A" ~partner:"B"
      ~old_public:(gen P.accounting_process)
      ~new_public:(gen P.accounting_once)
      ~partner_public:(gen P.buyer_process)
      ()
  in
  check_bool "subtractive" true v.Cl.framework.Cl.subtractive;
  check_bool "variant" true (v.Cl.propagation = Cl.Variant)

let test_logistics_invariant_for_both_changes () =
  (* the cancel and tracking-limit changes do not break logistics *)
  List.iter
    (fun changed ->
      let v =
        Cl.classify ~owner:"A" ~partner:"L"
          ~old_public:(gen P.accounting_process)
          ~new_public:(gen changed)
          ~partner_public:(gen P.logistics_process)
          ()
      in
      check_bool "invariant for L" true (v.Cl.propagation = Cl.Invariant))
    [ P.accounting_cancel; P.accounting_once ]

let test_public_unchanged_for_local_change () =
  (* inserting an assign is invisible publicly *)
  let changed =
    Ops.apply_exn
      (Ops.Insert_activity { path = []; pos = 0; act = Act.Assign "log" })
      P.accounting_process
  in
  check_bool "public unchanged" true
    (Cl.public_unchanged
       ~old_public:(gen P.accounting_process)
       ~new_public:(gen changed) ());
  check_bool "public changed for cancel" false
    (Cl.public_unchanged
       ~old_public:(gen P.accounting_process)
       ~new_public:(gen P.accounting_cancel) ())

let () =
  Alcotest.run "change"
    [
      ( "apply",
        [
          Alcotest.test_case "insert" `Quick test_apply_insert;
          Alcotest.test_case "delete" `Quick test_apply_delete;
          Alcotest.test_case "receive→pick = fig14" `Quick
            test_apply_receive_to_pick;
          Alcotest.test_case "compound" `Quick test_apply_compound;
          Alcotest.test_case "compound atomic" `Quick test_apply_compound_atomic;
          Alcotest.test_case "errors" `Quick test_apply_errors;
        ] );
      ( "shift/structure",
        [
          Alcotest.test_case "move" `Quick test_move_activity;
          Alcotest.test_case "swap" `Quick test_swap_activities;
          Alcotest.test_case "parallelize/serialize" `Quick
            test_parallelize_serialize;
          Alcotest.test_case "wrap in loop" `Quick test_wrap_in_loop;
          Alcotest.test_case "rename block" `Quick test_rename_block;
        ] );
      ( "framework (Def 5)",
        [
          Alcotest.test_case "additive" `Quick test_framework_additive;
          Alcotest.test_case "subtractive" `Quick test_framework_subtractive;
          Alcotest.test_case "neutral" `Quick test_framework_neutral;
          Alcotest.test_case "both" `Quick test_framework_both;
        ] );
      ( "propagation (Def 6)",
        [
          Alcotest.test_case "invariant additive (Fig 10)" `Quick
            test_invariant_additive_fig10;
          Alcotest.test_case "variant additive (Fig 12)" `Quick
            test_variant_additive_fig12;
          Alcotest.test_case "variant subtractive (Fig 16)" `Quick
            test_variant_subtractive_fig16;
          Alcotest.test_case "logistics invariant" `Quick
            test_logistics_invariant_for_both_changes;
          Alcotest.test_case "public (un)changed" `Quick
            test_public_unchanged_for_local_change;
        ] );
    ]
