(* Cross-cutting property-based tests: the paper's central claims
   checked on randomized workloads.

   The headline property is Sec. 3.2's soundness claim: bilateral
   consistency (annotated intersection non-emptiness) coincides with
   deadlock-free executability — checked here by running the
   *operational* engine against the *algebraic* verdict on hundreds of
   random automaton pairs and random choreography changes. *)

module C = Chorev
module A = C.Afsa

let evolve_ok t ~owner ~changed =
  match C.Choreography.Evolution.run t ~owner ~changed with
  | Ok r -> r
  | Error (`Unknown_party p) -> failwith ("unknown party " ^ p)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)
let gen = C.Public_gen.public

(* 1. Theory ⇔ operation, plain automata (no annotations). *)
let prop_consistency_iff_completion_plain =
  QCheck.Test.make
    ~name:"consistent ⟺ joint completion (plain random automata)" ~count:80
    (QCheck.pair arb_seed arb_seed) (fun (s1, s2) ->
      let a = C.Workload.Gen_afsa.random ~seed:s1 ~states:5 ~ann_p:0.0 () in
      let b = C.Workload.Gen_afsa.random ~seed:(s2 + 7) ~states:5 ~ann_p:0.0 () in
      let sys = C.Runtime.Exec.make [ ("A", a); ("B", b) ] in
      C.Consistency.consistent a b = C.Runtime.Exec.can_complete sys)

(* 2. Theory ⇔ operation, annotated automata: the greatest-fixpoint
   emptiness equals the operational annotated-deadlock-freedom. *)
let prop_consistency_iff_annotated_df =
  QCheck.Test.make
    ~name:"consistent ⟺ annotated deadlock-free (annotated automata)"
    ~count:80 (QCheck.pair arb_seed arb_seed) (fun (s1, s2) ->
      let a = C.Workload.Gen_afsa.random ~seed:s1 ~states:5 ~ann_p:0.4 () in
      let b = C.Workload.Gen_afsa.random ~seed:(s2 + 13) ~states:5 ~ann_p:0.4 () in
      let sys = C.Runtime.Exec.make [ ("A", a); ("B", b) ] in
      C.Consistency.consistent a b
      = C.Runtime.Conformance.annotated_deadlock_free sys)

(* 3. Consistency witnesses are executable conversations. *)
let prop_witness_replays =
  QCheck.Test.make ~name:"consistency witness replays on the engine"
    ~count:100 (QCheck.pair arb_seed arb_seed) (fun (s1, s2) ->
      let a = C.Workload.Gen_afsa.random ~seed:s1 ~states:6 () in
      let b = C.Workload.Gen_afsa.random ~seed:(s2 + 23) ~states:6 () in
      C.Runtime.Conformance.witness_replays a b)

(* 4. Generated process pairs are consistent by construction, and their
   publics execute to completion. *)
let prop_generated_pairs_consistent =
  QCheck.Test.make ~name:"generated requester/responder pairs consistent"
    ~count:40 arb_seed (fun seed ->
      let pa, pb = C.Workload.Gen_process.pair ~seed () in
      let a = gen pa and b = gen pb in
      C.Consistency.consistent a b
      && C.Runtime.Exec.can_complete (C.Runtime.Exec.make [ ("A", a); ("B", b) ]))

(* 5. Public-process generation is stable: regenerating an unchanged
   private process yields the same (annotated, minimized) public. *)
let prop_generation_stable =
  QCheck.Test.make ~name:"public generation deterministic" ~count:30 arb_seed
    (fun seed ->
      let pa, _ = C.Workload.Gen_process.pair ~seed () in
      C.Equiv.equal_annotated (gen pa) (gen pa))

(* 6. Def. 5 sanity on random additive changes: inserting a fresh send
   into a process yields an additive, non-subtractive change of its
   public view (when the site is reachable; unreachable sites yield a
   neutral change). *)
let prop_additive_changes_are_additive =
  QCheck.Test.make ~name:"random additive change: additive or neutral"
    ~count:40 (QCheck.pair arb_seed arb_seed) (fun (s1, s2) ->
      let pa, _ = C.Workload.Gen_process.pair ~seed:s1 () in
      match C.Workload.Gen_change.additive ~seed:s2 pa with
      | None -> QCheck.assume_fail ()
      | Some op -> (
          match C.Change.Ops.apply op pa with
          | Error _ -> QCheck.assume_fail ()
          | Ok pa' ->
              let f =
                C.Change.Classify.framework ~old_public:(gen pa)
                  ~new_public:(gen pa') ()
              in
              (not f.C.Change.Classify.subtractive)
              || f.C.Change.Classify.additive))

(* 7. Views are projections: τ_P never invents labels, and hides all
   foreign ones. *)
let prop_views_project =
  QCheck.Test.make ~name:"views only keep bilateral labels" ~count:40 arb_seed
    (fun seed ->
      let pa, pb = C.Workload.Gen_process.pair ~seed () in
      let v = C.View.tau ~observer:"B" (gen pa) in
      ignore pb;
      List.for_all (C.Label.involves "B") (A.alphabet v))

(* 8. Intersection emptiness is monotone under removing alternatives
   from the partner: if B' ⊆ B (language) and A∩B' nonempty, then A∩B
   nonempty — on annotation-free automata. *)
let prop_emptiness_monotone =
  QCheck.Test.make ~name:"consistency monotone in partner language (plain)"
    ~count:60 (QCheck.pair arb_seed arb_seed) (fun (s1, s2) ->
      let a = C.Workload.Gen_afsa.random ~seed:s1 ~states:5 ~ann_p:0.0 () in
      let b = C.Workload.Gen_afsa.random ~seed:(s2 + 31) ~states:5 ~ann_p:0.0 () in
      let b' = C.Ops.intersect b a in
      (* b' ⊆ b *)
      (not (C.Consistency.consistent a b')) || C.Consistency.consistent a b)

(* 9. The evolution pipeline never *breaks* a consistent choreography
   when the change is invariant for everyone. *)
let prop_invariant_evolution_keeps_consistency =
  QCheck.Test.make ~name:"local change keeps choreography consistent"
    ~count:25 arb_seed (fun seed ->
      let pa, pb = C.Workload.Gen_process.pair ~seed () in
      let t = C.Choreography.Model.of_processes [ pa; pb ] in
      (* a purely internal change: prepend an assign *)
      match
        C.Change.Ops.apply
          (C.Change.Ops.Insert_activity
             { path = []; pos = 0; act = C.Bpel.Activity.Assign "x" })
          pa
      with
      | Error _ -> QCheck.assume_fail ()
      | Ok pa' ->
          let rep = evolve_ok t ~owner:"A" ~changed:pa' in
          rep.C.Choreography.Evolution.consistent)

(* 10. Skeleton round-trip on generated processes: synthesizing from a
   generated public process reproduces its plain language. *)
let prop_skeleton_roundtrip =
  QCheck.Test.make ~name:"skeleton round-trips generated publics" ~count:30
    arb_seed (fun seed ->
      let pa, _ = C.Workload.Gen_process.pair ~seed () in
      let pub = gen pa in
      match C.Skeleton.synthesize ~party:"A" pub with
      | Ok p -> C.Equiv.equal_language pub (gen p)
      | Error _ -> QCheck.assume_fail ())

(* 11. Migration safety: every sampled valid prefix of a process's own
   public migrates to that same public (reflexivity), and instances of
   the old buyer migrate to any *additive* extension of it. *)
let prop_migration_reflexive =
  QCheck.Test.make ~name:"instances migrate to their own schema" ~count:50
    arb_seed (fun seed ->
      let pa, _ = C.Workload.Gen_process.pair ~seed () in
      let pub = gen pa in
      let inst =
        C.Migration.Instance.sample pub ~id:"i" ~seed:(seed + 1) ~max_len:6
      in
      C.Migration.Compliance.is_migratable
        (C.Migration.Compliance.check pub inst))

let prop_migration_additive =
  QCheck.Test.make
    ~name:"instances migrate to additive extensions of their schema"
    ~count:30 arb_seed (fun seed ->
      let pa, _ = C.Workload.Gen_process.pair ~seed () in
      match C.Workload.Gen_change.additive ~seed:(seed + 3) pa with
      | None -> QCheck.assume_fail ()
      | Some op -> (
          match C.Change.Ops.apply op pa with
          | Error _ -> QCheck.assume_fail ()
          | Ok pa' ->
              let old_pub = gen pa and new_pub = gen pa' in
              (* only for changes that strictly extend the language *)
              if not (C.Equiv.included old_pub new_pub) then
                QCheck.assume_fail ()
              else
                let inst =
                  C.Migration.Instance.sample old_pub ~id:"i"
                    ~seed:(seed + 7) ~max_len:6
                in
                C.Migration.Compliance.is_migratable
                  (C.Migration.Compliance.check new_pub inst)))

(* 12. Discovery precision: consistency matches are always a subset of
   keyword matches for requesters sharing the registry's vocabulary. *)
let prop_discovery_precision =
  QCheck.Test.make ~name:"consistency matches ⊆ keyword matches" ~count:30
    arb_seed (fun seed ->
      let reg = C.Discovery.create () in
      for i = 0 to 4 do
        C.Discovery.advertise reg
          ~name:(Printf.sprintf "s%d" i)
          ~party:"A"
          (C.Workload.Gen_afsa.random_protocol ~seed:(seed + i) ~states:6 ())
      done;
      let requester =
        C.Workload.Gen_afsa.random_protocol ~seed:(seed + 9) ~states:6 ()
      in
      let precise, keyword =
        C.Discovery.precision reg ~party:"B" ~requester
      in
      List.for_all (fun n -> List.mem n keyword) precise)

let () =
  Alcotest.run "props"
    [
      ( "soundness",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_consistency_iff_completion_plain;
            prop_consistency_iff_annotated_df;
            prop_witness_replays;
          ] );
      ( "generation",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_generated_pairs_consistent;
            prop_generation_stable;
            prop_views_project;
          ] );
      ( "change-framework",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_additive_changes_are_additive;
            prop_emptiness_monotone;
            prop_invariant_evolution_keeps_consistency;
          ] );
      ( "extensions",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_skeleton_roundtrip;
            prop_migration_reflexive;
            prop_migration_additive;
            prop_discovery_precision;
          ] );
    ]
